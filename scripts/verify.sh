#!/usr/bin/env bash
# Hermetic verification: the workspace must build, test, and run its
# quickstart with zero registry access. Any failure exits nonzero.
#
# Usage: scripts/verify.sh [all|service|obs]
#   all      (default) every gate below
#   service  just the prediction-service gate: chaos soak, graceful
#            drain, and the warm-restart differential, all offline
#   obs      just the observability gate: golden stats exports, the
#            zero-overhead-when-disabled bench check, and the
#            no-parallel-metric-types grep
set -euo pipefail
cd "$(dirname "$0")/.."

GATE="${1:-all}"
case "$GATE" in
    all|service|obs) ;;
    *) echo "usage: scripts/verify.sh [all|service|obs]" >&2; exit 2 ;;
esac

step() { printf '\n== %s ==\n' "$*"; }

SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
SIMULATE=(cargo run -q --release --offline -p cap-harness --bin simulate --)

core_gates() {
    step "tier-1 build (release, offline)"
    cargo build --release --offline

    step "compile every target (tests, benches, examples) offline"
    cargo check --offline --workspace --all-targets

    step "full test suite (offline)"
    cargo test -q --offline --workspace

    step "quickstart example"
    cargo run -q --release --offline --example quickstart

    step "faults: chaos suite + 1k-mutation corruption smoke"
    cargo test -q --offline -p cap-faults
    cargo run -q --release --offline -p cap-faults --example corruption_smoke

    step "clippy (all targets, warnings are errors)"
    cargo clippy --offline --workspace --all-targets -- -D warnings

    step "snapshot: crate tests + scripted kill-and-resume smoke"
    cargo test -q --offline -p cap-snapshot
    "${SIMULATE[@]}" gen --out "$SMOKE_DIR/trace.txt" --loads 8000
    "${SIMULATE[@]}" run --trace "$SMOKE_DIR/trace.txt" --json \
        > "$SMOKE_DIR/reference.json"
    KILLED_STATUS=0
    "${SIMULATE[@]}" run --trace "$SMOKE_DIR/trace.txt" \
        --checkpoint-dir "$SMOKE_DIR/ckpts" --checkpoint-every 1000 \
        --kill-after 6000 || KILLED_STATUS=$?
    if [ "$KILLED_STATUS" -ne 137 ]; then
        echo "ERROR: --kill-after must exit 137, got $KILLED_STATUS" >&2
        exit 1
    fi
    "${SIMULATE[@]}" run --trace "$SMOKE_DIR/trace.txt" \
        --checkpoint-dir "$SMOKE_DIR/ckpts" --checkpoint-every 1000 \
        --resume auto --json > "$SMOKE_DIR/resumed.json"
    grep -q '"resumed_from": "' "$SMOKE_DIR/resumed.json" || {
        echo "ERROR: resumed run did not recover a checkpoint" >&2
        exit 1
    }
    for key in loads predictions correct_predictions prediction_rate_bits; do
        ref=$(grep "\"$key\"" "$SMOKE_DIR/reference.json")
        res=$(grep "\"$key\"" "$SMOKE_DIR/resumed.json")
        if [ "$ref" != "$res" ]; then
            echo "ERROR: kill-and-resume diverged on $key: '$ref' vs '$res'" >&2
            exit 1
        fi
    done
    echo "kill-and-resume smoke: bit-identical metrics after resume"

    step "hermeticity: no external crates in any manifest"
    if grep -rn 'rand\|proptest\|criterion' Cargo.toml crates/*/Cargo.toml | grep -v 'cap-rand'; then
        echo "ERROR: external dependency reference found in a manifest" >&2
        exit 1
    fi
}

# The service gate: chaos soak (seeded, bounded), graceful-shutdown
# drain, and the warm-restart differential — in-process via the crate's
# integration tests, then end-to-end through the real `simulate`
# binary over loopback TCP. Fully offline.
service_gate() {
    step "service: seeded bounded chaos soak + warm-restart differential"
    cargo test -q --offline --release -p cap-service --test chaos_soak
    cargo test -q --offline --release -p cap-service --test warm_restart
    cargo test -q --offline --release -p cap-service --test tcp

    step "service: scripted serve / drain / kill-and-warm-restart cycle"
    local dir="$SMOKE_DIR/service"
    mkdir -p "$dir"
    "${SIMULATE[@]}" gen --out "$dir/trace.txt" --loads 6000

    serve_wait_port() {
        # Starts a server in the background (PID in SERVE_PID, log in $1)
        # and blocks until the port file appears.
        local log="$1"; shift
        rm -f "$dir/port"
        "${SIMULATE[@]}" serve --addr 127.0.0.1:0 --port-file "$dir/port" \
            --workers 2 --snapshot-dir "$dir/snapshots" "$@" \
            > "$log" 2>&1 &
        SERVE_PID=$!
        for _ in $(seq 1 100); do
            [ -s "$dir/port" ] && return 0
            if ! kill -0 "$SERVE_PID" 2>/dev/null; then
                echo "ERROR: server died before publishing its port" >&2
                cat "$log" >&2
                exit 1
            fi
            sleep 0.1
        done
        echo "ERROR: server never published its port" >&2
        exit 1
    }

    serve_wait_port "$dir/serve1.log"
    ADDR="127.0.0.1:$(cat "$dir/port")"
    "${SIMULATE[@]}" client --addr "$ADDR" --trace "$dir/trace.txt" \
        --take 3000 --json > "$dir/replay.json"
    grep -q '"sent": 3000' "$dir/replay.json" || {
        echo "ERROR: replay did not send all 3000 loads" >&2
        exit 1
    }
    grep -q '"errors": 0' "$dir/replay.json" || {
        echo "ERROR: unpressured replay saw structured errors" >&2
        exit 1
    }
    "${SIMULATE[@]}" client --addr "$ADDR" --stats > "$dir/stats-before.json"

    # Graceful shutdown: the drain must answer everything in flight —
    # the server reports how many requests it rejected while draining.
    "${SIMULATE[@]}" client --addr "$ADDR" --shutdown 500
    wait "$SERVE_PID" || {
        echo "ERROR: server exited nonzero on graceful shutdown" >&2
        cat "$dir/serve1.log" >&2
        exit 1
    }
    grep -q 'drained (.* 0 rejected during drain)' "$dir/serve1.log" || {
        echo "ERROR: graceful drain rejected requests" >&2
        cat "$dir/serve1.log" >&2
        exit 1
    }
    ls "$dir/snapshots"/ckpt-*.capsnap >/dev/null || {
        echo "ERROR: shutdown published no snapshot" >&2
        exit 1
    }

    # Warm restart: a fresh process resumed from the snapshot must carry
    # the learned predictor state bit-identically — the aggregate
    # predictor metrics before shutdown and after restart must match.
    serve_wait_port "$dir/serve2.log" --resume
    ADDR="127.0.0.1:$(cat "$dir/port")"
    grep -q 'warm restart from ' "$dir/serve2.log" || {
        echo "ERROR: restarted server did not warm-restart" >&2
        cat "$dir/serve2.log" >&2
        exit 1
    }
    "${SIMULATE[@]}" client --addr "$ADDR" --stats > "$dir/stats-after.json"
    for key in loads predictions correct_predictions prediction_rate_bits accuracy_bits; do
        ref=$(grep "\"$key\"" "$dir/stats-before.json")
        res=$(grep "\"$key\"" "$dir/stats-after.json")
        if [ -z "$ref" ] || [ "$ref" != "$res" ]; then
            echo "ERROR: warm restart diverged on $key: '$ref' vs '$res'" >&2
            exit 1
        fi
    done
    "${SIMULATE[@]}" client --addr "$ADDR" --shutdown 500
    wait "$SERVE_PID" || {
        echo "ERROR: restarted server exited nonzero on shutdown" >&2
        exit 1
    }
    echo "service smoke: drained cleanly, warm restart bit-identical"
}

# The observability gate: the telemetry layer's three contracts.
#   1. Export stability — the CAPO wire frame and the JSON rendering
#      are byte-identical to their checked-in goldens.
#   2. Zero overhead when disabled — the bench asserts a disabled
#      record site costs under 2% of a drive-loop event.
#   3. One metrics vocabulary — no crate except cap-obs defines its
#      own histogram/metric-registry types (SaturatingCounter and
#      friends in cap-predictor are *architectural state*, not
#      telemetry, and are allowed by name).
obs_gate() {
    step "obs: registry + export unit tests"
    cargo test -q --offline -p cap-obs

    step "obs: golden stats exports (wire frame + JSON, byte-stable)"
    cargo test -q --offline --release -p cap-harness --test obs_golden

    step "obs: registry reconciles with legacy stats under chaos"
    cargo test -q --offline --release -p cap-service --test chaos_soak
    cargo test -q --offline --release -p cap-service --lib \
        registry_reconciles_with_legacy_stats_views

    step "obs: zero-overhead-when-disabled bench check"
    CAP_BENCH_QUICK=1 CAP_OBS_CHECK=1 \
        cargo bench -q --offline -p cap-bench --bench obs_overhead

    step "obs: no parallel metric types outside cap-obs"
    if grep -rn 'struct [A-Za-z]*\(Histogram\|MetricRegistry\)' crates/*/src \
        | grep -v '^crates/cap-obs/'; then
        echo "ERROR: a crate other than cap-obs defines its own histogram/registry type" >&2
        exit 1
    fi
    echo "metric-type grep: clean"
}

if [ "$GATE" = "all" ]; then
    core_gates
fi
if [ "$GATE" = "all" ] || [ "$GATE" = "service" ]; then
    service_gate
fi
if [ "$GATE" = "all" ] || [ "$GATE" = "obs" ]; then
    obs_gate
fi

echo
echo "verify: all green"
