#!/usr/bin/env bash
# Hermetic verification: the workspace must build, test, and run its
# quickstart with zero registry access. Any failure exits nonzero.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "tier-1 build (release, offline)"
cargo build --release --offline

step "compile every target (tests, benches, examples) offline"
cargo check --offline --workspace --all-targets

step "full test suite (offline)"
cargo test -q --offline --workspace

step "quickstart example"
cargo run -q --release --offline --example quickstart

step "faults: chaos suite + 1k-mutation corruption smoke"
cargo test -q --offline -p cap-faults
cargo run -q --release --offline -p cap-faults --example corruption_smoke

step "hermeticity: no external crates in any manifest"
if grep -rn 'rand\|proptest\|criterion' Cargo.toml crates/*/Cargo.toml | grep -v 'cap-rand'; then
    echo "ERROR: external dependency reference found in a manifest" >&2
    exit 1
fi

echo
echo "verify: all green"
