#!/usr/bin/env bash
# Hermetic verification: the workspace must build, test, and run its
# quickstart with zero registry access. Any failure exits nonzero.
#
# Usage: scripts/verify.sh [all|service|obs|cluster|netchaos|storage|bench|backends]
#   all      (default) every gate below
#   service  just the prediction-service gate: chaos soak, graceful
#            drain, and the warm-restart differential, all offline
#   obs      just the observability gate: golden stats exports, the
#            zero-overhead-when-disabled bench check, and the
#            no-parallel-metric-types grep
#   cluster  just the fleet gate: router crate tests, the multi-process
#            chaos soak (seeded kills + rolling restart vs control),
#            and a scripted 3-node kill-and-promote smoke
#   netchaos just the partition-tolerance gate: chaos-proxy crate
#            tests, the two-phase partition soak (exact accounting
#            under injected network faults, then post-heal bit-identity
#            vs an unpartitioned control; CAP_SOAK_QUICK keeps it under
#            a minute), and a scripted runtime ring-resize smoke driven
#            through `route --admin-file`
#   storage  just the storage-fault gate: ChaosVfs crate tests, the
#            journal codec tests, the crash-point matrix (crash after
#            every VFS op of a checkpoint+journal cycle, including
#            under lying fsyncs, resume bit-identical), a scripted
#            kill -9 → journal-replay → bit-identity smoke, and the
#            no-direct-std::fs grep over the checkpoint/journal paths
#   bench    just the perf-baseline gate: the packed-vs-legacy
#            differential, then the baseline bench emitting
#            BENCH_<git-short-sha>.json and diffing it against the
#            newest prior baseline (>10% single-predict regression
#            fails)
#   backends just the backend-catalog gate: registry round-trip and
#            per-backend snapshot tests, a grep asserting the registry
#            in backend.rs is the only `match` on BackendKind, and a
#            per-backend serve → predict → snapshot → warm-restart
#            smoke over every name `simulate backends` lists
set -euo pipefail
cd "$(dirname "$0")/.."

GATE="${1:-all}"
case "$GATE" in
    all|service|obs|cluster|netchaos|storage|bench|backends) ;;
    *) echo "usage: scripts/verify.sh [all|service|obs|cluster|netchaos|storage|bench|backends]" >&2; exit 2 ;;
esac

step() { printf '\n== %s ==\n' "$*"; }

SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
SIMULATE=(cargo run -q --release --offline -p cap-harness --bin simulate --)

core_gates() {
    step "tier-1 build (release, offline)"
    cargo build --release --offline

    step "compile every target (tests, benches, examples) offline"
    cargo check --offline --workspace --all-targets

    step "full test suite (offline)"
    cargo test -q --offline --workspace

    step "quickstart example"
    cargo run -q --release --offline --example quickstart

    step "faults: chaos suite + 1k-mutation corruption smoke"
    cargo test -q --offline -p cap-faults
    cargo run -q --release --offline -p cap-faults --example corruption_smoke

    step "clippy (all targets, warnings are errors)"
    cargo clippy --offline --workspace --all-targets -- -D warnings

    step "snapshot: crate tests + scripted kill-and-resume smoke"
    cargo test -q --offline -p cap-snapshot
    "${SIMULATE[@]}" gen --out "$SMOKE_DIR/trace.txt" --loads 8000
    "${SIMULATE[@]}" run --trace "$SMOKE_DIR/trace.txt" --json \
        > "$SMOKE_DIR/reference.json"
    KILLED_STATUS=0
    "${SIMULATE[@]}" run --trace "$SMOKE_DIR/trace.txt" \
        --checkpoint-dir "$SMOKE_DIR/ckpts" --checkpoint-every 1000 \
        --kill-after 6000 || KILLED_STATUS=$?
    if [ "$KILLED_STATUS" -ne 137 ]; then
        echo "ERROR: --kill-after must exit 137, got $KILLED_STATUS" >&2
        exit 1
    fi
    "${SIMULATE[@]}" run --trace "$SMOKE_DIR/trace.txt" \
        --checkpoint-dir "$SMOKE_DIR/ckpts" --checkpoint-every 1000 \
        --resume auto --json > "$SMOKE_DIR/resumed.json"
    grep -q '"resumed_from": "' "$SMOKE_DIR/resumed.json" || {
        echo "ERROR: resumed run did not recover a checkpoint" >&2
        exit 1
    }
    for key in loads predictions correct_predictions prediction_rate_bits; do
        ref=$(grep "\"$key\"" "$SMOKE_DIR/reference.json")
        res=$(grep "\"$key\"" "$SMOKE_DIR/resumed.json")
        if [ "$ref" != "$res" ]; then
            echo "ERROR: kill-and-resume diverged on $key: '$ref' vs '$res'" >&2
            exit 1
        fi
    done
    echo "kill-and-resume smoke: bit-identical metrics after resume"

    step "hermeticity: no external crates in any manifest"
    if grep -rn 'rand\|proptest\|criterion' Cargo.toml crates/*/Cargo.toml | grep -v 'cap-rand'; then
        echo "ERROR: external dependency reference found in a manifest" >&2
        exit 1
    fi

    step "deprecated drive wrappers: no callers outside their definition"
    # The one-release run_* compatibility shims must not regrow callers
    # before removal; cap-predictor also carries #![deny(deprecated)],
    # this grep covers the crates that don't.
    if grep -rn 'run_immediate\|run_value_immediate\|run_with_gap\|run_with_wrong_path' \
        crates/*/src crates/*/tests crates/*/benches crates/*/examples 2>/dev/null \
        | grep -v '^crates/cap-predictor/src/drive.rs:'; then
        echo "ERROR: a caller of the deprecated drive::run_* wrappers crept back in" >&2
        exit 1
    fi
    echo "deprecated-wrapper grep: clean"
}

# The service gate: chaos soak (seeded, bounded), graceful-shutdown
# drain, and the warm-restart differential — in-process via the crate's
# integration tests, then end-to-end through the real `simulate`
# binary over loopback TCP. Fully offline.
service_gate() {
    step "service: seeded bounded chaos soak + warm-restart differential"
    cargo test -q --offline --release -p cap-service --test chaos_soak
    cargo test -q --offline --release -p cap-service --test warm_restart
    cargo test -q --offline --release -p cap-service --test tcp

    step "service: scripted serve / drain / kill-and-warm-restart cycle"
    local dir="$SMOKE_DIR/service"
    mkdir -p "$dir"
    "${SIMULATE[@]}" gen --out "$dir/trace.txt" --loads 6000

    serve_wait_port() {
        # Starts a server in the background (PID in SERVE_PID, log in $1)
        # and blocks until the port file appears.
        local log="$1"; shift
        rm -f "$dir/port"
        "${SIMULATE[@]}" serve --addr 127.0.0.1:0 --port-file "$dir/port" \
            --workers 2 --snapshot-dir "$dir/snapshots" "$@" \
            > "$log" 2>&1 &
        SERVE_PID=$!
        for _ in $(seq 1 100); do
            [ -s "$dir/port" ] && return 0
            if ! kill -0 "$SERVE_PID" 2>/dev/null; then
                echo "ERROR: server died before publishing its port" >&2
                cat "$log" >&2
                exit 1
            fi
            sleep 0.1
        done
        echo "ERROR: server never published its port" >&2
        exit 1
    }

    serve_wait_port "$dir/serve1.log"
    ADDR="127.0.0.1:$(cat "$dir/port")"
    "${SIMULATE[@]}" client --addr "$ADDR" --trace "$dir/trace.txt" \
        --take 3000 --json > "$dir/replay.json"
    grep -q '"sent": 3000' "$dir/replay.json" || {
        echo "ERROR: replay did not send all 3000 loads" >&2
        exit 1
    }
    grep -q '"errors": 0' "$dir/replay.json" || {
        echo "ERROR: unpressured replay saw structured errors" >&2
        exit 1
    }
    "${SIMULATE[@]}" client --addr "$ADDR" --stats > "$dir/stats-before.json"

    # Graceful shutdown: the drain must answer everything in flight —
    # the server reports how many requests it rejected while draining.
    "${SIMULATE[@]}" client --addr "$ADDR" --shutdown 500
    wait "$SERVE_PID" || {
        echo "ERROR: server exited nonzero on graceful shutdown" >&2
        cat "$dir/serve1.log" >&2
        exit 1
    }
    grep -q 'drained (.* 0 rejected during drain)' "$dir/serve1.log" || {
        echo "ERROR: graceful drain rejected requests" >&2
        cat "$dir/serve1.log" >&2
        exit 1
    }
    ls "$dir/snapshots"/ckpt-*.capsnap >/dev/null || {
        echo "ERROR: shutdown published no snapshot" >&2
        exit 1
    }

    # Warm restart: a fresh process resumed from the snapshot must carry
    # the learned predictor state bit-identically — the aggregate
    # predictor metrics before shutdown and after restart must match.
    serve_wait_port "$dir/serve2.log" --resume
    ADDR="127.0.0.1:$(cat "$dir/port")"
    grep -q 'warm restart from ' "$dir/serve2.log" || {
        echo "ERROR: restarted server did not warm-restart" >&2
        cat "$dir/serve2.log" >&2
        exit 1
    }
    "${SIMULATE[@]}" client --addr "$ADDR" --stats > "$dir/stats-after.json"
    for key in loads predictions correct_predictions prediction_rate_bits accuracy_bits; do
        ref=$(grep "\"$key\"" "$dir/stats-before.json")
        res=$(grep "\"$key\"" "$dir/stats-after.json")
        if [ -z "$ref" ] || [ "$ref" != "$res" ]; then
            echo "ERROR: warm restart diverged on $key: '$ref' vs '$res'" >&2
            exit 1
        fi
    done
    "${SIMULATE[@]}" client --addr "$ADDR" --shutdown 500
    wait "$SERVE_PID" || {
        echo "ERROR: restarted server exited nonzero on shutdown" >&2
        exit 1
    }
    echo "service smoke: drained cleanly, warm restart bit-identical"
}

# The observability gate: the telemetry layer's three contracts.
#   1. Export stability — the CAPO wire frame and the JSON rendering
#      are byte-identical to their checked-in goldens.
#   2. Zero overhead when disabled — the bench asserts a disabled
#      record site costs under 2% of a drive-loop event.
#   3. One metrics vocabulary — no crate except cap-obs defines its
#      own histogram/metric-registry types (SaturatingCounter and
#      friends in cap-predictor are *architectural state*, not
#      telemetry, and are allowed by name).
obs_gate() {
    step "obs: registry + export unit tests"
    cargo test -q --offline -p cap-obs

    step "obs: golden stats exports (wire frame + JSON, byte-stable)"
    cargo test -q --offline --release -p cap-harness --test obs_golden

    step "obs: registry reconciles with legacy stats under chaos"
    cargo test -q --offline --release -p cap-service --test chaos_soak
    cargo test -q --offline --release -p cap-service --lib \
        registry_reconciles_with_legacy_stats_views

    step "obs: zero-overhead-when-disabled bench check"
    CAP_BENCH_QUICK=1 CAP_OBS_CHECK=1 \
        cargo bench -q --offline -p cap-bench --bench obs_overhead

    step "obs: no parallel metric types outside cap-obs"
    if grep -rn 'struct [A-Za-z]*\(Histogram\|MetricRegistry\)' crates/*/src \
        | grep -v '^crates/cap-obs/'; then
        echo "ERROR: a crate other than cap-obs defines its own histogram/registry type" >&2
        exit 1
    fi
    echo "metric-type grep: clean"
}

# The cluster gate: the sharded fleet's robustness contracts.
#   1. Router crate tests — ring placement, request accounting,
#      failover from shipped replicas, zero-drift live migration, and
#      a hostile peer on the snapshot-ship path.
#   2. The multi-process chaos soak — real serve processes, seeded
#      SIGKILLs mid-traffic with exact request accounting, and a full
#      rolling restart proved bit-identical to an unrestarted control
#      fleet.
#   3. A scripted end-to-end smoke — 3 nodes behind the router front
#      door, one killed under traffic, the keeper promoting a respawned
#      replacement from its shipped replica, the ledger still balanced
#      and the fleet dashboard still merging.
cluster_gate() {
    step "cluster: router crate tests (ring, accounting, failover, migration)"
    cargo test -q --offline --release -p cap-cluster

    step "cluster: multi-process chaos soak + rolling-restart differential"
    cargo test -q --offline --release -p cap-harness --test cluster_soak

    step "cluster: scripted 3-node fleet, kill-and-promote under traffic"
    local dir="$SMOKE_DIR/cluster"
    mkdir -p "$dir"
    "${SIMULATE[@]}" gen --out "$dir/trace.txt" --loads 6000

    local pids=() addrs=() i
    for i in 1 2 3; do
        rm -f "$dir/port$i"
        "${SIMULATE[@]}" serve --addr 127.0.0.1:0 --port-file "$dir/port$i" \
            --workers 2 --snapshot-dir "$dir/node$i" > "$dir/serve$i.log" 2>&1 &
        pids+=($!)
    done
    for i in 1 2 3; do
        for _ in $(seq 1 100); do [ -s "$dir/port$i" ] && break; sleep 0.1; done
        [ -s "$dir/port$i" ] || {
            echo "ERROR: node $i never published its port" >&2
            cat "$dir/serve$i.log" >&2
            exit 1
        }
        addrs+=("127.0.0.1:$(cat "$dir/port$i")")
    done

    rm -f "$dir/rport"
    "${SIMULATE[@]}" route --nodes "$(IFS=,; echo "${addrs[*]}")" \
        --port-file "$dir/rport" --respawn --respawn-dir "$dir/spawned" \
        --ship-every-ms 200 --probe-every-ms 100 > "$dir/route.log" 2>&1 &
    local route_pid=$!
    for _ in $(seq 1 100); do [ -s "$dir/rport" ] && break; sleep 0.1; done
    [ -s "$dir/rport" ] || {
        echo "ERROR: router never published its port" >&2
        cat "$dir/route.log" >&2
        exit 1
    }
    local raddr="127.0.0.1:$(cat "$dir/rport")"

    "${SIMULATE[@]}" client --addr "$raddr" --trace "$dir/trace.txt" \
        --take 3000 --json > "$dir/replay1.json"
    grep -q '"sent": 3000' "$dir/replay1.json" || {
        echo "ERROR: fleet replay did not send all 3000 loads" >&2
        exit 1
    }
    sleep 0.5  # let a replica ship land before the kill
    kill -9 "${pids[0]}"
    for _ in $(seq 1 100); do
        grep -q 'replaced at' "$dir/route.log" && break
        sleep 0.1
    done
    grep -q 'promoting node 0 from replica' "$dir/route.log" || {
        echo "ERROR: keeper never promoted a replacement from the replica" >&2
        cat "$dir/route.log" >&2
        exit 1
    }
    "${SIMULATE[@]}" client --addr "$raddr" --trace "$dir/trace.txt" \
        --take 3000 --connect-retries 8 --stats > "$dir/after.json"
    grep -q '"balances": true' "$dir/after.json" || {
        echo "ERROR: router accounting does not balance after the kill" >&2
        cat "$dir/after.json" >&2
        exit 1
    }
    grep -q '"epoch": 1' "$dir/after.json" || {
        echo "ERROR: promotion did not flip the routing epoch" >&2
        cat "$dir/after.json" >&2
        exit 1
    }
    "${SIMULATE[@]}" top --cluster "$(IFS=,; echo "${addrs[*]:1}")" --json \
        > "$dir/fleet.json" 2> "$dir/fleet.log"
    grep -q 'nodes reporting' "$dir/fleet.log" || {
        echo "ERROR: fleet dashboard did not merge" >&2
        cat "$dir/fleet.log" >&2
        exit 1
    }

    "${SIMULATE[@]}" client --addr "$raddr" --shutdown 500
    wait "$route_pid" || {
        echo "ERROR: router exited nonzero on shutdown" >&2
        cat "$dir/route.log" >&2
        exit 1
    }
    grep -q 'balanced: true' "$dir/route.log" || {
        echo "ERROR: final router ledger did not balance" >&2
        cat "$dir/route.log" >&2
        exit 1
    }
    # Retire the survivors and the respawned replacement.
    for a in "${addrs[@]:1}"; do
        "${SIMULATE[@]}" client --addr "$a" --shutdown 300 || true
    done
    if [ -s "$dir/spawned/node-0/port" ]; then
        "${SIMULATE[@]}" client \
            --addr "127.0.0.1:$(cat "$dir/spawned/node-0/port")" --shutdown 300 || true
    fi
    wait "${pids[1]}" "${pids[2]}" 2>/dev/null || true
    echo "cluster smoke: kill survived, replica promoted, ledger balanced"
}

# The partition-tolerance gate: the network fault model's contracts.
#   1. Chaos-proxy crate tests — seeded fault plans are deterministic,
#      replayable, and order-independent.
#   2. Partition + fencing router tests — black-hole partitions read as
#      timeouts and trip the breaker, latency above the deadline is the
#      partition signature, mid-stream resets during a snapshot pull
#      never corrupt the held replica, and runtime resizes fence stale
#      epochs.
#   3. The two-phase partition soak — thousands of requests through
#      fault-injecting proxies with exact accounting (every request
#      answered, shed, or attributed to failover; none lost or
#      double-trained), then a partitioned fleet healing to
#      bit-identical state vs an unpartitioned control. CAP_SOAK_QUICK
#      keeps the gate under a minute; unset it for the full-size soak.
#   4. A scripted runtime-resize smoke — a live fleet grows and shrinks
#      through `route --admin-file` while traffic flows, and the ledger
#      still balances.
netchaos_gate() {
    step "netchaos: chaos-proxy fault-plan tests (deterministic, seeded)"
    cargo test -q --offline --release -p cap-faults net::

    step "netchaos: partition + fencing router tests"
    cargo test -q --offline --release -p cap-cluster --test router

    step "netchaos: two-phase partition soak (quick mode)"
    CAP_SOAK_QUICK=1 cargo test -q --offline --release -p cap-harness \
        --test partition_soak

    step "netchaos: scripted runtime ring resize under live traffic"
    local dir="$SMOKE_DIR/netchaos"
    mkdir -p "$dir"
    "${SIMULATE[@]}" gen --out "$dir/trace.txt" --loads 6000

    local pids=() addrs=() i
    for i in 1 2 3; do
        rm -f "$dir/port$i"
        "${SIMULATE[@]}" serve --addr 127.0.0.1:0 --port-file "$dir/port$i" \
            --workers 2 --snapshot-dir "$dir/node$i" > "$dir/serve$i.log" 2>&1 &
        pids+=($!)
    done
    for i in 1 2 3; do
        for _ in $(seq 1 100); do [ -s "$dir/port$i" ] && break; sleep 0.1; done
        [ -s "$dir/port$i" ] || {
            echo "ERROR: node $i never published its port" >&2
            cat "$dir/serve$i.log" >&2
            exit 1
        }
        addrs+=("127.0.0.1:$(cat "$dir/port$i")")
    done

    rm -f "$dir/rport"
    : > "$dir/admin"
    "${SIMULATE[@]}" route --nodes "$(IFS=,; echo "${addrs[*]}")" \
        --port-file "$dir/rport" --admin-file "$dir/admin" \
        --ship-every-ms 200 --probe-every-ms 100 > "$dir/route.log" 2>&1 &
    local route_pid=$!
    for _ in $(seq 1 100); do [ -s "$dir/rport" ] && break; sleep 0.1; done
    [ -s "$dir/rport" ] || {
        echo "ERROR: router never published its port" >&2
        cat "$dir/route.log" >&2
        exit 1
    }
    local raddr="127.0.0.1:$(cat "$dir/rport")"

    "${SIMULATE[@]}" client --addr "$raddr" --trace "$dir/trace.txt" \
        --take 2000 --json > "$dir/replay1.json"
    grep -q '"sent": 2000' "$dir/replay1.json" || {
        echo "ERROR: pre-resize replay did not send all 2000 loads" >&2
        exit 1
    }

    # Grow: bring up a fourth node, then hand it to the live router via
    # the admin file.
    rm -f "$dir/port4"
    "${SIMULATE[@]}" serve --addr 127.0.0.1:0 --port-file "$dir/port4" \
        --workers 2 --snapshot-dir "$dir/node4" > "$dir/serve4.log" 2>&1 &
    pids+=($!)
    for _ in $(seq 1 100); do [ -s "$dir/port4" ] && break; sleep 0.1; done
    [ -s "$dir/port4" ] || {
        echo "ERROR: node 4 never published its port" >&2
        cat "$dir/serve4.log" >&2
        exit 1
    }
    addrs+=("127.0.0.1:$(cat "$dir/port4")")
    echo "add ${addrs[3]}" >> "$dir/admin"
    for _ in $(seq 1 100); do
        grep -q 'admin: node 3 added' "$dir/route.log" && break
        sleep 0.1
    done
    grep -q 'admin: node 3 added' "$dir/route.log" || {
        echo "ERROR: admin add never applied" >&2
        cat "$dir/route.log" >&2
        exit 1
    }

    # Shrink: retire node 1 from the ring while traffic continues.
    echo "remove 1" >> "$dir/admin"
    for _ in $(seq 1 100); do
        grep -q 'admin: node 1 removed' "$dir/route.log" && break
        sleep 0.1
    done
    grep -q 'admin: node 1 removed' "$dir/route.log" || {
        echo "ERROR: admin remove never applied" >&2
        cat "$dir/route.log" >&2
        exit 1
    }

    "${SIMULATE[@]}" client --addr "$raddr" --trace "$dir/trace.txt" \
        --take 2000 --connect-retries 8 --stats > "$dir/after.json"
    grep -q '"balances": true' "$dir/after.json" || {
        echo "ERROR: router accounting does not balance after the resize" >&2
        cat "$dir/after.json" >&2
        exit 1
    }
    grep -q '"epoch": 2' "$dir/after.json" || {
        echo "ERROR: add+remove did not flip the epoch twice" >&2
        cat "$dir/after.json" >&2
        exit 1
    }
    grep -q '"live_nodes": 3' "$dir/after.json" || {
        echo "ERROR: fleet should hold 3 live members after add+remove" >&2
        cat "$dir/after.json" >&2
        exit 1
    }

    "${SIMULATE[@]}" client --addr "$raddr" --shutdown 500
    wait "$route_pid" || {
        echo "ERROR: router exited nonzero on shutdown" >&2
        cat "$dir/route.log" >&2
        exit 1
    }
    grep -q 'balanced: true' "$dir/route.log" || {
        echo "ERROR: final router ledger did not balance" >&2
        cat "$dir/route.log" >&2
        exit 1
    }
    # Retire every node still running (including the removed-but-alive
    # node 1 and the late-added node 4).
    for a in "${addrs[@]}"; do
        "${SIMULATE[@]}" client --addr "$a" --shutdown 300 || true
    done
    wait "${pids[@]}" 2>/dev/null || true
    echo "netchaos smoke: fleet grew and shrank live, ledger balanced"
}

# The storage-fault gate: the durability layer's contracts.
#   1. ChaosVfs crate tests — the injectable filesystem's fault kinds,
#      volatile/durable split, and crash semantics are themselves
#      tested.
#   2. Journal codec tests — CRC framing, torn tails at every cut
#      point, bit flips in any record byte.
#   3. The crash-point matrix — one checkpoint+journal+rotation cycle
#      is op-counted, then crashed after *every* operation index and
#      resumed, bit-identical to an uninterrupted control, including
#      when 50% or 100% of fsyncs lie.
#   4. A scripted kill -9 smoke through the real binary: the resumed
#      run must report journal replay and match the uninterrupted
#      reference metrics exactly.
#   5. A grep proving the checkpoint and journal code paths never
#      touch std::fs directly — every disk operation goes through the
#      Vfs seam, or the matrix proves nothing.
storage_gate() {
    step "storage: ChaosVfs fault-injection + crash-semantics tests"
    cargo test -q --offline --release -p cap-faults fs::

    step "storage: journal codec tests (CRC framing, torn tails)"
    cargo test -q --offline -p cap-snapshot journal

    step "storage: crash-point matrix + checkpoint-debris tests"
    cargo test -q --offline --release -p cap-harness --test storage_chaos
    cargo test -q --offline --release -p cap-harness --test checkpoint

    step "storage: scripted kill -9 → journal replay → bit-identity smoke"
    local dir="$SMOKE_DIR/storage"
    mkdir -p "$dir"
    "${SIMULATE[@]}" gen --out "$dir/trace.txt" --loads 8000
    "${SIMULATE[@]}" run --trace "$dir/trace.txt" --json \
        > "$dir/reference.json"
    local killed=0
    "${SIMULATE[@]}" run --trace "$dir/trace.txt" \
        --checkpoint-dir "$dir/ckpts" --checkpoint-every 2000 \
        --journal-every 128 --kill-after 7000 || killed=$?
    if [ "$killed" -ne 137 ]; then
        echo "ERROR: --kill-after must exit 137, got $killed" >&2
        exit 1
    fi
    ls "$dir/ckpts"/journal-*.capj >/dev/null || {
        echo "ERROR: journaled run left no journal on disk" >&2
        exit 1
    }
    "${SIMULATE[@]}" run --trace "$dir/trace.txt" \
        --checkpoint-dir "$dir/ckpts" --checkpoint-every 2000 \
        --journal-every 128 --resume auto --json > "$dir/resumed.json"
    grep -q '"journal_replayed": 0' "$dir/resumed.json" && {
        echo "ERROR: resume did not replay the delta journal" >&2
        cat "$dir/resumed.json" >&2
        exit 1
    }
    local key ref res
    for key in loads predictions correct_predictions prediction_rate_bits; do
        ref=$(grep "\"$key\"" "$dir/reference.json")
        res=$(grep "\"$key\"" "$dir/resumed.json")
        if [ "$ref" != "$res" ]; then
            echo "ERROR: journal replay diverged on $key: '$ref' vs '$res'" >&2
            exit 1
        fi
    done
    echo "journal smoke: replayed the delta journal, bit-identical metrics"

    step "storage: checkpoint/journal code paths never touch std::fs directly"
    if grep -n 'std::fs\|File::' \
        crates/cap-harness/src/checkpoint.rs \
        crates/cap-snapshot/src/journal.rs \
        | grep -vE '^[^:]+:[0-9]+:[[:space:]]*//'; then
        echo "ERROR: a checkpoint/journal code path bypasses the Vfs seam" >&2
        exit 1
    fi
    echo "vfs-seam grep: clean"
}

# The perf-baseline gate: prove the packed hot path still predicts
# bit-identically to the legacy structs, then price it. The baseline
# bench writes BENCH_<git-short-sha>.json at the repo root (tracked, so
# every PR extends the perf trajectory); when a prior baseline exists
# the gate diffs single-predict latency against it and fails on a >10%
# regression of either the packed or the legacy path.
bench_gate() {
    step "bench: packed-vs-legacy differential (release)"
    cargo test -q --offline --release -p cap-predictor --test packed_differential
    cargo test -q --offline --release -p cap-faults --test packed_surface

    step "bench: emit tracked baseline JSON"
    local sha out prev
    sha=$(git rev-parse --short HEAD)
    out="BENCH_${sha}.json"
    prev=$(ls -t BENCH_*.json 2>/dev/null | grep -v "^${out}\$" | head -n 1 || true)

    # Runs the baseline bench, writing $out at the repo root (cargo runs
    # the bench binary from the crate dir, hence the absolute path) and
    # sanity-checking the JSON it emits.
    emit_baseline() {
        CAP_BENCH_BASELINE_OUT="$PWD/$out" \
            cargo bench -q --offline -p cap-bench --bench baseline
        grep -q '"schema": "cap-bench-baseline-v1"' "$out" || {
            echo "ERROR: $out is not a v1 baseline" >&2
            exit 1
        }
        local key
        for key in single_predict_legacy_ns single_predict_packed_ns \
            batch_predict_loads_per_sec journal_append_ns_per_record \
            journal_replay_ns_per_record cluster_direct_p50_ns \
            cluster_direct_p99_ns cluster_router_p50_ns \
            cluster_router_p99_ns p50_ns p99_ns \
            backend_cache_level_ns backend_ldbp_ns backend_pcax_ns; do
            grep -q "\"$key\"" "$out" || {
                echo "ERROR: $out is missing \"$key\"" >&2
                exit 1
            }
        done
        echo "baseline written: $out"
    }

    # Returns nonzero if either single-predict latency regressed >10%
    # vs $prev; prints the comparison either way.
    diff_baseline() {
        local field old new ok=0
        for field in single_predict_packed_ns single_predict_legacy_ns; do
            old=$(sed -n "s/.*\"$field\": \([0-9.]*\).*/\1/p" "$prev")
            new=$(sed -n "s/.*\"$field\": \([0-9.]*\).*/\1/p" "$out")
            if [ -z "$old" ]; then
                echo "  $field: absent from $prev, recorded as $new ns"
                continue
            fi
            printf '  %-26s %s ns -> %s ns\n' "$field" "$old" "$new"
            awk -v n="$new" -v o="$old" 'BEGIN { exit !(n <= o * 1.10) }' || {
                echo "  $field regressed >10% vs $prev"
                ok=1
            }
        done
        return "$ok"
    }

    emit_baseline
    if [ -z "$prev" ]; then
        echo "no prior BENCH_*.json — nothing to diff against"
        return 0
    fi
    if grep -q '"quick": true' "$prev"; then
        echo "prior baseline $prev was a quick-mode smoke — skipping the diff"
        return 0
    fi
    step "bench: diff against $prev (>10% single-predict regression fails)"
    if diff_baseline; then
        echo "perf diff vs $prev: within budget"
        return 0
    fi
    # Per-process page placement can swing a short latency loop well
    # past 10% on a shared box; a real regression reproduces in a fresh
    # process, noise usually doesn't. One retry, then believe the tape.
    step "bench: regression seen — re-running once to rule out machine noise"
    emit_baseline
    if diff_baseline; then
        echo "perf diff vs $prev: within budget on retry (first run was noise)"
        return 0
    fi
    echo "ERROR: single-predict latency regressed >10% vs $prev in two fresh runs" >&2
    exit 1
}

# The backend-catalog gate: the registry in backend.rs is the single
# dispatch point, and every backend it lists is a full citizen — it
# serves, predicts, snapshots, and warm-restarts bit-identically.
backends_gate() {
    step "backends: registry round-trips + per-backend snapshot tests"
    cargo test -q --offline --release -p cap-service backend
    cargo test -q --offline --release -p cap-faults target

    step "backends: the registry is the only match on BackendKind"
    if grep -rn 'match .*BackendKind' crates src examples 2>/dev/null \
        | grep -v '^crates/cap-service/src/backend.rs:'; then
        echo "ERROR: BackendKind matched outside crates/cap-service/src/backend.rs —" >&2
        echo "       adding a backend must stay a one-row registry edit" >&2
        exit 1
    fi
    echo "no BackendKind dispatch outside the registry"

    step "backends: unknown --backend fails fast and lists the catalog"
    local dir="$SMOKE_DIR/backends"
    mkdir -p "$dir"
    if "${SIMULATE[@]}" serve --backend bogus > "$dir/bogus.log" 2>&1; then
        echo "ERROR: serve accepted an unknown backend" >&2
        exit 1
    fi
    grep -q "unknown backend 'bogus'" "$dir/bogus.log" || {
        echo "ERROR: parse failure did not name the bad input" >&2
        cat "$dir/bogus.log" >&2
        exit 1
    }
    grep -q 'valid backends:.*cache-level.*ldbp.*pcax' "$dir/bogus.log" || {
        echo "ERROR: parse failure did not list the registered catalog" >&2
        cat "$dir/bogus.log" >&2
        exit 1
    }

    step "backends: per-backend serve → predict → snapshot → warm restart"
    "${SIMULATE[@]}" gen --out "$dir/trace.txt" --loads 3000

    backend_serve_wait_port() {
        # Starts a server in the background (PID in SERVE_PID, log in
        # $1) and blocks until the port file appears.
        local log="$1"; shift
        rm -f "$dir/port"
        "${SIMULATE[@]}" serve --addr 127.0.0.1:0 --port-file "$dir/port" \
            --workers 2 --snapshot-dir "$dir/snapshots" "$@" \
            > "$log" 2>&1 &
        SERVE_PID=$!
        for _ in $(seq 1 100); do
            [ -s "$dir/port" ] && return 0
            if ! kill -0 "$SERVE_PID" 2>/dev/null; then
                echo "ERROR: server died before publishing its port" >&2
                cat "$log" >&2
                exit 1
            fi
            sleep 0.1
        done
        echo "ERROR: server never published its port" >&2
        exit 1
    }

    local b count=0
    for b in $("${SIMULATE[@]}" backends); do
        rm -rf "$dir/snapshots"
        backend_serve_wait_port "$dir/serve-$b-1.log" --backend "$b"
        ADDR="127.0.0.1:$(cat "$dir/port")"
        "${SIMULATE[@]}" client --addr "$ADDR" --trace "$dir/trace.txt" \
            --take 1500 --json > "$dir/replay-$b.json"
        grep -q '"errors": 0' "$dir/replay-$b.json" || {
            echo "ERROR: [$b] replay saw structured errors" >&2
            exit 1
        }
        "${SIMULATE[@]}" client --addr "$ADDR" --stats > "$dir/stats-$b-before.json"
        "${SIMULATE[@]}" client --addr "$ADDR" --shutdown 500
        wait "$SERVE_PID" || {
            echo "ERROR: [$b] server exited nonzero on graceful shutdown" >&2
            cat "$dir/serve-$b-1.log" >&2
            exit 1
        }
        ls "$dir/snapshots"/ckpt-*.capsnap >/dev/null || {
            echo "ERROR: [$b] shutdown published no snapshot" >&2
            exit 1
        }

        backend_serve_wait_port "$dir/serve-$b-2.log" --backend "$b" --resume
        ADDR="127.0.0.1:$(cat "$dir/port")"
        grep -q 'warm restart from ' "$dir/serve-$b-2.log" || {
            echo "ERROR: [$b] restarted server did not warm-restart" >&2
            cat "$dir/serve-$b-2.log" >&2
            exit 1
        }
        "${SIMULATE[@]}" client --addr "$ADDR" --stats > "$dir/stats-$b-after.json"
        for key in loads predictions correct_predictions prediction_rate_bits accuracy_bits; do
            ref=$(grep "\"$key\"" "$dir/stats-$b-before.json")
            res=$(grep "\"$key\"" "$dir/stats-$b-after.json")
            if [ -z "$ref" ] || [ "$ref" != "$res" ]; then
                echo "ERROR: [$b] warm restart diverged on $key: '$ref' vs '$res'" >&2
                exit 1
            fi
        done
        "${SIMULATE[@]}" client --addr "$ADDR" --shutdown 500
        wait "$SERVE_PID" || {
            echo "ERROR: [$b] restarted server exited nonzero on shutdown" >&2
            exit 1
        }
        count=$((count + 1))
        echo "backend smoke [$b]: served, drained, warm restart bit-identical"
    done
    if [ "$count" -lt 7 ]; then
        echo "ERROR: expected at least 7 registered backends, smoked $count" >&2
        exit 1
    fi
    echo "backend smoke: $count backends selectable end-to-end"
}

if [ "$GATE" = "all" ]; then
    core_gates
fi
if [ "$GATE" = "all" ] || [ "$GATE" = "service" ]; then
    service_gate
fi
if [ "$GATE" = "all" ] || [ "$GATE" = "obs" ]; then
    obs_gate
fi
if [ "$GATE" = "all" ] || [ "$GATE" = "cluster" ]; then
    cluster_gate
fi
if [ "$GATE" = "all" ] || [ "$GATE" = "netchaos" ]; then
    netchaos_gate
fi
if [ "$GATE" = "all" ] || [ "$GATE" = "storage" ]; then
    storage_gate
fi
if [ "$GATE" = "all" ] || [ "$GATE" = "bench" ]; then
    bench_gate
fi
if [ "$GATE" = "all" ] || [ "$GATE" = "backends" ]; then
    backends_gate
fi

echo
echo "verify: all green"
