#!/usr/bin/env bash
# Hermetic verification: the workspace must build, test, and run its
# quickstart with zero registry access. Any failure exits nonzero.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "tier-1 build (release, offline)"
cargo build --release --offline

step "compile every target (tests, benches, examples) offline"
cargo check --offline --workspace --all-targets

step "full test suite (offline)"
cargo test -q --offline --workspace

step "quickstart example"
cargo run -q --release --offline --example quickstart

step "faults: chaos suite + 1k-mutation corruption smoke"
cargo test -q --offline -p cap-faults
cargo run -q --release --offline -p cap-faults --example corruption_smoke

step "clippy (all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

step "snapshot: crate tests + scripted kill-and-resume smoke"
cargo test -q --offline -p cap-snapshot
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
SIMULATE=(cargo run -q --release --offline -p cap-harness --bin simulate --)
"${SIMULATE[@]}" gen --out "$SMOKE_DIR/trace.txt" --loads 8000
"${SIMULATE[@]}" run --trace "$SMOKE_DIR/trace.txt" --json \
    > "$SMOKE_DIR/reference.json"
KILLED_STATUS=0
"${SIMULATE[@]}" run --trace "$SMOKE_DIR/trace.txt" \
    --checkpoint-dir "$SMOKE_DIR/ckpts" --checkpoint-every 1000 \
    --kill-after 6000 || KILLED_STATUS=$?
if [ "$KILLED_STATUS" -ne 137 ]; then
    echo "ERROR: --kill-after must exit 137, got $KILLED_STATUS" >&2
    exit 1
fi
"${SIMULATE[@]}" run --trace "$SMOKE_DIR/trace.txt" \
    --checkpoint-dir "$SMOKE_DIR/ckpts" --checkpoint-every 1000 \
    --resume auto --json > "$SMOKE_DIR/resumed.json"
grep -q '"resumed_from": "' "$SMOKE_DIR/resumed.json" || {
    echo "ERROR: resumed run did not recover a checkpoint" >&2
    exit 1
}
for key in loads predictions correct_predictions prediction_rate_bits; do
    ref=$(grep "\"$key\"" "$SMOKE_DIR/reference.json")
    res=$(grep "\"$key\"" "$SMOKE_DIR/resumed.json")
    if [ "$ref" != "$res" ]; then
        echo "ERROR: kill-and-resume diverged on $key: '$ref' vs '$res'" >&2
        exit 1
    fi
done
echo "kill-and-resume smoke: bit-identical metrics after resume"

step "hermeticity: no external crates in any manifest"
if grep -rn 'rand\|proptest\|criterion' Cargo.toml crates/*/Cargo.toml | grep -v 'cap-rand'; then
    echo "ERROR: external dependency reference found in a manifest" >&2
    exit 1
fi

echo
echo "verify: all green"
