//! # cap-repro — reproduction of *Correlated Load-Address Predictors* (ISCA 1999)
//!
//! An umbrella crate re-exporting the reproduction's four libraries:
//!
//! * [`cap_trace`] — synthetic trace infrastructure (45 traces / 8 suites);
//! * [`cap_predictor`] — CAP, enhanced stride, hybrid, and baselines;
//! * [`cap_uarch`] — caches, branch prediction, and the OoO timing core;
//! * [`cap_harness`] — the per-figure experiment harness.
//!
//! See the `examples/` directory for runnable walkthroughs and the
//! `repro` binary (`cargo run --release -p cap-harness --bin repro -- all`)
//! for the full table/figure regeneration.
//!
//! ```
//! use cap_repro::prelude::*;
//!
//! let trace = Suite::Int.traces()[0].generate(10_000);
//! let mut predictor = HybridPredictor::new(HybridConfig::paper_default());
//! let stats = Session::new(&mut predictor).run(&trace);
//! assert!(stats.prediction_rate() > 0.3);
//! ```

#![warn(missing_docs)]

pub use cap_harness;
pub use cap_predictor;
pub use cap_trace;
pub use cap_uarch;

/// One-stop prelude for examples and downstream experimentation.
pub mod prelude {
    pub use cap_harness::runner::{PredictorFactory, Scale};
    pub use cap_predictor::prelude::*;
    pub use cap_trace::prelude::*;
    pub use cap_trace::suites::Suite;
    pub use cap_uarch::prelude::*;
}
