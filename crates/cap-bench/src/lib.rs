//! Criterion benches for the CAP reproduction.
//!
//! Each bench target regenerates one of the paper's figures at
//! [`cap_harness::runner::Scale::bench`] scale; the library itself only
//! hosts shared helpers.

#![warn(missing_docs)]

use cap_harness::runner::Scale;

/// The scale all benches run at.
#[must_use]
pub fn bench_scale() -> Scale {
    Scale::bench()
}

/// A smaller scale for the timing-simulator benches (fig7/fig12), which
/// cost ~10x a predictor-only sweep per load.
#[must_use]
pub fn bench_scale_timing() -> Scale {
    Scale {
        loads_per_trace: 8_000,
        traces_per_suite: Some(1),
    }
}
