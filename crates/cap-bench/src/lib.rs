//! Zero-dependency benches for the CAP reproduction.
//!
//! Each bench target regenerates one of the paper's figures at
//! [`cap_harness::runner::Scale::bench`] scale. Timing is done by the
//! in-repo [`bench_kit`] wall-clock runner (criterion cannot be fetched
//! in the offline build); the library itself only hosts shared helpers.
//!
//! Run everything with `cargo bench --offline`, one figure with e.g.
//! `cargo bench --offline --bench fig5_predictors`. Environment knobs:
//!
//! * `CAP_BENCH_SAMPLES=n` — timed iterations per benchmark (default 10);
//! * `CAP_BENCH_QUICK=1` — one iteration, no warmup (smoke mode).

#![warn(missing_docs)]

use cap_harness::runner::Scale;

pub mod bench_kit;

/// The scale all benches run at.
#[must_use]
pub fn bench_scale() -> Scale {
    Scale::bench()
}

/// A smaller scale for the timing-simulator benches (fig7/fig12), which
/// cost ~10x a predictor-only sweep per load.
#[must_use]
pub fn bench_scale_timing() -> Scale {
    Scale {
        loads_per_trace: 8_000,
        traces_per_suite: Some(1),
    }
}
