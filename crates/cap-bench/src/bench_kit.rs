//! A tiny wall-clock bench runner with a criterion-shaped surface.
//!
//! The offline build cannot fetch criterion, and these benches never
//! needed its statistical machinery: every figure sweep is a
//! deterministic pure function of its scale, so min/mean/max over a
//! handful of iterations is exactly the signal we want. The API mirrors
//! the criterion subset the bench files already used
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`]) so the per-figure entry points read unchanged.
//!
//! # Examples
//!
//! ```
//! use cap_bench::bench_kit::Criterion;
//!
//! fn bench(c: &mut Criterion) {
//!     let mut group = c.benchmark_group("demo");
//!     group.sample_size(3);
//!     group.bench_function("sum", |b| b.iter(|| (0u64..1000).sum::<u64>()));
//!     group.finish();
//! }
//!
//! let mut c = Criterion::quick();
//! bench(&mut c);
//! assert_eq!(c.results().len(), 1);
//! ```

use std::time::{Duration, Instant};

/// One benchmark's timing summary.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/name` identifier.
    pub id: String,
    /// Per-iteration wall-clock samples, in collection order.
    pub samples: Vec<Duration>,
}

impl BenchResult {
    /// Fastest sample.
    #[must_use]
    pub fn min(&self) -> Duration {
        self.samples.iter().copied().min().unwrap_or_default()
    }

    /// Slowest sample.
    #[must_use]
    pub fn max(&self) -> Duration {
        self.samples.iter().copied().max().unwrap_or_default()
    }

    /// Arithmetic mean of the samples.
    #[must_use]
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

/// Top-level bench context: collects results, prints a summary.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    /// Set from `CAP_BENCH_SAMPLES`; beats per-group `sample_size()`
    /// calls so the env knob works on benches that hardcode a count.
    sample_override: Option<usize>,
    quick: bool,
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Builds a context from the process arguments and environment.
    ///
    /// `cargo bench` passes `--bench`; anything else (or
    /// `CAP_BENCH_QUICK=1`) selects quick mode: one iteration, no
    /// warmup, so bench binaries double as smoke tests.
    /// `CAP_BENCH_SAMPLES` overrides the sample count — including any
    /// `sample_size()` the bench source hardcodes.
    #[must_use]
    pub fn from_args() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        let quick_env = std::env::var("CAP_BENCH_QUICK").is_ok_and(|v| v != "0");
        let sample_override = std::env::var("CAP_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .map(|n: usize| n.max(1));
        Self {
            sample_size: sample_override.unwrap_or(10),
            sample_override,
            quick: !bench_mode || quick_env,
            results: Vec::new(),
        }
    }

    /// A context pinned to quick mode (one iteration per benchmark),
    /// regardless of arguments. Used by tests and doctests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            sample_size: 1,
            sample_override: None,
            quick: true,
            results: Vec::new(),
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// All results collected so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the final per-benchmark table.
    pub fn summary(&self) {
        if self.results.is_empty() {
            return;
        }
        println!("-- bench summary ({} benchmarks) --", self.results.len());
        for r in &self.results {
            println!(
                "  {:<44} mean {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
                r.id,
                r.mean(),
                r.min(),
                r.max(),
                r.samples.len()
            );
        }
    }
}

/// A named group of benchmarks sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Times one benchmark: `routine` receives a [`Bencher`] and must
    /// call [`Bencher::iter`] with the workload closure.
    pub fn bench_function(&mut self, name: &str, mut routine: impl FnMut(&mut Bencher)) {
        let samples = if self.criterion.quick {
            1
        } else {
            self.criterion
                .sample_override
                .or(self.sample_size)
                .unwrap_or(self.criterion.sample_size)
        };
        let mut bencher = Bencher {
            samples,
            warmup: !self.criterion.quick,
            collected: Vec::new(),
        };
        routine(&mut bencher);
        let result = BenchResult {
            id: format!("{}/{}", self.name, name),
            samples: bencher.collected,
        };
        println!(
            "{:<46} mean {:>12?}  min {:>12?}  ({} samples)",
            result.id,
            result.mean(),
            result.min(),
            result.samples.len()
        );
        self.criterion.results.push(result);
    }

    /// Ends the group (kept for criterion-API parity; results are
    /// recorded eagerly by [`Self::bench_function`]).
    pub fn finish(self) {}
}

/// Runs and times the workload closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    warmup: bool,
    collected: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over the configured number of iterations (plus one
    /// untimed warmup outside quick mode) and records each sample.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        if self.warmup {
            std::hint::black_box(f());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            self.collected.push(start.elapsed());
        }
    }
}

/// Generates `fn main()` for a bench target: runs each registered
/// function against a shared [`Criterion`], then prints the summary.
///
/// The replacement for `criterion_group!` + `criterion_main!`.
#[macro_export]
macro_rules! bench_main {
    ($($func:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::bench_kit::Criterion::from_args();
            $($func(&mut criterion);)+
            criterion.summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_exactly_one_sample() {
        let mut c = Criterion::quick();
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(50);
        group.bench_function("counted", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].samples.len(), 1);
        assert_eq!(c.results()[0].id, "g/counted");
    }

    #[test]
    fn sample_size_controls_iterations_outside_quick_mode() {
        let mut c = Criterion {
            sample_size: 10,
            sample_override: None,
            quick: false,
            results: Vec::new(),
        };
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        group.bench_function("counted", |b| b.iter(|| runs += 1));
        group.finish();
        // 4 timed + 1 warmup.
        assert_eq!(runs, 5);
        assert_eq!(c.results()[0].samples.len(), 4);
    }

    #[test]
    fn env_override_beats_group_sample_size() {
        let mut c = Criterion {
            sample_size: 2,
            sample_override: Some(2),
            quick: false,
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(50);
        group.bench_function("counted", |b| b.iter(|| ()));
        group.finish();
        assert_eq!(c.results()[0].samples.len(), 2);
    }

    #[test]
    fn stats_are_ordered() {
        let r = BenchResult {
            id: "x".into(),
            samples: vec![
                Duration::from_micros(30),
                Duration::from_micros(10),
                Duration::from_micros(20),
            ],
        };
        assert_eq!(r.min(), Duration::from_micros(10));
        assert_eq!(r.max(), Duration::from_micros(30));
        assert_eq!(r.mean(), Duration::from_micros(20));
        assert!(r.min() <= r.mean() && r.mean() <= r.max());
    }

    #[test]
    fn empty_result_is_zero() {
        let r = BenchResult {
            id: "empty".into(),
            samples: Vec::new(),
        };
        assert_eq!(r.mean(), Duration::ZERO);
        assert_eq!(r.min(), Duration::ZERO);
        assert_eq!(r.max(), Duration::ZERO);
    }
}
