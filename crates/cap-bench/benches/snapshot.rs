//! Bench: snapshot encode/decode throughput and checkpoint overhead.
//!
//! Checkpointing only earns its keep if publishing a snapshot is cheap
//! next to the simulation it protects. Three measurements keep that
//! honest: (1) encoding a warmed paper-default hybrid (full LB + LT
//! tables) to archive bytes, (2) decoding it back — the CRC-verified,
//! invariant-checked path every resume takes, and (3) a supervised run
//! with checkpoints every 2 000 events against the same run with
//! checkpointing off, which prices the end-to-end overhead including the
//! atomic write + fsync + rotate.

use cap_bench::bench_kit::Criterion;
use cap_harness::supervisor::{run, PredictorKind, SupervisorConfig};
use cap_predictor::drive::Session;
use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
use cap_predictor::metrics::PredictorStats;
use cap_snapshot::{
    encode_journal_header, encode_journal_record, JournalReplay, SectionReader, SectionWriter,
    SnapshotArchive, SnapshotBuilder,
};
use cap_trace::io::{event_line, parse_event_line, write_trace};
use cap_trace::suites::catalog;
use cap_trace::TraceEvent;
use std::hint::black_box;

fn archive_of(p: &HybridPredictor, stats: &PredictorStats) -> Vec<u8> {
    let mut b = SnapshotBuilder::new();
    b.add("predictor", p);
    b.add("stats", stats);
    b.finish()
}

/// Mirrors the supervisor's journal record: cursor position + the
/// canonical event line, CRC-framed.
fn journal_record(events: u64, event: &TraceEvent) -> Vec<u8> {
    let mut w = SectionWriter::new();
    w.put_u64(events * 40); // representative byte offset
    w.put_u64(events);
    w.put_u64(events);
    let line = event_line(event);
    w.put_len(line.len());
    w.put_raw(line.as_bytes());
    encode_journal_record(&w.into_bytes())
}

/// Builds a whole journal (header + one record per event) in memory.
fn journal_of(events: &[TraceEvent]) -> Vec<u8> {
    let mut bytes = encode_journal_header(0);
    for (i, event) in events.iter().enumerate() {
        bytes.extend_from_slice(&journal_record(i as u64 + 1, event));
    }
    bytes
}

fn bench(c: &mut Criterion) {
    let trace = catalog()[0].generate(20_000);
    let mut warmed = HybridPredictor::new(HybridConfig::paper_default());
    let stats = Session::new(&mut warmed).run(&trace);
    let bytes = archive_of(&warmed, &stats);
    println!("warmed hybrid archive: {} bytes", bytes.len());

    let mut group = c.benchmark_group("snapshot");
    group.sample_size(10);

    group.bench_function("encode_warmed_hybrid", |b| {
        b.iter(|| archive_of(&warmed, &stats));
    });

    group.bench_function("decode_warmed_hybrid", |b| {
        b.iter(|| {
            let archive = SnapshotArchive::parse(&bytes).expect("pristine bytes parse");
            archive
                .restore::<HybridPredictor>("predictor")
                .expect("pristine bytes restore")
        });
    });

    // The delta journal's codec, disk-free: appending (render + frame +
    // CRC) and replaying (frame walk + CRC check + parse back to an
    // event) per record. These are the per-event costs a tighter
    // journal flush interval buys its loss bound with.
    let events: Vec<TraceEvent> = trace.iter().take(4_096).copied().collect();
    let journal = journal_of(&events);
    println!(
        "journal: {} records, {} bytes",
        events.len(),
        journal.len()
    );

    group.bench_function("journal_append_4k_records", |b| {
        b.iter(|| black_box(journal_of(&events).len()));
    });

    group.bench_function("journal_replay_4k_records", |b| {
        b.iter(|| {
            let replay = JournalReplay::parse(&journal).expect("pristine journal parses");
            assert!(replay.torn.is_none());
            let mut replayed = 0u64;
            for payload in &replay.records {
                let mut r = SectionReader::new(payload, "journal");
                let _ = r.take_u64("byte offset").expect("offset");
                let line = r.take_u64("line").expect("line");
                let _ = r.take_u64("events").expect("events");
                let n = r.take_len(1, "line length").expect("len");
                let raw = r.take_raw(n, "line").expect("raw");
                let text = std::str::from_utf8(raw).expect("utf8");
                black_box(parse_event_line(text, line as usize).expect("parses"));
                replayed += 1;
            }
            replayed
        });
    });

    // End-to-end checkpoint overhead: same supervised run, with and
    // without checkpoint publication (atomic write + fsync + rotation).
    let dir = std::env::temp_dir().join(format!("cap-bench-snapshot-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let trace_path = dir.join("trace.txt");
    {
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("serialize");
        std::fs::write(&trace_path, buf).expect("write trace file");
    }

    group.bench_function("supervised_run_no_checkpoints", |b| {
        b.iter(|| run(&SupervisorConfig::new(&trace_path, PredictorKind::Hybrid)).expect("runs"));
    });

    group.bench_function("supervised_run_checkpoint_every_2k", |b| {
        let ckpt_dir = dir.join("ckpts");
        let mut cfg = SupervisorConfig::new(&trace_path, PredictorKind::Hybrid);
        cfg.checkpoint_dir = Some(ckpt_dir);
        cfg.checkpoint_every = 2_000;
        b.iter(|| run(&cfg).expect("runs"));
    });

    // The same run with the delta journal on: what bounding the loss to
    // 256 events (instead of the 2k checkpoint interval) costs, append
    // + fsync included.
    group.bench_function("supervised_run_ckpt_2k_journal_256", |b| {
        let ckpt_dir = dir.join("ckpts-journal");
        let mut cfg = SupervisorConfig::new(&trace_path, PredictorKind::Hybrid);
        cfg.checkpoint_dir = Some(ckpt_dir);
        cfg.checkpoint_every = 2_000;
        cfg.journal_flush_every = 256;
        b.iter(|| run(&cfg).expect("runs"));
    });

    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

cap_bench::bench_main!(bench);
