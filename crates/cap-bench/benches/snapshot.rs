//! Bench: snapshot encode/decode throughput and checkpoint overhead.
//!
//! Checkpointing only earns its keep if publishing a snapshot is cheap
//! next to the simulation it protects. Three measurements keep that
//! honest: (1) encoding a warmed paper-default hybrid (full LB + LT
//! tables) to archive bytes, (2) decoding it back — the CRC-verified,
//! invariant-checked path every resume takes, and (3) a supervised run
//! with checkpoints every 2 000 events against the same run with
//! checkpointing off, which prices the end-to-end overhead including the
//! atomic write + fsync + rotate.

use cap_bench::bench_kit::Criterion;
use cap_harness::supervisor::{run, PredictorKind, SupervisorConfig};
use cap_predictor::drive::Session;
use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
use cap_predictor::metrics::PredictorStats;
use cap_snapshot::{SnapshotArchive, SnapshotBuilder};
use cap_trace::io::write_trace;
use cap_trace::suites::catalog;

fn archive_of(p: &HybridPredictor, stats: &PredictorStats) -> Vec<u8> {
    let mut b = SnapshotBuilder::new();
    b.add("predictor", p);
    b.add("stats", stats);
    b.finish()
}

fn bench(c: &mut Criterion) {
    let trace = catalog()[0].generate(20_000);
    let mut warmed = HybridPredictor::new(HybridConfig::paper_default());
    let stats = Session::new(&mut warmed).run(&trace);
    let bytes = archive_of(&warmed, &stats);
    println!("warmed hybrid archive: {} bytes", bytes.len());

    let mut group = c.benchmark_group("snapshot");
    group.sample_size(10);

    group.bench_function("encode_warmed_hybrid", |b| {
        b.iter(|| archive_of(&warmed, &stats));
    });

    group.bench_function("decode_warmed_hybrid", |b| {
        b.iter(|| {
            let archive = SnapshotArchive::parse(&bytes).expect("pristine bytes parse");
            archive
                .restore::<HybridPredictor>("predictor")
                .expect("pristine bytes restore")
        });
    });

    // End-to-end checkpoint overhead: same supervised run, with and
    // without checkpoint publication (atomic write + fsync + rotation).
    let dir = std::env::temp_dir().join(format!("cap-bench-snapshot-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let trace_path = dir.join("trace.txt");
    {
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("serialize");
        std::fs::write(&trace_path, buf).expect("write trace file");
    }

    group.bench_function("supervised_run_no_checkpoints", |b| {
        b.iter(|| run(&SupervisorConfig::new(&trace_path, PredictorKind::Hybrid)).expect("runs"));
    });

    group.bench_function("supervised_run_checkpoint_every_2k", |b| {
        let ckpt_dir = dir.join("ckpts");
        let mut cfg = SupervisorConfig::new(&trace_path, PredictorKind::Hybrid);
        cfg.checkpoint_dir = Some(ckpt_dir);
        cfg.checkpoint_every = 2_000;
        b.iter(|| run(&cfg).expect("runs"));
    });

    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

cap_bench::bench_main!(bench);
