//! Bench: prediction-service throughput and request latency per rung.
//!
//! The degradation ladder only makes sense if each step down actually
//! buys something: stride-only must be cheaper than the full hybrid,
//! and bypass cheaper still. This bench prices every rung with a
//! single-worker service (so routing never spreads the load and the
//! measurement is the rung itself, not the fan-out): requests/second
//! through the in-process handle, plus per-request p50/p99 latency over
//! the same workload. `pin_rung` holds the ladder still so a rung never
//! drifts mid-measurement.

use cap_bench::bench_kit::Criterion;
use cap_service::prelude::*;
use std::time::{Duration, Instant};

/// Requests per timed iteration — enough for stable percentiles,
/// small enough that quick mode stays a smoke test.
const REQUESTS: usize = 5_000;

/// A deterministic workload mixing three access patterns across
/// distinct static loads: a fixed stride, a GHR-correlated alternation,
/// and a pointer-chase-shaped wandering address.
fn request_for(i: usize) -> Request {
    let i = i as u64;
    match i % 3 {
        0 => Request::Observe {
            ip: 0x40_1000,
            offset: 0,
            ghr: 0,
            actual: 0x1000 + i * 8,
        },
        1 => Request::Observe {
            ip: 0x40_2000,
            offset: 1,
            ghr: (i / 3) & 0xF,
            actual: if (i / 3).is_multiple_of(2) { 0x8000 } else { 0x9000 },
        },
        _ => Request::Observe {
            ip: 0x40_3000,
            offset: 2,
            ghr: 0,
            actual: 0x10_0000 + (i.wrapping_mul(0x9E37_79B9) & 0xFFF8),
        },
    }
}

fn pinned_service(rung: Rung) -> Service {
    Service::start(ServiceConfig {
        workers: 1,
        pin_rung: Some(rung),
        ..ServiceConfig::default()
    })
}

/// Drives `REQUESTS` requests, recording each round-trip latency.
fn drive(handle: &ServiceHandle, latencies: &mut Vec<Duration>) {
    latencies.clear();
    for i in 0..REQUESTS {
        let start = Instant::now();
        handle
            .call(request_for(i), None)
            .expect("unpressured pinned service serves every request");
        latencies.push(start.elapsed());
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("service");
    group.sample_size(5);

    for rung in Rung::ALL {
        let service = pinned_service(rung);
        let handle = service.handle();
        let mut latencies = Vec::with_capacity(REQUESTS);

        group.bench_function(&format!("{}_x{}", rung.name(), REQUESTS), |b| {
            b.iter(|| drive(&handle, &mut latencies));
        });

        // Percentiles from the last iteration's per-request samples; the
        // throughput line prices the rung, the tail prices its jitter.
        let total: Duration = latencies.iter().sum();
        latencies.sort_unstable();
        let throughput = REQUESTS as f64 / total.as_secs_f64().max(f64::MIN_POSITIVE);
        println!(
            "  {:<12} {:>10.0} req/s   p50 {:>9?}   p99 {:>9?}   max {:>9?}",
            rung.name(),
            throughput,
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.99),
            latencies.last().copied().unwrap_or_default(),
        );

        let stats = handle.stats().expect("stats");
        assert_eq!(
            stats.workers[0].rung,
            rung,
            "pinned rung must hold for the whole measurement"
        );
        let report = service.shutdown(Duration::from_secs(1));
        assert_eq!(report.drain_rejected, 0);
    }

    group.finish();
}

cap_bench::bench_main!(bench);
