//! Bench: the extension experiments — rejected alternatives (§1 value
//! prediction, §3.3 delta correlation) and future-work features (§6
//! variable history, profile feedback; §1.1 prefetching).

use cap_bench::{bench_scale, bench_scale_timing};
use cap_harness::experiments::ext;
use cap_bench::bench_kit::Criterion;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let timing = bench_scale_timing();
    let mut group = c.benchmark_group("ext_features");
    group.sample_size(10);
    group.bench_function("delta_correlation", |b| {
        b.iter(|| ext::delta_correlation(&scale));
    });
    group.bench_function("variable_history", |b| {
        b.iter(|| ext::variable_history(&scale));
    });
    group.bench_function("profile_guided", |b| {
        b.iter(|| ext::profile_guided(&scale));
    });
    group.bench_function("value_vs_address", |b| {
        b.iter(|| ext::value_vs_address(&scale));
    });
    group.bench_function("prefetch", |b| {
        b.iter(|| ext::prefetch(&timing));
    });
    group.bench_function("wrong_path", |b| {
        b.iter(|| ext::wrong_path(&scale));
    });
    group.finish();

    for report in [
        ext::delta_correlation(&scale).1,
        ext::variable_history(&scale).1,
        ext::profile_guided(&scale).1,
        ext::value_vs_address(&scale).1,
        ext::prefetch(&timing).1,
        ext::wrong_path(&scale).1,
    ] {
        println!("{report}");
    }
}

cap_bench::bench_main!(bench);
