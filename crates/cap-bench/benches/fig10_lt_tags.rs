//! Bench: regenerate Figure 10 (Link-Table tag / path-indication
//! ablation) at bench scale.

use cap_bench::bench_scale;
use cap_harness::experiments::fig10;
use cap_bench::bench_kit::Criterion;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("lt_tag_ablation", |b| {
        b.iter(|| fig10::run(&scale));
    });
    group.finish();

    let (_, report) = fig10::run(&scale);
    println!("{report}");
}

cap_bench::bench_main!(bench);
