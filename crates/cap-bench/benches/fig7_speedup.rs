//! Bench: regenerate Figure 7 (per-trace speedup over no address
//! prediction) at timing-bench scale.

use cap_bench::bench_scale_timing;
use cap_harness::experiments::fig7;
use cap_bench::bench_kit::Criterion;

fn bench(c: &mut Criterion) {
    let scale = bench_scale_timing();
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("speedup_sweep", |b| {
        b.iter(|| fig7::run(&scale));
    });
    group.finish();

    let (_, report) = fig7::run(&scale);
    println!("{report}");
}

cap_bench::bench_main!(bench);
