//! Bench: regenerate Figure 12 (per-suite speedups under a prediction
//! gap of 8 cycles) at timing-bench scale.

use cap_bench::bench_scale_timing;
use cap_harness::experiments::fig12;
use cap_bench::bench_kit::Criterion;

fn bench(c: &mut Criterion) {
    let scale = bench_scale_timing();
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    group.bench_function("gapped_speedup_sweep", |b| {
        b.iter(|| fig12::run(&scale));
    });
    group.finish();

    let (_, report) = fig12::run(&scale);
    println!("{report}");
}

cap_bench::bench_main!(bench);
