//! Bench: regenerate Figure 11 (prediction rate and accuracy vs
//! prediction gap) at bench scale.

use cap_bench::bench_scale;
use cap_harness::experiments::fig11;
use cap_bench::bench_kit::Criterion;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.bench_function("gap_sweep", |b| {
        b.iter(|| fig11::run(&scale));
    });
    group.finish();

    let (_, report) = fig11::run(&scale);
    println!("{report}");
}

cap_bench::bench_main!(bench);
