//! Bench: the tracked performance baseline for the packed hot path.
//!
//! Unlike the figure benches, this target is a *gate input*: it prices
//! the numbers the packed-table and cluster work are accountable for —
//! single-predict latency (legacy vs packed), `predict_batch`
//! throughput, per-rung service request latency on the packed
//! backend, and the router-hop overhead (the same node served directly
//! vs through the cluster front door) — and, when
//! `CAP_BENCH_BASELINE_OUT` names a file, writes them as
//! machine-readable JSON. `scripts/verify.sh bench` snapshots
//! that JSON as `BENCH_<git-short-sha>.json` and diffs it against the
//! previous baseline, failing the gate on a >10% single-predict
//! regression.
//!
//! The JSON schema (`cap-bench-baseline-v1`) is flat on purpose: a
//! handful of scalar fields a shell script can pull out with grep/sed,
//! no arrays that need a real parser.

use cap_bench::bench_kit::Criterion;
use cap_cluster::prelude::{LocalNode, Router, RouterConfig};
use cap_predictor::drive::ControlState;
use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
use cap_predictor::packed::PackedHybridPredictor;
use cap_predictor::types::{AddressPredictor, LoadContext};
use cap_service::prelude::*;
use cap_snapshot::{
    encode_journal_header, encode_journal_record, JournalReplay, SectionReader, SectionWriter,
};
use cap_trace::io::{event_line, parse_event_line};
use cap_trace::suites::catalog;
use cap_trace::TraceEvent;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Loads per timed iteration of the predictor-level benches.
const LOADS: usize = 4_000;

/// Requests per timed iteration of the service benches — enough for
/// stable percentiles, small enough that quick mode stays a smoke test.
const REQUESTS: usize = 5_000;

/// The service fast path collects at most this many predicts per batch;
/// the batch bench uses the same width so its number prices the real
/// drain, not an idealised one.
const BATCH: usize = 32;

/// Repeats of the whole workload inside one timed sample. A single
/// 4k-load pass is ~100-200µs — short enough that a scheduler blip can
/// shift the minimum by tens of percent, which would flake the 10%
/// regression gate. Eight passes per sample keeps each timed region in
/// the low milliseconds.
const REPS: usize = 8;

/// Replays the first catalog trace into `(context, actual address)`
/// pairs under the immediate model — the same deterministic workload
/// for every contender.
fn workload() -> Vec<(LoadContext, u64)> {
    let trace = catalog()[0].generate(LOADS);
    let mut control = ControlState::default();
    let mut loads = Vec::with_capacity(LOADS);
    for event in trace.iter() {
        match event {
            TraceEvent::Load(load) => loads.push((
                LoadContext {
                    ip: load.ip,
                    offset: load.offset,
                    ghr: control.ghr,
                    path: control.path,
                    pending: 0,
                },
                load.addr,
            )),
            TraceEvent::Branch(b) => control.on_branch(b.ip, b.taken, b.kind),
            TraceEvent::Store(_) | TraceEvent::Op(_) => {}
        }
    }
    loads
}

/// Drives predict+update over the whole workload so the timed predicts
/// run against live, populated tables.
fn warm(p: &mut dyn AddressPredictor, loads: &[(LoadContext, u64)]) {
    for (ctx, addr) in loads {
        let pred = p.predict(ctx);
        p.update(ctx, *addr, &pred);
    }
}

/// Minimum observed cost of one operation, from a recorded bench id.
fn ns_per_op(c: &Criterion, id: &str, ops: usize) -> f64 {
    let result = c
        .results()
        .iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("bench {id} did not run"));
    result.min().as_nanos() as f64 / ops as f64
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Times the predictor-level contenders: scalar predict on the legacy
/// and packed hybrids, and the 32-wide `predict_batch` drain.
fn bench_predict(c: &mut Criterion, loads: &[(LoadContext, u64)]) {
    let ctxs: Vec<LoadContext> = loads.iter().map(|(ctx, _)| *ctx).collect();
    let mut group = c.benchmark_group("baseline");
    group.sample_size(20);

    let mut legacy = HybridPredictor::new(HybridConfig::paper_default());
    warm(&mut legacy, loads);
    group.bench_function("single_predict_legacy", |b| {
        b.iter(|| {
            for _ in 0..REPS {
                for ctx in &ctxs {
                    black_box(legacy.predict(ctx));
                }
            }
        });
    });

    let mut packed = PackedHybridPredictor::new(HybridConfig::paper_default());
    warm(&mut packed, loads);
    group.bench_function("single_predict_packed", |b| {
        b.iter(|| {
            for _ in 0..REPS {
                for ctx in &ctxs {
                    black_box(packed.predict(ctx));
                }
            }
        });
    });

    let mut batched = PackedHybridPredictor::new(HybridConfig::paper_default());
    warm(&mut batched, loads);
    let mut out = Vec::with_capacity(BATCH);
    group.bench_function("batch_predict_packed", |b| {
        b.iter(|| {
            for _ in 0..REPS {
                for chunk in ctxs.chunks(BATCH) {
                    batched.predict_batch(chunk, &mut out);
                    black_box(out.len());
                }
            }
        });
    });

    group.finish();
}

/// Passes per timed sample of the per-backend catalog bench — smaller
/// than [`REPS`] because seven backends share the group and only a
/// coarse per-row number is tracked, not a regression-gated delta.
const BACKEND_REPS: usize = 2;

/// Times one scalar predict pass over warm tables for every backend in
/// [`BACKEND_REGISTRY`] — registry-driven, so a new backend gets its
/// tracked `BENCH_*.json` row the moment its row lands.
fn bench_backends(c: &mut Criterion, loads: &[(LoadContext, u64)]) {
    let ctxs: Vec<LoadContext> = loads.iter().map(|(ctx, _)| *ctx).collect();
    let mut group = c.benchmark_group("baseline-backends");
    group.sample_size(10);
    for d in BACKEND_REGISTRY {
        let mut p = (d.build)();
        for (ctx, addr) in loads {
            let pred = p.predict(ctx);
            p.update(ctx, *addr, &pred);
        }
        group.bench_function(&format!("single_predict_{}", d.name), |b| {
            b.iter(|| {
                for _ in 0..BACKEND_REPS {
                    for ctx in &ctxs {
                        black_box(p.predict(ctx));
                    }
                }
            });
        });
    }
    group.finish();
}

/// Records per timed iteration of the journal codec benches.
const JOURNAL_RECORDS: usize = 4_096;

/// Prices the delta journal's codec, disk-free: append (render the
/// event line, wrap it in a CRC frame) and replay (frame walk, CRC
/// check, parse back to an event) per record. The storage gate tracks
/// these because the journal sits on the supervisor's per-event path.
fn bench_journal(c: &mut Criterion) -> usize {
    let trace = catalog()[0].generate(JOURNAL_RECORDS);
    let events: Vec<TraceEvent> = trace.iter().take(JOURNAL_RECORDS).copied().collect();
    let encode_one = |i: u64, event: &TraceEvent| {
        let mut w = SectionWriter::new();
        w.put_u64(i * 40);
        w.put_u64(i);
        w.put_u64(i);
        let line = event_line(event);
        w.put_len(line.len());
        w.put_raw(line.as_bytes());
        encode_journal_record(&w.into_bytes())
    };
    let mut journal = encode_journal_header(0);
    for (i, event) in events.iter().enumerate() {
        journal.extend_from_slice(&encode_one(i as u64 + 1, event));
    }

    let mut group = c.benchmark_group("baseline-journal");
    group.sample_size(20);

    group.bench_function("journal_append", |b| {
        b.iter(|| {
            let mut bytes = encode_journal_header(0);
            for (i, event) in events.iter().enumerate() {
                bytes.extend_from_slice(&encode_one(i as u64 + 1, event));
            }
            black_box(bytes.len())
        });
    });

    group.bench_function("journal_replay", |b| {
        b.iter(|| {
            let replay = JournalReplay::parse(&journal).expect("pristine journal parses");
            let mut replayed = 0u64;
            for payload in &replay.records {
                let mut r = SectionReader::new(payload, "journal");
                let _ = r.take_u64("byte offset").expect("offset");
                let line = r.take_u64("line").expect("line");
                let _ = r.take_u64("events").expect("events");
                let n = r.take_len(1, "line length").expect("len");
                let raw = r.take_raw(n, "line").expect("raw");
                let text = std::str::from_utf8(raw).expect("utf8");
                black_box(parse_event_line(text, line as usize).expect("parses"));
                replayed += 1;
            }
            replayed
        });
    });

    group.finish();
    events.len()
}

/// Prices every ladder rung on the packed backend: a single-worker
/// pinned service (so routing never spreads the load), warmed with
/// observes, then timed over predict-only round-trips. Returns
/// `(rung name, p50, p99)` per rung from the last iteration's samples.
fn bench_service(c: &mut Criterion) -> Vec<(&'static str, Duration, Duration)> {
    let mut group = c.benchmark_group("baseline-service");
    group.sample_size(5);
    let mut tails = Vec::new();

    for rung in Rung::ALL {
        let service = Service::start(ServiceConfig {
            workers: 1,
            pin_rung: Some(rung),
            primary: BackendKind::PackedHybrid,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        for i in 0..1_000u64 {
            handle
                .call(
                    Request::Observe {
                        ip: 0x40_1000,
                        offset: 0,
                        ghr: 0,
                        actual: 0x1000 + i * 8,
                    },
                    None,
                )
                .expect("unpressured pinned service serves every request");
        }

        let mut latencies = Vec::with_capacity(REQUESTS);
        group.bench_function(&format!("predict_{}", rung.name()), |b| {
            b.iter(|| {
                latencies.clear();
                for _ in 0..REQUESTS {
                    let start = Instant::now();
                    handle
                        .call(
                            Request::Predict {
                                ip: 0x40_1000,
                                offset: 0,
                                ghr: 0,
                            },
                            None,
                        )
                        .expect("unpressured pinned service serves every request");
                    latencies.push(start.elapsed());
                }
            });
        });

        latencies.sort_unstable();
        let p50 = percentile(&latencies, 0.50);
        let p99 = percentile(&latencies, 0.99);
        println!(
            "  {:<12} p50 {:>9?}   p99 {:>9?}   max {:>9?}",
            rung.name(),
            p50,
            p99,
            latencies.last().copied().unwrap_or_default(),
        );
        tails.push((rung.name(), p50, p99));

        let report = service.shutdown(Duration::from_secs(1));
        assert_eq!(report.drain_rejected, 0);
    }

    group.finish();
    tails
}

/// Prices the router hop: one pinned single-worker node answering
/// predict round-trips over its own socket, then the identical calls
/// through the cluster front door (hash lookup + breaker permit +
/// forwarded frame). The delta between the two tails is what a fleet
/// pays per request for routing. Returns `(direct, via-router)` as
/// `(p50, p99)` pairs.
fn bench_cluster(c: &mut Criterion) -> [(Duration, Duration); 2] {
    let mut group = c.benchmark_group("baseline-cluster");
    group.sample_size(5);

    let node = LocalNode::start(ServiceConfig {
        workers: 1,
        pin_rung: Some(Rung::Hybrid),
        primary: BackendKind::PackedHybrid,
        ..ServiceConfig::default()
    })
    .expect("start bench node");
    let mut direct = TcpClient::connect(node.addr()).expect("connect to bench node");
    for i in 0..1_000u64 {
        let reply = direct
            .serve(
                Request::Observe {
                    ip: 0x40_1000,
                    offset: 0,
                    ghr: 0,
                    actual: 0x1000 + i * 8,
                },
                None,
            )
            .expect("unpressured node serves every warmup observe");
        assert!(matches!(reply, WireResponse::Response(_)));
    }

    let predict = Request::Predict {
        ip: 0x40_1000,
        offset: 0,
        ghr: 0,
    };
    let mut latencies = Vec::with_capacity(REQUESTS);
    group.bench_function("predict_direct", |b| {
        b.iter(|| {
            latencies.clear();
            for _ in 0..REQUESTS {
                let start = Instant::now();
                black_box(direct.serve(predict, None).expect("direct predict"));
                latencies.push(start.elapsed());
            }
        });
    });
    latencies.sort_unstable();
    let direct_tail = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));

    let router = Router::new(&[node.addr()], RouterConfig::default()).expect("router");
    group.bench_function("predict_router", |b| {
        b.iter(|| {
            latencies.clear();
            for _ in 0..REQUESTS {
                let start = Instant::now();
                black_box(router.call(predict, None).expect("routed predict"));
                latencies.push(start.elapsed());
            }
        });
    });
    latencies.sort_unstable();
    let router_tail = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));

    for (name, (p50, p99)) in [("direct", direct_tail), ("via router", router_tail)] {
        println!("  {name:<12} p50 {p50:>9?}   p99 {p99:>9?}");
    }
    group.finish();
    drop(router);
    node.stop(Duration::from_secs(1)).expect("stop bench node");
    [direct_tail, router_tail]
}

fn main() {
    let mut criterion = Criterion::from_args();
    let quick = !std::env::args().any(|a| a == "--bench")
        || std::env::var("CAP_BENCH_QUICK").is_ok_and(|v| v != "0");

    let loads = workload();
    bench_predict(&mut criterion, &loads);
    bench_backends(&mut criterion, &loads);
    let journal_records = bench_journal(&mut criterion);
    let tails = bench_service(&mut criterion);
    let [direct, routed] = bench_cluster(&mut criterion);
    criterion.summary();

    let ops = loads.len() * REPS;
    let legacy_ns = ns_per_op(&criterion, "baseline/single_predict_legacy", ops);
    let packed_ns = ns_per_op(&criterion, "baseline/single_predict_packed", ops);
    let batch_ns = ns_per_op(&criterion, "baseline/batch_predict_packed", ops);
    let batch_tp = if batch_ns > 0.0 { 1e9 / batch_ns } else { 0.0 };
    let journal_append_ns = ns_per_op(&criterion, "baseline-journal/journal_append", journal_records);
    let journal_replay_ns = ns_per_op(&criterion, "baseline-journal/journal_replay", journal_records);

    let backend_ops = loads.len() * BACKEND_REPS;
    let backend_lines: Vec<String> = BACKEND_REGISTRY
        .iter()
        .map(|d| {
            let ns = ns_per_op(
                &criterion,
                &format!("baseline-backends/single_predict_{}", d.name),
                backend_ops,
            );
            format!("  \"backend_{}_ns\": {ns:.2},", d.name.replace('-', "_"))
        })
        .collect();

    let rung_lines: Vec<String> = tails
        .iter()
        .map(|(name, p50, p99)| {
            format!(
                "    \"{name}\": {{ \"p50_ns\": {}, \"p99_ns\": {} }}",
                p50.as_nanos(),
                p99.as_nanos()
            )
        })
        .collect();
    let backend_rows = backend_lines.join("\n");
    let json = format!(
        "{{\n  \"schema\": \"cap-bench-baseline-v1\",\n  \"quick\": {quick},\n  \"loads\": {LOADS},\n  \"single_predict_legacy_ns\": {legacy_ns:.2},\n  \"single_predict_packed_ns\": {packed_ns:.2},\n  \"batch_predict_ns_per_load\": {batch_ns:.2},\n  \"batch_predict_loads_per_sec\": {batch_tp:.0},\n{backend_rows}\n  \"journal_append_ns_per_record\": {journal_append_ns:.2},\n  \"journal_replay_ns_per_record\": {journal_replay_ns:.2},\n  \"cluster_direct_p50_ns\": {},\n  \"cluster_direct_p99_ns\": {},\n  \"cluster_router_p50_ns\": {},\n  \"cluster_router_p99_ns\": {},\n  \"service\": {{\n{}\n  }}\n}}\n",
        direct.0.as_nanos(),
        direct.1.as_nanos(),
        routed.0.as_nanos(),
        routed.1.as_nanos(),
        rung_lines.join(",\n")
    );
    print!("{json}");

    if let Ok(path) = std::env::var("CAP_BENCH_BASELINE_OUT") {
        if !path.is_empty() {
            std::fs::write(&path, &json)
                .unwrap_or_else(|e| panic!("writing baseline JSON to {path}: {e}"));
            println!("baseline JSON written to {path}");
        }
    }
}
