//! Bench: regenerate Figure 8 (hybrid selector state distribution and
//! correct-selection rate) at bench scale.

use cap_bench::bench_scale;
use cap_harness::experiments::fig8;
use cap_bench::bench_kit::Criterion;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("selector_stats", |b| {
        b.iter(|| fig8::run(&scale));
    });
    group.finish();

    let (_, report) = fig8::run(&scale);
    println!("{report}");
}

cap_bench::bench_main!(bench);
