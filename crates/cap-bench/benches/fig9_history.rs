//! Bench: regenerate Figure 9 (correct predictions vs history length,
//! with/without global correlation) at bench scale.

use cap_bench::bench_scale;
use cap_harness::experiments::fig9;
use cap_bench::bench_kit::Criterion;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("history_length_sweep", |b| {
        b.iter(|| fig9::run(&scale));
    });
    group.finish();

    let (_, report) = fig9::run(&scale);
    println!("{report}");
}

cap_bench::bench_main!(bench);
