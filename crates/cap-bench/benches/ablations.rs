//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * shift amount `m` of the shift(m)-xor history folding,
//! * pollution-free bits on/off under irregular traffic,
//! * saturating-counter threshold / hysteresis,
//! * static vs dynamic hybrid selection,
//! * base-address (global correlation) vs full-address recording.
//!
//! Each group times the sweep and prints the measured metric deltas so
//! bench logs double as ablation reports.

use cap_bench::bench_scale;
use cap_harness::runner::{run_suite_sweep, PredictorFactory, Scale};
use cap_predictor::cap::{CapConfig, CapPredictor};
use cap_predictor::hybrid::{HybridConfig, HybridPredictor, SelectorPolicy};
use cap_predictor::link_table::PfMode;
use cap_predictor::metrics::PredictorStats;
use cap_bench::bench_kit::Criterion;

fn sweep_and_print(scale: &Scale, title: &str, factories: Vec<PredictorFactory>) {
    let results = run_suite_sweep(scale, &factories, 0);
    println!("-- ablation: {title} --");
    for r in &results {
        println!(
            "  {:<24} rate {:5.1}%  correct/loads {:5.1}%  accuracy {:6.2}%",
            r.name,
            100.0 * r.suite_mean(PredictorStats::prediction_rate),
            100.0 * r.suite_mean(PredictorStats::correct_spec_rate),
            100.0 * r.suite_mean(PredictorStats::accuracy),
        );
    }
}

fn shift_factories() -> Vec<PredictorFactory> {
    [1u32, 2, 3, 5, 8]
        .into_iter()
        .map(|m| {
            PredictorFactory::new(&format!("shift-{m}"), move || {
                let mut cfg = CapConfig::paper_default();
                cfg.params.history.shift = m;
                CapPredictor::new(cfg)
            })
        })
        .collect()
}

fn pf_factories() -> Vec<PredictorFactory> {
    vec![
        PredictorFactory::new("pf-off", || {
            let mut cfg = CapConfig::paper_default();
            cfg.lt.pf_mode = PfMode::Off;
            CapPredictor::new(cfg)
        }),
        PredictorFactory::new("pf-inline", || CapPredictor::new(CapConfig::paper_default())),
    ]
}

fn threshold_factories() -> Vec<PredictorFactory> {
    [(2u8, false), (3, false), (2, true), (3, true)]
        .into_iter()
        .map(|(t, h)| {
            PredictorFactory::new(&format!("thr{t}{}", if h { "+hyst" } else { "" }), move || {
                let mut cfg = CapConfig::paper_default();
                cfg.params.conf_threshold = t;
                cfg.params.hysteresis = h;
                CapPredictor::new(cfg)
            })
        })
        .collect()
}

fn selector_factories() -> Vec<PredictorFactory> {
    [
        ("dynamic", SelectorPolicy::Dynamic),
        ("static-stride", SelectorPolicy::StaticStride),
        ("static-cap", SelectorPolicy::StaticCap),
    ]
    .into_iter()
    .map(|(name, policy)| {
        PredictorFactory::new(name, move || {
            let mut cfg = HybridConfig::paper_default();
            cfg.selector = policy;
            HybridPredictor::new(cfg)
        })
    })
    .collect()
}

fn correlation_factories() -> Vec<PredictorFactory> {
    [("base-addr", true), ("full-addr", false)]
        .into_iter()
        .map(|(name, gc)| {
            PredictorFactory::new(name, move || {
                let mut cfg = CapConfig::paper_default();
                cfg.params.global_correlation = gc;
                CapPredictor::new(cfg)
            })
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("history_shift", |b| {
        b.iter(|| run_suite_sweep(&scale, &shift_factories(), 0));
    });
    group.bench_function("pf_bits", |b| {
        b.iter(|| run_suite_sweep(&scale, &pf_factories(), 0));
    });
    group.bench_function("conf_threshold", |b| {
        b.iter(|| run_suite_sweep(&scale, &threshold_factories(), 0));
    });
    group.bench_function("selector_policy", |b| {
        b.iter(|| run_suite_sweep(&scale, &selector_factories(), 0));
    });
    group.bench_function("global_correlation", |b| {
        b.iter(|| run_suite_sweep(&scale, &correlation_factories(), 0));
    });
    group.finish();

    sweep_and_print(&scale, "history shift m", shift_factories());
    sweep_and_print(&scale, "pollution-free bits", pf_factories());
    sweep_and_print(&scale, "confidence threshold/hysteresis", threshold_factories());
    sweep_and_print(&scale, "selector policy", selector_factories());
    sweep_and_print(&scale, "global correlation", correlation_factories());
}

cap_bench::bench_main!(bench);
