//! Bench: regenerate Figure 5 (stride vs CAP vs hybrid prediction
//! performance) at bench scale.

use cap_bench::bench_scale;
use cap_harness::experiments::fig5;
use cap_bench::bench_kit::Criterion;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("stride_cap_hybrid_sweep", |b| {
        b.iter(|| fig5::run(&scale));
    });
    group.finish();

    // Print the regenerated table once so bench logs double as reports.
    let (_, report) = fig5::run(&scale);
    println!("{report}");
}

cap_bench::bench_main!(bench);
