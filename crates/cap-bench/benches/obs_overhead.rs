//! Bench: the telemetry layer's cost, on and off.
//!
//! The `Recorder` contract is that a disabled [`cap_obs::Obs`] costs a
//! single branch per record site — instrumented hot paths must run at
//! the speed of uninstrumented ones. This bench measures three things:
//!
//! 1. `drive/obs_off` — a full hybrid-predictor sweep with the no-op
//!    handle (what production code pays when telemetry is off);
//! 2. `drive/obs_on` — the same sweep recording into a live registry
//!    (the price of turning telemetry on);
//! 3. `calls/noop_1m` — one million disabled `incr` + `record` calls in
//!    a tight loop (the raw per-site cost, isolated).
//!
//! With `CAP_OBS_CHECK=1` (the `verify.sh obs` gate), the bench
//! *asserts* the zero-overhead claim: the amortized per-call cost of a
//! disabled handle must be under 2% of the per-event cost of the drive
//! loop it is embedded in (with a small absolute floor so clock
//! granularity on a fast machine cannot fail the gate spuriously).

use cap_bench::bench_kit::Criterion;
use cap_obs::{Obs, Registry};
use cap_predictor::drive::Session;
use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
use cap_trace::suites::catalog;
use cap_trace::Trace;
use std::sync::Arc;

const NOOP_CALLS: u64 = 1_000_000;

fn bench_trace() -> Trace {
    // Suite 1 at a size big enough to dominate per-sweep fixed costs
    // but small enough for the quick (smoke) mode.
    catalog()[1].generate(20_000)
}

fn drive(trace: &Trace, obs: &Obs) -> u64 {
    let mut predictor = HybridPredictor::new(HybridConfig::paper_default());
    let stats = Session::new(&mut predictor)
        .obs(obs.clone())
        .run(trace);
    stats.loads
}

fn noop_burst(obs: &Obs) -> u64 {
    let mut acc = 0u64;
    for i in 0..NOOP_CALLS {
        obs.incr("bench.counter");
        obs.record("bench.histogram", i);
        acc = acc.wrapping_add(i);
    }
    acc
}

fn bench(c: &mut Criterion) {
    let trace = bench_trace();
    let loads = trace.load_count() as u64;
    let off = Obs::off();
    let registry = Arc::new(Registry::new());
    let on = registry.obs();

    let mut group = c.benchmark_group("drive");
    group.sample_size(10);
    group.bench_function("obs_off", |b| b.iter(|| drive(&trace, &off)));
    group.bench_function("obs_on", |b| b.iter(|| drive(&trace, &on)));
    group.finish();

    let mut group = c.benchmark_group("calls");
    group.sample_size(10);
    group.bench_function("noop_1m", |b| b.iter(|| noop_burst(&off)));
    group.finish();

    let results = c.results().to_vec();
    let min_of = |id: &str| {
        results
            .iter()
            .find(|r| r.id == id)
            .expect("bench ran")
            .min()
    };
    // 2 record sites per loop iteration.
    let per_call_ns = min_of("calls/noop_1m").as_nanos() as f64 / (NOOP_CALLS * 2) as f64;
    let per_event_ns = min_of("drive/obs_off").as_nanos() as f64 / loads as f64;
    let on_vs_off =
        min_of("drive/obs_on").as_nanos() as f64 / min_of("drive/obs_off").as_nanos() as f64;
    println!(
        "disabled per-call {per_call_ns:.2} ns, drive per-event {per_event_ns:.1} ns \
         ({:.3}% per site); obs_on/obs_off = {on_vs_off:.3}x",
        100.0 * per_call_ns / per_event_ns
    );

    if std::env::var("CAP_OBS_CHECK").is_ok_and(|v| v != "0") {
        // The 2% acceptance bound, with a 2ns floor: min-sample timings
        // on a quiet machine are stable, but a sub-ns branch divided by
        // a fast drive loop must not fail on clock granularity.
        let bound_ns = (0.02 * per_event_ns).max(2.0);
        assert!(
            per_call_ns <= bound_ns,
            "disabled record site costs {per_call_ns:.2} ns/call; \
             bound is {bound_ns:.2} ns (2% of {per_event_ns:.1} ns/event)"
        );
        println!("CAP_OBS_CHECK passed: {per_call_ns:.2} ns/call <= {bound_ns:.2} ns bound");
    }
}

cap_bench::bench_main!(bench);
