//! Bench: fault-injection overhead.
//!
//! Two claims to keep honest: (1) injecting a whole `FaultPlan` costs
//! microseconds — cheap enough to sprinkle through any experiment — and
//! (2) a predictor that has absorbed a plan's worth of faults runs the
//! trace at the same speed as a pristine one (the damage is semantic, not
//! structural, so there is no slow path to fall into).

use cap_bench::bench_kit::Criterion;
use cap_faults::prelude::*;
use cap_predictor::drive::Session;
use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
use cap_trace::suites::catalog;

fn bench(c: &mut Criterion) {
    let trace = catalog()[0].generate(20_000);
    let mut warmed = HybridPredictor::new(HybridConfig::paper_default());
    Session::new(&mut warmed).run(&trace);

    let mut group = c.benchmark_group("faults");
    group.sample_size(10);

    group.bench_function("inject_256_fault_plan", |b| {
        let plan = FaultPlan::new(0xBE_AC01, 256);
        b.iter(|| {
            let mut p = warmed.clone();
            plan.inject_all(&mut p)
        });
    });

    group.bench_function("run_20k_loads_clean", |b| {
        b.iter(|| {
            let mut p = warmed.clone();
            Session::new(&mut p).run(&trace)
        });
    });

    group.bench_function("run_20k_loads_after_256_faults", |b| {
        let plan = FaultPlan::new(0xBE_AC02, 256);
        let mut faulted = warmed.clone();
        let _ = plan.inject_all(&mut faulted);
        b.iter(|| {
            let mut p = faulted.clone();
            Session::new(&mut p).run(&trace)
        });
    });

    group.bench_function("check_invariants_full_tables", |b| {
        b.iter(|| check_invariants(&warmed).is_ok());
    });

    group.finish();
}

cap_bench::bench_main!(bench);
