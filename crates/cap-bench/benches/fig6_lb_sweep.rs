//! Bench: regenerate Figure 6 (hybrid prediction rate vs Load Buffer
//! geometry) at bench scale.

use cap_bench::bench_scale;
use cap_harness::experiments::fig6;
use cap_bench::bench_kit::Criterion;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("lb_geometry_sweep", |b| {
        b.iter(|| fig6::run(&scale));
    });
    group.finish();

    let (_, report) = fig6::run(&scale);
    println!("{report}");
}

cap_bench::bench_main!(bench);
