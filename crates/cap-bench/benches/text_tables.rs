//! Bench: regenerate the paper's in-text tables (coverage, LT sweep,
//! update policy, control-based, pollution) at bench scale.

use cap_bench::bench_scale;
use cap_harness::experiments::text;
use cap_bench::bench_kit::Criterion;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("text_tables");
    group.sample_size(10);
    group.bench_function("coverage", |b| b.iter(|| text::coverage(&scale)));
    group.bench_function("lt_sweep", |b| b.iter(|| text::lt_sweep(&scale)));
    group.bench_function("update_policy", |b| b.iter(|| text::update_policy(&scale)));
    group.bench_function("control_based", |b| b.iter(|| text::control_based(&scale)));
    group.bench_function("pollution", |b| b.iter(|| text::pollution(&scale)));
    group.finish();

    for report in [
        text::coverage(&scale).1,
        text::lt_sweep(&scale).1,
        text::update_policy(&scale).1,
        text::control_based(&scale).1,
        text::pollution(&scale).1,
    ] {
        println!("{report}");
    }
}

cap_bench::bench_main!(bench);
