//! The chaos suite: thousands of seeded state faults and trace
//! corruptions, with one pass/fail criterion — nothing panics, every
//! structural invariant holds, and the predictors heal.
//!
//! Budget per the resilience spec: 10 000 state-fault injections split
//! across the CAP, hybrid and stride predictors, plus 1 000 corrupted
//! traces through both parsers, plus a measured recovery bound.

use cap_faults::prelude::*;
use cap_faults::plan::flip_random_bit;
use cap_predictor::cap::{CapConfig, CapPredictor};
use cap_predictor::drive::{ControlState, Session};
use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
use cap_predictor::load_buffer::LoadBufferConfig;
use cap_predictor::packed::PackedHybridPredictor;
use cap_predictor::stride::{StrideParams, StridePredictor};
use cap_predictor::types::{AddressPredictor, LoadContext};
use cap_uarch::cache_level::{CacheLevelConfig, CacheLevelPredictor};
use cap_uarch::ldbp::{LdbpConfig, LdbpPredictor};
use cap_uarch::pcax::{PcaxConfig, PcaxPredictor};
use cap_rand::{rngs::StdRng, Rng, SeedableRng};
use cap_trace::corrupt::{corrupt, CorruptionKind};
use cap_trace::io::{read_trace, read_trace_lenient, write_trace};
use cap_trace::suites::catalog;
use cap_trace::{Trace, TraceEvent};

/// Drives `injections` faults into `p` in rounds: inject a batch, check
/// invariants, drive a slice of the trace (with occasional GHR upsets
/// applied driver-side), check invariants again. Returns the merged
/// injection report.
fn chaos_rounds<P: AddressPredictor + FaultTarget>(
    p: &mut P,
    trace: &Trace,
    injections: usize,
    seed: u64,
) -> InjectionReport {
    const BATCH: usize = 100;
    Session::new(p).run(trace); // warm tables before the first fault lands

    let plan = FaultPlan::new(seed, BATCH);
    let mut rng = plan.rng();
    let mut report = InjectionReport::default();
    let events: Vec<&TraceEvent> = trace.iter().collect();
    let mut cursor = 0usize;
    let slice = events.len() / (injections / BATCH).max(1);

    let mut done = 0usize;
    while done < injections {
        let batch = plan.inject_with(p, &mut rng);
        report.merge(&batch);
        done += batch.attempted;
        check_invariants(p).unwrap_or_else(|v| panic!("after injection batch: {v}"));

        // Drive a slice of the trace over the damaged tables. The GHR is
        // driver state, so FaultKind::Ghr upsets are applied here.
        let mut control = ControlState::default();
        for event in events.iter().cycle().skip(cursor).take(slice.max(64)) {
            match event {
                TraceEvent::Load(load) => {
                    if rng.gen_bool(0.01) {
                        control.ghr = flip_random_bit(control.ghr, &mut rng);
                    }
                    let ctx = LoadContext {
                        ip: load.ip,
                        offset: load.offset,
                        ghr: control.ghr,
                        path: control.path,
                        pending: 0,
                    };
                    let pred = p.predict(&ctx);
                    p.update(&ctx, load.addr, &pred);
                }
                TraceEvent::Branch(b) => control.on_branch(b.ip, b.taken, b.kind),
                TraceEvent::Store(_) | TraceEvent::Op(_) => {}
            }
        }
        cursor = (cursor + slice.max(64)) % events.len().max(1);
        check_invariants(p).unwrap_or_else(|v| panic!("after post-fault driving: {v}"));
    }
    report
}

#[test]
fn chaos_cap_4000_injections() {
    let trace = catalog()[0].generate(8_000);
    let mut p = CapPredictor::new(CapConfig::paper_default());
    let report = chaos_rounds(&mut p, &trace, 4_000, 0xCAFE_0001);
    assert_eq!(report.attempted, 4_000);
    assert!(
        report.applied > report.attempted / 2,
        "most faults must land on a warmed predictor (applied {})",
        report.applied
    );
}

#[test]
fn chaos_hybrid_4000_injections() {
    let trace = catalog()[1].generate(8_000);
    let mut p = HybridPredictor::new(HybridConfig::paper_default());
    let report = chaos_rounds(&mut p, &trace, 4_000, 0xCAFE_0002);
    assert_eq!(report.attempted, 4_000);
    assert!(report.applied > report.attempted / 2);
    // The full kind spectrum must have been exercised (Ghr excepted —
    // driver-side by design).
    assert!(report.by_kind.len() >= 9, "kinds seen: {:?}", report.by_kind);
}

#[test]
fn chaos_stride_2000_injections() {
    let trace = catalog()[2].generate(8_000);
    let mut p = StridePredictor::new(
        LoadBufferConfig::paper_default(),
        StrideParams::paper_default(),
    );
    let report = chaos_rounds(&mut p, &trace, 2_000, 0xCAFE_0003);
    assert_eq!(report.attempted, 2_000);
    assert!(report.applied > 0);
}

#[test]
fn chaos_cache_level_2000_injections() {
    let trace = catalog()[0].generate(8_000);
    let mut p = CacheLevelPredictor::new(CacheLevelConfig::paper_default());
    let report = chaos_rounds(&mut p, &trace, 2_000, 0xCAFE_0004);
    assert_eq!(report.attempted, 2_000);
    assert!(report.applied > 0);
    // The level table must have kept training over damaged LB state.
    assert!(p.level_hits() + p.level_misses() > 0);
}

#[test]
fn chaos_ldbp_2000_injections() {
    let trace = catalog()[1].generate(8_000);
    let mut p = LdbpPredictor::new(LdbpConfig::paper_default());
    let report = chaos_rounds(&mut p, &trace, 2_000, 0xCAFE_0005);
    assert_eq!(report.attempted, 2_000);
    assert!(report.applied > report.attempted / 2);
}

#[test]
fn chaos_pcax_2000_injections() {
    let trace = catalog()[2].generate(8_000);
    let mut p = PcaxPredictor::new(PcaxConfig::paper_default());
    let report = chaos_rounds(&mut p, &trace, 2_000, 0xCAFE_0006);
    assert_eq!(report.attempted, 2_000);
    assert!(report.applied > 0);
    // Demand fills keep the TLB live no matter what the LB predicts.
    assert!(p.tlb().hits() + p.tlb().misses() > 0);
}

/// Twin chaos: drives a legacy and a packed hybrid through the SAME
/// seeded fault stream and the SAME trace slices, asserting the two stay
/// bit-identical — equal injection results after every batch and equal
/// predictions on every load, even over damaged tables.
fn twin_chaos_rounds(
    make_config: impl Fn() -> HybridConfig,
    trace: &Trace,
    injections: usize,
    seed: u64,
) -> usize {
    const BATCH: usize = 100;
    let mut legacy = HybridPredictor::new(make_config());
    let mut packed = PackedHybridPredictor::new(make_config());
    Session::new(&mut legacy).run(trace);
    Session::new(&mut packed).run(trace);

    let plan = FaultPlan::new(seed, BATCH);
    let mut rng_l = plan.rng();
    let mut rng_p = plan.rng();
    let mut drive_rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let events: Vec<&TraceEvent> = trace.iter().collect();
    let mut cursor = 0usize;
    let slice = events.len() / (injections / BATCH).max(1);

    let mut done = 0usize;
    let mut applied = 0usize;
    while done < injections {
        let rl = plan.inject_with(&mut legacy, &mut rng_l);
        let rp = plan.inject_with(&mut packed, &mut rng_p);
        assert_eq!(rl.attempted, rp.attempted, "fault batch attempted diverged");
        assert_eq!(rl.applied, rp.applied, "fault batch applied diverged");
        done += rl.attempted;
        applied += rl.applied;
        check_invariants(&legacy).unwrap_or_else(|v| panic!("legacy after batch: {v}"));
        check_invariants(&packed).unwrap_or_else(|v| panic!("packed after batch: {v}"));

        let mut control = ControlState::default();
        for event in events.iter().cycle().skip(cursor).take(slice.max(64)) {
            match event {
                TraceEvent::Load(load) => {
                    if drive_rng.gen_bool(0.01) {
                        control.ghr = flip_random_bit(control.ghr, &mut drive_rng);
                    }
                    let ctx = LoadContext {
                        ip: load.ip,
                        offset: load.offset,
                        ghr: control.ghr,
                        path: control.path,
                        pending: 0,
                    };
                    let pl = legacy.predict(&ctx);
                    let pp = packed.predict(&ctx);
                    assert_eq!(pl, pp, "prediction diverged at ip {:#x} after faults", load.ip);
                    legacy.update(&ctx, load.addr, &pl);
                    packed.update(&ctx, load.addr, &pp);
                }
                TraceEvent::Branch(b) => control.on_branch(b.ip, b.taken, b.kind),
                TraceEvent::Store(_) | TraceEvent::Op(_) => {}
            }
        }
        cursor = (cursor + slice.max(64)) % events.len().max(1);
        check_invariants(&legacy).unwrap_or_else(|v| panic!("legacy after driving: {v}"));
        check_invariants(&packed).unwrap_or_else(|v| panic!("packed after driving: {v}"));
    }
    applied
}

#[test]
fn chaos_twin_4000_injections_paper_default() {
    let trace = catalog()[1].generate(8_000);
    let applied = twin_chaos_rounds(HybridConfig::paper_default, &trace, 4_000, 0xCAFE_0010);
    assert!(applied > 2_000, "most faults must land (applied {applied})");
}

#[test]
fn chaos_twin_4000_injections_decoupled_pf() {
    use cap_predictor::link_table::PfMode;
    let make = || {
        let mut c = HybridConfig::paper_default();
        c.lt.pf_mode = PfMode::Decoupled { extra_index_bits: 2 };
        c
    };
    let trace = catalog()[3 % catalog().len()].generate(8_000);
    let applied = twin_chaos_rounds(make, &trace, 4_000, 0xCAFE_0011);
    assert!(applied > 2_000, "most faults must land (applied {applied})");
}

#[test]
fn chaos_twin_2000_injections_pipelined() {
    let trace = catalog()[2].generate(8_000);
    let applied = twin_chaos_rounds(HybridConfig::paper_pipelined, &trace, 2_000, 0xCAFE_0012);
    assert!(applied > 1_000, "most faults must land (applied {applied})");
}

#[test]
fn chaos_1000_corrupted_traces_never_panic_either_parser() {
    let trace = catalog()[0].generate(400);
    let mut bytes = Vec::new();
    write_trace(&mut bytes, &trace).expect("serialize");

    let mut rng = StdRng::seed_from_u64(0xBAD_F00D);
    let mut kinds_seen = [0usize; 4];
    for _ in 0..1_000 {
        let (mutated, kind) = corrupt(&bytes, &mut rng);
        kinds_seen[CorruptionKind::ALL.iter().position(|&k| k == kind).unwrap()] += 1;
        // Strict parser: Ok or a structured error — never a panic.
        let _ = read_trace(mutated.as_slice());
        // Lenient parser: always succeeds on in-memory input.
        let lenient = read_trace_lenient(mutated.as_slice()).expect("in-memory I/O is infallible");
        assert!(
            lenient.trace.len() <= trace.len() + 3,
            "junk lines must never parse as events"
        );
    }
    assert!(
        kinds_seen.iter().all(|&n| n > 100),
        "all corruption kinds exercised: {kinds_seen:?}"
    );
}

#[test]
fn chaos_1000_corrupted_snapshots_never_panic_and_name_their_section() {
    use cap_faults::snapshot::{corrupt_snapshot, SnapshotMutationKind};
    use cap_snapshot::{SnapshotArchive, SnapshotBuilder, SnapshotError};

    // A realistic archive: a warmed hybrid predictor plus driver state.
    let trace = catalog()[1].generate(6_000);
    let mut p = HybridPredictor::new(HybridConfig::paper_default());
    let stats = Session::new(&mut p).run(&trace);
    let mut b = SnapshotBuilder::new();
    b.add("predictor", &p);
    b.add("stats", &stats);
    let bytes = b.finish();

    let mut rng = StdRng::seed_from_u64(0x05EE_DBAD);
    let mut kinds_seen = [0usize; SnapshotMutationKind::ALL.len()];
    let mut still_parse = 0usize;
    let mut structured = 0usize;
    for _ in 0..1_000 {
        let (mutated, kind) = corrupt_snapshot(&bytes, &mut rng);
        kinds_seen[SnapshotMutationKind::ALL.iter().position(|&k| k == kind).unwrap()] += 1;
        match SnapshotArchive::parse(&mutated) {
            Ok(archive) => {
                still_parse += 1;
                // Framing survived; restoring may still fail — but only
                // with a structured error, never a panic.
                let _ = archive.restore::<HybridPredictor>("predictor");
            }
            Err(e) => {
                structured += 1;
                // Every error self-describes; payload damage names the
                // section the CRC pinned it to.
                assert!(!e.to_string().is_empty());
                if let SnapshotError::CrcMismatch { section, .. } = &e {
                    assert!(
                        section == "predictor" || section == "stats",
                        "CRC failure must name a real section, got '{section}'"
                    );
                }
            }
        }
    }
    assert_eq!(still_parse + structured, 1_000);
    assert!(
        kinds_seen.iter().all(|&n| n > 50),
        "all snapshot mutation kinds exercised: {kinds_seen:?}"
    );
    assert!(
        structured > 500,
        "most mutations of a CRC-checked format must be caught ({structured})"
    );

    // The pristine bytes must still restore a working predictor.
    let archive = SnapshotArchive::parse(&bytes).expect("pristine archive parses");
    let mut restored: HybridPredictor = archive.restore("predictor").expect("restores");
    Session::new(&mut restored).run(&trace);
}

#[test]
fn chaos_recovery_bound_is_finite_and_printed() {
    let trace = catalog()[0].generate(20_000);
    let plan = FaultPlan::new(0xFEED_BEEF, 128);
    let cfg = RecoveryConfig {
        inject_at: 4_000,
        window: 256,
        epsilon: 0.05,
    };
    let report = measure_recovery(
        || HybridPredictor::new(HybridConfig::paper_default()),
        &trace,
        &plan,
        &cfg,
    );
    assert!(report.injection.applied > 0);
    let bound = report
        .recovered_after
        .expect("hybrid must recover within the trace");
    println!(
        "recovery bound: {bound} loads after {} injected faults \
         (clean rate {:.3}, faulty rate {:.3}, \u{3b5}={})",
        report.injection.applied, report.clean_rate, report.faulty_rate, cfg.epsilon
    );
    assert!(bound <= report.loads_after_fault);
}
