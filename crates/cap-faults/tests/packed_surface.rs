//! Surface-coverage property for the packed fault target: every fault
//! kind must reach the packed field group it models — and *only* that
//! group. A kind that silently stops mutating (because a layout change
//! moved its field) or that bleeds into a neighbouring field (because a
//! width was computed wrong) fails here.

use cap_faults::plan::FaultKind;
use cap_faults::prelude::*;
use cap_predictor::hybrid::HybridConfig;
use cap_predictor::link_table::PfMode;
use cap_predictor::packed::{HistHalf, PackedHybridPredictor};
use cap_predictor::types::{AddressPredictor, LoadContext};
use cap_rand::{rngs::StdRng, SeedableRng};

/// Field-group fingerprints, one per fault kind: equal fingerprints ⇔
/// the group's packed state is untouched.
fn fingerprints(p: &PackedHybridPredictor) -> Vec<(FaultKind, Vec<u64>)> {
    let lb = p.load_buffer();
    let lt = p.link_table();
    let mut history = Vec::new();
    let mut offsets = Vec::new();
    let mut confidence = Vec::new();
    let mut cfi = Vec::new();
    let mut stride = Vec::new();
    let mut selector = Vec::new();
    for idx in lb.live_indices() {
        for half in [HistHalf::Arch, HistHalf::Spec] {
            let f = lb.hist_fold(idx, half);
            history.push(f.index);
            history.push(f.tag);
            for k in 0..lb.hist_len(idx, half) {
                history.push(lb.hist_slot(idx, half, k));
            }
        }
        offsets.push(u64::from(lb.offset_lsb(idx)));
        confidence.push(u64::from(lb.cap_conf_value(idx)));
        confidence.push(u64::from(lb.stride_conf_value(idx)));
        for c in [lb.cap_cfi(idx), lb.stride_cfi(idx)] {
            cfi.push(c.bad_pattern().map_or(0, |v| v ^ u64::MAX));
            cfi.push(u64::from(c.bad_pattern().is_some()));
            cfi.push(c.path_bits());
            cfi.push(u64::from(c.initialised()));
        }
        stride.push(lb.stride(idx) as u64);
        stride.push(lb.last_addr(idx));
        stride.push(lb.stride_state(idx) as u64);
        stride.push(u64::from(lb.interval(idx).learned));
        stride.push(u64::from(lb.interval(idx).run));
        selector.push(u64::from(lb.selector(idx)));
    }
    let mut links = Vec::new();
    let mut tags = Vec::new();
    let mut pf = Vec::new();
    for idx in lt.live_indices() {
        links.push(lt.link(idx));
        tags.push(lt.tag(idx));
        pf.push(u64::from(lt.pf(idx)));
        pf.push(u64::from(lt.pf_primed(idx)));
    }
    for i in 0..lt.decoupled_len() {
        let (spf, primed) = lt.decoupled_slot(i);
        pf.push(u64::from(spf));
        pf.push(u64::from(primed));
    }
    vec![
        (FaultKind::LbHistory, history),
        (FaultKind::LbOffset, offsets),
        (FaultKind::LbConfidence, confidence),
        (FaultKind::LbCfi, cfi),
        (FaultKind::LbStride, stride),
        (FaultKind::LbSelector, selector),
        (FaultKind::LtLink, links),
        (FaultKind::LtTag, tags),
        (FaultKind::LtPf, pf),
    ]
}

fn warm(p: &mut PackedHybridPredictor) {
    let pattern = [0x1000u64, 0x8800, 0x4800, 0x2800];
    for _ in 0..12 {
        for (i, &a) in pattern.iter().enumerate() {
            let ctx = LoadContext::new(0x400 + (i as u64 % 2) * 4, 8, 0);
            let pred = p.predict(&ctx);
            p.update(&ctx, a, &pred);
        }
    }
}

fn assert_surface_reaches_every_field(make: impl Fn() -> HybridConfig, seed: u64) {
    let mut p = PackedHybridPredictor::new(make());
    warm(&mut p);
    let mut rng = StdRng::seed_from_u64(seed);
    for &kind in &FaultKind::ALL {
        if !p.supported_faults().contains(&kind) {
            continue;
        }
        let before = fingerprints(&p);
        let mut applied = 0usize;
        for _ in 0..64 {
            if p.inject_fault(kind, &mut rng) {
                applied += 1;
            }
        }
        assert!(applied > 0, "{kind:?} never applied on a warm predictor");
        let after = fingerprints(&p);
        for ((k, fb), (_, fa)) in before.iter().zip(after.iter()) {
            if *k == kind {
                assert_ne!(fb, fa, "{kind:?} applied {applied} times but left its field group untouched");
            } else {
                assert_eq!(fb, fa, "{kind:?} bled into the {k:?} field group");
            }
        }
        check_invariants(&p).unwrap_or_else(|v| panic!("after {kind:?}: {v}"));
        // Rebuild and rewarm before probing the next group so the
        // "untouched" assertions keep a clean baseline.
        p = PackedHybridPredictor::new(make());
        warm(&mut p);
    }
}

#[test]
fn packed_faults_reach_exactly_their_field_group() {
    assert_surface_reaches_every_field(HybridConfig::paper_default, 0x5EED_0001);
}

#[test]
fn packed_faults_reach_decoupled_pf_slots_too() {
    assert_surface_reaches_every_field(
        || {
            let mut config = HybridConfig::paper_default();
            config.lt.pf_mode = PfMode::Decoupled { extra_index_bits: 2 };
            config
        },
        0x5EED_0002,
    );
}
