//! Network chaos: a seeded, deterministic fault-injecting TCP proxy.
//!
//! [`crate::plan::FaultPlan`] corrupts predictor state and
//! [`crate::service::ServiceFaultPlan`] breaks the service from within;
//! this module attacks the only layer left — the **wire**. A
//! [`ChaosProxy`] sits between a client (usually a `cap-cluster`
//! router's [`NodeLink`]) and one upstream node, speaking the same
//! 4-byte length-prefixed framing, and executes a [`NetFaultPlan`]:
//! partitions, latency, connection resets mid-frame, frame truncation,
//! byte garbling, and slow-loris trickle. Every draw is a pure function
//! of a `u64` seed and the connection's **accept order**, so a chaos
//! soak that fails is replayable from its seed alone — the same
//! discipline as every other random stream in this workspace.
//!
//! [`NodeLink`]: ../../cap_cluster/node/struct.NodeLink.html
//!
//! # The partition model
//!
//! Two partition modes, because the two failure signatures a router
//! must distinguish are different on the wire:
//!
//! * [`PartitionMode::RefuseConnect`] — existing connections are torn
//!   down and new ones are reset immediately after accept. To the
//!   client this reads as **node death** (transport errors, never
//!   timeouts).
//! * [`PartitionMode::BlackHole`] — connections stay open but every
//!   *request frame* is swallowed **before** it is forwarded. The
//!   client's read times out: the partition signature. Replies to
//!   requests forwarded before the partition began still drain back —
//!   so a request that fails under a black hole **provably never
//!   reached the node**. That drop-before-forward guarantee is what
//!   lets the partition soak mirror successful requests onto a control
//!   fleet and demand byte-identical final state.
//!
//! # Fault placement
//!
//! All injected faults hit the request direction (client → upstream).
//! The reply direction is a clean pipe: corrupting replies would only
//! test the client's decoder (cap-service's hostile-peer tests already
//! do), while corrupting requests tests the full trust boundary — a
//! garbled opcode must come back as a *structured* protocol error,
//! never silent mistraining.

use cap_rand::{RngCore, SeedableRng, SplitMix64};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on a frame the proxy will buffer (matches the service's
/// reply cap; anything larger is a protocol violation upstream would
/// refuse anyway).
const PROXY_MAX_FRAME: usize = 64 * 1024 * 1024;

/// How reachable the upstream is through the proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PartitionMode {
    /// Healthy: frames flow (subject to the fault plan).
    None = 0,
    /// Hard partition that reads as node death: live connections are
    /// reset and new accepts are reset immediately.
    RefuseConnect = 1,
    /// Silent partition: connections stay up, request frames are
    /// swallowed before forwarding, replies in flight still drain.
    BlackHole = 2,
}

/// One wire fault drawn for a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Delay each request frame this long before forwarding.
    Latency(Duration),
    /// Reset the connection after forwarding half of frame `n`.
    ResetMidFrame {
        /// Zero-based index of the victim request frame.
        frame: u64,
    },
    /// Forward only a prefix of frame `n`, then reset.
    Truncate {
        /// Zero-based index of the victim request frame.
        frame: u64,
    },
    /// Flip the opcode's top bit in frame `n` — upstream must answer
    /// with a structured protocol error, never train on it.
    Garble {
        /// Zero-based index of the victim request frame.
        frame: u64,
    },
    /// Trickle every request frame one byte per pause (also serves as
    /// the bandwidth cap: throughput ≤ 1 byte per `pause`).
    SlowLoris {
        /// Pause between bytes.
        pause: Duration,
    },
}

impl NetFault {
    /// Short lowercase name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NetFault::Latency(_) => "latency",
            NetFault::ResetMidFrame { .. } => "reset-mid-frame",
            NetFault::Truncate { .. } => "truncate",
            NetFault::Garble { .. } => "garble",
            NetFault::SlowLoris { .. } => "slow-loris",
        }
    }
}

/// Per-connection fault probabilities and magnitudes.
///
/// Each accepted connection draws **at most one** fault profile,
/// evaluated in the order reset → truncate → garble → slow-loris →
/// latency, so faults never stack and the sum of probabilities should
/// stay under 1.
#[derive(Debug, Clone, Copy)]
pub struct NetFaultConfig {
    /// Probability a connection is reset mid-frame.
    pub p_reset: f64,
    /// Probability a connection gets one truncated frame.
    pub p_truncate: f64,
    /// Probability a connection gets one garbled frame.
    pub p_garble: f64,
    /// Probability a connection trickles (slow-loris / bandwidth cap).
    pub p_slow_loris: f64,
    /// Probability a connection carries added latency.
    pub p_latency: f64,
    /// Injected per-frame latency range (uniform, milliseconds).
    pub latency_ms: (u64, u64),
    /// Which of a connection's first N frames a one-shot fault (reset,
    /// truncate, garble) can land on.
    pub fault_frame_horizon: u64,
    /// Slow-loris pause between bytes.
    pub loris_pause: Duration,
}

impl Default for NetFaultConfig {
    fn default() -> Self {
        Self {
            p_reset: 0.05,
            p_truncate: 0.05,
            p_garble: 0.05,
            p_slow_loris: 0.02,
            p_latency: 0.10,
            latency_ms: (1, 5),
            fault_frame_horizon: 8,
            loris_pause: Duration::from_millis(1),
        }
    }
}

impl NetFaultConfig {
    /// A plan that injects nothing — the proxy becomes a pure pipe
    /// whose only chaos is the partition switch. The partition soak's
    /// reconciliation phase uses this: with faults off, every failure
    /// is attributable to the partition alone.
    #[must_use]
    pub fn quiet() -> Self {
        Self {
            p_reset: 0.0,
            p_truncate: 0.0,
            p_garble: 0.0,
            p_slow_loris: 0.0,
            p_latency: 0.0,
            ..Self::default()
        }
    }
}

/// A seeded, deterministic assignment of wire faults to connections.
///
/// The profile for connection `n` is a pure function of `(seed, n)` —
/// independent of accept timing, thread scheduling, or the fate of any
/// other connection — so a failing soak replays exactly from its seed.
#[derive(Debug, Clone)]
pub struct NetFaultPlan {
    seed: u64,
    config: NetFaultConfig,
}

impl NetFaultPlan {
    /// A plan drawing from `config` with the given seed.
    #[must_use]
    pub fn new(seed: u64, config: NetFaultConfig) -> Self {
        Self { seed, config }
    }

    /// The fault profile (if any) for the `conn`-th accepted
    /// connection.
    #[must_use]
    pub fn draw(&self, conn: u64) -> Option<NetFault> {
        let mut rng = SplitMix64::seed_from_u64(self.seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let c = self.config;
        let unit = |r: &mut SplitMix64| (r.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let in_range = |r: &mut SplitMix64, lo: u64, hi: u64| {
            let hi = hi.max(lo);
            lo + r.next_u64() % (hi - lo + 1)
        };
        let frame = |r: &mut SplitMix64| r.next_u64() % c.fault_frame_horizon.max(1);
        let roll = unit(&mut rng);
        let mut threshold = c.p_reset;
        if roll < threshold {
            return Some(NetFault::ResetMidFrame { frame: frame(&mut rng) });
        }
        threshold += c.p_truncate;
        if roll < threshold {
            return Some(NetFault::Truncate { frame: frame(&mut rng) });
        }
        threshold += c.p_garble;
        if roll < threshold {
            return Some(NetFault::Garble { frame: frame(&mut rng) });
        }
        threshold += c.p_slow_loris;
        if roll < threshold {
            return Some(NetFault::SlowLoris { pause: c.loris_pause });
        }
        threshold += c.p_latency;
        if roll < threshold {
            let (lo, hi) = c.latency_ms;
            return Some(NetFault::Latency(Duration::from_millis(in_range(&mut rng, lo, hi))));
        }
        None
    }
}

/// Counters for everything the proxy did, all monotone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetFaultStats {
    /// Connections accepted (including ones refused by a partition).
    pub connections: u64,
    /// Request frames forwarded upstream intact.
    pub frames_forwarded: u64,
    /// Request frames swallowed by a black-hole partition **before**
    /// forwarding — each one provably never reached the node.
    pub frames_dropped_partition: u64,
    /// Connections reset mid-frame by the fault plan.
    pub resets: u64,
    /// Frames truncated by the fault plan.
    pub truncations: u64,
    /// Frames garbled by the fault plan.
    pub garbles: u64,
    /// Frames delayed (latency fault).
    pub delayed: u64,
    /// Frames trickled byte-by-byte (slow-loris fault).
    pub trickled: u64,
    /// Connections reset at accept by a refuse-connect partition.
    pub refused: u64,
}

#[derive(Debug, Default)]
struct StatCells {
    connections: AtomicU64,
    frames_forwarded: AtomicU64,
    frames_dropped_partition: AtomicU64,
    resets: AtomicU64,
    truncations: AtomicU64,
    garbles: AtomicU64,
    delayed: AtomicU64,
    trickled: AtomicU64,
    refused: AtomicU64,
}

#[derive(Debug)]
struct ProxyShared {
    upstream: SocketAddr,
    plan: NetFaultPlan,
    partition: AtomicU8,
    stop: AtomicBool,
    stats: StatCells,
    /// Client-side halves of live pipes, so a partition or stop can
    /// tear them down from outside.
    conns: Mutex<Vec<TcpStream>>,
}

impl ProxyShared {
    fn partition(&self) -> PartitionMode {
        match self.partition.load(Ordering::Acquire) {
            1 => PartitionMode::RefuseConnect,
            2 => PartitionMode::BlackHole,
            _ => PartitionMode::None,
        }
    }

    /// Shuts down every tracked pipe (partition onset / proxy stop).
    fn tear_down_conns(&self) {
        let mut conns = self.conns.lock().expect("conns lock");
        for c in conns.drain(..) {
            let _ = c.shutdown(Shutdown::Both);
        }
    }
}

/// A fault-injecting TCP proxy in front of one upstream node.
///
/// Point a router's node address at [`ChaosProxy::addr`] instead of the
/// node itself; flip partitions at runtime with
/// [`ChaosProxy::set_partition`] / [`ChaosProxy::heal`]. Dropping the
/// proxy (or calling [`ChaosProxy::stop`]) tears everything down.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy on a fresh loopback port in front of `upstream`,
    /// executing `plan`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(upstream: SocketAddr, plan: NetFaultPlan) -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            upstream,
            plan,
            partition: AtomicU8::new(PartitionMode::None as u8),
            stop: AtomicBool::new(false),
            stats: StatCells::default(),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(format!("chaos-proxy-{}", addr.port()))
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn chaos-proxy accept thread");
        Ok(Self {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should dial instead of the upstream.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Switches the partition mode. Entering [`PartitionMode::RefuseConnect`]
    /// also tears down live connections (a hard partition kills
    /// established flows too); entering [`PartitionMode::BlackHole`]
    /// leaves them up and silent.
    pub fn set_partition(&self, mode: PartitionMode) {
        self.shared.partition.store(mode as u8, Ordering::Release);
        if mode == PartitionMode::RefuseConnect {
            self.shared.tear_down_conns();
        }
    }

    /// Heals any partition; the fault plan stays active.
    pub fn heal(&self) {
        self.set_partition(PartitionMode::None);
    }

    /// Current partition mode.
    #[must_use]
    pub fn partition(&self) -> PartitionMode {
        self.shared.partition()
    }

    /// A point-in-time copy of the proxy's counters.
    #[must_use]
    pub fn stats(&self) -> NetFaultStats {
        let s = &self.shared.stats;
        NetFaultStats {
            connections: s.connections.load(Ordering::Relaxed),
            frames_forwarded: s.frames_forwarded.load(Ordering::Relaxed),
            frames_dropped_partition: s.frames_dropped_partition.load(Ordering::Relaxed),
            resets: s.resets.load(Ordering::Relaxed),
            truncations: s.truncations.load(Ordering::Relaxed),
            garbles: s.garbles.load(Ordering::Relaxed),
            delayed: s.delayed.load(Ordering::Relaxed),
            trickled: s.trickled.load(Ordering::Relaxed),
            refused: s.refused.load(Ordering::Relaxed),
        }
    }

    /// Stops the proxy: closes the listener, tears down live pipes,
    /// joins the accept thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.tear_down_conns();
        // Unblock the accept loop with a throwaway connect.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ProxyShared>) {
    let mut conn_index: u64 = 0;
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let Ok(client) = stream else { continue };
        let index = conn_index;
        conn_index += 1;
        shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        if shared.partition() == PartitionMode::RefuseConnect {
            shared.stats.refused.fetch_add(1, Ordering::Relaxed);
            reset_now(&client);
            continue;
        }
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name(format!("chaos-pipe-{index}"))
            .spawn(move || pipe_connection(client, index, &shared));
    }
}

/// Kills a socket abruptly in both directions. A peer blocked mid-call
/// sees the stream die (EOF mid-frame or a reset on the next write) —
/// transport death, never a clean protocol exchange.
fn reset_now(stream: &TcpStream) {
    let _ = stream.shutdown(Shutdown::Both);
}

fn pipe_connection(client: TcpStream, index: u64, shared: &Arc<ProxyShared>) {
    let Ok(upstream) = TcpStream::connect(shared.upstream) else {
        reset_now(&client);
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = upstream.set_nodelay(true);
    {
        let mut conns = shared.conns.lock().expect("conns lock");
        if let (Ok(c), Ok(u)) = (client.try_clone(), upstream.try_clone()) {
            conns.push(c);
            conns.push(u);
        }
    }
    let fault = shared.plan.draw(index);
    // Reply pump: a clean pipe, upstream → client. Runs until either
    // side closes.
    let reply_thread = {
        let (Ok(mut up), Ok(mut down)) = (upstream.try_clone(), client.try_clone()) else {
            reset_now(&client);
            return;
        };
        std::thread::Builder::new()
            .name(format!("chaos-reply-{index}"))
            .spawn(move || {
                let mut buf = [0u8; 16 * 1024];
                loop {
                    match up.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            if down.write_all(&buf[..n]).is_err() {
                                break;
                            }
                        }
                    }
                }
                let _ = down.shutdown(Shutdown::Write);
            })
    };
    forward_requests(&client, &upstream, fault, shared);
    let _ = upstream.shutdown(Shutdown::Both);
    let _ = client.shutdown(Shutdown::Both);
    if let Ok(t) = reply_thread {
        let _ = t.join();
    }
}

/// The faulted direction: reads complete request frames from the
/// client and forwards them upstream, applying the connection's fault
/// profile and the live partition switch.
fn forward_requests(
    client: &TcpStream,
    upstream: &TcpStream,
    fault: Option<NetFault>,
    shared: &Arc<ProxyShared>,
) {
    let mut from_client = match client.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut to_upstream = match upstream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut frame_index: u64 = 0;
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let Some(mut frame) = read_whole_frame(&mut from_client) else {
            return;
        };
        // The partition check happens AFTER the frame is fully read but
        // BEFORE any byte of it is forwarded: a swallowed frame
        // provably never reached the node. (RefuseConnect entered
        // mid-flow behaves the same — the teardown races the check, and
        // either way nothing more is forwarded.)
        match shared.partition() {
            PartitionMode::None => {}
            PartitionMode::BlackHole | PartitionMode::RefuseConnect => {
                shared
                    .stats
                    .frames_dropped_partition
                    .fetch_add(1, Ordering::Relaxed);
                frame_index += 1;
                continue;
            }
        }
        let stats = &shared.stats;
        match fault {
            Some(NetFault::ResetMidFrame { frame: victim }) if victim == frame_index => {
                // Half the frame, then RST: upstream sees a torn frame,
                // the client sees connection death mid-call.
                let _ = to_upstream.write_all(&frame[..frame.len() / 2]);
                stats.resets.fetch_add(1, Ordering::Relaxed);
                reset_now(upstream);
                reset_now(client);
                return;
            }
            Some(NetFault::Truncate { frame: victim }) if victim == frame_index => {
                let keep = (frame.len() * 3 / 4).max(1);
                let _ = to_upstream.write_all(&frame[..keep]);
                stats.truncations.fetch_add(1, Ordering::Relaxed);
                reset_now(upstream);
                reset_now(client);
                return;
            }
            Some(NetFault::Garble { frame: victim }) if victim == frame_index => {
                // Flip the opcode's top bit (payload byte 1, after the
                // 4-byte length prefix and the version byte): a
                // structured "unknown opcode" refusal upstream, never
                // silent mistraining.
                if frame.len() > 5 {
                    frame[5] ^= 0x80;
                }
                stats.garbles.fetch_add(1, Ordering::Relaxed);
                if to_upstream.write_all(&frame).is_err() {
                    return;
                }
            }
            Some(NetFault::SlowLoris { pause }) => {
                stats.trickled.fetch_add(1, Ordering::Relaxed);
                for byte in &frame {
                    if shared.stop.load(Ordering::Acquire) {
                        return;
                    }
                    if to_upstream.write_all(std::slice::from_ref(byte)).is_err() {
                        return;
                    }
                    std::thread::sleep(pause);
                }
            }
            Some(NetFault::Latency(delay)) => {
                stats.delayed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(delay);
                if to_upstream.write_all(&frame).is_err() {
                    return;
                }
            }
            _ => {
                if to_upstream.write_all(&frame).is_err() {
                    return;
                }
            }
        }
        stats.frames_forwarded.fetch_add(1, Ordering::Relaxed);
        frame_index += 1;
    }
}

/// Reads one complete length-prefixed frame (prefix included) from the
/// client, or `None` on EOF/error/oversize.
fn read_whole_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match stream.read(&mut prefix[filled..]) {
            Ok(0) | Err(_) => return None,
            Ok(n) => filled += n,
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > PROXY_MAX_FRAME {
        return None;
    }
    let mut frame = vec![0u8; 4 + len];
    frame[..4].copy_from_slice(&prefix);
    let mut at = 4;
    while at < frame.len() {
        match stream.read(&mut frame[at..]) {
            Ok(0) | Err(_) => return None,
            Ok(n) => at += n,
        }
    }
    Some(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        let plan = NetFaultPlan::new(0xC4A05, NetFaultConfig::default());
        let again = NetFaultPlan::new(0xC4A05, NetFaultConfig::default());
        let other = NetFaultPlan::new(0xC4A06, NetFaultConfig::default());
        let a: Vec<_> = (0..512).map(|c| plan.draw(c)).collect();
        let b: Vec<_> = (0..512).map(|c| again.draw(c)).collect();
        assert_eq!(a, b, "same seed, same plan");
        let c: Vec<_> = (0..512).map(|i| other.draw(i)).collect();
        assert_ne!(a, c, "different seed, different plan");
        // Every configured fault kind actually occurs at default rates.
        let names: std::collections::BTreeSet<&str> =
            a.iter().flatten().map(|f| f.name()).collect();
        for expect in ["reset-mid-frame", "truncate", "garble", "slow-loris", "latency"] {
            assert!(names.contains(expect), "no {expect} in 512 draws");
        }
    }

    #[test]
    fn quiet_plans_draw_nothing() {
        let plan = NetFaultPlan::new(7, NetFaultConfig::quiet());
        assert!((0..4096).all(|c| plan.draw(c).is_none()));
    }

    #[test]
    fn draws_are_independent_of_call_order() {
        let plan = NetFaultPlan::new(99, NetFaultConfig::default());
        let forward: Vec<_> = (0..64).map(|c| plan.draw(c)).collect();
        let backward: Vec<_> = (0..64).rev().map(|c| plan.draw(c)).collect();
        let backward: Vec<_> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
    }
}
