//! Storage chaos: an injectable virtual filesystem for the durability
//! layer.
//!
//! Every recovery story in this workspace — bit upsets absorbed by
//! confidence counters, hostile peers refused at the wire, partitions
//! healed by the router — ultimately leans on the checkpoint files the
//! harness writes to disk. This module puts that last layer behind a
//! seam: a [`Vfs`] trait covering exactly the operations the
//! checkpoint/journal code paths perform, with two implementations:
//!
//! * [`RealVfs`] — a passthrough to `std::fs`, used by production paths.
//!   It is the *only* place in the workspace where checkpoint/journal
//!   code is allowed to touch `std::fs` (`scripts/verify.sh storage`
//!   greps for violations).
//! * [`ChaosVfs`] — a seeded, deterministic, fully in-memory disk with a
//!   **volatile/durable split**: writes land in a simulated page cache,
//!   and only a successful (non-lying) `sync_file`/`sync_dir` promotes
//!   content / directory entries to the durable view. A simulated crash
//!   ([`ChaosVfs::crash_now`] or [`ChaosVfs::set_crash_after`]) discards
//!   everything volatile — the adversarial model where nothing unsynced
//!   survives — which is what makes *fsync-lie* faults meaningful: the
//!   lie reports success, the buffered bytes are dropped at the next
//!   crash, and the published file comes back torn or stale.
//!
//! Fault kinds ([`FsFaultKind`]) follow the same seeded-probability
//! discipline as [`crate::net::NetFaultConfig`]: every draw is a pure
//! function of the VFS seed and the operation order, so a failing chaos
//! run replays from its seed alone.
//!
//! # The crash model
//!
//! * File **content** becomes durable only at a successful `sync_file`.
//! * Directory **entries** (creates, renames, removes) become durable
//!   only at a successful `sync_dir` on the parent.
//! * A crash reverts both views to their durable state. A file whose
//!   name was made durable but whose content never was comes back
//!   zero-length — exactly the torn-checkpoint shape `recover_latest`
//!   must sweep. A rename that was never followed by a directory sync
//!   comes back *undone* — the `.tmp` orphan reappears.
//! * Directory *creation* is durable immediately (directories here are
//!   long-lived fixtures; modelling their linkage adds states no test
//!   needs).

use cap_rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The filesystem surface of the checkpoint and journal code paths.
///
/// Deliberately whole-operation-grained (one call = one interceptable
/// disk touch) rather than handle-based: the crash-point matrix counts
/// these operations and simulates a crash after each index, so the
/// granularity of this trait *is* the granularity of the proof.
pub trait Vfs: fmt::Debug + Send + Sync {
    /// Creates `dir` and any missing parents.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying failure.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Creates (or truncates) `path` and writes `bytes` to it. The
    /// content is *not* durable until [`Vfs::sync_file`] succeeds.
    ///
    /// # Errors
    ///
    /// Short writes and ENOSPC surface here; a failed write may leave a
    /// partial file behind, exactly like `std::fs::write`.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Appends `bytes` to `path`, creating it if missing.
    ///
    /// # Errors
    ///
    /// Same failure surface as [`Vfs::write_file`]; a failed append may
    /// leave a partial tail.
    fn append_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// `fsync`s `path`'s content.
    ///
    /// # Errors
    ///
    /// EIO on fsync surfaces here. A *lying* fsync (chaos only) returns
    /// `Ok` without making anything durable.
    fn sync_file(&self, path: &Path) -> io::Result<()>;

    /// `fsync`s the directory itself, making entry operations (create,
    /// rename, remove) durable.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying failure; callers on the
    /// checkpoint path treat this as best-effort but *count* it.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Atomically renames `from` to `to`. Durable only after a
    /// subsequent [`Vfs::sync_dir`].
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying failure.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes `path`.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying failure — including the
    /// sticky-EPERM file the rotation path must survive.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Reads `path` in full.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying failure; chaos bit rot
    /// corrupts the returned bytes, not the stored file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Lists the file names in `dir` (names only, no paths; order
    /// unspecified, like `std::fs::read_dir`).
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying failure; chaos can omit
    /// entries from the listing.
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<String>>;
}

/// The passthrough [`Vfs`]: every call maps to one `std::fs` touch.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn append_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(bytes)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Not every filesystem supports opening a directory for sync;
        // the caller decides whether that failure is fatal.
        File::open(dir)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_owned());
            }
        }
        Ok(names)
    }
}

/// The classes of storage fault [`ChaosVfs`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsFaultKind {
    /// A write stops partway through and errors (`WriteZero`), leaving a
    /// partial file or tail behind.
    ShortWrite,
    /// The disk fills mid-write (`StorageFull`), also leaving a partial
    /// file or tail behind.
    Enospc,
    /// `fsync` fails with EIO; nothing is promoted to durable.
    FsyncEio,
    /// `fsync` *reports success* but promotes nothing — the buffered
    /// bytes are dropped at the next simulated crash. The deadliest
    /// storage lie, because the caller proceeds as if durable.
    FsyncLie,
    /// `rename` fails; the namespace is unchanged.
    RenameFail,
    /// A read returns the stored bytes with one bit flipped (the stored
    /// file is untouched — transient medium error, not rot in place).
    ReadBitrot,
    /// A directory listing omits one entry.
    DirOmission,
}

impl FsFaultKind {
    /// Every fault class, for sweeps and reports.
    pub const ALL: [FsFaultKind; 7] = [
        FsFaultKind::ShortWrite,
        FsFaultKind::Enospc,
        FsFaultKind::FsyncEio,
        FsFaultKind::FsyncLie,
        FsFaultKind::RenameFail,
        FsFaultKind::ReadBitrot,
        FsFaultKind::DirOmission,
    ];

    /// Short lowercase name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FsFaultKind::ShortWrite => "short-write",
            FsFaultKind::Enospc => "enospc",
            FsFaultKind::FsyncEio => "fsync-eio",
            FsFaultKind::FsyncLie => "fsync-lie",
            FsFaultKind::RenameFail => "rename-fail",
            FsFaultKind::ReadBitrot => "read-bitrot",
            FsFaultKind::DirOmission => "dir-omission",
        }
    }
}

/// Per-operation fault probabilities. Each operation that a kind applies
/// to draws once, in declaration order; the first hit wins, so the sum
/// per operation should stay under 1.
#[derive(Debug, Clone, Copy)]
pub struct FsFaultConfig {
    /// Probability a write/append stops short with `WriteZero`.
    pub p_short_write: f64,
    /// Probability a write/append hits `StorageFull`.
    pub p_enospc: f64,
    /// Probability an fsync (file or dir) fails with EIO.
    pub p_fsync_eio: f64,
    /// Probability an fsync (file or dir) lies: `Ok`, nothing durable.
    pub p_fsync_lie: f64,
    /// Probability a rename fails.
    pub p_rename_fail: f64,
    /// Probability a read comes back with one flipped bit.
    pub p_read_bitrot: f64,
    /// Probability a directory listing omits one entry.
    pub p_dir_omission: f64,
}

impl FsFaultConfig {
    /// No faults at all — a perfectly honest in-memory disk (crashes
    /// still work; they are driven explicitly, not drawn).
    #[must_use]
    pub fn off() -> Self {
        Self {
            p_short_write: 0.0,
            p_enospc: 0.0,
            p_fsync_eio: 0.0,
            p_fsync_lie: 0.0,
            p_rename_fail: 0.0,
            p_read_bitrot: 0.0,
            p_dir_omission: 0.0,
        }
    }

    /// A lying disk: every fsync reports success and promotes nothing.
    #[must_use]
    pub fn always_lying_fsync() -> Self {
        Self {
            p_fsync_lie: 1.0,
            ..Self::off()
        }
    }

    /// Occasional faults of every kind — enough to exercise each error
    /// path in a soak without drowning the happy path.
    #[must_use]
    pub fn gentle() -> Self {
        Self {
            p_short_write: 0.02,
            p_enospc: 0.02,
            p_fsync_eio: 0.02,
            p_fsync_lie: 0.05,
            p_rename_fail: 0.02,
            p_read_bitrot: 0.02,
            p_dir_omission: 0.02,
        }
    }
}

/// What a [`ChaosVfs`] did so far.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsFaultStats {
    /// Total VFS operations performed (the crash-point index space).
    pub ops: u64,
    /// Simulated crashes taken.
    pub crashes: u64,
    /// Faults injected, per kind, in [`FsFaultKind::ALL`] order (kinds
    /// never injected are absent).
    pub by_kind: Vec<(FsFaultKind, u64)>,
}

impl FsFaultStats {
    fn record(&mut self, kind: FsFaultKind) {
        match self.by_kind.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => self.by_kind.push((kind, 1)),
        }
    }

    /// Injections of one kind.
    #[must_use]
    pub fn of_kind(&self, kind: FsFaultKind) -> u64 {
        self.by_kind
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |(_, n)| *n)
    }

    /// Total injections across all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.by_kind.iter().map(|(_, n)| n).sum()
    }
}

/// One file's content, volatile vs durable.
#[derive(Debug, Default)]
struct Inode {
    /// What a running process sees (the simulated page cache).
    volatile: Vec<u8>,
    /// What survives a crash: the content at the last successful
    /// (non-lying) `sync_file`. `None` = never synced — the file comes
    /// back zero-length if its directory entry was durable.
    durable: Option<Vec<u8>>,
}

/// One directory's entries (name → inode index), volatile vs durable.
#[derive(Debug, Default)]
struct DirState {
    volatile: BTreeMap<String, usize>,
    durable: BTreeMap<String, usize>,
}

#[derive(Debug)]
struct ChaosState {
    rng: StdRng,
    config: FsFaultConfig,
    dirs: BTreeMap<PathBuf, DirState>,
    inodes: Vec<Inode>,
    stats: FsFaultStats,
    crash_after: Option<u64>,
    crashed: bool,
    denied_removes: BTreeSet<PathBuf>,
}

impl ChaosState {
    fn draw(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.gen_bool(p.min(1.0))
    }

    fn crash(&mut self) {
        self.crashed = true;
        self.stats.crashes += 1;
        for dir in self.dirs.values_mut() {
            dir.volatile = dir.durable.clone();
        }
        for inode in &mut self.inodes {
            inode.volatile = inode.durable.clone().unwrap_or_default();
        }
    }

    /// Splits a path into its (existing) parent directory and file name.
    fn locate<'s>(
        dirs: &'s mut BTreeMap<PathBuf, DirState>,
        path: &Path,
    ) -> io::Result<(&'s mut DirState, String)> {
        let parent = path.parent().unwrap_or_else(|| Path::new("")).to_path_buf();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
            .to_owned();
        let dir = dirs.get_mut(&parent).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such directory: {}", parent.display()),
            )
        })?;
        Ok((dir, name))
    }
}

/// A seeded, deterministic, in-memory chaos filesystem. Cheap to clone
/// (shared state behind an `Arc`), so the same "disk" can be handed to a
/// run, crashed, rebooted, and handed to the resumed run.
#[derive(Debug, Clone)]
pub struct ChaosVfs {
    state: Arc<Mutex<ChaosState>>,
}

impl ChaosVfs {
    /// A fresh empty disk drawing faults from `config` on the stream
    /// seeded by `seed`.
    #[must_use]
    pub fn new(seed: u64, config: FsFaultConfig) -> Self {
        Self {
            state: Arc::new(Mutex::new(ChaosState {
                rng: StdRng::seed_from_u64(seed),
                config,
                dirs: BTreeMap::new(),
                inodes: Vec::new(),
                stats: FsFaultStats::default(),
                crash_after: None,
                crashed: false,
                denied_removes: BTreeSet::new(),
            })),
        }
    }

    /// Operations performed so far — the index space of the crash-point
    /// matrix.
    #[must_use]
    pub fn op_count(&self) -> u64 {
        self.state.lock().expect("vfs lock").stats.ops
    }

    /// A snapshot of the fault/operation accounting.
    #[must_use]
    pub fn stats(&self) -> FsFaultStats {
        self.state.lock().expect("vfs lock").stats.clone()
    }

    /// Arms a simulated crash immediately *after* operation number `n`
    /// (1-based) completes: that operation returns normally, everything
    /// volatile is dropped, and every later operation fails until
    /// [`ChaosVfs::reboot`].
    pub fn set_crash_after(&self, n: u64) {
        self.state.lock().expect("vfs lock").crash_after = Some(n);
    }

    /// Crashes right now: drops all volatile state; later operations
    /// fail until [`ChaosVfs::reboot`].
    pub fn crash_now(&self) {
        self.state.lock().expect("vfs lock").crash();
    }

    /// Clears the crashed flag (and any armed crash point): the "disk"
    /// comes back holding exactly its durable state.
    pub fn reboot(&self) {
        let mut s = self.state.lock().expect("vfs lock");
        s.crashed = false;
        s.crash_after = None;
    }

    /// Makes every `remove_file(path)` fail with `PermissionDenied` —
    /// the sticky-EPERM file the rotation path must survive.
    pub fn deny_remove(&self, path: &Path) {
        self.state
            .lock()
            .expect("vfs lock")
            .denied_removes
            .insert(path.to_path_buf());
    }

    /// Lifts a [`ChaosVfs::deny_remove`].
    pub fn allow_remove(&self, path: &Path) {
        self.state
            .lock()
            .expect("vfs lock")
            .denied_removes
            .remove(path);
    }

    /// The volatile content of `path`, if it exists — test introspection
    /// that does not count as an operation or draw a fault.
    #[must_use]
    pub fn peek(&self, path: &Path) -> Option<Vec<u8>> {
        let mut s = self.state.lock().expect("vfs lock");
        let (dir, name) = ChaosState::locate(&mut s.dirs, path).ok()?;
        let ino = *dir.volatile.get(&name)?;
        Some(s.inodes[ino].volatile.clone())
    }

    fn op<T>(&self, f: impl FnOnce(&mut ChaosState) -> io::Result<T>) -> io::Result<T> {
        let mut s = self.state.lock().expect("vfs lock");
        if s.crashed {
            return Err(io::Error::other("simulated crash: machine is down"));
        }
        s.stats.ops += 1;
        let result = f(&mut s);
        if s.crash_after.is_some_and(|n| s.stats.ops >= n) {
            s.crash();
        }
        result
    }
}

/// Writes `bytes` into the inode for `path` (creating it), applying
/// short-write/ENOSPC draws. `keep_prefix` is what survives of any
/// existing content (0 for truncating writes, current length for
/// appends).
fn chaos_write(s: &mut ChaosState, path: &Path, bytes: &[u8], truncate: bool) -> io::Result<()> {
    // Draw write faults *before* borrowing the directory, so the RNG
    // stream depends only on operation order.
    let short = s.draw(s.config.p_short_write);
    let enospc = !short && s.draw(s.config.p_enospc);
    let cut = if short || enospc {
        s.rng.gen_range(0..=bytes.len() as u64) as usize
    } else {
        bytes.len()
    };
    let (dir, name) = ChaosState::locate(&mut s.dirs, path)?;
    let ino = match dir.volatile.get(&name) {
        Some(&ino) => ino,
        None => {
            s.inodes.push(Inode::default());
            let ino = s.inodes.len() - 1;
            dir.volatile.insert(name, ino);
            ino
        }
    };
    let inode = &mut s.inodes[ino];
    if truncate {
        inode.volatile.clear();
    }
    inode.volatile.extend_from_slice(&bytes[..cut]);
    if short {
        s.stats.record(FsFaultKind::ShortWrite);
        return Err(io::Error::new(
            io::ErrorKind::WriteZero,
            format!("injected short write ({cut} of {} bytes)", bytes.len()),
        ));
    }
    if enospc {
        s.stats.record(FsFaultKind::Enospc);
        return Err(io::Error::new(
            io::ErrorKind::StorageFull,
            format!("injected ENOSPC ({cut} of {} bytes)", bytes.len()),
        ));
    }
    Ok(())
}

impl Vfs for ChaosVfs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.op(|s| {
            // Directory creation is durable immediately (see module docs).
            s.dirs.entry(dir.to_path_buf()).or_default();
            Ok(())
        })
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.op(|s| chaos_write(s, path, bytes, true))
    }

    fn append_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.op(|s| chaos_write(s, path, bytes, false))
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        self.op(|s| {
            if s.draw(s.config.p_fsync_eio) {
                s.stats.record(FsFaultKind::FsyncEio);
                return Err(io::Error::other("injected EIO on fsync"));
            }
            let lie = s.draw(s.config.p_fsync_lie);
            let (dir, name) = ChaosState::locate(&mut s.dirs, path)?;
            let ino = *dir.volatile.get(&name).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no such file: {}", path.display()),
                )
            })?;
            if lie {
                s.stats.record(FsFaultKind::FsyncLie);
                return Ok(()); // reports success, promotes nothing
            }
            let inode = &mut s.inodes[ino];
            inode.durable = Some(inode.volatile.clone());
            Ok(())
        })
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.op(|s| {
            if s.draw(s.config.p_fsync_eio) {
                s.stats.record(FsFaultKind::FsyncEio);
                return Err(io::Error::other("injected EIO on directory fsync"));
            }
            let lie = s.draw(s.config.p_fsync_lie);
            let state = s.dirs.get_mut(dir).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no such directory: {}", dir.display()),
                )
            })?;
            if lie {
                s.stats.record(FsFaultKind::FsyncLie);
                return Ok(());
            }
            state.durable = state.volatile.clone();
            Ok(())
        })
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.op(|s| {
            if s.draw(s.config.p_rename_fail) {
                s.stats.record(FsFaultKind::RenameFail);
                return Err(io::Error::other("injected rename failure"));
            }
            let (from_dir, from_name) = ChaosState::locate(&mut s.dirs, from)?;
            let ino = from_dir.volatile.remove(&from_name).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no such file: {}", from.display()),
                )
            })?;
            let (to_dir, to_name) = ChaosState::locate(&mut s.dirs, to)?;
            to_dir.volatile.insert(to_name, ino);
            Ok(())
        })
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.op(|s| {
            if s.denied_removes.contains(path) {
                return Err(io::Error::new(
                    io::ErrorKind::PermissionDenied,
                    format!("injected sticky EPERM: {}", path.display()),
                ));
            }
            let (dir, name) = ChaosState::locate(&mut s.dirs, path)?;
            dir.volatile.remove(&name).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no such file: {}", path.display()),
                )
            })?;
            Ok(())
        })
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.op(|s| {
            let rot = s.draw(s.config.p_read_bitrot);
            let (dir, name) = ChaosState::locate(&mut s.dirs, path)?;
            let ino = *dir.volatile.get(&name).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no such file: {}", path.display()),
                )
            })?;
            let mut bytes = s.inodes[ino].volatile.clone();
            if rot && !bytes.is_empty() {
                let byte = s.rng.gen_range(0..bytes.len() as u64) as usize;
                let bit = s.rng.gen_range(0..8u32) as u8;
                bytes[byte] ^= 1 << bit;
                s.stats.record(FsFaultKind::ReadBitrot);
            }
            Ok(bytes)
        })
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.op(|s| {
            let omit = s.draw(s.config.p_dir_omission);
            let state = s.dirs.get(dir).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no such directory: {}", dir.display()),
                )
            })?;
            let mut names: Vec<String> = state.volatile.keys().cloned().collect();
            if omit && !names.is_empty() {
                let victim = s.rng.gen_range(0..names.len() as u64) as usize;
                names.remove(victim);
                s.stats.record(FsFaultKind::DirOmission);
            }
            Ok(names)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn honest() -> ChaosVfs {
        ChaosVfs::new(7, FsFaultConfig::off())
    }

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn write_sync_read_roundtrips() {
        let vfs = honest();
        vfs.create_dir_all(&p("/d")).unwrap();
        vfs.write_file(&p("/d/a"), b"hello").unwrap();
        assert_eq!(vfs.read(&p("/d/a")).unwrap(), b"hello");
        vfs.append_file(&p("/d/a"), b" world").unwrap();
        assert_eq!(vfs.read(&p("/d/a")).unwrap(), b"hello world");
        assert_eq!(vfs.read_dir(&p("/d")).unwrap(), vec!["a".to_owned()]);
        assert!(vfs.read(&p("/d/missing")).is_err());
        assert!(vfs.read_dir(&p("/nope")).is_err());
    }

    #[test]
    fn crash_drops_everything_unsynced() {
        let vfs = honest();
        vfs.create_dir_all(&p("/d")).unwrap();
        // Fully durable file: content synced, entry synced.
        vfs.write_file(&p("/d/safe"), b"synced").unwrap();
        vfs.sync_file(&p("/d/safe")).unwrap();
        vfs.sync_dir(&p("/d")).unwrap();
        // Content updated but never re-synced.
        vfs.write_file(&p("/d/safe"), b"newer, volatile").unwrap();
        // A file whose entry was never made durable.
        vfs.write_file(&p("/d/ghost"), b"gone").unwrap();
        vfs.sync_file(&p("/d/ghost")).unwrap();

        vfs.crash_now();
        assert!(vfs.read(&p("/d/safe")).is_err(), "down until reboot");
        vfs.reboot();
        assert_eq!(vfs.read(&p("/d/safe")).unwrap(), b"synced");
        assert!(
            vfs.read(&p("/d/ghost")).is_err(),
            "entry never durable: the file is gone"
        );
        assert_eq!(vfs.read_dir(&p("/d")).unwrap(), vec!["safe".to_owned()]);
    }

    #[test]
    fn crash_between_rename_and_dir_sync_undoes_the_rename() {
        let vfs = honest();
        vfs.create_dir_all(&p("/d")).unwrap();
        vfs.write_file(&p("/d/x.tmp"), b"payload").unwrap();
        vfs.sync_file(&p("/d/x.tmp")).unwrap();
        vfs.sync_dir(&p("/d")).unwrap();
        vfs.rename(&p("/d/x.tmp"), &p("/d/x")).unwrap();
        // No directory sync: the rename is volatile.
        vfs.crash_now();
        vfs.reboot();
        assert_eq!(vfs.read(&p("/d/x.tmp")).unwrap(), b"payload");
        assert!(vfs.read(&p("/d/x")).is_err(), "rename reverted");

        // Redo with the sync: the rename survives.
        vfs.rename(&p("/d/x.tmp"), &p("/d/x")).unwrap();
        vfs.sync_dir(&p("/d")).unwrap();
        vfs.crash_now();
        vfs.reboot();
        assert!(vfs.read(&p("/d/x.tmp")).is_err());
        assert_eq!(vfs.read(&p("/d/x")).unwrap(), b"payload");
    }

    #[test]
    fn fsync_lie_reports_success_but_drops_bytes_at_the_crash() {
        let vfs = ChaosVfs::new(3, FsFaultConfig::always_lying_fsync());
        vfs.create_dir_all(&p("/d")).unwrap();
        vfs.write_file(&p("/d/a"), b"precious").unwrap();
        assert!(vfs.sync_file(&p("/d/a")).is_ok(), "the lie looks like success");
        assert!(vfs.sync_dir(&p("/d")).is_ok());
        assert!(vfs.stats().of_kind(FsFaultKind::FsyncLie) >= 2);
        vfs.crash_now();
        vfs.reboot();
        assert!(
            vfs.read(&p("/d/a")).is_err(),
            "nothing was ever durable despite every sync reporting Ok"
        );
    }

    #[test]
    fn durable_name_with_unsynced_content_comes_back_zero_length() {
        let vfs = honest();
        vfs.create_dir_all(&p("/d")).unwrap();
        vfs.write_file(&p("/d/torn"), b"content that never hit the platter").unwrap();
        vfs.sync_dir(&p("/d")).unwrap(); // entry durable, content not
        vfs.crash_now();
        vfs.reboot();
        assert_eq!(
            vfs.read(&p("/d/torn")).unwrap(),
            b"",
            "the torn-checkpoint shape: file exists, content empty"
        );
    }

    #[test]
    fn crash_after_op_k_completes_op_k_then_fails_the_rest() {
        let vfs = honest();
        vfs.set_crash_after(3);
        vfs.create_dir_all(&p("/d")).unwrap(); // op 1
        vfs.write_file(&p("/d/a"), b"x").unwrap(); // op 2
        vfs.sync_file(&p("/d/a")).unwrap(); // op 3 — completes, then crash
        assert!(vfs.sync_dir(&p("/d")).is_err(), "op 4 finds the machine down");
        assert_eq!(vfs.stats().crashes, 1);
        vfs.reboot();
        // Content was synced (op 3) but the entry never was: file gone.
        assert!(vfs.read(&p("/d/a")).is_err());
    }

    #[test]
    fn same_seed_same_fault_stream() {
        let run = |seed: u64| {
            let vfs = ChaosVfs::new(seed, FsFaultConfig::gentle());
            vfs.create_dir_all(&p("/d")).unwrap();
            let mut outcomes: Vec<u64> = Vec::new();
            for i in 0..200u32 {
                let path = p(&format!("/d/f{}", i % 10));
                outcomes.push(u64::from(vfs.write_file(&path, b"abcdef").is_ok()));
                outcomes.push(u64::from(vfs.sync_file(&path).is_ok()));
                outcomes.push(vfs.read(&path).map(|b| b.len() as u64).unwrap_or(u64::MAX));
                outcomes.push(vfs.read_dir(&p("/d")).map(|n| n.len() as u64).unwrap_or(0));
            }
            (outcomes, vfs.stats())
        };
        let (a, sa) = run(42);
        let (b, sb) = run(42);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(sa.total() > 0, "gentle config must actually inject");
        let (c, sc) = run(43);
        assert!(a != c || sa != sc, "different seeds must diverge");
    }

    #[test]
    fn read_bitrot_is_transient_not_rot_in_place() {
        let vfs = ChaosVfs::new(11, FsFaultConfig {
            p_read_bitrot: 1.0,
            ..FsFaultConfig::off()
        });
        vfs.create_dir_all(&p("/d")).unwrap();
        vfs.write_file(&p("/d/a"), b"abcd").unwrap();
        let rotten = vfs.read(&p("/d/a")).unwrap();
        assert_ne!(rotten, b"abcd");
        // One bit differs, and the stored bytes are untouched.
        let diff: u32 = rotten
            .iter()
            .zip(b"abcd")
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert_eq!(diff, 1);
        assert_eq!(vfs.peek(&p("/d/a")).unwrap(), b"abcd");
    }

    #[test]
    fn dir_omission_hides_exactly_one_entry() {
        let vfs = ChaosVfs::new(13, FsFaultConfig {
            p_dir_omission: 1.0,
            ..FsFaultConfig::off()
        });
        vfs.create_dir_all(&p("/d")).unwrap();
        for name in ["a", "b", "c"] {
            vfs.write_file(&p(&format!("/d/{name}")), b"x").unwrap();
        }
        let listed = vfs.read_dir(&p("/d")).unwrap();
        assert_eq!(listed.len(), 2);
    }

    #[test]
    fn sticky_eperm_denies_removal_until_lifted() {
        let vfs = honest();
        vfs.create_dir_all(&p("/d")).unwrap();
        vfs.write_file(&p("/d/sticky"), b"x").unwrap();
        vfs.deny_remove(&p("/d/sticky"));
        let err = vfs.remove_file(&p("/d/sticky")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        vfs.allow_remove(&p("/d/sticky"));
        vfs.remove_file(&p("/d/sticky")).unwrap();
    }

    #[test]
    fn short_write_and_enospc_leave_partial_files() {
        let vfs = ChaosVfs::new(17, FsFaultConfig {
            p_short_write: 1.0,
            ..FsFaultConfig::off()
        });
        vfs.create_dir_all(&p("/d")).unwrap();
        let payload = vec![0xAB; 1024];
        let err = vfs.write_file(&p("/d/a"), &payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        let partial = vfs.peek(&p("/d/a")).unwrap();
        assert!(partial.len() < payload.len());
        assert!(partial.iter().all(|&b| b == 0xAB));

        let vfs = ChaosVfs::new(19, FsFaultConfig {
            p_enospc: 1.0,
            ..FsFaultConfig::off()
        });
        vfs.create_dir_all(&p("/d")).unwrap();
        let err = vfs.write_file(&p("/d/a"), &payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
    }

    #[test]
    fn real_vfs_passes_through() {
        let dir = std::env::temp_dir().join(format!("cap-realvfs-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let vfs = RealVfs;
        vfs.create_dir_all(&dir).unwrap();
        let a = dir.join("a.bin");
        vfs.write_file(&a, b"alpha").unwrap();
        vfs.append_file(&a, b"beta").unwrap();
        vfs.sync_file(&a).unwrap();
        let _ = vfs.sync_dir(&dir); // best-effort on exotic filesystems
        assert_eq!(vfs.read(&a).unwrap(), b"alphabeta");
        let b = dir.join("b.bin");
        vfs.rename(&a, &b).unwrap();
        assert_eq!(vfs.read_dir(&dir).unwrap(), vec!["b.bin".to_owned()]);
        vfs.remove_file(&b).unwrap();
        assert!(vfs.read_dir(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
