//! Corruption of serialized snapshot archives.
//!
//! The predictor-state faults in [`crate::plan`] mutate *live* structures;
//! this module attacks the other persistence surface — the checkpoint
//! bytes a [`cap_snapshot::SnapshotArchive`] was encoded into. The loader
//! contract under attack: **any** byte-level damage must surface as a
//! structured [`cap_snapshot::SnapshotError`] (never a panic, never an
//! unbounded allocation), and damage inside a section payload must be
//! pinned to that section by the CRC check.

use cap_rand::{rngs::StdRng, Rng};

/// The classes of byte-level snapshot damage the generator produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnapshotMutationKind {
    /// Flip one random bit anywhere in the archive.
    BitFlip,
    /// Cut the archive at a random byte (models a crash mid-write).
    Truncate,
    /// Zero a random run of bytes (models a hole from a sparse flush).
    ZeroRun,
    /// Overwrite a random run with random bytes (models block reuse).
    GarbleRun,
    /// Splice the head of the archive onto itself at a random offset
    /// (models a rename racing a partially flushed temp file).
    Splice,
}

impl SnapshotMutationKind {
    /// Every mutation class, for sweeps.
    pub const ALL: [SnapshotMutationKind; 5] = [
        SnapshotMutationKind::BitFlip,
        SnapshotMutationKind::Truncate,
        SnapshotMutationKind::ZeroRun,
        SnapshotMutationKind::GarbleRun,
        SnapshotMutationKind::Splice,
    ];
}

/// Applies one seeded random mutation to a copy of `bytes` and reports
/// which class was applied. Inputs shorter than 2 bytes are returned
/// truncated to empty (there is nothing else meaningful to do to them).
#[must_use]
pub fn corrupt_snapshot(bytes: &[u8], rng: &mut StdRng) -> (Vec<u8>, SnapshotMutationKind) {
    if bytes.len() < 2 {
        return (Vec::new(), SnapshotMutationKind::Truncate);
    }
    let kind = SnapshotMutationKind::ALL[rng.gen_range(0..SnapshotMutationKind::ALL.len())];
    let mut out = bytes.to_vec();
    match kind {
        SnapshotMutationKind::BitFlip => {
            let i = rng.gen_range(0..out.len());
            out[i] ^= 1 << rng.gen_range(0..8u32);
        }
        SnapshotMutationKind::Truncate => {
            let keep = rng.gen_range(0..out.len());
            out.truncate(keep);
        }
        SnapshotMutationKind::ZeroRun => {
            let start = rng.gen_range(0..out.len());
            let len = rng.gen_range(1..=(out.len() - start).min(64));
            for b in &mut out[start..start + len] {
                *b = 0;
            }
        }
        SnapshotMutationKind::GarbleRun => {
            let start = rng.gen_range(0..out.len());
            let len = rng.gen_range(1..=(out.len() - start).min(64));
            for b in &mut out[start..start + len] {
                *b = rng.gen_range(0..=u32::from(u8::MAX)) as u8;
            }
        }
        SnapshotMutationKind::Splice => {
            let cut = rng.gen_range(1..out.len());
            let head_len = rng.gen_range(1..=cut);
            let mut spliced = out[..cut].to_vec();
            spliced.extend_from_slice(&out[..head_len]);
            out = spliced;
        }
    }
    (out, kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_rand::SeedableRng;
    use cap_snapshot::{SnapshotArchive, SnapshotBuilder};

    fn archive() -> Vec<u8> {
        let mut b = SnapshotBuilder::new();
        b.add_raw("alpha", (0u32..200).flat_map(u32::to_le_bytes).collect());
        b.add_raw("beta", vec![0xAB; 333]);
        b.finish()
    }

    #[test]
    fn mutations_are_deterministic_per_seed() {
        let bytes = archive();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(corrupt_snapshot(&bytes, &mut a), corrupt_snapshot(&bytes, &mut b));
    }

    #[test]
    fn every_kind_is_produced() {
        let bytes = archive();
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; SnapshotMutationKind::ALL.len()];
        for _ in 0..200 {
            let (_, kind) = corrupt_snapshot(&bytes, &mut rng);
            seen[SnapshotMutationKind::ALL.iter().position(|&k| k == kind).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s), "kinds seen: {seen:?}");
    }

    #[test]
    fn tiny_inputs_collapse_to_empty() {
        let mut rng = StdRng::seed_from_u64(13);
        let (out, kind) = corrupt_snapshot(&[0x42], &mut rng);
        assert!(out.is_empty());
        assert_eq!(kind, SnapshotMutationKind::Truncate);
    }

    #[test]
    fn corrupted_archives_parse_to_structured_errors_only() {
        let bytes = archive();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..300 {
            let (mutated, _) = corrupt_snapshot(&bytes, &mut rng);
            // Ok (mutation hit slack the format tolerates — e.g. a bit flip
            // that truncation later removed) or a structured error; the
            // test's assertion is simply that this never panics.
            let _ = SnapshotArchive::parse(&mutated);
        }
    }
}
