//! Deterministic fault plans.
//!
//! A [`FaultPlan`] is a pure function of a `u64` seed: the same plan
//! applied to the same predictor state injects the same faults, so every
//! chaos failure is replayable from its seed alone (the same discipline
//! `cap_rand::check` uses for property tests).

use crate::target::FaultTarget;
use cap_rand::{rngs::StdRng, Rng, SeedableRng};

/// The classes of state fault the injector can apply.
///
/// Each class mutates a different structure from the paper's Figure 3/4
/// layout; all of them model bit upsets *within the physical width* of the
/// targeted field, so structural invariants (see [`crate::invariants`])
/// hold by construction and any damage is semantic — exactly the situation
/// the confidence mechanisms are supposed to absorb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Flip one bit of one recorded address in an LB entry's architectural
    /// or speculative history.
    LbHistory,
    /// Flip one bit of an LB entry's recorded offset LSBs.
    LbOffset,
    /// Overwrite a confidence counter (CAP or stride side) with a random
    /// in-width value.
    LbConfidence,
    /// Scramble a control-flow-indication record (bad pattern / per-path
    /// bits).
    LbCfi,
    /// Corrupt stride state: flip a bit of the stride delta or the last
    /// address, or scramble the 2-bit state machine.
    LbStride,
    /// Randomize the hybrid's 2-bit selector counter.
    LbSelector,
    /// Flip one bit of a Link Table entry's linked base address.
    LtLink,
    /// Flip one bit of a Link Table entry's tag (within the tag width).
    LtTag,
    /// Flip a pollution-filter bit (or the primed flag) of a Link Table
    /// entry.
    LtPf,
    /// Flip one bit of the global branch-history register. The GHR lives
    /// in the *driving loop*, not the predictor, so no [`FaultTarget`]
    /// supports it directly — drivers apply it to their own
    /// `ControlState` via [`flip_random_bit`].
    Ghr,
    /// Corrupt the *serialized* form of a predictor — the checkpoint bytes
    /// on disk — rather than any live structure. Like [`FaultKind::Ghr`],
    /// no [`FaultTarget`] supports it; drivers apply it to their snapshot
    /// buffers via [`crate::snapshot::corrupt_snapshot`].
    SnapshotBytes,
}

impl FaultKind {
    /// Every fault class, for sweeps and default plans.
    pub const ALL: [FaultKind; 11] = [
        FaultKind::LbHistory,
        FaultKind::LbOffset,
        FaultKind::LbConfidence,
        FaultKind::LbCfi,
        FaultKind::LbStride,
        FaultKind::LbSelector,
        FaultKind::LtLink,
        FaultKind::LtTag,
        FaultKind::LtPf,
        FaultKind::Ghr,
        FaultKind::SnapshotBytes,
    ];
}

/// Flips one uniformly chosen bit of `v` — the elementary upset used for
/// GHR faults and anywhere else a raw 64-bit register is the target.
#[must_use]
pub fn flip_random_bit<R: Rng>(v: u64, rng: &mut R) -> u64 {
    v ^ (1u64 << rng.gen_range(0..64u32))
}

/// What happened when a plan was injected.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[must_use]
pub struct InjectionReport {
    /// Faults the plan attempted.
    pub attempted: usize,
    /// Faults that actually mutated live state.
    pub applied: usize,
    /// Attempts that found nothing to corrupt (empty table, unsupported
    /// kind) — skipped, not errors.
    pub skipped: usize,
    /// Applied faults per kind, in [`FaultKind::ALL`] order (kinds the
    /// target never saw are absent).
    pub by_kind: Vec<(FaultKind, usize)>,
}

impl InjectionReport {
    fn record(&mut self, kind: FaultKind, applied: bool) {
        self.attempted += 1;
        if applied {
            self.applied += 1;
            match self.by_kind.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, n)) => *n += 1,
                None => self.by_kind.push((kind, 1)),
            }
        } else {
            self.skipped += 1;
        }
    }

    /// Merges another report into this one (multi-round chaos loops).
    pub fn merge(&mut self, other: &InjectionReport) {
        self.attempted += other.attempted;
        self.applied += other.applied;
        self.skipped += other.skipped;
        for &(kind, n) in &other.by_kind {
            match self.by_kind.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, m)) => *m += n,
                None => self.by_kind.push((kind, n)),
            }
        }
    }
}

/// A seeded, deterministic schedule of fault injections.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use]
pub struct FaultPlan {
    seed: u64,
    count: usize,
    kinds: Vec<FaultKind>,
}

impl FaultPlan {
    /// A plan of `count` faults drawn uniformly from every class the
    /// target supports, seeded with `seed`.
    pub fn new(seed: u64, count: usize) -> Self {
        Self {
            seed,
            count,
            kinds: FaultKind::ALL.to_vec(),
        }
    }

    /// Restricts the plan to the given fault classes.
    pub fn with_kinds(mut self, kinds: &[FaultKind]) -> Self {
        self.kinds = kinds.to_vec();
        self
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The number of faults the plan attempts.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// The RNG stream the plan draws from — exposed so drivers can apply
    /// plan-coherent faults to state outside any target (e.g. the GHR).
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// Injects the whole plan into `target`, drawing kinds from the
    /// intersection of the plan's classes and the target's supported
    /// classes. Attempts whose class the target does not support — or that
    /// find no live state to corrupt — count as skipped.
    pub fn inject_all(&self, target: &mut dyn FaultTarget) -> InjectionReport {
        let mut rng = self.rng();
        self.inject_with(target, &mut rng)
    }

    /// Like [`FaultPlan::inject_all`] but drawing from a caller-owned RNG,
    /// so repeated rounds over the same plan keep advancing one stream.
    pub fn inject_with(&self, target: &mut dyn FaultTarget, rng: &mut StdRng) -> InjectionReport {
        let usable: Vec<FaultKind> = self
            .kinds
            .iter()
            .copied()
            .filter(|k| target.supported_faults().contains(k))
            .collect();
        let mut report = InjectionReport::default();
        for _ in 0..self.count {
            if usable.is_empty() {
                report.record(FaultKind::Ghr, false);
                continue;
            }
            let kind = usable[rng.gen_range(0..usable.len())];
            let applied = target.inject_fault(kind, rng);
            report.record(kind, applied);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
    use cap_predictor::types::{AddressPredictor, LoadContext};

    fn warmed_hybrid() -> HybridPredictor {
        let mut p = HybridPredictor::new(HybridConfig::paper_default());
        let pattern = [0x1000u64, 0x8800, 0x4800, 0x2800];
        for _ in 0..12 {
            for &a in &pattern {
                let ctx = LoadContext::new(0x400, 0, 0);
                let pred = p.predict(&ctx);
                p.update(&ctx, a, &pred);
            }
        }
        p
    }

    #[test]
    fn same_seed_same_injection_outcome() {
        let plan = FaultPlan::new(42, 50);
        let mut a = warmed_hybrid();
        let mut b = warmed_hybrid();
        assert_eq!(plan.inject_all(&mut a), plan.inject_all(&mut b));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = warmed_hybrid();
        let mut b = warmed_hybrid();
        let ra = FaultPlan::new(1, 200).inject_all(&mut a);
        let rb = FaultPlan::new(2, 200).inject_all(&mut b);
        // Same attempt count, but the per-kind application pattern differs.
        assert_eq!(ra.attempted, rb.attempted);
        assert_ne!(ra.by_kind, rb.by_kind);
    }

    #[test]
    fn restricting_kinds_limits_what_is_applied() {
        let mut p = warmed_hybrid();
        let plan = FaultPlan::new(3, 100).with_kinds(&[FaultKind::LbSelector]);
        let report = plan.inject_all(&mut p);
        assert_eq!(report.by_kind.len(), 1);
        assert_eq!(report.by_kind[0].0, FaultKind::LbSelector);
    }

    #[test]
    fn ghr_kind_is_never_applied_by_targets() {
        let mut p = warmed_hybrid();
        let report = FaultPlan::new(4, 50)
            .with_kinds(&[FaultKind::Ghr])
            .inject_all(&mut p);
        assert_eq!(report.applied, 0);
        assert_eq!(report.skipped, 50);
    }

    #[test]
    fn empty_predictor_skips_cleanly() {
        let mut p = HybridPredictor::new(HybridConfig::paper_default());
        let report = FaultPlan::new(5, 30).inject_all(&mut p);
        assert_eq!(report.applied, 0, "nothing live to corrupt");
        assert_eq!(report.skipped, 30);
    }

    #[test]
    fn flip_random_bit_changes_exactly_one_bit() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..32 {
            let v: u64 = rng.gen();
            let f = flip_random_bit(v, &mut rng);
            assert_eq!((v ^ f).count_ones(), 1);
        }
    }
}
