//! Recovery-time measurement: how long does a faulted predictor take to
//! heal?
//!
//! The paper's resilience story (§3.4–3.5) is that stale or corrupted
//! table state costs a few mispredictions, after which confidence
//! counters, tags and PF bits squeeze the damage back out. This module
//! quantifies that: it drives a *clean* twin and a *faulted* twin of the
//! same predictor over the same trace, injects a [`FaultPlan`] into the
//! faulted twin partway through, and reports how many post-fault loads
//! pass before the faulted twin's windowed correct-speculation rate
//! returns within ε of the clean twin's.

use crate::plan::{FaultPlan, InjectionReport};
use crate::target::FaultTarget;
use cap_predictor::drive::ControlState;
use cap_predictor::types::{AddressPredictor, LoadContext};
use cap_trace::{Trace, TraceEvent};

/// Parameters of a recovery measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Load index (counting only loads) at which the plan is injected.
    pub inject_at: usize,
    /// Sliding-window length, in loads, over which rates are compared.
    pub window: usize,
    /// Maximum allowed |faulty − clean| windowed-rate gap to count as
    /// recovered.
    pub epsilon: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            inject_at: 0,
            window: 256,
            epsilon: 0.02,
        }
    }
}

/// Outcome of a recovery measurement.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct RecoveryReport {
    /// What the plan actually injected.
    pub injection: InjectionReport,
    /// Loads driven after the injection point.
    pub loads_after_fault: usize,
    /// Post-fault loads until the faulted twin's windowed rate re-entered
    /// the ε-band around the clean twin's, or `None` if it never did
    /// within the trace.
    pub recovered_after: Option<usize>,
    /// Clean twin's correct-speculation rate over the post-fault region.
    pub clean_rate: f64,
    /// Faulted twin's correct-speculation rate over the post-fault region.
    pub faulty_rate: f64,
}

/// Per-load correctness tallied the way the paper's coverage metric works:
/// a load scores when a speculative access was launched at the right
/// address.
fn correct_spec<P: AddressPredictor + ?Sized>(
    p: &mut P,
    ctx: &LoadContext,
    actual: u64,
) -> bool {
    let pred = p.predict(ctx);
    let hit = pred.speculate && pred.is_correct(actual);
    p.update(ctx, actual, &pred);
    hit
}

fn windowed_rate(hits: &[bool], end: usize, window: usize) -> f64 {
    let start = end.saturating_sub(window);
    let n = end - start;
    if n == 0 {
        return 0.0;
    }
    hits[start..end].iter().filter(|&&h| h).count() as f64 / n as f64
}

fn region_rate(hits: &[bool], from: usize) -> f64 {
    let n = hits.len().saturating_sub(from);
    if n == 0 {
        return 0.0;
    }
    hits[from..].iter().filter(|&&h| h).count() as f64 / n as f64
}

/// Measures recovery time for `plan` on predictors built by `make`.
///
/// Two twins from `make` run the trace under the immediate-update model;
/// at load [`RecoveryConfig::inject_at`] the plan hits the faulted twin
/// only. Recovery is declared at the first post-fault load where a full
/// [`RecoveryConfig::window`] has elapsed and the twins' windowed
/// correct-speculation rates differ by at most [`RecoveryConfig::epsilon`].
pub fn measure_recovery<P, F>(
    make: F,
    trace: &Trace,
    plan: &FaultPlan,
    cfg: &RecoveryConfig,
) -> RecoveryReport
where
    P: AddressPredictor + FaultTarget,
    F: Fn() -> P,
{
    let mut clean = make();
    let mut faulty = make();
    let mut control = ControlState::default();
    let mut injection = InjectionReport::default();
    let mut clean_hits: Vec<bool> = Vec::new();
    let mut faulty_hits: Vec<bool> = Vec::new();
    let mut injected = false;
    let mut recovered_after = None;

    for event in trace.iter() {
        match event {
            TraceEvent::Load(load) => {
                let load_idx = clean_hits.len();
                if !injected && load_idx >= cfg.inject_at {
                    injection = plan.inject_all(&mut faulty);
                    injected = true;
                }
                let ctx = LoadContext {
                    ip: load.ip,
                    offset: load.offset,
                    ghr: control.ghr,
                    path: control.path,
                    pending: 0,
                };
                clean_hits.push(correct_spec(&mut clean, &ctx, load.addr));
                faulty_hits.push(correct_spec(&mut faulty, &ctx, load.addr));
                if injected && recovered_after.is_none() {
                    let since = clean_hits.len() - cfg.inject_at;
                    if since >= cfg.window {
                        let end = clean_hits.len();
                        let gap = (windowed_rate(&clean_hits, end, cfg.window)
                            - windowed_rate(&faulty_hits, end, cfg.window))
                        .abs();
                        if gap <= cfg.epsilon {
                            recovered_after = Some(since);
                        }
                    }
                }
            }
            TraceEvent::Branch(b) => control.on_branch(b.ip, b.taken, b.kind),
            TraceEvent::Store(_) | TraceEvent::Op(_) => {}
        }
    }
    // Inject even if the trace ran out before the requested point, so the
    // report's injection field is never fabricated-empty.
    if !injected {
        injection = plan.inject_all(&mut faulty);
    }

    RecoveryReport {
        injection,
        loads_after_fault: clean_hits.len().saturating_sub(cfg.inject_at),
        recovered_after,
        clean_rate: region_rate(&clean_hits, cfg.inject_at.min(clean_hits.len())),
        faulty_rate: region_rate(&faulty_hits, cfg.inject_at.min(faulty_hits.len())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
    use cap_trace::suites::catalog;

    fn make() -> HybridPredictor {
        HybridPredictor::new(HybridConfig::paper_default())
    }

    #[test]
    fn no_faults_means_instant_recovery() {
        let trace = catalog()[0].generate(6_000);
        let plan = FaultPlan::new(7, 0); // zero-count plan: twins identical
        let cfg = RecoveryConfig {
            inject_at: 1_000,
            window: 128,
            epsilon: 0.0,
        };
        let report = measure_recovery(make, &trace, &plan, &cfg);
        assert_eq!(report.injection.attempted, 0);
        assert_eq!(report.recovered_after, Some(cfg.window));
        assert!((report.clean_rate - report.faulty_rate).abs() < 1e-12);
    }

    #[test]
    fn faulted_predictor_recovers_within_the_trace() {
        let trace = catalog()[0].generate(20_000);
        let plan = FaultPlan::new(0xFA11, 128);
        let cfg = RecoveryConfig {
            inject_at: 4_000,
            window: 256,
            epsilon: 0.05,
        };
        let report = measure_recovery(make, &trace, &plan, &cfg);
        assert!(report.injection.applied > 0, "plan must land faults");
        let recovered = report
            .recovered_after
            .expect("confidence machinery must heal the tables in-trace");
        assert!(
            recovered <= report.loads_after_fault,
            "recovery point lies within the measured region"
        );
    }

    #[test]
    fn late_inject_point_still_reports_injection() {
        let trace = catalog()[0].generate(2_000);
        let plan = FaultPlan::new(3, 16);
        let cfg = RecoveryConfig {
            inject_at: 1_000_000, // beyond the trace
            window: 64,
            epsilon: 0.05,
        };
        let report = measure_recovery(make, &trace, &plan, &cfg);
        assert_eq!(report.injection.attempted, 16);
        assert_eq!(report.loads_after_fault, 0);
        assert_eq!(report.recovered_after, None);
    }
}
