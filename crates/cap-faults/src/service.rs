//! Service-level fault kinds.
//!
//! [`crate::plan::FaultPlan`] corrupts predictor *state*; this module
//! models the failures a prediction **service** meets in production:
//! worker threads panicking mid-request, latency spikes inside a
//! backend call, and whole-queue stalls. A [`ServiceFaultPlan`] is the
//! same discipline as every other random stream in this workspace — a
//! pure function of a `u64` seed — so a chaos soak that fails is
//! replayable from its seed alone.

use cap_rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Duration;

/// One service-level fault, drawn from a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceFault {
    /// The worker panics inside the backend call for this request. The
    /// service must contain it (`catch_unwind`), answer the request
    /// with a structured error, and charge the breaker.
    WorkerPanic,
    /// The backend call for this request takes this much extra time —
    /// a latency spike that eats deadline budgets.
    Latency(Duration),
    /// The worker stalls this long *before* even looking at its queue,
    /// so the queue backs up and admission control must shed.
    QueueStall(Duration),
}

impl ServiceFault {
    /// Short lowercase name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ServiceFault::WorkerPanic => "worker-panic",
            ServiceFault::Latency(_) => "latency",
            ServiceFault::QueueStall(_) => "queue-stall",
        }
    }
}

/// Per-request fault probabilities and magnitudes.
///
/// Each request draws at most one fault; probabilities are evaluated in
/// the order panic → latency → stall, so the three never stack on one
/// request and `p_panic + p_latency + p_stall` should stay well under 1.
#[derive(Debug, Clone, Copy)]
pub struct ServiceFaultConfig {
    /// Probability a request's backend call panics.
    pub p_panic: f64,
    /// Probability a request's backend call takes a latency hit.
    pub p_latency: f64,
    /// Probability the worker stalls before serving a request.
    pub p_stall: f64,
    /// Injected latency range (uniform, milliseconds).
    pub latency_ms: (u64, u64),
    /// Injected stall range (uniform, milliseconds).
    pub stall_ms: (u64, u64),
}

impl Default for ServiceFaultConfig {
    fn default() -> Self {
        Self {
            p_panic: 0.01,
            p_latency: 0.02,
            p_stall: 0.005,
            latency_ms: (1, 5),
            stall_ms: (5, 20),
        }
    }
}

/// A seeded, deterministic stream of service-level faults.
///
/// Workers call [`ServiceFaultPlan::draw`] once per request; the stream
/// of answers is a pure function of the seed and the call count.
#[derive(Debug)]
pub struct ServiceFaultPlan {
    config: ServiceFaultConfig,
    rng: StdRng,
    injected: u64,
}

impl ServiceFaultPlan {
    /// A plan drawing from `config` with the given seed.
    #[must_use]
    pub fn new(seed: u64, config: ServiceFaultConfig) -> Self {
        Self {
            config,
            rng: StdRng::seed_from_u64(seed),
            injected: 0,
        }
    }

    /// Draws the fault (if any) for the next request.
    pub fn draw(&mut self) -> Option<ServiceFault> {
        let c = self.config;
        let fault = if self.rng.gen_bool(c.p_panic) {
            Some(ServiceFault::WorkerPanic)
        } else if self.rng.gen_bool(c.p_latency) {
            let (lo, hi) = c.latency_ms;
            let ms = self.rng.gen_range(lo..=hi.max(lo));
            Some(ServiceFault::Latency(Duration::from_millis(ms)))
        } else if self.rng.gen_bool(c.p_stall) {
            let (lo, hi) = c.stall_ms;
            let ms = self.rng.gen_range(lo..=hi.max(lo));
            Some(ServiceFault::QueueStall(Duration::from_millis(ms)))
        } else {
            None
        };
        if fault.is_some() {
            self.injected += 1;
        }
        fault
    }

    /// Faults handed out so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(seed: u64, n: usize) -> Vec<Option<ServiceFault>> {
        let mut plan = ServiceFaultPlan::new(seed, ServiceFaultConfig::default());
        (0..n).map(|_| plan.draw()).collect()
    }

    #[test]
    fn same_seed_same_stream() {
        assert_eq!(drain(11, 2_000), drain(11, 2_000));
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(drain(1, 2_000), drain(2, 2_000));
    }

    #[test]
    fn all_kinds_appear_at_default_rates() {
        let faults: Vec<ServiceFault> = drain(3, 10_000).into_iter().flatten().collect();
        assert!(faults.iter().any(|f| matches!(f, ServiceFault::WorkerPanic)));
        assert!(faults.iter().any(|f| matches!(f, ServiceFault::Latency(_))));
        assert!(faults
            .iter()
            .any(|f| matches!(f, ServiceFault::QueueStall(_))));
        // Rates are in a sane band: ~3.5% of 10k, generously bounded.
        assert!(faults.len() > 100 && faults.len() < 1_500);
    }

    #[test]
    fn magnitudes_stay_in_configured_ranges() {
        let config = ServiceFaultConfig {
            p_panic: 0.0,
            p_latency: 0.5,
            p_stall: 0.5,
            latency_ms: (2, 4),
            stall_ms: (7, 9),
        };
        let mut plan = ServiceFaultPlan::new(5, config);
        for _ in 0..2_000 {
            match plan.draw() {
                Some(ServiceFault::Latency(d)) => {
                    assert!((2..=4).contains(&d.as_millis()), "latency {d:?}");
                }
                Some(ServiceFault::QueueStall(d)) => {
                    assert!((7..=9).contains(&d.as_millis()), "stall {d:?}");
                }
                Some(ServiceFault::WorkerPanic) => panic!("p_panic is zero"),
                None => {}
            }
        }
        assert!(plan.injected() > 1_000);
    }

    #[test]
    fn zero_probabilities_inject_nothing() {
        let config = ServiceFaultConfig {
            p_panic: 0.0,
            p_latency: 0.0,
            p_stall: 0.0,
            ..ServiceFaultConfig::default()
        };
        let mut plan = ServiceFaultPlan::new(9, config);
        assert!((0..1_000).all(|_| plan.draw().is_none()));
        assert_eq!(plan.injected(), 0);
    }
}
