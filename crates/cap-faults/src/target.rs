//! The [`FaultTarget`] injection surface and its implementations.
//!
//! The trait lives here (not in `cap-predictor`) so the predictor crate
//! stays free of chaos machinery; `cap-predictor` only exposes the small
//! mutable accessors (`entries_mut`, `corrupt_*`, `*_mut`) these
//! implementations are built from. All injections stay within the physical
//! width of the targeted field — see [`FaultKind`] — so the structural
//! invariants checked by [`FaultTarget::check_invariants`] hold before
//! *and* after any plan.

use crate::invariants::{check_lb_entries, check_lt_entries, check_packed_hybrid, InvariantViolation};
use crate::plan::{flip_random_bit, FaultKind};
use cap_predictor::cap::CapPredictor;
use cap_predictor::hybrid::HybridPredictor;
use cap_predictor::link_table::LinkTable;
use cap_predictor::load_buffer::{LbEntry, LoadBuffer, StrideState};
use cap_predictor::packed::{HistHalf, PackedHybridPredictor, PackedLinkTable, PackedLoadBuffer};
use cap_predictor::stride::StridePredictor;
use cap_rand::{rngs::StdRng, Rng};
use cap_uarch::cache_level::{CacheLevelPredictor, LEVEL_MEMORY};
use cap_uarch::ldbp::LdbpPredictor;
use cap_uarch::pcax::PcaxPredictor;

/// A structure live predictor faults can be injected into.
pub trait FaultTarget {
    /// Short name for reports.
    fn target_name(&self) -> &'static str;

    /// The fault classes this target can apply.
    fn supported_faults(&self) -> &'static [FaultKind];

    /// Attempts to inject one fault of `kind`. Returns `true` when live
    /// state was actually mutated; `false` when there was nothing to
    /// corrupt (empty table, unsupported kind). Must never panic.
    fn inject_fault(&mut self, kind: FaultKind, rng: &mut StdRng) -> bool;

    /// Checks the structural invariants that must hold at all times —
    /// including immediately after any sequence of injected faults.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    fn check_invariants(&self) -> Result<(), InvariantViolation>;
}

/// Fault classes applicable to a Load Buffer entry.
const LB_KINDS: [FaultKind; 6] = [
    FaultKind::LbHistory,
    FaultKind::LbOffset,
    FaultKind::LbConfidence,
    FaultKind::LbCfi,
    FaultKind::LbStride,
    FaultKind::LbSelector,
];

/// Fault classes applicable to Load Buffer entries through a stride-only
/// predictor (the CAP-side fields are dead state there).
const STRIDE_LB_KINDS: [FaultKind; 4] = [
    FaultKind::LbConfidence,
    FaultKind::LbCfi,
    FaultKind::LbStride,
    FaultKind::LbSelector,
];

/// Fault classes applicable to a Link Table.
const LT_KINDS: [FaultKind; 3] = [FaultKind::LtLink, FaultKind::LtTag, FaultKind::LtPf];

/// Every class a two-level predictor (LB + LT) supports.
const FULL_KINDS: [FaultKind; 9] = [
    FaultKind::LbHistory,
    FaultKind::LbOffset,
    FaultKind::LbConfidence,
    FaultKind::LbCfi,
    FaultKind::LbStride,
    FaultKind::LbSelector,
    FaultKind::LtLink,
    FaultKind::LtTag,
    FaultKind::LtPf,
];

fn pick_lb_entry<'a>(lb: &'a mut LoadBuffer, rng: &mut StdRng) -> Option<&'a mut LbEntry> {
    let n = lb.occupancy();
    if n == 0 {
        return None;
    }
    lb.entries_mut().nth(rng.gen_range(0..n))
}

/// Injects one LB-class fault. `offset_bits` bounds offset flips to the
/// configured field width (0 disables offset faults entirely — a
/// zero-width field has no bits to upset).
pub(crate) fn inject_lb(
    lb: &mut LoadBuffer,
    kind: FaultKind,
    offset_bits: u32,
    rng: &mut StdRng,
) -> bool {
    let Some(entry) = pick_lb_entry(lb, rng) else {
        return false;
    };
    match kind {
        FaultKind::LbHistory => {
            let slot = rng.gen::<u32>() as usize;
            let bit = rng.gen_range(0..64u32);
            // Prefer the speculative history half the time, falling back to
            // the architectural one when it is empty.
            if rng.gen_bool(0.5) && entry.spec_history.corrupt_bit(slot, bit) {
                true
            } else {
                entry.history.corrupt_bit(slot, bit)
            }
        }
        FaultKind::LbOffset => {
            if offset_bits == 0 {
                return false;
            }
            entry.offset_lsb ^= 1u32 << rng.gen_range(0..offset_bits);
            true
        }
        FaultKind::LbConfidence => {
            let raw: u8 = rng.gen();
            if rng.gen_bool(0.5) {
                entry.cap_conf.corrupt_value(raw);
            } else {
                entry.stride_conf.corrupt_value(raw);
            }
            true
        }
        FaultKind::LbCfi => {
            let pattern = if rng.gen_bool(0.5) {
                Some(rng.gen::<u64>())
            } else {
                None
            };
            let bits: u64 = rng.gen();
            if rng.gen_bool(0.5) {
                entry.cap_cfi.corrupt(pattern, bits);
            } else {
                entry.stride_cfi.corrupt(pattern, bits);
            }
            true
        }
        FaultKind::LbStride => {
            match rng.gen_range(0..4u32) {
                0 => entry.stride = flip_random_bit(entry.stride as u64, rng) as i64,
                1 => entry.last_addr = flip_random_bit(entry.last_addr, rng),
                2 => {
                    entry.stride_state = [
                        StrideState::Init,
                        StrideState::Transient,
                        StrideState::Steady,
                    ][rng.gen_range(0..3usize)];
                }
                _ => {
                    entry.interval.learned = rng.gen_range(0..64u32);
                    entry.interval.run = rng.gen_range(0..64u32);
                }
            }
            true
        }
        FaultKind::LbSelector => {
            entry.selector = rng.gen_range(0..4u32) as u8;
            true
        }
        _ => false,
    }
}

/// Injects one LT-class fault. `tag_bits` bounds tag flips to the
/// configured tag width (0 disables tag faults — untagged tables store no
/// tag bits to upset).
pub(crate) fn inject_lt(
    lt: &mut LinkTable,
    kind: FaultKind,
    tag_bits: u32,
    rng: &mut StdRng,
) -> bool {
    // Decoupled-PF faults target the side table when one exists.
    if kind == FaultKind::LtPf {
        let slots = lt.decoupled_pf_mut();
        if !slots.is_empty() && rng.gen_bool(0.5) {
            let slot = &mut slots[rng.gen_range(0..slots.len())];
            if rng.gen_bool(0.2) {
                slot.1 = !slot.1;
            } else {
                slot.0 ^= 1u8 << rng.gen_range(0..4u32);
            }
            return true;
        }
    }
    let n = lt.occupancy();
    if n == 0 {
        return false;
    }
    let Some(entry) = lt.entries_mut().nth(rng.gen_range(0..n)) else {
        return false;
    };
    match kind {
        FaultKind::LtLink => {
            entry.link = flip_random_bit(entry.link, rng);
            true
        }
        FaultKind::LtTag => {
            if tag_bits == 0 {
                return false;
            }
            entry.tag ^= 1u64 << rng.gen_range(0..tag_bits);
            true
        }
        FaultKind::LtPf => {
            if rng.gen_bool(0.2) {
                entry.pf_primed = !entry.pf_primed;
            } else {
                entry.pf ^= 1u8 << rng.gen_range(0..4u32);
            }
            true
        }
        _ => false,
    }
}

/// Injects one LB-class fault into a packed Load Buffer. Draw-for-draw
/// identical to [`inject_lb`] so a same-seeded RNG stream perturbs a
/// packed and a legacy predictor identically (the twin-chaos suite
/// depends on this).
pub(crate) fn inject_lb_packed(
    lb: &mut PackedLoadBuffer,
    kind: FaultKind,
    offset_bits: u32,
    rng: &mut StdRng,
) -> bool {
    let n = lb.occupancy();
    if n == 0 {
        return false;
    }
    let Some(idx) = lb.nth_live(rng.gen_range(0..n)) else {
        return false;
    };
    match kind {
        FaultKind::LbHistory => {
            let slot = rng.gen::<u32>() as usize;
            let bit = rng.gen_range(0..64u32);
            // Prefer the speculative history half the time, falling back to
            // the architectural one when it is empty.
            if rng.gen_bool(0.5) && lb.hist_corrupt_bit(idx, HistHalf::Spec, slot, bit) {
                true
            } else {
                lb.hist_corrupt_bit(idx, HistHalf::Arch, slot, bit)
            }
        }
        FaultKind::LbOffset => {
            if offset_bits == 0 {
                return false;
            }
            let v = lb.offset_lsb(idx) ^ (1u32 << rng.gen_range(0..offset_bits));
            lb.set_offset_lsb(idx, v);
            true
        }
        FaultKind::LbConfidence => {
            let raw: u8 = rng.gen();
            if rng.gen_bool(0.5) {
                let mut c = lb.cap_conf(idx);
                c.corrupt_value(raw);
                lb.set_cap_conf_value(idx, c.value());
            } else {
                let mut c = lb.stride_conf(idx);
                c.corrupt_value(raw);
                lb.set_stride_conf_value(idx, c.value());
            }
            true
        }
        FaultKind::LbCfi => {
            let pattern = if rng.gen_bool(0.5) {
                Some(rng.gen::<u64>())
            } else {
                None
            };
            let bits: u64 = rng.gen();
            if rng.gen_bool(0.5) {
                let mut c = lb.cap_cfi(idx);
                c.corrupt(pattern, bits);
                lb.set_cap_cfi(idx, c);
            } else {
                let mut c = lb.stride_cfi(idx);
                c.corrupt(pattern, bits);
                lb.set_stride_cfi(idx, c);
            }
            true
        }
        FaultKind::LbStride => {
            match rng.gen_range(0..4u32) {
                0 => {
                    let v = flip_random_bit(lb.stride(idx) as u64, rng) as i64;
                    lb.set_stride(idx, v);
                }
                1 => {
                    let v = flip_random_bit(lb.last_addr(idx), rng);
                    lb.set_last_addr(idx, v);
                }
                2 => {
                    let s = [
                        StrideState::Init,
                        StrideState::Transient,
                        StrideState::Steady,
                    ][rng.gen_range(0..3usize)];
                    lb.set_stride_state(idx, s);
                }
                _ => {
                    let mut iv = lb.interval(idx);
                    iv.learned = rng.gen_range(0..64u32);
                    iv.run = rng.gen_range(0..64u32);
                    lb.set_interval(idx, iv);
                }
            }
            true
        }
        FaultKind::LbSelector => {
            let v = rng.gen_range(0..4u32) as u8;
            lb.set_selector(idx, v);
            true
        }
        _ => false,
    }
}

/// Injects one LT-class fault into a packed Link Table — draw-for-draw
/// identical to [`inject_lt`].
pub(crate) fn inject_lt_packed(
    lt: &mut PackedLinkTable,
    kind: FaultKind,
    tag_bits: u32,
    rng: &mut StdRng,
) -> bool {
    // Decoupled-PF faults target the side table when one exists.
    if kind == FaultKind::LtPf {
        let slots = lt.decoupled_len();
        if slots != 0 && rng.gen_bool(0.5) {
            let i = rng.gen_range(0..slots);
            let (mut pf, mut primed) = lt.decoupled_slot(i);
            if rng.gen_bool(0.2) {
                primed = !primed;
            } else {
                pf ^= 1u8 << rng.gen_range(0..4u32);
            }
            lt.set_decoupled_slot(i, pf, primed);
            return true;
        }
    }
    let n = lt.occupancy();
    if n == 0 {
        return false;
    }
    let Some(idx) = lt.nth_live(rng.gen_range(0..n)) else {
        return false;
    };
    match kind {
        FaultKind::LtLink => {
            let v = flip_random_bit(lt.link(idx), rng);
            lt.set_link(idx, v);
            true
        }
        FaultKind::LtTag => {
            if tag_bits == 0 {
                return false;
            }
            let v = lt.tag(idx) ^ (1u64 << rng.gen_range(0..tag_bits));
            lt.set_tag(idx, v);
            true
        }
        FaultKind::LtPf => {
            if rng.gen_bool(0.2) {
                let v = !lt.pf_primed(idx);
                lt.set_pf_primed(idx, v);
            } else {
                let v = lt.pf(idx) ^ (1u8 << rng.gen_range(0..4u32));
                lt.set_pf(idx, v);
            }
            true
        }
        _ => false,
    }
}

/// The paper-default widths assumed when a bare table is targeted without
/// its owning predictor's configuration: 8 offset LSBs (§3.3) and 8 LT tag
/// bits (§3.4).
const DEFAULT_OFFSET_BITS: u32 = 8;
const DEFAULT_TAG_BITS: u32 = 8;

impl FaultTarget for LoadBuffer {
    fn target_name(&self) -> &'static str {
        "load-buffer"
    }

    fn supported_faults(&self) -> &'static [FaultKind] {
        &LB_KINDS
    }

    fn inject_fault(&mut self, kind: FaultKind, rng: &mut StdRng) -> bool {
        inject_lb(self, kind, DEFAULT_OFFSET_BITS, rng)
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        // Width-dependent bounds (offset field, history length) belong to
        // the owning predictor's configuration; a bare LB checks the
        // config-independent invariants.
        check_lb_entries(self.entries(), "load-buffer", None, None)
    }
}

impl FaultTarget for LinkTable {
    fn target_name(&self) -> &'static str {
        "link-table"
    }

    fn supported_faults(&self) -> &'static [FaultKind] {
        &LT_KINDS
    }

    fn inject_fault(&mut self, kind: FaultKind, rng: &mut StdRng) -> bool {
        inject_lt(self, kind, DEFAULT_TAG_BITS, rng)
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        check_lt_entries(self, "link-table", None)
    }
}

impl FaultTarget for CapPredictor {
    fn target_name(&self) -> &'static str {
        "cap"
    }

    fn supported_faults(&self) -> &'static [FaultKind] {
        &FULL_KINDS
    }

    fn inject_fault(&mut self, kind: FaultKind, rng: &mut StdRng) -> bool {
        let params = *self.component().params();
        if LT_KINDS.contains(&kind) {
            inject_lt(self.link_table_mut(), kind, params.history.tag_bits, rng)
        } else {
            inject_lb(self.load_buffer_mut(), kind, params.offset_lsb_bits, rng)
        }
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let params = self.component().params();
        check_lb_entries(
            self.load_buffer().entries(),
            "cap/load-buffer",
            Some(params.offset_lsb_bits),
            Some(params.history.length),
        )?;
        check_lt_entries(self.link_table(), "cap/link-table", Some(params.history.tag_bits))
    }
}

impl FaultTarget for HybridPredictor {
    fn target_name(&self) -> &'static str {
        "hybrid"
    }

    fn supported_faults(&self) -> &'static [FaultKind] {
        &FULL_KINDS
    }

    fn inject_fault(&mut self, kind: FaultKind, rng: &mut StdRng) -> bool {
        let params = *self.cap_component().params();
        if LT_KINDS.contains(&kind) {
            inject_lt(
                self.cap_component_mut().link_table_mut(),
                kind,
                params.history.tag_bits,
                rng,
            )
        } else {
            inject_lb(self.load_buffer_mut(), kind, params.offset_lsb_bits, rng)
        }
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let params = self.cap_component().params();
        check_lb_entries(
            self.load_buffer().entries(),
            "hybrid/load-buffer",
            Some(params.offset_lsb_bits),
            Some(params.history.length),
        )?;
        check_lt_entries(
            self.cap_component().link_table(),
            "hybrid/link-table",
            Some(params.history.tag_bits),
        )
    }
}

impl FaultTarget for PackedHybridPredictor {
    fn target_name(&self) -> &'static str {
        "packed-hybrid"
    }

    fn supported_faults(&self) -> &'static [FaultKind] {
        &FULL_KINDS
    }

    fn inject_fault(&mut self, kind: FaultKind, rng: &mut StdRng) -> bool {
        let params = *self.cap_params();
        if LT_KINDS.contains(&kind) {
            inject_lt_packed(self.link_table_mut(), kind, params.history.tag_bits, rng)
        } else {
            inject_lb_packed(self.load_buffer_mut(), kind, params.offset_lsb_bits, rng)
        }
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        check_packed_hybrid(self)
    }
}

impl FaultTarget for StridePredictor {
    fn target_name(&self) -> &'static str {
        "stride"
    }

    fn supported_faults(&self) -> &'static [FaultKind] {
        &STRIDE_LB_KINDS
    }

    fn inject_fault(&mut self, kind: FaultKind, rng: &mut StdRng) -> bool {
        if !STRIDE_LB_KINDS.contains(&kind) {
            return false;
        }
        // Offset width is irrelevant here: LbOffset is not in the
        // supported set (the stride side never reads the offset field).
        inject_lb(self.load_buffer_mut(), kind, 0, rng)
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        check_lb_entries(self.load_buffer().entries(), "stride/load-buffer", None, None)
    }
}

impl FaultTarget for CacheLevelPredictor {
    fn target_name(&self) -> &'static str {
        "cache-level"
    }

    fn supported_faults(&self) -> &'static [FaultKind] {
        &STRIDE_LB_KINDS
    }

    fn inject_fault(&mut self, kind: FaultKind, rng: &mut StdRng) -> bool {
        if !STRIDE_LB_KINDS.contains(&kind) {
            return false;
        }
        // Addresses come from the inner stride component; the level
        // table is 2-bit-saturating side state with no width to corrupt
        // beyond what LbConfidence already exercises.
        inject_lb(self.load_buffer_mut(), kind, 0, rng)
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        check_lb_entries(self.load_buffer().entries(), "cache-level/load-buffer", None, None)?;
        for (i, &e) in self.level_table().iter().enumerate() {
            if e >> 4 != 0 || (e & 0b11) > LEVEL_MEMORY {
                return Err(InvariantViolation {
                    target: "cache-level",
                    detail: format!("level table entry {i} out of width: {e:#04x}"),
                });
            }
        }
        Ok(())
    }
}

impl FaultTarget for LdbpPredictor {
    fn target_name(&self) -> &'static str {
        "ldbp"
    }

    fn supported_faults(&self) -> &'static [FaultKind] {
        &FULL_KINDS
    }

    fn inject_fault(&mut self, kind: FaultKind, rng: &mut StdRng) -> bool {
        let hybrid = self.hybrid_mut();
        let params = *hybrid.cap_component().params();
        if LT_KINDS.contains(&kind) {
            inject_lt(
                hybrid.cap_component_mut().link_table_mut(),
                kind,
                params.history.tag_bits,
                rng,
            )
        } else {
            inject_lb(hybrid.load_buffer_mut(), kind, params.offset_lsb_bits, rng)
        }
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let params = self.hybrid().cap_component().params();
        check_lb_entries(
            self.load_buffer().entries(),
            "ldbp/load-buffer",
            Some(params.offset_lsb_bits),
            Some(params.history.length),
        )?;
        check_lt_entries(
            self.hybrid().cap_component().link_table(),
            "ldbp/link-table",
            Some(params.history.tag_bits),
        )?;
        if let Some((i, &e)) = self.branch_table().iter().enumerate().find(|&(_, &e)| e > 3) {
            return Err(InvariantViolation {
                target: "ldbp",
                detail: format!("branch confidence {i} out of 2-bit width: {e}"),
            });
        }
        Ok(())
    }
}

impl FaultTarget for PcaxPredictor {
    fn target_name(&self) -> &'static str {
        "pcax"
    }

    fn supported_faults(&self) -> &'static [FaultKind] {
        &STRIDE_LB_KINDS
    }

    fn inject_fault(&mut self, kind: FaultKind, rng: &mut StdRng) -> bool {
        if !STRIDE_LB_KINDS.contains(&kind) {
            return false;
        }
        // The TLB only caches translations the demand path re-fills;
        // corrupting the address stream through the LB is the fault
        // surface that actually exercises the assist.
        inject_lb(self.load_buffer_mut(), kind, 0, rng)
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        check_lb_entries(self.load_buffer().entries(), "pcax/load-buffer", None, None)?;
        let tlb = self.tlb();
        if tlb.occupancy() > tlb.config().entries as u64 {
            return Err(InvariantViolation {
                target: "pcax",
                detail: format!(
                    "tlb occupancy {} exceeds capacity {}",
                    tlb.occupancy(),
                    tlb.config().entries
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_predictor::cap::CapConfig;
    use cap_predictor::hybrid::HybridConfig;
    use cap_predictor::load_buffer::LoadBufferConfig;
    use cap_predictor::stride::StrideParams;
    use cap_predictor::types::{AddressPredictor, LoadContext};
    use cap_rand::SeedableRng;

    fn warm<P: AddressPredictor>(p: &mut P) {
        let pattern = [0x1000u64, 0x8800, 0x4800, 0x2800];
        for _ in 0..12 {
            for (i, &a) in pattern.iter().enumerate() {
                let ctx = LoadContext::new(0x400 + (i as u64 % 2) * 4, 8, 0);
                let pred = p.predict(&ctx);
                p.update(&ctx, a, &pred);
            }
        }
    }

    fn drives_every_kind<T: FaultTarget>(target: &mut T, expect_any: bool) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut any = false;
        for &kind in target.supported_faults() {
            for _ in 0..16 {
                any |= target.inject_fault(kind, &mut rng);
            }
            target
                .check_invariants()
                .unwrap_or_else(|v| panic!("invariant violated after {kind:?}: {v}"));
        }
        assert_eq!(any, expect_any);
    }

    #[test]
    fn cap_supports_and_survives_every_kind() {
        let mut p = CapPredictor::new(CapConfig::paper_default());
        warm(&mut p);
        drives_every_kind(&mut p, true);
    }

    #[test]
    fn hybrid_supports_and_survives_every_kind() {
        let mut p = HybridPredictor::new(HybridConfig::paper_default());
        warm(&mut p);
        drives_every_kind(&mut p, true);
    }

    #[test]
    fn packed_hybrid_supports_and_survives_every_kind() {
        let mut p = PackedHybridPredictor::new(HybridConfig::paper_default());
        warm(&mut p);
        drives_every_kind(&mut p, true);
    }

    #[test]
    fn packed_and_legacy_hybrid_take_identical_fault_streams() {
        // Same-seeded RNG streams must produce the same injection results
        // AND leave both predictors making the same predictions — this is
        // the property the twin-chaos suite scales up.
        let mut legacy = HybridPredictor::new(HybridConfig::paper_default());
        let mut packed = PackedHybridPredictor::new(HybridConfig::paper_default());
        warm(&mut legacy);
        warm(&mut packed);
        let mut rng_l = StdRng::seed_from_u64(77);
        let mut rng_p = StdRng::seed_from_u64(77);
        for &kind in &FULL_KINDS {
            for _ in 0..16 {
                let a = legacy.inject_fault(kind, &mut rng_l);
                let b = packed.inject_fault(kind, &mut rng_p);
                assert_eq!(a, b, "injection result diverged for {kind:?}");
            }
        }
        for i in 0..400u64 {
            let ctx = LoadContext::new(0x400 + (i % 2) * 4, 8, i / 3);
            let pl = legacy.predict(&ctx);
            let pp = packed.predict(&ctx);
            assert_eq!(pl, pp, "prediction diverged at step {i} after faults");
            let addr = 0x1000 + i * 8;
            legacy.update(&ctx, addr, &pl);
            packed.update(&ctx, addr, &pp);
        }
        legacy.check_invariants().expect("legacy invariants hold");
        packed.check_invariants().expect("packed invariants hold");
    }

    #[test]
    fn stride_supports_and_survives_every_kind() {
        let mut p = StridePredictor::new(
            LoadBufferConfig::paper_default(),
            StrideParams::paper_default(),
        );
        warm(&mut p);
        drives_every_kind(&mut p, true);
    }

    #[test]
    fn cache_level_supports_and_survives_every_kind() {
        let mut p = CacheLevelPredictor::new(cap_uarch::cache_level::CacheLevelConfig::paper_default());
        warm(&mut p);
        drives_every_kind(&mut p, true);
    }

    #[test]
    fn ldbp_supports_and_survives_every_kind() {
        let mut p = LdbpPredictor::new(cap_uarch::ldbp::LdbpConfig::paper_default());
        warm(&mut p);
        drives_every_kind(&mut p, true);
    }

    #[test]
    fn pcax_supports_and_survives_every_kind() {
        let mut p = PcaxPredictor::new(cap_uarch::pcax::PcaxConfig::paper_default());
        warm(&mut p);
        drives_every_kind(&mut p, true);
    }

    #[test]
    fn bare_tables_are_targets_too() {
        let mut p = HybridPredictor::new(HybridConfig::paper_default());
        warm(&mut p);
        drives_every_kind(p.load_buffer_mut(), true);
        drives_every_kind(p.cap_component_mut().link_table_mut(), true);
    }

    #[test]
    fn empty_targets_apply_nothing() {
        let mut p = CapPredictor::new(CapConfig::paper_default());
        drives_every_kind(&mut p, false);
    }

    #[test]
    fn faulted_predictor_still_predicts_and_updates() {
        let mut p = HybridPredictor::new(HybridConfig::paper_default());
        warm(&mut p);
        let mut rng = StdRng::seed_from_u64(21);
        for &kind in p.supported_faults() {
            for _ in 0..8 {
                p.inject_fault(kind, &mut rng);
            }
        }
        // Predict/update across garbage GHR values too: must not panic.
        for i in 0..200u64 {
            let ctx = LoadContext::new(0x400, 8, rng.gen());
            let pred = p.predict(&ctx);
            p.update(&ctx, 0x1000 + i * 8, &pred);
        }
        p.check_invariants().expect("post-run invariants hold");
    }
}
