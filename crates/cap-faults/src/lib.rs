//! # cap-faults — fault injection & resilience layer
//!
//! The paper's whole confidence apparatus — saturating counters,
//! control-flow indications, LT tags, pollution-free bits — exists so the
//! predictors keep working when their tables hold stale or colliding state
//! (§3.4–3.5). This crate turns that claim into machinery:
//!
//! * [`plan::FaultPlan`] — a seeded, fully deterministic plan of bit flips
//!   over live predictor state (LB histories and offsets, LT links/tags/PF
//!   bits, confidence counters, stride entries, the GHR),
//! * [`target::FaultTarget`] — the injection surface, implemented for
//!   [`cap_predictor::cap::CapPredictor`],
//!   [`cap_predictor::hybrid::HybridPredictor`],
//!   [`cap_predictor::stride::StridePredictor`],
//!   [`cap_predictor::load_buffer::LoadBuffer`] and
//!   [`cap_predictor::link_table::LinkTable`],
//! * [`invariants`] — the structural invariants that must survive any
//!   injected fault (counters in range, tags/PF bits in width, selectors
//!   2-bit), and
//! * [`recovery`] — measurement of how many loads a faulted predictor
//!   needs before its prediction rate returns within ε of a fault-free
//!   twin, and
//! * [`net`] — a seeded fault-injecting TCP proxy ([`net::ChaosProxy`])
//!   for partitions, latency, resets, truncation, garbling, and
//!   slow-loris against the fleet's wire protocol, and
//! * [`fs`] — an injectable virtual filesystem ([`fs::Vfs`]) with a
//!   passthrough [`fs::RealVfs`] and a seeded [`fs::ChaosVfs`] (short
//!   writes, ENOSPC, EIO-on-fsync, fsync lies, rename failures, read
//!   bitrot, dir-listing omission, and simulated crash-points) for the
//!   checkpoint/journal durability layer.
//!
//! ## Quick start
//!
//! ```
//! use cap_faults::prelude::*;
//! use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
//! use cap_predictor::drive::Session;
//! use cap_trace::suites::catalog;
//!
//! let trace = catalog()[0].generate(4_000);
//! let mut p = HybridPredictor::new(HybridConfig::paper_default());
//! Session::new(&mut p).run(&trace); // warm it up
//!
//! let plan = FaultPlan::new(0xC0FFEE, 64);
//! let report = plan.inject_all(&mut p);
//! assert!(report.applied > 0);
//! check_invariants(&p).expect("faults stay inside structural bounds");
//! Session::new(&mut p).run(&trace); // must not panic
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fs;
pub mod invariants;
pub mod net;
pub mod plan;
pub mod recovery;
pub mod service;
pub mod snapshot;
pub mod target;

/// Commonly used items, for glob import in tests and examples.
pub mod prelude {
    pub use crate::fs::{ChaosVfs, FsFaultConfig, FsFaultKind, FsFaultStats, RealVfs, Vfs};
    pub use crate::invariants::{check_invariants, InvariantViolation};
    pub use crate::net::{
        ChaosProxy, NetFault, NetFaultConfig, NetFaultPlan, NetFaultStats, PartitionMode,
    };
    pub use crate::plan::{FaultKind, FaultPlan, InjectionReport};
    pub use crate::recovery::{measure_recovery, RecoveryConfig, RecoveryReport};
    pub use crate::service::{ServiceFault, ServiceFaultConfig, ServiceFaultPlan};
    pub use crate::snapshot::{corrupt_snapshot, SnapshotMutationKind};
    pub use crate::target::FaultTarget;
}
