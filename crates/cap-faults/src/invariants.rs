//! Structural invariants that must survive any injected fault.
//!
//! Because every [`crate::plan::FaultKind`] models a bit upset *within the
//! physical width* of its field, these invariants hold by construction on
//! a correct implementation — a violation means the injector (or the
//! predictor's own mutation paths) wrote outside a field's width, which is
//! exactly the class of bug the chaos suite exists to catch.

use crate::target::FaultTarget;
use cap_predictor::link_table::LinkTable;
use cap_predictor::load_buffer::LbEntry;
use cap_predictor::packed::PackedHybridPredictor;
use std::error::Error;
use std::fmt;

/// A violated structural invariant: which target, and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Name of the violating target (see [`FaultTarget::target_name`]).
    pub target: &'static str,
    /// Human-readable description of the violated invariant.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant violated in {}: {}", self.target, self.detail)
    }
}

impl Error for InvariantViolation {}

/// Checks a target's structural invariants (free-function spelling of
/// [`FaultTarget::check_invariants`], convenient in asserts and doctests).
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn check_invariants<T: FaultTarget + ?Sized>(target: &T) -> Result<(), InvariantViolation> {
    target.check_invariants()
}

fn violation(target: &'static str, detail: String) -> InvariantViolation {
    InvariantViolation { target, detail }
}

/// Width-independent and (optionally) width-aware checks over Load Buffer
/// entries. `offset_bits`/`history_len` come from the owning predictor's
/// parameters when known; `None` skips the corresponding bound.
pub(crate) fn check_lb_entries<'a>(
    entries: impl Iterator<Item = &'a LbEntry>,
    target: &'static str,
    offset_bits: Option<u32>,
    history_len: Option<usize>,
) -> Result<(), InvariantViolation> {
    for e in entries {
        for (name, conf) in [("cap", &e.cap_conf), ("stride", &e.stride_conf)] {
            if conf.value() > conf.max() {
                return Err(violation(
                    target,
                    format!(
                        "{name} confidence counter out of range at ip {:#x}: {} > max {}",
                        e.tag,
                        conf.value(),
                        conf.max()
                    ),
                ));
            }
        }
        if e.selector > 3 {
            return Err(violation(
                target,
                format!("selector not 2-bit at ip {:#x}: {}", e.tag, e.selector),
            ));
        }
        if let Some(bits) = offset_bits {
            if bits < 32 && u64::from(e.offset_lsb) >= (1u64 << bits) {
                return Err(violation(
                    target,
                    format!(
                        "offset LSBs wider than {bits} bits at ip {:#x}: {:#x}",
                        e.tag, e.offset_lsb
                    ),
                ));
            }
        }
        if let Some(len) = history_len {
            for (name, hist) in [("architectural", &e.history), ("speculative", &e.spec_history)] {
                if hist.len() > len {
                    return Err(violation(
                        target,
                        format!(
                            "{name} history longer than spec ({}) at ip {:#x}: {}",
                            len,
                            e.tag,
                            hist.len()
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Link Table checks: PF bits stay 4-bit, tags stay within the configured
/// tag width (when known), occupancy never exceeds capacity.
pub(crate) fn check_lt_entries(
    lt: &LinkTable,
    target: &'static str,
    tag_bits: Option<u32>,
) -> Result<(), InvariantViolation> {
    if lt.occupancy() > lt.config().entries {
        return Err(violation(
            target,
            format!(
                "occupancy {} exceeds capacity {}",
                lt.occupancy(),
                lt.config().entries
            ),
        ));
    }
    for e in lt.entries() {
        if e.pf > 0xF {
            return Err(violation(
                target,
                format!("PF bits not 4-bit: {:#x} (link {:#x})", e.pf, e.link),
            ));
        }
        if let Some(bits) = tag_bits {
            if bits < 64 && e.tag >= (1u64 << bits) {
                return Err(violation(
                    target,
                    format!("tag wider than {bits} bits: {:#x}", e.tag),
                ));
            }
        }
    }
    Ok(())
}

/// Packed-table checks: the same bounds as [`check_lb_entries`] /
/// [`check_lt_entries`], read through the packed accessors. The raw field
/// values are checked (not the reconstructed counters, whose constructors
/// would mask an out-of-range value back into range and hide the bug).
pub(crate) fn check_packed_hybrid(p: &PackedHybridPredictor) -> Result<(), InvariantViolation> {
    let lb = p.load_buffer();
    let proto = lb.proto();
    let offset_bits = lb.offset_bits();
    let hist_len = lb.history_spec().length;
    for idx in lb.live_indices() {
        let ip = lb.tag(idx);
        for (name, raw, max) in [
            ("cap", lb.cap_conf_value(idx), proto.cap_conf.max()),
            ("stride", lb.stride_conf_value(idx), proto.stride_conf.max()),
        ] {
            if raw > max {
                return Err(violation(
                    "packed-hybrid/load-buffer",
                    format!("{name} confidence counter out of range at ip {ip:#x}: {raw} > max {max}"),
                ));
            }
        }
        if lb.selector(idx) > 3 {
            return Err(violation(
                "packed-hybrid/load-buffer",
                format!("selector not 2-bit at ip {ip:#x}: {}", lb.selector(idx)),
            ));
        }
        if offset_bits < 32 && u64::from(lb.offset_lsb(idx)) >= (1u64 << offset_bits) {
            return Err(violation(
                "packed-hybrid/load-buffer",
                format!(
                    "offset LSBs wider than {offset_bits} bits at ip {ip:#x}: {:#x}",
                    lb.offset_lsb(idx)
                ),
            ));
        }
        for (name, half) in [
            ("architectural", cap_predictor::packed::HistHalf::Arch),
            ("speculative", cap_predictor::packed::HistHalf::Spec),
        ] {
            if lb.hist_len(idx, half) > hist_len {
                return Err(violation(
                    "packed-hybrid/load-buffer",
                    format!(
                        "{name} history longer than spec ({hist_len}) at ip {ip:#x}: {}",
                        lb.hist_len(idx, half)
                    ),
                ));
            }
        }
    }
    let lt = p.link_table();
    if lt.occupancy() > lt.config().entries {
        return Err(violation(
            "packed-hybrid/link-table",
            format!(
                "occupancy {} exceeds capacity {}",
                lt.occupancy(),
                lt.config().entries
            ),
        ));
    }
    let tag_bits = lt.tag_bits();
    for idx in lt.live_indices() {
        if lt.pf(idx) > 0xF {
            return Err(violation(
                "packed-hybrid/link-table",
                format!("PF bits not 4-bit: {:#x} (link {:#x})", lt.pf(idx), lt.link(idx)),
            ));
        }
        if tag_bits < 64 && lt.tag(idx) >= (1u64 << tag_bits) {
            return Err(violation(
                "packed-hybrid/link-table",
                format!("tag wider than {tag_bits} bits: {:#x}", lt.tag(idx)),
            ));
        }
    }
    for i in 0..lt.decoupled_len() {
        let (pf, _) = lt.decoupled_slot(i);
        if pf > 0xF {
            return Err(violation(
                "packed-hybrid/link-table",
                format!("decoupled PF bits not 4-bit at slot {i}: {pf:#x}"),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_predictor::cap::{CapConfig, CapPredictor};

    #[test]
    fn violation_displays_target_and_detail() {
        let v = violation("cap", "selector not 2-bit".to_string());
        let s = v.to_string();
        assert!(s.contains("cap") && s.contains("selector"), "got: {s}");
    }

    #[test]
    fn fresh_predictor_passes() {
        let p = CapPredictor::new(CapConfig::paper_default());
        check_invariants(&p).expect("fresh predictor has no violations");
    }

    #[test]
    fn out_of_width_state_is_caught() {
        let mut p = CapPredictor::new(CapConfig::paper_default());
        // Plant a live entry, then push its selector out of width through
        // the raw field — exactly what the injector must never do.
        use cap_predictor::types::{AddressPredictor, LoadContext};
        let ctx = LoadContext::new(0x400, 0, 0);
        let pred = p.predict(&ctx);
        p.update(&ctx, 0x1000, &pred);
        if let Some(e) = p.load_buffer_mut().entries_mut().next() {
            e.selector = 7;
        }
        let err = check_invariants(&p).expect_err("7 is not a 2-bit selector");
        assert!(err.detail.contains("selector"), "got: {err}");
    }
}
