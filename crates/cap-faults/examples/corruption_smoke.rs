//! Corruption smoke run: 1 000 seeded mutations of a serialized trace
//! through both parsers. Exits nonzero (panics) if either parser panics,
//! the strict parser returns anything but a structured result, or the
//! lenient parser fails on in-memory input. Wired into `scripts/verify.sh`
//! as the `faults` gate.

use cap_rand::{rngs::StdRng, SeedableRng};
use cap_trace::corrupt::{corrupt, CorruptionKind};
use cap_trace::io::{read_trace, read_trace_lenient, write_trace};
use cap_trace::suites::catalog;

fn main() {
    let trace = catalog()[0].generate(500);
    let mut bytes = Vec::new();
    write_trace(&mut bytes, &trace).expect("serialize");

    let mut rng = StdRng::seed_from_u64(0x5140_CE55);
    let mut ok = 0usize;
    let mut structured_errors = 0usize;
    let mut by_kind = [0usize; 4];
    for _ in 0..1_000 {
        let (mutated, kind) = corrupt(&bytes, &mut rng);
        by_kind[CorruptionKind::ALL.iter().position(|&k| k == kind).unwrap()] += 1;
        match read_trace(mutated.as_slice()) {
            Ok(_) => ok += 1,
            Err(_) => structured_errors += 1,
        }
        let lenient =
            read_trace_lenient(mutated.as_slice()).expect("lenient parse of in-memory bytes");
        assert!(
            lenient.trace.len() <= trace.len(),
            "corruption must never create events"
        );
    }
    println!(
        "corruption smoke: 1000 mutations, {ok} still parse, {structured_errors} structured \
         errors, 0 panics (kinds {by_kind:?})"
    );
    assert_eq!(ok + structured_errors, 1_000);
}
