//! Corruption smoke run: 1 000 seeded mutations of a serialized trace
//! through both parsers, plus 1 000 seeded mutations of a snapshot archive
//! through the checkpoint loader. Exits nonzero (panics) if any parser or
//! loader panics, returns anything but a structured result, or the
//! lenient parser fails on in-memory input. Wired into `scripts/verify.sh`
//! as the `faults` gate.

use cap_faults::snapshot::{corrupt_snapshot, SnapshotMutationKind};
use cap_predictor::drive::Session;
use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
use cap_rand::{rngs::StdRng, SeedableRng};
use cap_snapshot::{SnapshotArchive, SnapshotBuilder};
use cap_trace::corrupt::{corrupt, CorruptionKind};
use cap_trace::io::{read_trace, read_trace_lenient, write_trace};
use cap_trace::suites::catalog;

fn trace_smoke() {
    let trace = catalog()[0].generate(500);
    let mut bytes = Vec::new();
    write_trace(&mut bytes, &trace).expect("serialize");

    let mut rng = StdRng::seed_from_u64(0x5140_CE55);
    let mut ok = 0usize;
    let mut structured_errors = 0usize;
    let mut by_kind = [0usize; 4];
    for _ in 0..1_000 {
        let (mutated, kind) = corrupt(&bytes, &mut rng);
        by_kind[CorruptionKind::ALL.iter().position(|&k| k == kind).unwrap()] += 1;
        match read_trace(mutated.as_slice()) {
            Ok(_) => ok += 1,
            Err(_) => structured_errors += 1,
        }
        let lenient =
            read_trace_lenient(mutated.as_slice()).expect("lenient parse of in-memory bytes");
        assert!(
            lenient.trace.len() <= trace.len(),
            "corruption must never create events"
        );
    }
    println!(
        "corruption smoke: 1000 trace mutations, {ok} still parse, {structured_errors} \
         structured errors, 0 panics (kinds {by_kind:?})"
    );
    assert_eq!(ok + structured_errors, 1_000);
}

fn snapshot_smoke() {
    let trace = catalog()[1].generate(4_000);
    let mut p = HybridPredictor::new(HybridConfig::paper_default());
    let stats = Session::new(&mut p).run(&trace);
    let mut b = SnapshotBuilder::new();
    b.add("predictor", &p);
    b.add("stats", &stats);
    let bytes = b.finish();

    let mut rng = StdRng::seed_from_u64(0x5140_CE56);
    let mut ok = 0usize;
    let mut structured_errors = 0usize;
    let mut by_kind = [0usize; SnapshotMutationKind::ALL.len()];
    for _ in 0..1_000 {
        let (mutated, kind) = corrupt_snapshot(&bytes, &mut rng);
        by_kind[SnapshotMutationKind::ALL.iter().position(|&k| k == kind).unwrap()] += 1;
        match SnapshotArchive::parse(&mutated) {
            Ok(archive) => {
                ok += 1;
                // Restoring from surviving framing must also be panic-free.
                let _ = archive.restore::<HybridPredictor>("predictor");
            }
            Err(e) => {
                structured_errors += 1;
                assert!(!e.to_string().is_empty(), "errors must self-describe");
            }
        }
    }
    println!(
        "corruption smoke: 1000 snapshot mutations, {ok} still parse, {structured_errors} \
         structured errors, 0 panics (kinds {by_kind:?})"
    );
    assert_eq!(ok + structured_errors, 1_000);
}

fn main() {
    trace_smoke();
    snapshot_smoke();
}
