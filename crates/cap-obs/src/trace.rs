//! Structured trace events.
//!
//! An event is a point observation (`Mark`) or one edge of a span
//! (`SpanBegin`/`SpanEnd`). Events carry a registry-allocated sequence
//! number and a caller-supplied value — never a wall-clock timestamp —
//! so a seeded run produces the same trace every time it is replayed.

use std::fmt;

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A point event.
    Mark,
    /// The opening edge of a span.
    SpanBegin,
    /// The closing edge of a span.
    SpanEnd,
}

impl EventKind {
    /// Stable wire encoding.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Self::Mark => 0,
            Self::SpanBegin => 1,
            Self::SpanEnd => 2,
        }
    }

    /// Inverse of [`EventKind::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Self::Mark),
            1 => Some(Self::SpanBegin),
            2 => Some(Self::SpanEnd),
            _ => None,
        }
    }

    /// Short name for renderings.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Mark => "mark",
            Self::SpanBegin => "begin",
            Self::SpanEnd => "end",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number, allocated under the registry lock.
    pub seq: u64,
    /// Event name (dot-separated, like metric names).
    pub name: String,
    /// Point event or span edge.
    pub kind: EventKind,
    /// Caller-supplied payload (a count, an index, a state code — by
    /// the determinism rules, never a clock reading).
    pub value: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_roundtrip() {
        for kind in [EventKind::Mark, EventKind::SpanBegin, EventKind::SpanEnd] {
            assert_eq!(EventKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(EventKind::from_code(3), None);
    }
}
