//! Log-bucketed value histograms.
//!
//! One bucket per power of two: bucket 0 holds the value 0, bucket `b`
//! (1..=64) holds values in `[2^(b-1), 2^b)`. That gives constant-time
//! recording, a fixed 65-slot footprint regardless of value range, and
//! quantiles that are exact to within a factor of two — the right
//! trade for latency distributions where the *order of magnitude* of
//! the tail is what matters.
//!
//! All arithmetic is integer; quantile extraction never touches
//! floating point, so exports are bit-stable across platforms.

/// Number of buckets: value 0, plus one per leading-zero count.
pub const BUCKETS: usize = 65;

/// A log-bucketed histogram of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
#[must_use]
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_of(value)] += 1;
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 { 0 } else { self.min }
    }

    /// Largest observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The quantile at `permille`/1000, e.g. `quantile_permille(990)`
    /// is p99. Returns the upper bound of the bucket holding the
    /// target rank, clamped into `[min, max]` so the answer is always
    /// a value the histogram could actually have seen. 0 when empty.
    #[must_use]
    pub fn quantile_permille(&self, permille: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let permille = permille.min(1000);
        // Rank of the target observation, 1-based, rounded up.
        let target = ((u128::from(self.count) * u128::from(permille)).div_ceil(1000) as u64)
            .clamp(1, self.count);
        let mut cumulative = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                let upper = if b == 0 {
                    0
                } else if b >= 64 {
                    u64::MAX
                } else {
                    (1u64 << b) - 1
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile_permille(500)
    }

    /// p90.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile_permille(900)
    }

    /// p99.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile_permille(990)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
    }

    /// The export form: only populated buckets, as `(index, count)`.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n != 0)
                .map(|(b, &n)| (b as u8, n))
                .collect(),
        }
    }
}

/// The sparse export form of a [`Histogram`]: populated buckets only.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// `(bucket index, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Rebuilds a dense histogram (inverse of [`Histogram::snapshot`]).
    /// Out-of-range bucket indices are ignored — a snapshot decoded
    /// from hostile bytes must not panic here.
    #[must_use]
    pub fn to_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        h.count = self.count;
        h.sum = self.sum;
        h.min = if self.count == 0 { u64::MAX } else { self.min };
        h.max = self.max;
        for &(b, n) in &self.buckets {
            if let Some(slot) = h.buckets.get_mut(b as usize) {
                *slot = n;
            }
        }
        h
    }

    /// Quantile on the snapshot, identical to the dense histogram's.
    #[must_use]
    pub fn quantile_permille(&self, permille: u64) -> u64 {
        self.to_histogram().quantile_permille(permille)
    }

    /// Median (p50).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile_permille(500)
    }

    /// p90.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile_permille(900)
    }

    /// p99.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile_permille(990)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn single_value_quantiles_are_that_value() {
        let mut h = Histogram::new();
        h.record(37);
        // Bucket upper bound is 63, but clamping to [min, max] pins it.
        assert_eq!(h.p50(), 37);
        assert_eq!(h.p99(), 37);
        assert_eq!(h.min(), 37);
        assert_eq!(h.max(), 37);
    }

    #[test]
    fn tail_quantile_lands_in_the_tail_bucket() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket 4, upper bound 15
        }
        h.record(5000); // bucket 13
        assert_eq!(h.p50(), 15);
        assert_eq!(h.p90(), 15);
        // p99 rank is ceil(100 * 990 / 1000) = 99 → still the body.
        assert_eq!(h.p99(), 15);
        assert_eq!(h.quantile_permille(1000), 5000);
        assert_eq!(h.max(), 5000);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [1u64, 2, 3, 100, 0, 77] {
            a.record(v);
            whole.record(v);
        }
        for v in [9u64, 10_000, 4] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn snapshot_roundtrips_dense_form() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 3, 900, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.to_histogram(), h);
        assert_eq!(snap.p99(), h.p99());
    }

    #[test]
    fn hostile_snapshot_bucket_index_is_ignored() {
        let snap = HistogramSnapshot {
            count: 1,
            sum: 1,
            min: 1,
            max: 1,
            buckets: vec![(200, 1)],
        };
        let h = snap.to_histogram(); // must not panic
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn quantiles_are_monotonic_in_permille() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v * v % 4096);
        }
        let mut last = 0;
        for p in (0..=1000).step_by(50) {
            let q = h.quantile_permille(p);
            assert!(q >= last, "quantile regressed at permille {p}");
            last = q;
        }
    }
}
