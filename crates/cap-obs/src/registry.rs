//! The standard in-process metric registry.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

use crate::histogram::Histogram;
use crate::recorder::{Obs, Recorder};
use crate::snapshot::StatsSnapshot;
use crate::trace::{EventKind, TraceEvent};

/// Default capacity of the trace-event ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
    events: VecDeque<TraceEvent>,
    event_capacity: usize,
    next_seq: u64,
    dropped_events: u64,
}

/// A thread-safe registry of counters, gauges, histograms, and a
/// bounded trace-event ring. Implements [`Recorder`], so an [`Obs`]
/// handle can point at it directly.
///
/// Metric maps are `BTreeMap`s: snapshots come out in sorted name
/// order regardless of which thread recorded first, which is what
/// makes the golden-file exports stable.
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A registry with the default trace-ring capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A registry whose trace ring keeps the last `capacity` events
    /// (older events are dropped and counted, not silently lost).
    #[must_use]
    pub fn with_event_capacity(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
                events: VecDeque::with_capacity(capacity.min(4096)),
                event_capacity: capacity,
                next_seq: 0,
                dropped_events: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned registry still holds structurally valid metrics —
        // telemetry must never take the process down with it.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// An [`Obs`] handle backed by this registry.
    #[must_use]
    pub fn obs(self: &Arc<Self>) -> Obs {
        Obs::on(self.clone() as Arc<dyn Recorder>)
    }

    /// Current value of a counter, if it has been touched.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.lock().counters.get(name).copied()
    }

    /// Current value of a gauge, if it has been set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.lock().gauges.get(name).copied()
    }

    /// A copy of a histogram, if it has observations.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// An ordered, self-contained snapshot of everything recorded.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        let inner = self.lock();
        StatsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            events: inner.events.iter().cloned().collect(),
            dropped_events: inner.dropped_events,
        }
    }
}

impl Recorder for Registry {
    fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        match inner.counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                inner.counters.insert(name.to_owned(), delta);
            }
        }
    }

    fn gauge_set(&self, name: &str, value: i64) {
        let mut inner = self.lock();
        match inner.gauges.get_mut(name) {
            Some(v) => *v = value,
            None => {
                inner.gauges.insert(name.to_owned(), value);
            }
        }
    }

    fn record(&self, name: &str, value: u64) {
        let mut inner = self.lock();
        match inner.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                inner.histograms.insert(name.to_owned(), h);
            }
        }
    }

    fn event(&self, name: &str, kind: EventKind, value: u64) {
        let mut inner = self.lock();
        if inner.event_capacity == 0 {
            inner.dropped_events += 1;
            return;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() == inner.event_capacity {
            inner.events.pop_front();
            inner.dropped_events += 1;
        }
        inner.events.push_back(TraceEvent {
            seq,
            name: name.to_owned(),
            kind,
            value,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let r = Registry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        assert_eq!(r.counter("a"), Some(5));
        r.counter_add("a", u64::MAX);
        assert_eq!(r.counter("a"), Some(u64::MAX));
        assert_eq!(r.counter("missing"), None);
    }

    #[test]
    fn gauges_overwrite() {
        let r = Registry::new();
        r.gauge_set("g", 10);
        r.gauge_set("g", -4);
        assert_eq!(r.gauge("g"), Some(-4));
    }

    #[test]
    fn histograms_record() {
        let r = Registry::new();
        r.record("h", 100);
        r.record("h", 200);
        let h = r.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 300);
    }

    #[test]
    fn event_ring_drops_oldest_and_counts() {
        let r = Registry::with_event_capacity(2);
        r.event("e", EventKind::Mark, 0);
        r.event("e", EventKind::Mark, 1);
        r.event("e", EventKind::Mark, 2);
        let snap = r.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].seq, 1);
        assert_eq!(snap.events[1].seq, 2);
        assert_eq!(snap.dropped_events, 1);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let r = Registry::with_event_capacity(0);
        r.event("e", EventKind::Mark, 0);
        let snap = r.snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(snap.dropped_events, 1);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let r = Registry::new();
        r.counter_add("zeta", 1);
        r.counter_add("alpha", 1);
        r.counter_add("mid", 1);
        let names: Vec<_> = r.snapshot().counters.iter().map(|(n, _)| n.clone()).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn obs_handle_reaches_the_registry() {
        let r = Arc::new(Registry::new());
        let obs = r.obs();
        obs.incr("via.handle");
        assert_eq!(r.counter("via.handle"), Some(1));
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let r = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let obs = r.obs();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    obs.incr("threads.total");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter("threads.total"), Some(4000));
    }
}
