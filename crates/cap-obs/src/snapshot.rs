//! The export form of a registry, with its own binary codec.
//!
//! `cap-obs` sits at the bottom of the workspace dependency graph (so
//! every other crate can classify errors through it), which means it
//! cannot reuse `cap-snapshot`'s section codec. The wire format here
//! is deliberately tiny: magic, version, then length-prefixed tables,
//! everything little-endian. Decoding never panics on hostile bytes —
//! every failure is a structured [`ObsDecodeError`].

use std::fmt;
use std::fmt::Write as _;

use crate::error::{Classify, ErrorClass};
use crate::histogram::HistogramSnapshot;
use crate::trace::{EventKind, TraceEvent};

/// Magic prefix of an encoded snapshot.
pub const MAGIC: &[u8; 4] = b"CAPO";
/// Current wire version.
pub const VERSION: u16 = 1;
/// Upper bound on any table length accepted by the decoder; hostile
/// length fields must not drive allocation.
const MAX_TABLE_LEN: u32 = 1 << 20;
/// Upper bound on an encoded name.
const MAX_NAME_LEN: u16 = 4096;

/// An ordered, self-contained view of everything a registry recorded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, histogram)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// The trace ring's surviving events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events evicted from the ring (or refused by a zero-capacity
    /// ring) since the registry was created.
    pub dropped_events: u64,
}

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsDecodeError {
    /// The bytes ran out while reading the named field.
    Truncated {
        /// Field being read when the input ended.
        what: &'static str,
    },
    /// The magic prefix did not match.
    BadMagic,
    /// The version is not one this decoder speaks.
    VersionSkew {
        /// Version found in the input.
        found: u16,
    },
    /// A field held a structurally invalid value.
    BadValue {
        /// Description of the offending field.
        what: String,
    },
}

impl fmt::Display for ObsDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { what } => write!(f, "stats snapshot truncated reading {what}"),
            Self::BadMagic => write!(f, "stats snapshot has wrong magic"),
            Self::VersionSkew { found } => {
                write!(f, "stats snapshot version {found}, decoder speaks {VERSION}")
            }
            Self::BadValue { what } => write!(f, "stats snapshot bad value: {what}"),
        }
    }
}

impl std::error::Error for ObsDecodeError {}

impl Classify for ObsDecodeError {
    fn error_class(&self) -> ErrorClass {
        ErrorClass::Corrupt
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ObsDecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(ObsDecodeError::Truncated { what })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn take_u8(&mut self, what: &'static str) -> Result<u8, ObsDecodeError> {
        Ok(self.take(1, what)?[0])
    }

    fn take_u16(&mut self, what: &'static str) -> Result<u16, ObsDecodeError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn take_u32(&mut self, what: &'static str) -> Result<u32, ObsDecodeError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn take_u64(&mut self, what: &'static str) -> Result<u64, ObsDecodeError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn take_len(&mut self, what: &'static str) -> Result<usize, ObsDecodeError> {
        let len = self.take_u32(what)?;
        if len > MAX_TABLE_LEN {
            return Err(ObsDecodeError::BadValue {
                what: format!("{what} length {len} exceeds cap {MAX_TABLE_LEN}"),
            });
        }
        Ok(len as usize)
    }

    fn take_name(&mut self, what: &'static str) -> Result<String, ObsDecodeError> {
        let len = self.take_u16(what)?;
        if len > MAX_NAME_LEN {
            return Err(ObsDecodeError::BadValue {
                what: format!("{what} name length {len} exceeds cap {MAX_NAME_LEN}"),
            });
        }
        let bytes = self.take(len as usize, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ObsDecodeError::BadValue {
            what: format!("{what} name is not UTF-8"),
        })
    }
}

fn put_name(out: &mut Vec<u8>, name: &str) {
    let len = name.len().min(MAX_NAME_LEN as usize);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&name.as_bytes()[..len]);
}

impl StatsSnapshot {
    /// Encodes the snapshot into the `CAPO` wire form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.counters.len() as u32).to_le_bytes());
        for (name, value) in &self.counters {
            put_name(&mut out, name);
            out.extend_from_slice(&value.to_le_bytes());
        }
        out.extend_from_slice(&(self.gauges.len() as u32).to_le_bytes());
        for (name, value) in &self.gauges {
            put_name(&mut out, name);
            out.extend_from_slice(&value.to_le_bytes());
        }
        out.extend_from_slice(&(self.histograms.len() as u32).to_le_bytes());
        for (name, h) in &self.histograms {
            put_name(&mut out, name);
            out.extend_from_slice(&h.count.to_le_bytes());
            out.extend_from_slice(&h.sum.to_le_bytes());
            out.extend_from_slice(&h.min.to_le_bytes());
            out.extend_from_slice(&h.max.to_le_bytes());
            out.extend_from_slice(&(h.buckets.len() as u16).to_le_bytes());
            for &(bucket, n) in &h.buckets {
                out.push(bucket);
                out.extend_from_slice(&n.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.events.len() as u32).to_le_bytes());
        for event in &self.events {
            out.extend_from_slice(&event.seq.to_le_bytes());
            put_name(&mut out, &event.name);
            out.push(event.kind.code());
            out.extend_from_slice(&event.value.to_le_bytes());
        }
        out.extend_from_slice(&self.dropped_events.to_le_bytes());
        out
    }

    /// Decodes a snapshot. Safe on arbitrary bytes: every failure is a
    /// structured error, never a panic or unbounded allocation.
    pub fn decode(bytes: &[u8]) -> Result<Self, ObsDecodeError> {
        let mut c = Cursor { bytes, pos: 0 };
        if c.take(4, "magic")? != MAGIC {
            return Err(ObsDecodeError::BadMagic);
        }
        let version = c.take_u16("version")?;
        if version != VERSION {
            return Err(ObsDecodeError::VersionSkew { found: version });
        }

        let n = c.take_len("counter table")?;
        let mut counters = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let name = c.take_name("counter")?;
            let value = c.take_u64("counter value")?;
            counters.push((name, value));
        }

        let n = c.take_len("gauge table")?;
        let mut gauges = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let name = c.take_name("gauge")?;
            let value = c.take_u64("gauge value")? as i64;
            gauges.push((name, value));
        }

        let n = c.take_len("histogram table")?;
        let mut histograms = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let name = c.take_name("histogram")?;
            let count = c.take_u64("histogram count")?;
            let sum = c.take_u64("histogram sum")?;
            let min = c.take_u64("histogram min")?;
            let max = c.take_u64("histogram max")?;
            let buckets_len = c.take_u16("histogram bucket table")?;
            let mut buckets = Vec::with_capacity(usize::from(buckets_len).min(crate::histogram::BUCKETS));
            for _ in 0..buckets_len {
                let bucket = c.take_u8("bucket index")?;
                let count = c.take_u64("bucket count")?;
                buckets.push((bucket, count));
            }
            histograms.push((
                name,
                HistogramSnapshot {
                    count,
                    sum,
                    min,
                    max,
                    buckets,
                },
            ));
        }

        let n = c.take_len("event table")?;
        let mut events = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let seq = c.take_u64("event seq")?;
            let name = c.take_name("event")?;
            let code = c.take_u8("event kind")?;
            let kind = EventKind::from_code(code).ok_or_else(|| ObsDecodeError::BadValue {
                what: format!("event kind code {code}"),
            })?;
            let value = c.take_u64("event value")?;
            events.push(TraceEvent {
                seq,
                name,
                kind,
                value,
            });
        }

        let dropped_events = c.take_u64("dropped events")?;
        if c.pos != bytes.len() {
            return Err(ObsDecodeError::BadValue {
                what: format!("{} trailing bytes after snapshot", bytes.len() - c.pos),
            });
        }
        Ok(Self {
            counters,
            gauges,
            histograms,
            events,
            dropped_events,
        })
    }

    /// Merges another snapshot into this one: counters and gauges sum
    /// by name, histograms merge bucket-wise, trace events interleave
    /// by sequence number, and drop counts add. This is the fleet
    /// aggregation primitive — a cluster router merges every node's
    /// snapshot into one dashboard view. Merging is commutative up to
    /// event ordering ties, and name tables stay sorted, so a merged
    /// snapshot re-encodes canonically.
    pub fn merge(&mut self, other: &Self) {
        fn merge_sums<V: Copy>(
            dst: &mut Vec<(String, V)>,
            src: &[(String, V)],
            add: impl Fn(V, V) -> V,
        ) {
            for (name, value) in src {
                match dst.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                    Ok(i) => dst[i].1 = add(dst[i].1, *value),
                    Err(i) => dst.insert(i, (name.clone(), *value)),
                }
            }
        }
        merge_sums(&mut self.counters, &other.counters, u64::saturating_add);
        merge_sums(&mut self.gauges, &other.gauges, i64::saturating_add);
        for (name, theirs) in &other.histograms {
            match self
                .histograms
                .binary_search_by(|(n, _)| n.as_str().cmp(name))
            {
                Ok(i) => {
                    let mut dense = self.histograms[i].1.to_histogram();
                    dense.merge(&theirs.to_histogram());
                    self.histograms[i].1 = dense.snapshot();
                }
                Err(i) => self.histograms.insert(i, (name.clone(), theirs.clone())),
            }
        }
        // Sequence numbers are per-registry, so cross-node ordering is
        // only approximate — good enough for a dashboard's "recent
        // events" pane, which is all the ring feeds.
        self.events.extend(other.events.iter().cloned());
        self.events.sort_by_key(|e| e.seq);
        self.dropped_events = self.dropped_events.saturating_add(other.dropped_events);
    }

    /// Value of a counter, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of a gauge, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// A histogram, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
            && self.dropped_events == 0
    }

    /// A `top`-style text rendering: sorted tables of counters,
    /// gauges, and histogram quantiles, then the newest trace events.
    #[must_use]
    pub fn render_top(&self, max_events: usize) -> String {
        let mut out = String::new();
        let name_width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(4)
            .max(4);
        let _ = writeln!(out, "== counters ({}) ==", self.counters.len());
        for (name, value) in &self.counters {
            let _ = writeln!(out, "  {name:<name_width$}  {value:>12}");
        }
        let _ = writeln!(out, "== gauges ({}) ==", self.gauges.len());
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "  {name:<name_width$}  {value:>12}");
        }
        let _ = writeln!(out, "== histograms ({}) ==", self.histograms.len());
        let _ = writeln!(
            out,
            "  {:<name_width$}  {:>10} {:>10} {:>10} {:>10} {:>10}",
            "name", "count", "p50", "p90", "p99", "max"
        );
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "  {name:<name_width$}  {:>10} {:>10} {:>10} {:>10} {:>10}",
                h.count,
                h.p50(),
                h.p90(),
                h.p99(),
                h.max
            );
        }
        let shown = self.events.len().min(max_events);
        let _ = writeln!(
            out,
            "== events (last {shown} of {}, {} dropped) ==",
            self.events.len(),
            self.dropped_events
        );
        for event in self.events.iter().rev().take(max_events).rev() {
            let _ = writeln!(
                out,
                "  #{:<8} {:<6} {}  {}",
                event.seq,
                event.kind.name(),
                event.name,
                event.value
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatsSnapshot {
        StatsSnapshot {
            counters: vec![("a.hits".into(), 12), ("a.misses".into(), 3)],
            gauges: vec![("occupancy".into(), -5)],
            histograms: vec![(
                "lat".into(),
                HistogramSnapshot {
                    count: 3,
                    sum: 300,
                    min: 50,
                    max: 200,
                    buckets: vec![(6, 1), (7, 1), (8, 1)],
                },
            )],
            events: vec![TraceEvent {
                seq: 9,
                name: "breaker.open".into(),
                kind: EventKind::Mark,
                value: 1,
            }],
            dropped_events: 4,
        }
    }

    #[test]
    fn merge_sums_tables_and_interleaves_events() {
        let mut a = sample();
        let b = StatsSnapshot {
            counters: vec![("a.misses".into(), 7), ("b.new".into(), 1)],
            gauges: vec![("occupancy".into(), 8), ("queue".into(), 2)],
            histograms: vec![
                (
                    "lat".into(),
                    HistogramSnapshot {
                        count: 2,
                        sum: 500,
                        min: 40,
                        max: 460,
                        buckets: vec![(6, 1), (9, 1)],
                    },
                ),
                (
                    "other".into(),
                    HistogramSnapshot {
                        count: 1,
                        sum: 10,
                        min: 10,
                        max: 10,
                        buckets: vec![(4, 1)],
                    },
                ),
            ],
            events: vec![TraceEvent {
                seq: 2,
                name: "early".into(),
                kind: EventKind::Mark,
                value: 0,
            }],
            dropped_events: 1,
        };
        a.merge(&b);
        assert_eq!(a.counter("a.hits"), Some(12));
        assert_eq!(a.counter("a.misses"), Some(10));
        assert_eq!(a.counter("b.new"), Some(1));
        assert_eq!(a.gauge("occupancy"), Some(3));
        assert_eq!(a.gauge("queue"), Some(2));
        let lat = a.histogram("lat").unwrap();
        assert_eq!(lat.count, 5);
        assert_eq!(lat.sum, 800);
        assert_eq!(lat.min, 40);
        assert_eq!(lat.max, 460);
        assert_eq!(a.histogram("other").unwrap().count, 1);
        assert_eq!(a.events.first().map(|e| e.seq), Some(2), "events sort by seq");
        assert_eq!(a.dropped_events, 5);
        // Name tables stay sorted, so the merged snapshot re-encodes
        // and decodes canonically.
        assert_eq!(StatsSnapshot::decode(&a.encode()).unwrap(), a);
    }

    #[test]
    fn merge_is_commutative_on_tables() {
        let mut ab = sample();
        ab.merge(&StatsSnapshot::default());
        let mut ba = StatsSnapshot::default();
        ba.merge(&sample());
        assert_eq!(ab.counters, ba.counters);
        assert_eq!(ab.gauges, ba.gauges);
        assert_eq!(ab.histograms, ba.histograms);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sample();
        let bytes = snap.encode();
        assert_eq!(StatsSnapshot::decode(&bytes).unwrap(), snap);
    }

    #[test]
    fn empty_roundtrip() {
        let snap = StatsSnapshot::default();
        assert!(snap.is_empty());
        assert_eq!(StatsSnapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn negative_gauges_survive_the_wire() {
        let snap = sample();
        let back = StatsSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(back.gauge("occupancy"), Some(-5));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert_eq!(StatsSnapshot::decode(&bytes), Err(ObsDecodeError::BadMagic));
    }

    #[test]
    fn version_skew_is_rejected() {
        let mut bytes = sample().encode();
        bytes[4] = 0xEE;
        assert!(matches!(
            StatsSnapshot::decode(&bytes),
            Err(ObsDecodeError::VersionSkew { .. })
        ));
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            let result = StatsSnapshot::decode(&bytes[..cut]);
            assert!(result.is_err(), "decode of {cut}-byte prefix must fail");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(matches!(
            StatsSnapshot::decode(&bytes),
            Err(ObsDecodeError::BadValue { .. })
        ));
    }

    #[test]
    fn single_byte_corruption_never_panics() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x41;
            let _ = StatsSnapshot::decode(&mutated); // must not panic
        }
    }

    #[test]
    fn hostile_length_field_does_not_allocate_unbounded() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            StatsSnapshot::decode(&bytes),
            Err(ObsDecodeError::BadValue { .. })
        ));
    }

    #[test]
    fn decode_error_classifies_as_corrupt() {
        assert_eq!(ObsDecodeError::BadMagic.error_class(), ErrorClass::Corrupt);
        assert!(!ObsDecodeError::BadMagic.error_class().is_retryable());
    }

    #[test]
    fn render_top_mentions_every_section() {
        let text = sample().render_top(16);
        for needle in ["counters", "gauges", "histograms", "events", "a.hits", "breaker.open"] {
            assert!(text.contains(needle), "render_top missing {needle}:\n{text}");
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(sample().encode(), sample().encode());
    }
}
