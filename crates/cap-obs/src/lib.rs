//! Workspace-wide observability for the CAP reproduction.
//!
//! Every crate in the workspace reports through one telemetry API:
//!
//! * a **metric registry** ([`Registry`]) of monotonic counters, gauges,
//!   and log-bucketed histograms with deterministic p50/p90/p99
//!   extraction,
//! * a **structured event-tracing layer**: a bounded ring of
//!   [`TraceEvent`]s ordered by a monotonic sequence number — never by
//!   wall-clock — so traces from seeded runs are replay-stable,
//! * a shared **failure taxonomy** ([`ErrorClass`] / [`Classify`]) that
//!   the service ladder, supervisor retry, and stats layer all use
//!   instead of per-crate error matches.
//!
//! Instrumented code never talks to the registry directly; it goes
//! through an [`Obs`] handle, which is either **off** (the default — a
//! `None` branch, no allocation, no lock, no formatting) or **on**
//! (backed by any [`Recorder`], usually a [`Registry`]). This is the
//! mechanism that keeps the hot paths free when telemetry is disabled:
//!
//! ```
//! use cap_obs::{Obs, Registry};
//! use std::sync::Arc;
//!
//! let off = Obs::off();               // all calls are a tagged branch
//! off.count("demo.ignored", 1);
//!
//! let registry = Arc::new(Registry::new());
//! let obs = registry.obs();           // same call sites, now recorded
//! obs.count("demo.loads", 3);
//! obs.record("demo.latency_us", 180);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("demo.loads"), Some(3));
//! ```
//!
//! The registry exports a [`StatsSnapshot`]: an ordered, versioned view
//! with its own self-contained binary codec (this crate depends on
//! nothing, so the codec cannot reuse `cap-snapshot`) used as the
//! service's `stats` wire frame, plus a `top`-style text rendering.
//!
//! # Determinism rules
//!
//! * Nothing in this crate reads a clock. Durations enter histograms
//!   only when a *call site* measures one and passes it in.
//! * Trace events carry a sequence number allocated under the registry
//!   lock — single-threaded runs replay bit-identically; multi-worker
//!   runs are ordered by lock acquisition.
//! * Snapshots iterate `BTreeMap`s, so export order is the sorted metric
//!   name order, independent of insertion order.

pub mod error;
pub mod histogram;
pub mod recorder;
pub mod registry;
pub mod snapshot;
pub mod trace;

pub use error::{Classify, ErrorClass};
pub use histogram::{Histogram, HistogramSnapshot};
pub use recorder::{Obs, Recorder};
pub use registry::Registry;
pub use snapshot::{ObsDecodeError, StatsSnapshot};
pub use trace::{EventKind, TraceEvent};
