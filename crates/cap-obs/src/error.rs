//! The shared failure taxonomy.
//!
//! Every structured error type in the workspace answers one question
//! the same way: *what kind of failure is this?* The degradation
//! ladder, the supervisor's retry loop, and the stats layer all branch
//! on [`ErrorClass`] instead of matching crate-specific variants.

use std::fmt;

/// Coarse classification of a failure, shared across all crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ErrorClass {
    /// Timing or environment dependent — the same request may succeed
    /// if retried (timeouts, I/O hiccups, panicked backends).
    Transient,
    /// Deterministic — retrying the identical request will fail the
    /// identical way (protocol violations, invalid configuration).
    Permanent,
    /// Deliberately rejected to protect the system under pressure
    /// (load shedding, draining). Retryable, but only after backoff —
    /// hammering a shedding server makes the pressure worse.
    Shed,
    /// Data damage — torn snapshots, checksum mismatches, malformed
    /// traces. Never retryable against the same bytes.
    Corrupt,
}

impl ErrorClass {
    /// Stable lowercase name, used in metric names and wire exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Transient => "transient",
            Self::Permanent => "permanent",
            Self::Shed => "shed",
            Self::Corrupt => "corrupt",
        }
    }

    /// Whether a retry of the same operation can possibly succeed.
    #[must_use]
    pub fn is_retryable(self) -> bool {
        matches!(self, Self::Transient | Self::Shed)
    }
}

impl fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Implemented by every structured error type in the workspace.
pub trait Classify {
    /// The failure's coarse class.
    fn error_class(&self) -> ErrorClass;
}

/// OS-level I/O failures are environment dependent: the retry loops in
/// the harness already treat them as transient, and this impl lets
/// generic code (`RetryError<io::Error>`) classify without a wrapper.
impl Classify for std::io::Error {
    fn error_class(&self) -> ErrorClass {
        ErrorClass::Transient
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_matches_class_semantics() {
        assert!(ErrorClass::Transient.is_retryable());
        assert!(ErrorClass::Shed.is_retryable());
        assert!(!ErrorClass::Permanent.is_retryable());
        assert!(!ErrorClass::Corrupt.is_retryable());
    }

    #[test]
    fn names_are_stable() {
        for (class, name) in [
            (ErrorClass::Transient, "transient"),
            (ErrorClass::Permanent, "permanent"),
            (ErrorClass::Shed, "shed"),
            (ErrorClass::Corrupt, "corrupt"),
        ] {
            assert_eq!(class.name(), name);
            assert_eq!(class.to_string(), name);
        }
    }
}
