//! The recording seam: the [`Recorder`] trait and the [`Obs`] handle
//! that instrumented code actually holds.

use std::fmt;
use std::sync::Arc;

use crate::trace::EventKind;

/// A telemetry sink. [`crate::Registry`] is the standard one; tests
/// may supply their own to assert on individual calls.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the monotonic counter `name`.
    fn counter_add(&self, name: &str, delta: u64);

    /// Sets the gauge `name` to `value`.
    fn gauge_set(&self, name: &str, value: i64);

    /// Records one observation into the histogram `name`.
    fn record(&self, name: &str, value: u64);

    /// Appends a trace event.
    fn event(&self, name: &str, kind: EventKind, value: u64);
}

/// The handle held by instrumented code.
///
/// `Obs::off()` (also `Obs::default()`) carries no recorder: every
/// call is a branch on a `None` discriminant and returns immediately —
/// no allocation, no locking, no string work. That is the contract
/// that lets hot paths stay instrumented unconditionally.
///
/// Cloning is cheap (an `Option<Arc>` copy); every worker/component
/// can hold its own handle onto one shared registry.
#[derive(Clone, Default)]
pub struct Obs {
    recorder: Option<Arc<dyn Recorder>>,
}

impl Obs {
    /// The disabled handle. All operations are no-ops.
    #[must_use]
    pub fn off() -> Self {
        Self { recorder: None }
    }

    /// A handle backed by `recorder`.
    #[must_use]
    pub fn on(recorder: Arc<dyn Recorder>) -> Self {
        Self {
            recorder: Some(recorder),
        }
    }

    /// Whether a recorder is attached. Call sites that would have to
    /// *format* a metric name should gate on this so the disabled
    /// path stays allocation-free.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// Adds `delta` to counter `name`.
    #[inline]
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(r) = &self.recorder {
            r.counter_add(name, delta);
        }
    }

    /// Increments counter `name` by one.
    #[inline]
    pub fn incr(&self, name: &str) {
        self.count(name, 1);
    }

    /// Sets gauge `name` to `value`.
    #[inline]
    pub fn gauge(&self, name: &str, value: i64) {
        if let Some(r) = &self.recorder {
            r.gauge_set(name, value);
        }
    }

    /// Records one histogram observation.
    #[inline]
    pub fn record(&self, name: &str, value: u64) {
        if let Some(r) = &self.recorder {
            r.record(name, value);
        }
    }

    /// Appends a trace event.
    #[inline]
    pub fn event(&self, name: &str, kind: EventKind, value: u64) {
        if let Some(r) = &self.recorder {
            r.event(name, kind, value);
        }
    }

    /// Appends a point event.
    #[inline]
    pub fn mark(&self, name: &str, value: u64) {
        self.event(name, EventKind::Mark, value);
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.enabled() { "Obs(on)" } else { "Obs(off)" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Log(Mutex<Vec<String>>);

    impl Recorder for Log {
        fn counter_add(&self, name: &str, delta: u64) {
            self.0.lock().unwrap().push(format!("c {name} {delta}"));
        }
        fn gauge_set(&self, name: &str, value: i64) {
            self.0.lock().unwrap().push(format!("g {name} {value}"));
        }
        fn record(&self, name: &str, value: u64) {
            self.0.lock().unwrap().push(format!("h {name} {value}"));
        }
        fn event(&self, name: &str, kind: EventKind, value: u64) {
            self.0
                .lock()
                .unwrap()
                .push(format!("e {name} {} {value}", kind.name()));
        }
    }

    #[test]
    fn off_handle_is_inert() {
        let obs = Obs::off();
        assert!(!obs.enabled());
        obs.count("x", 1);
        obs.gauge("x", -1);
        obs.record("x", 2);
        obs.mark("x", 3);
        assert_eq!(format!("{obs:?}"), "Obs(off)");
    }

    #[test]
    fn on_handle_forwards_every_call() {
        let log = Arc::new(Log::default());
        let obs = Obs::on(log.clone());
        assert!(obs.enabled());
        obs.incr("a");
        obs.count("a", 4);
        obs.gauge("b", -7);
        obs.record("c", 99);
        obs.event("d", EventKind::SpanEnd, 5);
        assert_eq!(
            *log.0.lock().unwrap(),
            vec!["c a 1", "c a 4", "g b -7", "h c 99", "e d end 5"]
        );
        assert_eq!(format!("{obs:?}"), "Obs(on)");
    }
}
