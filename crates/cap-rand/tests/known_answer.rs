//! Frozen stream pins.
//!
//! Every synthetic trace in the repository is a pure function of a
//! catalog seed **through this generator**, so the exact stream is part
//! of the reproducibility contract. If one of these pins moves, every
//! published figure regenerated from the catalog moves with it — treat
//! that as a breaking change, not a test to update casually.

use cap_rand::rngs::StdRng;
use cap_rand::{Rng, RngCore, SeedableRng};

/// StdRng (xoshiro256++ seeded via SplitMix64) from seed 0.
#[test]
fn stdrng_seed0_stream_is_frozen() {
    let mut rng = StdRng::seed_from_u64(0);
    let expected: [u64; 4] = [
        0x5317_5D61_490B_23DF,
        0x61DA_6F3D_C380_D507,
        0x5C0F_DF91_EC9A_7BFC,
        0x02EE_BF8C_3BBE_5E1A,
    ];
    for e in expected {
        assert_eq!(rng.next_u64(), e);
    }
}

/// The derived sampling layers (range reduction, bool, shuffle) are
/// pinned too: they are what the trace generators actually call.
#[test]
fn derived_sampling_is_frozen() {
    let mut rng = StdRng::seed_from_u64(1999);
    let draws: Vec<u64> = (0..8).map(|_| rng.gen_range(0u64..1000)).collect();
    assert_eq!(draws, [139, 97, 728, 87, 379, 668, 356, 196]);

    let mut rng = StdRng::seed_from_u64(1999);
    let bools: Vec<bool> = (0..8).map(|_| rng.gen_bool(0.3)).collect();
    assert_eq!(bools, [true, true, false, true, false, false, false, true]);

    use cap_rand::seq::SliceRandom;
    let mut rng = StdRng::seed_from_u64(1999);
    let mut v: Vec<u32> = (0..8).collect();
    v.shuffle(&mut rng);
    assert_eq!(v, [3, 5, 2, 7, 6, 4, 0, 1]);
}
