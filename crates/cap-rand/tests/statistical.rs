//! Statistical smoke tests for the in-repo PRNG.
//!
//! These are sanity screens, not PRNG certification (xoshiro256++ has
//! passed BigCrush upstream): they catch implementation slips — a wrong
//! rotate, a truncated mixer, a biased range reduction — that would skew
//! every synthetic trace in the repository. Bounds are set at roughly
//! 5–6 sigma of the exact sampling distributions so the fixed seeds pass
//! with enormous margin yet real bias still trips them.

use cap_rand::rngs::StdRng;
use cap_rand::{Rng, RngCore, SeedableRng};

const DRAWS: usize = 1_000_000;

/// Mean of 1M uniform u64 draws (scaled to [0,1)) must sit near 0.5.
/// Std-dev of the mean is (1/sqrt(12))/1000 ≈ 2.9e-4; allow 6 sigma.
#[test]
fn mean_of_unit_draws_is_centered() {
    let mut rng = StdRng::seed_from_u64(0xCA9);
    let sum: f64 = (0..DRAWS).map(|_| rng.gen::<f64>()).sum();
    let mean = sum / DRAWS as f64;
    assert!(
        (mean - 0.5).abs() < 1.8e-3,
        "mean of 1M unit draws drifted to {mean}"
    );
}

/// Each of the 64 output bits must be set close to half the time.
/// Per-bit count is Binomial(1M, 0.5): sigma = 500; allow 6 sigma.
#[test]
fn every_output_bit_is_unbiased() {
    let mut rng = StdRng::seed_from_u64(0xB17);
    let mut ones = [0u32; 64];
    for _ in 0..DRAWS {
        let w = rng.next_u64();
        for (bit, count) in ones.iter_mut().enumerate() {
            *count += ((w >> bit) & 1) as u32;
        }
    }
    for (bit, &count) in ones.iter().enumerate() {
        let dev = (f64::from(count) - 500_000.0).abs();
        assert!(dev < 3_000.0, "bit {bit} set {count} times in 1M draws");
    }
}

/// 256-bucket histogram of `gen_range(0..256)` must be flat: chi-squared
/// with 255 dof has mean 255, sigma ≈ 22.6; allow ~6 sigma.
#[test]
fn gen_range_histogram_is_uniform() {
    let mut rng = StdRng::seed_from_u64(0x0D1CE);
    let mut buckets = [0u32; 256];
    for _ in 0..DRAWS {
        buckets[rng.gen_range(0usize..256)] += 1;
    }
    let expected = DRAWS as f64 / 256.0;
    let chi2: f64 = buckets
        .iter()
        .map(|&b| {
            let d = f64::from(b) - expected;
            d * d / expected
        })
        .sum();
    assert!(
        (120.0..400.0).contains(&chi2),
        "chi-squared over 256 buckets was {chi2}"
    );
}

/// A non-power-of-two range must not show modulo bias. With bound 6 the
/// per-face sigma is ~373; allow 6 sigma.
#[test]
fn non_power_of_two_range_is_unbiased() {
    let mut rng = StdRng::seed_from_u64(0xD6);
    let mut faces = [0u32; 6];
    for _ in 0..DRAWS {
        faces[rng.gen_range(0usize..6)] += 1;
    }
    let expected = DRAWS as f64 / 6.0;
    for (face, &count) in faces.iter().enumerate() {
        assert!(
            (f64::from(count) - expected).abs() < 2_300.0,
            "face {face} drawn {count} times in 1M"
        );
    }
}

/// `gen_bool(p)` frequency must track p. Sigma at p=0.3 is ~458;
/// allow 6 sigma.
#[test]
fn gen_bool_tracks_probability() {
    let mut rng = StdRng::seed_from_u64(0xB001);
    for p in [0.1f64, 0.3, 0.5, 0.9] {
        let hits = (0..DRAWS).filter(|_| rng.gen_bool(p)).count();
        let expected = p * DRAWS as f64;
        assert!(
            (hits as f64 - expected).abs() < 3_000.0,
            "gen_bool({p}) fired {hits} times in 1M"
        );
    }
}

/// Lag-1 serial correlation of the unit-interval stream must be ~0
/// (sigma ≈ 1/sqrt(1M) = 1e-3; allow 6 sigma).
#[test]
fn stream_has_no_serial_correlation() {
    let mut rng = StdRng::seed_from_u64(0x5E71A);
    let xs: Vec<f64> = (0..DRAWS).map(|_| rng.gen::<f64>()).collect();
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let mut cov = 0.0;
    let mut var = 0.0;
    for w in xs.windows(2) {
        cov += (w[0] - mean) * (w[1] - mean);
    }
    for &x in &xs {
        var += (x - mean) * (x - mean);
    }
    let rho = cov / var;
    assert!(rho.abs() < 6e-3, "lag-1 autocorrelation was {rho}");
}
