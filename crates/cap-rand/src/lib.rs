//! In-repo deterministic randomness for the CAP reproduction.
//!
//! The whole repository must build and test **offline**: no registry, no
//! `rand` crate. This crate supplies the narrow PRNG surface the trace
//! generators and tests actually use, with a layout that intentionally
//! mirrors `rand`'s (`Rng`, `SeedableRng`, `rngs::StdRng`,
//! `seq::SliceRandom`) so call sites read identically.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a 64-bit state-increment generator, used to expand
//!   a single `u64` seed into larger state and to derive per-case seeds;
//! * [`Xoshiro256PlusPlus`] — the workhorse generator behind
//!   [`rngs::StdRng`]; 256 bits of state, seeded via SplitMix64 exactly as
//!   the xoshiro authors recommend.
//!
//! Every stream is a pure function of its `u64` seed, so any trace, test
//! case, or experiment in this repository replays bit-for-bit on any
//! machine. The [`check`] module builds a small shrink-free
//! property-testing harness (`cap_check`) on top.
//!
//! # Examples
//!
//! ```
//! use cap_rand::rngs::StdRng;
//! use cap_rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1999);
//! let die = rng.gen_range(1..=6);
//! assert!((1..=6).contains(&die));
//! let coin = rng.gen_bool(0.5);
//! let word: u64 = rng.gen();
//! let replay = StdRng::seed_from_u64(1999).gen_range(1..=6);
//! assert_eq!(die, replay);
//! let _ = (coin, word);
//! ```

#![warn(missing_docs)]

pub mod check;

/// A source of uniformly distributed 64-bit words.
///
/// Everything else ([`Rng`], [`seq::SliceRandom`], the distributions) is
/// derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    ///
    /// Uses the *high* half of `next_u64`: xoshiro's low bits are its
    /// weakest, and the high half keeps one call per draw.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly random bytes (little-endian word order).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from an explicit `u64` seed.
///
/// Unlike `rand`, there is no entropy-based constructor *on purpose*:
/// every stream in this repository must be replayable from a seed that
/// appears in source or output.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64: Steele, Lea & Flood's 64-bit mixer-based generator.
///
/// Equidistributed over one full 2^64 period; primarily used here to
/// expand seeds (its outputs for sequential states are decorrelated, so
/// it is safe to seed many generators from `seed`, `seed+1`, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(Self::GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019).
///
/// 256 bits of state, period 2^256 − 1, passes BigCrush; the rotate-based
/// `++` output function scrambles the weak low bits of the underlying
/// xorshift state. This is the generator behind [`rngs::StdRng`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Builds a generator from raw state words.
    ///
    /// The all-zero state is the one fixed point of the transition
    /// function; it is remapped to a fixed non-zero state so the stream
    /// never degenerates.
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            // Arbitrary non-zero replacement: SplitMix64 expansion of 0.
            return Self::seed_from_u64(0);
        }
        Self { s }
    }

    /// The raw state words, for checkpointing. `from_state(x.state())`
    /// reproduces the generator at exactly this stream position.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    /// Seeds the 256-bit state from four successive SplitMix64 outputs,
    /// per the xoshiro reference implementation's guidance.
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::seed_from_u64(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // Four SplitMix64 outputs are never all zero in practice, but the
        // transition function's fixed point must stay unreachable.
        if s == [0; 4] {
            return Self {
                s: [SplitMix64::GOLDEN_GAMMA, 0, 0, 0],
            };
        }
        Self { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The repository's standard generator: [`super::Xoshiro256PlusPlus`].
    ///
    /// A type alias (not a wrapper) so the underlying algorithm is part of
    /// the reproducibility contract: traces generated from a catalog seed
    /// are frozen bit-for-bit by `tests/known_answer.rs`.
    pub type StdRng = super::Xoshiro256PlusPlus;
}

/// Types that can be sampled uniformly from an [`RngCore`] via
/// [`Rng::gen`]. The analogue of `rand`'s `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_small_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                // High bits of the word: xoshiro's strongest.
                (rng.next_u64() >> (64 - <$t>::BITS)) as $t
            }
        }
    )*};
}
impl_standard_small_uint!(u8, u16, u32);

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

macro_rules! impl_standard_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                <$u as Standard>::sample(rng) as $t
            }
        }
    )*};
}
impl_standard_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Sign bit of the word.
        (rng.next_u64() >> 63) == 1
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision (multiply-based
    /// conversion from the high 53 bits).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types [`Rng::gen_range`] can sample uniformly over an interval: the
/// integer primitives and floats.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from, mirroring `rand`'s
/// `SampleRange`: `a..b` and `a..=b` over any [`SampleUniform`] type.
///
/// The single blanket impl per range shape (rather than one impl per
/// primitive) is what lets integer literals in `gen_range(0..100) <
/// some_u32` infer their type from the surrounding comparison, exactly
/// as with `rand`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_inclusive(rng, start, end)
    }
}

/// Lemire's nearly-divisionless method: uniform draw from `[0, bound)`.
fn u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(bound);
    let mut low = m as u64;
    if low < bound {
        // Rejection threshold: 2^64 mod bound, computed without 128-bit
        // division.
        let threshold = bound.wrapping_neg() % bound;
        while low < threshold {
            m = u128::from(rng.next_u64()) * u128::from(bound);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "cannot sample from empty range");
                let span = end.wrapping_sub(start) as $u as u64;
                start.wrapping_add(u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "cannot sample from empty range");
                let span = (end.wrapping_sub(start) as $u as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(u64_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "cannot sample from empty range");
                start + <$t as Standard>::sample(rng) * (end - start)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                // For floats the closed/half-open distinction is a single
                // representable value; treat both the same way.
                assert!(start <= end, "cannot sample from empty range");
                start + <$t as Standard>::sample(rng) * (end - start)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`]. The analogue of `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1], got {p}"
        );
        f64::sample(self) < p
    }

    /// Fills `dest` with uniformly random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related sampling, mirroring `rand::seq`.
pub mod seq {
    use super::{u64_below, RngCore};

    /// Random operations on slices: the subset of `rand::seq::SliceRandom`
    /// the repository uses.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Uniformly permutes the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = u64_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[u64_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    /// Published test vector: the first outputs of SplitMix64 from state 0
    /// (Vigna's reference `splitmix64.c`, also used by JDK's
    /// `SplittableRandom` tests).
    #[test]
    fn splitmix64_reference_vector() {
        let mut sm = SplitMix64::seed_from_u64(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
        assert_eq!(sm.next_u64(), 0xF88B_B8A8_724C_81EC);
    }

    /// xoshiro256++ reference: seeding the state with {1, 2, 3, 4} must
    /// reproduce the stream of Vigna's reference `xoshiro256plusplus.c`.
    #[test]
    fn xoshiro_reference_vector() {
        let mut x = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for e in expected {
            assert_eq!(x.next_u64(), e);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "adjacent seeds must decorrelate via SplitMix64");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..6 must be reachable");
        let mut edge = [false; 3];
        for _ in 0..1000 {
            edge[rng.gen_range(0usize..=2)] = true;
        }
        assert!(edge.iter().all(|&s| s), "inclusive upper bound must be reachable");
    }

    #[test]
    fn gen_range_full_u64_domain() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        // Must not hang or panic: span overflows to 0 and falls back to
        // raw words.
        for _ in 0..10 {
            let _ = rng.gen_range(0u64..=u64::MAX);
            let _ = rng.gen_range(i64::MIN..=i64::MAX);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = rngs::StdRng::seed_from_u64(4);
        let _ = rng.gen_range(5u32..5);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn gen_bool_rejects_bad_probability() {
        let mut rng = rngs::StdRng::seed_from_u64(4);
        let _ = rng.gen_bool(1.5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = rngs::StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = rngs::StdRng::seed_from_u64(6);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            rng.fill(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "8+ random bytes all zero");
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 100-element shuffle is astronomically unlikely to be identity");
    }

    #[test]
    fn choose_respects_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(10);
        let empty: [u32; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let items = [1u32, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(*items.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zero_state_is_remapped() {
        let mut x = Xoshiro256PlusPlus::from_state([0; 4]);
        assert_ne!(x.next_u64() | x.next_u64() | x.next_u64(), 0);
    }
}
