//! `cap_check` — a shrink-free, seeded property-test harness.
//!
//! The repository previously used `proptest`; offline builds cannot fetch
//! it, and its shrinking machinery is overkill for properties whose
//! inputs are already cheap to read from a panic message. `cap_check`
//! keeps the part that matters: run a property body many times over
//! seeded pseudo-random inputs, and make any failure exactly
//! reproducible.
//!
//! Each case gets its **own** [`StdRng`], seeded from a hash of the
//! property name and the case index. A failing case therefore replays in
//! isolation — set `CAP_CHECK_SEED` to the case seed printed on failure
//! and only that case runs. `CAP_CHECK_CASES` overrides the per-property
//! case count (e.g. `CAP_CHECK_CASES=2000` for a soak run).
//!
//! # Examples
//!
//! ```
//! use cap_rand::check;
//! use cap_rand::Rng;
//!
//! check::run("addition_commutes", |rng| {
//!     let a: u32 = rng.gen_range(0..1000);
//!     let b: u32 = rng.gen_range(0..1000);
//!     assert_eq!(a + b, b + a, "a={a} b={b}");
//! });
//! ```

use crate::rngs::StdRng;
use crate::{RngCore, SeedableRng, SplitMix64};

/// Cases per property when neither the caller nor `CAP_CHECK_CASES`
/// says otherwise. Chosen so the full workspace property suite stays in
/// the single-digit-seconds range; raise via the env var for soaking.
pub const DEFAULT_CASES: usize = 64;

/// Runs `property` over [`DEFAULT_CASES`] seeded cases (or
/// `CAP_CHECK_CASES` if set).
///
/// # Panics
///
/// Re-raises the property's panic after printing the case seed needed to
/// replay the failure.
pub fn run<F: FnMut(&mut StdRng)>(name: &str, property: F) {
    run_n(name, cases_from_env().unwrap_or(DEFAULT_CASES), property);
}

/// Runs `property` over exactly `cases` seeded cases (unless
/// `CAP_CHECK_CASES` overrides the count or `CAP_CHECK_SEED` pins a
/// single case).
///
/// # Panics
///
/// Re-raises the property's panic after printing the case seed needed to
/// replay the failure.
pub fn run_n<F: FnMut(&mut StdRng)>(name: &str, cases: usize, mut property: F) {
    if let Some(seed) = seed_from_env() {
        let mut rng = StdRng::seed_from_u64(seed);
        property(&mut rng);
        return;
    }
    let cases = cases_from_env().unwrap_or(cases);
    let base = fnv1a(name.as_bytes());
    for case in 0..cases {
        let case_seed = derive_seed(base, case as u64);
        let mut rng = StdRng::seed_from_u64(case_seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut rng);
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "cap_check: property '{name}' failed on case {case}/{cases} \
                 (case seed {case_seed:#018x}); replay just this case with \
                 CAP_CHECK_SEED={case_seed:#x}"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Builds a `Vec` whose length is drawn from `len` and whose elements
/// come from `element` — the `proptest::collection::vec` idiom.
///
/// # Panics
///
/// Panics if `len` is an empty range.
pub fn vec_of<T>(
    rng: &mut StdRng,
    len: core::ops::Range<usize>,
    mut element: impl FnMut(&mut StdRng) -> T,
) -> Vec<T> {
    use crate::Rng;
    let n = rng.gen_range(len);
    (0..n).map(|_| element(rng)).collect()
}

/// Uniformly picks one of the listed values — the `prop_oneof`/`Just`
/// idiom for small enums.
///
/// # Panics
///
/// Panics if `options` is empty.
pub fn one_of<T: Copy>(rng: &mut StdRng, options: &[T]) -> T {
    use crate::seq::SliceRandom;
    *options.choose(rng).expect("one_of requires a non-empty option list")
}

/// Case-seed derivation: decorrelates (property, case) pairs by running
/// the property hash and case index through SplitMix64.
fn derive_seed(base: u64, case: u64) -> u64 {
    SplitMix64::seed_from_u64(base ^ case.wrapping_mul(0xA076_1D64_78BD_642F)).next_u64()
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn cases_from_env() -> Option<usize> {
    parse_env_u64("CAP_CHECK_CASES").map(|n| n as usize)
}

fn seed_from_env() -> Option<u64> {
    parse_env_u64("CAP_CHECK_SEED")
}

fn parse_env_u64(var: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{var} must be a u64 (decimal or 0x-hex), got '{raw}'"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn runs_the_requested_number_of_cases() {
        let mut count = 0;
        run_n("counting", 17, |_| count += 1);
        assert_eq!(count, 17);
    }

    #[test]
    fn cases_see_distinct_streams() {
        let mut firsts = Vec::new();
        run_n("distinct_streams", 32, |rng| firsts.push(rng.next_u64()));
        let unique: std::collections::BTreeSet<u64> = firsts.iter().copied().collect();
        assert_eq!(unique.len(), firsts.len());
    }

    #[test]
    fn reruns_are_deterministic() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        run_n("replay", 8, |rng| a.push(rng.next_u64()));
        run_n("replay", 8, |rng| b.push(rng.next_u64()));
        assert_eq!(a, b);
    }

    #[test]
    fn properties_get_distinct_seeds() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        run_n("name_a", 4, |rng| a.push(rng.next_u64()));
        run_n("name_b", 4, |rng| b.push(rng.next_u64()));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn failures_propagate() {
        run_n("failing", 4, |rng| {
            let v: u64 = rng.gen();
            assert!(v == u64::MAX, "deliberate: {v}");
        });
    }

    #[test]
    fn vec_of_respects_length_range() {
        run_n("vec_of_len", 32, |rng| {
            let v = vec_of(rng, 3..9, |r| r.gen_range(0u32..5));
            assert!((3..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        });
    }

    #[test]
    fn one_of_only_returns_listed_options() {
        run_n("one_of", 64, |rng| {
            let v = one_of(rng, &[2u8, 4, 8]);
            assert!([2, 4, 8].contains(&v));
        });
    }
}
