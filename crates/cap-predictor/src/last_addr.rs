//! The last-address predictor — the simplest prior-art baseline
//! (\[Lipa96a\]); predicts `A_{N+1} = A_N`.
//!
//! The paper's Section 1 reports that this scheme "surprisingly" covers
//! about 40% of all load addresses (globals, read-only constants, recurring
//! stack slots); the `text-coverage` experiment reproduces that headline.

use crate::confidence::SaturatingCounter;
use crate::load_buffer::{LoadBuffer, LoadBufferConfig, LbEntryProto};
use crate::types::{AddressPredictor, LoadContext, PredSource, Prediction, PredictionDetail};

/// A last-address predictor built on the shared Load Buffer.
#[derive(Debug, Clone)]
pub struct LastAddressPredictor {
    lb: LoadBuffer,
}

impl LastAddressPredictor {
    /// Creates the predictor with saturating-counter confidence
    /// (threshold 2, max 3).
    ///
    /// # Examples
    ///
    /// ```
    /// use cap_predictor::last_addr::LastAddressPredictor;
    /// use cap_predictor::load_buffer::LoadBufferConfig;
    /// use cap_predictor::types::{AddressPredictor, LoadContext};
    ///
    /// let mut p = LastAddressPredictor::new(LoadBufferConfig::paper_default());
    /// for _ in 0..4 {
    ///     let ctx = LoadContext::new(0x100, 0, 0);
    ///     let pred = p.predict(&ctx);
    ///     p.update(&ctx, 0xBEEC, &pred);
    /// }
    /// let pred = p.predict(&LoadContext::new(0x100, 0, 0));
    /// assert_eq!(pred.addr, Some(0xBEEC));
    /// assert!(pred.speculate);
    /// ```
    #[must_use]
    pub fn new(lb: LoadBufferConfig) -> Self {
        let counter = SaturatingCounter::new(2, 3, false);
        Self {
            lb: LoadBuffer::new(
                lb,
                LbEntryProto {
                    cap_conf: counter,
                    stride_conf: counter,
                },
            ),
        }
    }
}

impl AddressPredictor for LastAddressPredictor {
    fn predict(&mut self, ctx: &LoadContext) -> Prediction {
        let Some(entry) = self.lb.lookup(ctx.ip) else {
            return Prediction::none();
        };
        if !entry.stride_seen {
            return Prediction::none();
        }
        let addr = Some(entry.last_addr);
        Prediction {
            addr,
            speculate: entry.stride_conf.is_confident(),
            source: PredSource::LastAddress,
            detail: PredictionDetail {
                stride_addr: addr,
                stride_confident: entry.stride_conf.is_confident(),
                ..PredictionDetail::default()
            },
        }
    }

    fn update(&mut self, ctx: &LoadContext, actual: u64, pred: &Prediction) {
        let (entry, _fresh) = self.lb.lookup_or_insert(ctx.ip);
        if pred.addr.is_some() {
            if pred.addr == Some(actual) {
                entry.stride_conf.on_correct();
            } else {
                entry.stride_conf.on_incorrect();
            }
        }
        entry.last_addr = actual;
        entry.stride_seen = true;
    }

    fn name(&self) -> &'static str {
        "last-address"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> LastAddressPredictor {
        LastAddressPredictor::new(LoadBufferConfig {
            entries: 64,
            assoc: 2,
        })
    }

    fn step(p: &mut LastAddressPredictor, ip: u64, actual: u64) -> Prediction {
        let ctx = LoadContext::new(ip, 0, 0);
        let pred = p.predict(&ctx);
        p.update(&ctx, actual, &pred);
        pred
    }

    #[test]
    fn predicts_constant_address() {
        let mut p = predictor();
        for _ in 0..5 {
            step(&mut p, 0x40, 0x1234);
        }
        let pred = p.predict(&LoadContext::new(0x40, 0, 0));
        assert_eq!(pred.addr, Some(0x1234));
        assert!(pred.speculate);
        assert_eq!(pred.source, PredSource::LastAddress);
    }

    #[test]
    fn strides_defeat_it() {
        let mut p = predictor();
        let mut spec = 0;
        for i in 0..20u64 {
            let pred = step(&mut p, 0x40, 0x1000 + i * 8);
            if pred.speculate {
                spec += 1;
            }
        }
        assert_eq!(spec, 0, "a moving address never builds confidence");
    }

    #[test]
    fn changed_address_drops_confidence() {
        let mut p = predictor();
        for _ in 0..5 {
            step(&mut p, 0x40, 0x1234);
        }
        step(&mut p, 0x40, 0x9999);
        let pred = p.predict(&LoadContext::new(0x40, 0, 0));
        assert_eq!(pred.addr, Some(0x9999), "prediction follows the new value");
        assert!(!pred.speculate, "but confidence must rebuild");
    }

    #[test]
    fn first_occurrence_gives_nothing() {
        let mut p = predictor();
        assert_eq!(p.predict(&LoadContext::new(0x40, 0, 0)), Prediction::none());
        step(&mut p, 0x40, 0x1);
        assert!(p.predict(&LoadContext::new(0x40, 0, 0)).addr.is_some());
    }
}
