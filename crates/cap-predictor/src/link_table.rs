//! The Link Table (LT) — second level of the CAP predictor (§3.1, §3.4,
//! §3.5).
//!
//! Indexed by the folded per-load history, each entry links a context to
//! the (base) address that followed it last time. Three refinements from
//! the paper are implemented here:
//!
//! * **Tags** — extra folded-history bits stored per entry; predictions are
//!   offered only on tag match, the paper's most effective confidence
//!   mechanism (Figure 10).
//! * **Set associativity** — the paper notes low impact (§4.2); supported
//!   for the sweep experiments.
//! * **Pollution-free (PF) bits** — bits 2..=5 of the last base address
//!   that *attempted* an update; a link is replaced only when the same
//!   update is seen twice in a row, filtering irregular loads and adding
//!   hysteresis (§3.5). The PF field can also live in a larger decoupled
//!   direct-mapped table (\[Mora98\]), enabled by [`PfMode::Decoupled`].

use crate::history::FoldedHistory;

/// Pollution-filter configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PfMode {
    /// No pollution filtering: every update writes the link.
    Off,
    /// PF bits stored inline in each LT entry (paper's base scheme).
    #[default]
    Inline,
    /// PF bits in a decoupled direct-mapped table with `extra_index_bits`
    /// more index bits than the LT (finer granularity, per \[Mora98\]).
    Decoupled {
        /// Additional index bits relative to the LT index.
        extra_index_bits: u32,
    },
}

/// Configuration of a [`LinkTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTableConfig {
    /// Total number of entries (must be a power of two).
    pub entries: usize,
    /// Associativity (1 = direct-mapped, as in the paper's baseline).
    pub assoc: usize,
    /// Pollution-filter mode.
    pub pf_mode: PfMode,
}

impl LinkTableConfig {
    /// The paper's baseline: 4K-entry direct-mapped, inline PF bits.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            entries: 4096,
            assoc: 1,
            pf_mode: PfMode::Inline,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.entries / self.assoc
    }

    fn validate(&self) {
        assert!(self.entries.is_power_of_two(), "LT entries must be a power of two");
        assert!(self.assoc >= 1, "associativity must be at least 1");
        assert!(
            self.entries.is_multiple_of(self.assoc) && (self.entries / self.assoc).is_power_of_two(),
            "LT sets must be a power of two"
        );
    }
}

/// One Link Table entry. Fields are public for diagnostics and fault
/// injection; normal prediction flows go through [`LinkTable::lookup`] /
/// [`LinkTable::update`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LtEntry {
    /// Extra folded-history bits matched on lookup (§3.4).
    pub tag: u64,
    /// The linked (base) address.
    pub link: u64,
    /// Inline pollution-filter bits (bits 2..=5 of the last attempted base).
    pub pf: u8,
    /// True once `pf` has been written at least once.
    pub pf_primed: bool,
    /// LRU timestamp.
    pub lru: u64,
}

/// What one [`LinkTable::update_outcome`] attempt did to the table.
///
/// [`LinkTable::update`] collapses this to "was the link written"; the
/// full outcome distinguishes healthy training from pollution so the
/// observability layer can count them separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LtWrite {
    /// Allocated a previously empty way.
    Fill,
    /// Re-wrote a tag-matching entry whose link already held the base
    /// (steady state — the common case once warm).
    Refresh,
    /// Changed a tag-matching entry's link to a new base (retraining an
    /// existing context).
    Retrain,
    /// Evicted a live entry with a *different* tag — the replacement /
    /// pollution event the PF bits exist to suppress (§3.5).
    Replace,
    /// PF filtering deferred the write; only PF state changed.
    Deferred,
}

impl LtWrite {
    /// Whether the link was actually written.
    #[must_use]
    pub fn written(self) -> bool {
        self != Self::Deferred
    }
}

/// The Link Table.
#[derive(Debug, Clone)]
pub struct LinkTable {
    config: LinkTableConfig,
    sets: Vec<Vec<Option<LtEntry>>>,
    decoupled_pf: Vec<(u8, bool)>,
    tick: u64,
}

/// PF bits of a base address: bits 2..=5, per §3.5.
fn pf_bits(base: u64) -> u8 {
    ((base >> 2) & 0xF) as u8
}

impl LinkTable {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`LinkTableConfig`]).
    #[must_use]
    pub fn new(config: LinkTableConfig) -> Self {
        config.validate();
        let decoupled_len = match config.pf_mode {
            PfMode::Decoupled { extra_index_bits } => config.sets() << extra_index_bits,
            _ => 0,
        };
        Self {
            sets: vec![vec![None; config.assoc]; config.sets()],
            decoupled_pf: vec![(0, false); decoupled_len],
            config,
            tick: 0,
        }
    }

    /// The table's configuration.
    #[must_use]
    pub fn config(&self) -> &LinkTableConfig {
        &self.config
    }

    fn set_index(&self, folded: &FoldedHistory) -> usize {
        (folded.index as usize) & (self.config.sets() - 1)
    }

    /// Looks up the link for a folded history. Returns the linked (base)
    /// address only on a tag match.
    #[must_use]
    pub fn lookup(&self, folded: &FoldedHistory) -> Option<u64> {
        let set = &self.sets[self.set_index(folded)];
        set.iter()
            .flatten()
            .find(|e| e.tag == folded.tag)
            .map(|e| e.link)
    }

    /// Attempts to record `folded → base`. Returns `true` if the link was
    /// actually written (PF filtering may defer the write to the second
    /// consecutive identical attempt).
    pub fn update(&mut self, folded: &FoldedHistory, base: u64) -> bool {
        self.update_outcome(folded, base).written()
    }

    /// [`LinkTable::update`] reporting *what* the write did — the
    /// telemetry surface behind the `cap.lt.*` counters.
    pub fn update_outcome(&mut self, folded: &FoldedHistory, base: u64) -> LtWrite {
        self.tick += 1;
        let new_pf = pf_bits(base);
        let admit = match self.config.pf_mode {
            PfMode::Off => true,
            PfMode::Inline => {
                // Inline PF: consult/refresh the PF bits of the entry this
                // update maps to (the victim entry if none matches).
                let set_idx = self.set_index(folded);
                let set = &mut self.sets[set_idx];
                // Find the matching way, else the way we would replace.
                let way = Self::way_for(set, folded.tag);
                match &mut set[way] {
                    Some(e) => {
                        let admit = e.pf_primed && e.pf == new_pf;
                        e.pf = new_pf;
                        e.pf_primed = true;
                        // A matching tag refreshes the link unconditionally
                        // only when admitted below.
                        admit || (e.tag == folded.tag && e.link == base)
                    }
                    None => {
                        // Empty way: prime the PF bits, admit nothing yet.
                        set[way] = Some(LtEntry {
                            tag: folded.tag,
                            link: base,
                            pf: new_pf,
                            pf_primed: true,
                            lru: self.tick,
                        });
                        // Allocating an empty entry is not pollution — the
                        // link is live immediately.
                        return LtWrite::Fill;
                    }
                }
            }
            PfMode::Decoupled { .. } => {
                // [Mora98]'s decoupled filter is a *larger direct-mapped*
                // table: the extra index bits come from the low end of the
                // fold (the tag field), giving finer granularity without
                // aliasing unrelated contexts. Xoring the whole tag into the
                // shifted index (the previous scheme) folded distinct
                // contexts onto one PF slot.
                let idx = (self.set_index(folded)
                    | ((folded.tag as usize) << self.config.sets().trailing_zeros()))
                    & (self.decoupled_pf.len() - 1);
                let slot = &mut self.decoupled_pf[idx];
                let admit = slot.1 && slot.0 == new_pf;
                *slot = (new_pf, true);
                admit
            }
        };
        if !admit {
            return LtWrite::Deferred;
        }
        let tick = self.tick;
        let set_idx = self.set_index(folded);
        let set = &mut self.sets[set_idx];
        let way = Self::way_for(set, folded.tag);
        let (pf_state, outcome) = match set[way] {
            Some(e) if e.tag == folded.tag && e.link == base => {
                ((e.pf, e.pf_primed), LtWrite::Refresh)
            }
            Some(e) if e.tag == folded.tag => ((e.pf, e.pf_primed), LtWrite::Retrain),
            Some(e) => ((e.pf, e.pf_primed), LtWrite::Replace),
            None => ((new_pf, true), LtWrite::Fill),
        };
        set[way] = Some(LtEntry {
            tag: folded.tag,
            link: base,
            pf: pf_state.0,
            pf_primed: pf_state.1,
            lru: tick,
        });
        outcome
    }

    /// Chooses the way holding `tag`, else an empty way, else the LRU way.
    fn way_for(set: &[Option<LtEntry>], tag: u64) -> usize {
        if let Some(i) = set
            .iter()
            .position(|e| e.as_ref().is_some_and(|e| e.tag == tag))
        {
            return i;
        }
        if let Some(i) = set.iter().position(Option::is_none) {
            return i;
        }
        // LRU fold defaulting to way 0 — a (config-impossible) empty set
        // cannot make this panic.
        set.iter()
            .enumerate()
            .fold((0usize, u64::MAX), |best, (i, e)| {
                let lru = e.as_ref().map_or(0, |e| e.lru);
                if lru < best.1 { (i, lru) } else { best }
            })
            .0
    }

    /// Number of live entries (diagnostics).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.sets.iter().flatten().flatten().count()
    }

    /// Iterates over live entries (diagnostics, invariant checking).
    pub fn entries(&self) -> impl Iterator<Item = &LtEntry> {
        self.sets.iter().flatten().flatten()
    }

    /// Mutably iterates over live entries — the fault-injection surface for
    /// links, tags and PF bits. The table stays structurally sound under
    /// arbitrary field edits: a corrupted tag behaves like a miss/alias and
    /// corrupted PF bits only change admit decisions.
    pub fn entries_mut(&mut self) -> impl Iterator<Item = &mut LtEntry> {
        self.sets.iter_mut().flatten().flatten()
    }

    /// Mutable view of the decoupled PF table (empty unless
    /// [`PfMode::Decoupled`]); each slot is `(pf_bits, primed)`.
    pub fn decoupled_pf_mut(&mut self) -> &mut [(u8, bool)] {
        &mut self.decoupled_pf
    }
}

use cap_snapshot::{Restorable, SectionReader, SectionWriter, Snapshot, SnapshotError};

impl Snapshot for PfMode {
    fn write_state(&self, w: &mut SectionWriter) {
        match self {
            PfMode::Off => w.put_u8(0),
            PfMode::Inline => w.put_u8(1),
            PfMode::Decoupled { extra_index_bits } => {
                w.put_u8(2);
                w.put_u32(*extra_index_bits);
            }
        }
    }
}

impl Restorable for PfMode {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        match r.take_u8("pf mode tag")? {
            0 => Ok(PfMode::Off),
            1 => Ok(PfMode::Inline),
            2 => {
                let extra_index_bits = r.take_u32("pf extra index bits")?;
                if extra_index_bits > 16 {
                    return Err(r.bad_value(format!("pf extra index bits {extra_index_bits} above 16")));
                }
                Ok(PfMode::Decoupled { extra_index_bits })
            }
            tag => Err(r.bad_value(format!("unknown pf mode tag {tag}"))),
        }
    }
}

impl Snapshot for LinkTableConfig {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_len(self.entries);
        w.put_len(self.assoc);
        self.pf_mode.write_state(w);
    }
}

impl Restorable for LinkTableConfig {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let entries = r.take_u64("lt entries")?;
        let assoc = r.take_u64("lt associativity")?;
        let pf_mode = PfMode::read_state(r)?;
        // Mirror LinkTableConfig::validate without its panics, with a
        // ceiling so hostile configs can't demand unbounded allocation.
        if !entries.is_power_of_two() || entries > 1 << 24 {
            return Err(r.bad_value(format!("lt entries {entries} not a power of two <= 2^24")));
        }
        if assoc == 0 || assoc > entries || entries % assoc != 0 || !(entries / assoc).is_power_of_two() {
            return Err(r.bad_value(format!("lt associativity {assoc} incompatible with {entries} entries")));
        }
        let config = Self {
            entries: entries as usize,
            assoc: assoc as usize,
            pf_mode,
        };
        if let PfMode::Decoupled { extra_index_bits } = pf_mode {
            if (config.sets() as u64) << extra_index_bits > 1 << 26 {
                return Err(r.bad_value(format!(
                    "decoupled pf table of {} sets << {extra_index_bits} bits above 2^26 slots",
                    config.sets()
                )));
            }
        }
        Ok(config)
    }
}

impl Snapshot for LtEntry {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_u64(self.tag);
        w.put_u64(self.link);
        w.put_u8(self.pf);
        w.put_bool(self.pf_primed);
        w.put_u64(self.lru);
    }
}

impl Restorable for LtEntry {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            tag: r.take_u64("lt entry tag")?,
            link: r.take_u64("lt entry link")?,
            pf: r.take_u8("lt entry pf bits")?,
            pf_primed: r.take_bool("lt entry pf primed")?,
            lru: r.take_u64("lt entry lru")?,
        })
    }
}

impl Snapshot for LinkTable {
    fn write_state(&self, w: &mut SectionWriter) {
        self.config.write_state(w);
        w.put_u64(self.tick);
        for set in &self.sets {
            for way in set {
                match way {
                    Some(entry) => {
                        w.put_bool(true);
                        entry.write_state(w);
                    }
                    None => w.put_bool(false),
                }
            }
        }
        for &(pf, primed) in &self.decoupled_pf {
            w.put_u8(pf);
            w.put_bool(primed);
        }
    }
}

impl Restorable for LinkTable {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let config = LinkTableConfig::read_state(r)?;
        let tick = r.take_u64("lt tick")?;
        let mut sets = Vec::with_capacity(config.sets());
        for _ in 0..config.sets() {
            let mut set = Vec::with_capacity(config.assoc);
            for _ in 0..config.assoc {
                set.push(if r.take_bool("lt way presence")? {
                    Some(LtEntry::read_state(r)?)
                } else {
                    None
                });
            }
            sets.push(set);
        }
        let decoupled_len = match config.pf_mode {
            PfMode::Decoupled { extra_index_bits } => config.sets() << extra_index_bits,
            _ => 0,
        };
        let mut decoupled_pf = Vec::with_capacity(decoupled_len);
        for _ in 0..decoupled_len {
            let pf = r.take_u8("decoupled pf bits")?;
            let primed = r.take_bool("decoupled pf primed")?;
            decoupled_pf.push((pf, primed));
        }
        Ok(Self {
            config,
            sets,
            decoupled_pf,
            tick,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn folded(index: u64, tag: u64) -> FoldedHistory {
        FoldedHistory { index, tag }
    }

    fn table(pf: PfMode) -> LinkTable {
        LinkTable::new(LinkTableConfig {
            entries: 64,
            assoc: 1,
            pf_mode: pf,
        })
    }

    #[test]
    fn lookup_misses_on_empty_table() {
        let lt = table(PfMode::Off);
        assert_eq!(lt.lookup(&folded(3, 0)), None);
    }

    #[test]
    fn update_then_lookup_roundtrips() {
        let mut lt = table(PfMode::Off);
        assert!(lt.update(&folded(5, 0x2A), 0x1000));
        assert_eq!(lt.lookup(&folded(5, 0x2A)), Some(0x1000));
    }

    #[test]
    fn tag_mismatch_hides_entry() {
        let mut lt = table(PfMode::Off);
        lt.update(&folded(5, 0x2A), 0x1000);
        assert_eq!(lt.lookup(&folded(5, 0x2B)), None, "different tag must miss");
    }

    #[test]
    fn pf_inline_requires_two_consecutive_identical_updates() {
        let mut lt = table(PfMode::Inline);
        // Seed the entry with link A (allocation is immediate).
        assert!(lt.update(&folded(1, 0), 0xA0));
        assert_eq!(lt.lookup(&folded(1, 0)), Some(0xA0));
        // One attempt to change the link to B: PF bits differ, rejected.
        assert!(!lt.update(&folded(1, 0), 0xB4));
        assert_eq!(lt.lookup(&folded(1, 0)), Some(0xA0), "first change deferred");
        // Second consecutive identical attempt: admitted.
        assert!(lt.update(&folded(1, 0), 0xB4));
        assert_eq!(lt.lookup(&folded(1, 0)), Some(0xB4));
    }

    #[test]
    fn pf_blocks_alternating_irregular_updates() {
        let mut lt = table(PfMode::Inline);
        lt.update(&folded(1, 0), 0xA0);
        // Alternating, never-repeating bases with distinct PF bits: all
        // rejected, the original link survives (pollution resistance).
        let mut admitted = 0;
        for i in 0..16u64 {
            if lt.update(&folded(1, 0), 0x100 + i * 4) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 0, "strictly changing PF bits never admit");
        assert_eq!(lt.lookup(&folded(1, 0)), Some(0xA0));
    }

    #[test]
    fn pf_off_admits_everything() {
        let mut lt = table(PfMode::Off);
        lt.update(&folded(1, 0), 0xA0);
        assert!(lt.update(&folded(1, 0), 0xB0));
        assert_eq!(lt.lookup(&folded(1, 0)), Some(0xB0));
    }

    #[test]
    fn direct_mapped_conflicting_tags_evict_with_pf() {
        let mut lt = table(PfMode::Inline);
        lt.update(&folded(1, 0x1), 0xA0);
        // A different tag at the same index wants the entry: needs two
        // consecutive attempts (hysteresis on eviction too).
        assert!(!lt.update(&folded(1, 0x2), 0xB4));
        assert_eq!(lt.lookup(&folded(1, 0x1)), Some(0xA0));
        assert!(lt.update(&folded(1, 0x2), 0xB4));
        assert_eq!(lt.lookup(&folded(1, 0x2)), Some(0xB4));
        assert_eq!(lt.lookup(&folded(1, 0x1)), None);
    }

    #[test]
    fn set_associative_holds_conflicting_tags() {
        let mut lt = LinkTable::new(LinkTableConfig {
            entries: 64,
            assoc: 2,
            pf_mode: PfMode::Off,
        });
        lt.update(&folded(1, 0x1), 0xA0);
        lt.update(&folded(1, 0x2), 0xB0);
        assert_eq!(lt.lookup(&folded(1, 0x1)), Some(0xA0));
        assert_eq!(lt.lookup(&folded(1, 0x2)), Some(0xB0));
    }

    #[test]
    fn lru_evicts_oldest_way() {
        let mut lt = LinkTable::new(LinkTableConfig {
            entries: 64,
            assoc: 2,
            pf_mode: PfMode::Off,
        });
        lt.update(&folded(1, 0x1), 0xA0);
        lt.update(&folded(1, 0x2), 0xB0);
        lt.update(&folded(1, 0x3), 0xC0); // evicts tag 0x1 (oldest)
        assert_eq!(lt.lookup(&folded(1, 0x1)), None);
        assert_eq!(lt.lookup(&folded(1, 0x2)), Some(0xB0));
        assert_eq!(lt.lookup(&folded(1, 0x3)), Some(0xC0));
    }

    #[test]
    fn decoupled_pf_filters_like_inline() {
        let mut lt = table(PfMode::Decoupled {
            extra_index_bits: 2,
        });
        // First-touch allocation is filtered too under decoupled mode:
        // the first attempt only primes the PF slot.
        assert!(!lt.update(&folded(1, 0), 0xA0));
        assert!(lt.update(&folded(1, 0), 0xA0));
        assert_eq!(lt.lookup(&folded(1, 0)), Some(0xA0));
    }

    #[test]
    fn decoupled_pf_distinguishes_tags_sharing_an_index() {
        let mut lt = table(PfMode::Decoupled {
            extra_index_bits: 4,
        });
        // Same LT index, different tags: PF slots differ, so the two
        // streams don't destroy each other's priming.
        assert!(!lt.update(&folded(1, 0x1), 0xA0));
        assert!(!lt.update(&folded(1, 0x2), 0xB0));
        assert!(lt.update(&folded(1, 0x1), 0xA0));
    }

    #[test]
    fn update_outcome_classifies_writes() {
        let mut lt = table(PfMode::Off);
        // Empty way: fill.
        assert_eq!(lt.update_outcome(&folded(1, 0x1), 0xA0), LtWrite::Fill);
        // Same tag, same link: refresh.
        assert_eq!(lt.update_outcome(&folded(1, 0x1), 0xA0), LtWrite::Refresh);
        // Same tag, new link: retrain.
        assert_eq!(lt.update_outcome(&folded(1, 0x1), 0xB0), LtWrite::Retrain);
        // Different tag evicting a live entry: replace (pollution).
        assert_eq!(lt.update_outcome(&folded(1, 0x2), 0xC0), LtWrite::Replace);
        assert!(LtWrite::Fill.written() && !LtWrite::Deferred.written());
    }

    #[test]
    fn update_outcome_reports_pf_deferral() {
        let mut lt = table(PfMode::Inline);
        assert_eq!(lt.update_outcome(&folded(1, 0), 0xA0), LtWrite::Fill);
        // PF bits differ: first change attempt is deferred.
        assert_eq!(lt.update_outcome(&folded(1, 0), 0xB4), LtWrite::Deferred);
        assert_eq!(lt.update_outcome(&folded(1, 0), 0xB4), LtWrite::Retrain);
    }

    #[test]
    fn occupancy_counts_live_entries() {
        let mut lt = table(PfMode::Off);
        assert_eq!(lt.occupancy(), 0);
        lt.update(&folded(1, 0), 0xA0);
        lt.update(&folded(2, 0), 0xB0);
        assert_eq!(lt.occupancy(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_entries_rejected() {
        let _ = LinkTable::new(LinkTableConfig {
            entries: 100,
            assoc: 1,
            pf_mode: PfMode::Off,
        });
    }

    #[test]
    fn pf_bits_extract_bits_2_to_5() {
        assert_eq!(pf_bits(0b111100), 0b1111);
        assert_eq!(pf_bits(0b000011), 0);
        assert_eq!(pf_bits(1 << 6), 0);
    }
}
