//! # cap-predictor — Correlated Load-Address Predictors (ISCA 1999)
//!
//! A faithful implementation of the predictors from Bekerman et al.,
//! *Correlated Load-Address Predictors*, ISCA 1999:
//!
//! * [`cap::CapPredictor`] — the paper's contribution: a two-level
//!   context-based predictor (Load Buffer + Link Table) with shift(m)-xor
//!   history folding, base-address **global correlation**, LT **tags**,
//!   **control-flow indications**, and **pollution-free bits**.
//! * [`stride::StridePredictor`] — the enhanced stride baseline with the
//!   interval technique and pipelined catch-up.
//! * [`hybrid::HybridPredictor`] — the shared-LB hybrid with a dynamic
//!   2-bit selector and configurable LT update policies.
//! * [`last_addr::LastAddressPredictor`] and
//!   [`control_based::ControlBasedPredictor`] — prior-art baselines and the
//!   §3.6 ablation.
//!
//! ## Quick start
//!
//! ```
//! use cap_predictor::drive::Session;
//! use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
//! use cap_trace::suites::Suite;
//!
//! let trace = Suite::Int.traces()[0].generate(20_000);
//! let mut predictor = HybridPredictor::new(HybridConfig::paper_default());
//! let stats = Session::new(&mut predictor).run(&trace);
//! println!(
//!     "prediction rate {:.1}%  accuracy {:.2}%",
//!     100.0 * stats.prediction_rate(),
//!     100.0 * stats.accuracy(),
//! );
//! assert!(stats.prediction_rate() > 0.2);
//! ```
//!
//! The pipelined model of Section 5 is exposed through
//! [`drive::Session::gap`], which delays table updates by a configurable
//! *prediction gap* and feeds per-load pending counts to the catch-up and
//! interval mechanisms.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// The legacy `drive::run_*` wrappers are deprecated in favour of
// `drive::Session`; denying here keeps internal callers from creeping
// back before the wrappers are removed outright.
#![deny(deprecated)]

pub mod cap;
pub mod confidence;
pub mod control_based;
pub mod delta;
pub mod drive;
pub mod history;
pub mod hybrid;
pub mod last_addr;
pub mod link_table;
pub mod load_buffer;
pub mod metrics;
pub mod packed;
pub mod profile;
pub mod stride;
pub mod types;
pub mod variable;

pub use types::{AddressPredictor, LoadContext, PredSource, Prediction};

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::cap::{CapConfig, CapParams, CapPredictor};
    pub use crate::confidence::{CfiMode, SaturatingCounter};
    pub use crate::delta::{DeltaCapConfig, DeltaCapPredictor};
    pub use crate::drive::Session;
    pub use crate::history::HistorySpec;
    pub use crate::hybrid::{HybridConfig, HybridPredictor, LtUpdatePolicy, SelectorPolicy};
    pub use crate::last_addr::LastAddressPredictor;
    pub use crate::link_table::{LinkTableConfig, PfMode};
    pub use crate::load_buffer::LoadBufferConfig;
    pub use crate::metrics::PredictorStats;
    pub use crate::packed::PackedHybridPredictor;
    pub use crate::profile::{LoadClass, LoadClassMap, ProfileGuidedPredictor, Profiler};
    pub use crate::stride::{StrideParams, StridePredictor};
    pub use crate::variable::{VariableHistoryCap, VariableHistoryConfig};
    pub use crate::types::{AddressPredictor, LoadContext, PredSource, Prediction};
}
