//! The hybrid CAP/enhanced-stride predictor (§3.7, Figure 4).
//!
//! Both components share one Load Buffer — the CAP fields, the stride
//! fields, and a per-entry 2-bit **selector** live in the same entry. Both
//! components predict every dynamic load and both update their state; a
//! speculative access is launched when at least one component is confident,
//! with the selector arbitrating when both are. The selector counter is
//! initialised toward *weak CAP* (CAP's base misprediction rate is lower)
//! and trained on the components' relative performance after verification.
//!
//! The Link Table may be updated selectively (§4.3): always, only when the
//! stride component mispredicted, or only when it mispredicted or lost the
//! selection. The paper finds *always* slightly best and we default to it.

use crate::cap::{CapComponent, CapParams};
use crate::link_table::LinkTableConfig;
use crate::load_buffer::{LoadBuffer, LoadBufferConfig, LbEntryProto};
use crate::metrics::names;
use crate::stride::{StrideComponent, StrideParams};
use crate::types::{AddressPredictor, LoadContext, PredSource, Prediction, PredictionDetail};
use cap_obs::Obs;

/// When the hybrid writes the Link Table (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LtUpdatePolicy {
    /// Update on every resolved load (paper's winner).
    #[default]
    Always,
    /// Skip the update when the stride component predicted correctly.
    UnlessStrideCorrect,
    /// Skip the update when the stride component predicted correctly *and*
    /// its prediction was the one selected for the speculative access.
    UnlessStrideCorrectAndSelected,
}

/// How the hybrid arbitrates when both components are confident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectorPolicy {
    /// Per-entry 2-bit counter trained on relative performance (§4.4).
    #[default]
    Dynamic,
    /// Always prefer the stride component.
    StaticStride,
    /// Always prefer the CAP component.
    StaticCap,
}

/// Configuration of a [`HybridPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridConfig {
    /// Load Buffer geometry (shared by both components).
    pub lb: LoadBufferConfig,
    /// Link Table geometry.
    pub lt: LinkTableConfig,
    /// CAP component tunables.
    pub cap: CapParams,
    /// Stride component tunables.
    pub stride: StrideParams,
    /// LT update policy.
    pub lt_update: LtUpdatePolicy,
    /// Selection policy.
    pub selector: SelectorPolicy,
}

impl HybridConfig {
    /// The paper's baseline hybrid (§4.2): 4K-entry 2-way LB, 4K
    /// direct-mapped LT, dynamic selection, always-update LT.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            lb: LoadBufferConfig::paper_default(),
            lt: LinkTableConfig::paper_default(),
            cap: CapParams::paper_default(),
            stride: StrideParams::paper_default(),
            lt_update: LtUpdatePolicy::Always,
            selector: SelectorPolicy::Dynamic,
        }
    }

    /// Baseline with pipelined (speculative-history, catch-up) behaviour
    /// enabled on both components, for prediction-gap experiments (§5).
    #[must_use]
    pub fn paper_pipelined() -> Self {
        let mut cfg = Self::paper_default();
        cfg.cap.speculative_history = true;
        cfg.stride.catch_up = true;
        cfg
    }
}

/// The hybrid CAP/enhanced-stride predictor.
#[derive(Debug, Clone)]
pub struct HybridPredictor {
    lb: LoadBuffer,
    cap: CapComponent,
    stride: StrideComponent,
    lt_update: LtUpdatePolicy,
    selector_policy: SelectorPolicy,
    obs: Obs,
}

impl HybridPredictor {
    /// Creates the predictor.
    ///
    /// # Examples
    ///
    /// ```
    /// use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
    /// use cap_predictor::types::{AddressPredictor, LoadContext};
    ///
    /// let mut p = HybridPredictor::new(HybridConfig::paper_default());
    /// // Stride pattern: handled by the stride side.
    /// for i in 0..10u64 {
    ///     let ctx = LoadContext::new(0x100, 0, 0);
    ///     let pred = p.predict(&ctx);
    ///     p.update(&ctx, 0x4000 + i * 8, &pred);
    /// }
    /// assert!(p.predict(&LoadContext::new(0x100, 0, 0)).speculate);
    /// ```
    #[must_use]
    pub fn new(config: HybridConfig) -> Self {
        let proto = LbEntryProto {
            cap_conf: config.cap.counter(),
            stride_conf: config.stride.counter(),
        };
        Self {
            lb: LoadBuffer::new(config.lb, proto),
            cap: CapComponent::new(config.cap, config.lt),
            stride: StrideComponent::new(config.stride),
            lt_update: config.lt_update,
            selector_policy: config.selector,
            obs: Obs::off(),
        }
    }

    /// Read access to the shared Load Buffer (diagnostics).
    #[must_use]
    pub fn load_buffer(&self) -> &LoadBuffer {
        &self.lb
    }

    /// Mutable access to the shared Load Buffer (fault injection / chaos
    /// testing).
    pub fn load_buffer_mut(&mut self) -> &mut LoadBuffer {
        &mut self.lb
    }

    /// Read access to the CAP component (diagnostics).
    #[must_use]
    pub fn cap_component(&self) -> &CapComponent {
        &self.cap
    }

    /// Mutable access to the CAP component, and through it the Link Table
    /// (fault injection / chaos testing).
    pub fn cap_component_mut(&mut self) -> &mut CapComponent {
        &mut self.cap
    }

    fn select_cap(&self, selector: u8) -> bool {
        match self.selector_policy {
            SelectorPolicy::Dynamic => selector >= 2,
            SelectorPolicy::StaticStride => false,
            SelectorPolicy::StaticCap => true,
        }
    }
}

impl AddressPredictor for HybridPredictor {
    fn predict(&mut self, ctx: &LoadContext) -> Prediction {
        let Some(entry) = self.lb.lookup(ctx.ip) else {
            self.obs.incr(names::LB_MISS);
            return Prediction::none();
        };
        self.obs.incr(names::LB_HIT);
        let (stride_addr, stride_conf) = self.stride.predict(entry, ctx);
        let (cap_addr, cap_conf) = self.cap.predict(entry, ctx);
        let selector_state = entry.selector;
        let next_invocation = stride_addr
            .filter(|_| stride_conf)
            .map(|a| a.wrapping_add(entry.stride as u64));

        // Choose the component for the speculative access. When only one is
        // confident it wins; when both are, the selector arbitrates; when
        // neither is, the selector still names the address we *report*
        // (verified, but no speculative access is launched).
        let prefer_cap = self.select_cap(selector_state);
        let (addr, source, speculate) = match (
            stride_addr.filter(|_| stride_conf),
            cap_addr.filter(|_| cap_conf),
        ) {
            (Some(s), Some(c)) => {
                if prefer_cap {
                    (Some(c), PredSource::Cap, true)
                } else {
                    (Some(s), PredSource::Stride, true)
                }
            }
            (Some(s), None) => (Some(s), PredSource::Stride, true),
            (None, Some(c)) => (Some(c), PredSource::Cap, true),
            (None, None) => match (stride_addr, cap_addr) {
                (Some(_), Some(c)) if prefer_cap => (Some(c), PredSource::Cap, false),
                (Some(s), _) => (Some(s), PredSource::Stride, false),
                (None, Some(c)) => (Some(c), PredSource::Cap, false),
                (None, None) => (None, PredSource::None, false),
            },
        };
        Prediction {
            addr,
            speculate,
            source,
            detail: PredictionDetail {
                stride_addr,
                stride_confident: stride_conf,
                cap_addr,
                cap_confident: cap_conf,
                selector_state: Some(selector_state),
                next_invocation,
            },
        }
    }

    fn update(&mut self, ctx: &LoadContext, actual: u64, pred: &Prediction) {
        let (entry, fresh) = self.lb.lookup_or_insert(ctx.ip);
        if fresh {
            self.obs.incr(names::LB_ALLOC);
        }
        let d = &pred.detail;
        let stride_correct = d.stride_addr == Some(actual);
        let cap_correct = d.cap_addr == Some(actual);

        // LT update policy (§4.3).
        let update_lt = match self.lt_update {
            LtUpdatePolicy::Always => true,
            LtUpdatePolicy::UnlessStrideCorrect => !stride_correct,
            LtUpdatePolicy::UnlessStrideCorrectAndSelected => {
                !(stride_correct && pred.source == PredSource::Stride)
            }
        };

        let cap_speculated = pred.speculate && pred.source == PredSource::Cap;
        let stride_speculated = pred.speculate && pred.source == PredSource::Stride;
        self.cap
            .update(entry, ctx, actual, d.cap_addr, cap_speculated, update_lt);
        self.stride
            .update(entry, ctx, actual, d.stride_addr, stride_speculated);

        // Selector training (§4.4): move toward the component that was
        // right when they disagree.
        if d.stride_addr.is_some() && d.cap_addr.is_some() {
            if cap_correct && !stride_correct {
                if entry.selector < 3 {
                    self.obs.incr(names::HYBRID_SELECTOR_UP);
                }
                entry.selector = (entry.selector + 1).min(3);
            } else if stride_correct && !cap_correct {
                if entry.selector > 0 {
                    self.obs.incr(names::HYBRID_SELECTOR_DOWN);
                }
                entry.selector = entry.selector.saturating_sub(1);
            }
        }
    }

    fn name(&self) -> &'static str {
        "hybrid-cap-stride"
    }

    fn set_obs(&mut self, obs: Obs) {
        self.cap.set_obs(obs.clone());
        self.stride.set_obs(obs.clone());
        self.obs = obs;
    }
}

use cap_snapshot::{Restorable, SectionReader, SectionWriter, Snapshot, SnapshotError};

impl Snapshot for LtUpdatePolicy {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_u8(match self {
            Self::Always => 0,
            Self::UnlessStrideCorrect => 1,
            Self::UnlessStrideCorrectAndSelected => 2,
        });
    }
}

impl Restorable for LtUpdatePolicy {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        match r.take_u8("lt update policy tag")? {
            0 => Ok(Self::Always),
            1 => Ok(Self::UnlessStrideCorrect),
            2 => Ok(Self::UnlessStrideCorrectAndSelected),
            t => Err(r.bad_value(format!("lt update policy tag {t} unknown"))),
        }
    }
}

impl Snapshot for SelectorPolicy {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_u8(match self {
            Self::Dynamic => 0,
            Self::StaticStride => 1,
            Self::StaticCap => 2,
        });
    }
}

impl Restorable for SelectorPolicy {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        match r.take_u8("selector policy tag")? {
            0 => Ok(Self::Dynamic),
            1 => Ok(Self::StaticStride),
            2 => Ok(Self::StaticCap),
            t => Err(r.bad_value(format!("selector policy tag {t} unknown"))),
        }
    }
}

impl Snapshot for HybridPredictor {
    fn write_state(&self, w: &mut SectionWriter) {
        self.lb.write_state(w);
        self.cap.write_state(w);
        self.stride.params().write_state(w);
        self.lt_update.write_state(w);
        self.selector_policy.write_state(w);
    }
}

impl Restorable for HybridPredictor {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let lb = LoadBuffer::read_state(r)?;
        let cap = CapComponent::read_state(r)?;
        let stride_params = StrideParams::read_state(r)?;
        // Telemetry is not snapshotted: restores come up with it off.
        Ok(Self {
            lb,
            cap,
            stride: StrideComponent::new(stride_params),
            lt_update: LtUpdatePolicy::read_state(r)?,
            selector_policy: SelectorPolicy::read_state(r)?,
            obs: Obs::off(),
        })
    }
}

impl HybridPredictor {
    /// Number of live Link Table entries (diagnostics).
    #[must_use]
    pub fn cap_link_table_occupancy(&self) -> usize {
        self.cap.link_table().occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistorySpec;
    use crate::link_table::PfMode;

    fn config() -> HybridConfig {
        HybridConfig {
            lb: LoadBufferConfig {
                entries: 256,
                assoc: 2,
            },
            lt: LinkTableConfig {
                entries: 1024,
                assoc: 2,
                pf_mode: PfMode::Inline,
            },
            cap: CapParams {
                history: HistorySpec {
                    length: 2,
                    shift: 3,
                    index_bits: 10,
                    tag_bits: 8,
                },
                ..CapParams::paper_default()
            },
            stride: StrideParams::paper_default(),
            lt_update: LtUpdatePolicy::Always,
            selector: SelectorPolicy::Dynamic,
        }
    }

    fn step(p: &mut HybridPredictor, ip: u64, actual: u64) -> Prediction {
        let ctx = LoadContext::new(ip, 0, 0);
        let pred = p.predict(&ctx);
        p.update(&ctx, actual, &pred);
        pred
    }

    #[test]
    fn covers_stride_patterns() {
        let mut p = HybridPredictor::new(config());
        let mut last = Prediction::none();
        for i in 0..2000u64 {
            last = step(&mut p, 0x40, 0x10_0000 + i * 8);
        }
        assert!(last.speculate);
        assert!(last.is_correct(0x10_0000 + 1999 * 8));
        // A 2000-long stride can't live in a 1K LT: stride side must serve.
        assert_eq!(last.source, PredSource::Stride);
    }

    #[test]
    fn covers_nonstride_patterns_via_cap() {
        let mut p = HybridPredictor::new(config());
        let pattern = [0x100u64, 0x880, 0x480, 0x280, 0x940];
        let mut last = Prediction::none();
        for _ in 0..8 {
            for &a in &pattern {
                last = step(&mut p, 0x40, a);
            }
        }
        assert!(last.speculate);
        assert_eq!(last.source, PredSource::Cap);
    }

    #[test]
    fn selector_learns_to_prefer_the_winner() {
        // The §4.3 "JAVA inner loop": tiny array swept repeatedly. Both
        // components predict; only CAP is right at the wrap. The selector
        // must drift to strong CAP.
        let mut p = HybridPredictor::new(config());
        let seq: Vec<u64> = (0..7).map(|i| 0x2000 + i * 4).collect();
        let mut final_state = 0;
        for _ in 0..30 {
            for &a in &seq {
                let pred = step(&mut p, 0x40, a);
                if let Some(s) = pred.detail.selector_state {
                    final_state = s;
                }
            }
        }
        assert_eq!(final_state, 3, "selector should reach strong CAP");
    }

    #[test]
    fn selector_static_stride_forces_stride() {
        let mut cfg = config();
        cfg.selector = SelectorPolicy::StaticStride;
        let mut p = HybridPredictor::new(cfg);
        for i in 0..20u64 {
            step(&mut p, 0x40, 0x2000 + i * 8);
        }
        let pred = p.predict(&LoadContext::new(0x40, 0, 0));
        assert_eq!(pred.source, PredSource::Stride);
    }

    #[test]
    fn one_confident_component_suffices() {
        let mut p = HybridPredictor::new(config());
        // Random-looking short pattern CAP can learn but stride cannot.
        let pattern = [0x100u64, 0x99C, 0x230, 0x7F4];
        let mut last = Prediction::none();
        for _ in 0..10 {
            for &a in &pattern {
                last = step(&mut p, 0x40, a);
            }
        }
        assert!(last.speculate, "CAP alone must authorise the access");
        assert!(last.detail.cap_confident);
        assert!(!last.detail.stride_confident);
    }

    #[test]
    fn detail_reports_both_components() {
        let mut p = HybridPredictor::new(config());
        for i in 0..10u64 {
            step(&mut p, 0x40, 0x2000 + i * 8);
        }
        let pred = p.predict(&LoadContext::new(0x40, 0, 0));
        assert!(pred.detail.stride_addr.is_some());
        assert!(pred.detail.selector_state.is_some());
    }

    #[test]
    fn update_policies_affect_lt_content() {
        // Under UnlessStrideCorrect, a pure stride pattern never reaches
        // the LT; under Always it does.
        let occupancy = |policy: LtUpdatePolicy| {
            let mut cfg = config();
            cfg.lt_update = policy;
            let mut p = HybridPredictor::new(cfg);
            for i in 0..200u64 {
                step(&mut p, 0x40, 0x2000 + (i % 50) * 8);
            }
            p.cap_link_table_occupancy()
        };
        let always = occupancy(LtUpdatePolicy::Always);
        let selective = occupancy(LtUpdatePolicy::UnlessStrideCorrect);
        assert!(
            selective < always,
            "selective policy must write fewer links ({selective} vs {always})"
        );
    }

    #[test]
    fn fresh_predictor_predicts_nothing() {
        let mut p = HybridPredictor::new(config());
        assert_eq!(p.predict(&LoadContext::new(0x40, 0, 0)), Prediction::none());
    }
}

