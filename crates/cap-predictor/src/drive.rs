//! Trace-driven predictor evaluation loops.
//!
//! [`Session`] is the single entry point: a builder that composes the
//! paper's evaluation models. The default session models Section 4
//! (every prediction resolved before the next one is made);
//! [`Session::gap`] models Section 5 (resolutions trail predictions by a
//! configurable *prediction gap*, so predictions are made with outdated
//! or speculative state and mispredictions propagate down the pipe);
//! [`Session::wrong_path`] models §5.4 pollution; [`Session::values`]
//! drives the same structures on loaded *values* for the
//! value-prediction comparison.
//!
//! Every session maintains the global branch-history register from the
//! trace's branch outcomes and a folded call-site path (for the
//! control-based ablation), and accounts statistics per the paper's
//! definitions.
//!
//! The former free functions (`run_immediate`, `run_value_immediate`,
//! `run_with_gap`, `run_with_wrong_path`) survive one release as thin
//! deprecated wrappers over [`Session`].

use crate::metrics::PredictorStats;
use crate::types::{AddressPredictor, LoadContext, Prediction};
use cap_obs::Obs;
use cap_trace::{BranchKind, Trace, TraceEvent};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Architectural control-flow state carried alongside the instruction
/// stream: the global branch-history register and a folded call path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlState {
    /// Global branch-history register (LSB = most recent outcome).
    pub ghr: u64,
    /// Folded history of recent call-site IPs.
    pub path: u64,
}

impl ControlState {
    /// Applies a branch outcome.
    pub fn on_branch(&mut self, ip: u64, taken: bool, kind: BranchKind) {
        match kind {
            BranchKind::Conditional => {
                self.ghr = (self.ghr << 1) | u64::from(taken);
            }
            BranchKind::Call => {
                self.path = (self.path << 4) ^ (ip >> 2);
            }
            BranchKind::Return => {
                // Cheap pop approximation: age the path.
                self.path >>= 4;
            }
            BranchKind::Jump => {}
        }
    }
}

use cap_snapshot::{Restorable, SectionReader, SectionWriter, Snapshot, SnapshotError};

impl Snapshot for ControlState {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_u64(self.ghr);
        w.put_u64(self.path);
    }
}

impl Restorable for ControlState {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            ghr: r.take_u64("control ghr")?,
            path: r.take_u64("control path")?,
        })
    }
}

/// One in-flight load awaiting resolution in the gap pipeline.
#[derive(Debug, Clone)]
struct Pending {
    ctx: LoadContext,
    pred: Prediction,
    actual: u64,
    /// Index (in dynamic instructions) at which the load was predicted.
    seq: u64,
}

/// A configured trace-driven evaluation run — the one entry point that
/// replaces the former `run_immediate` / `run_value_immediate` /
/// `run_with_gap` / `run_with_wrong_path` quartet.
///
/// The default session is the immediate-update model of §4: each load
/// is predicted and resolved before the next load is seen. The builder
/// methods layer the paper's other models on top, and compose — a
/// gapped session can also suffer wrong-path pollution, which the old
/// free functions could not express.
///
/// # Examples
///
/// ```
/// use cap_predictor::drive::Session;
/// use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
/// use cap_trace::suites::Suite;
///
/// let trace = Suite::Int.traces()[0].generate(2_000);
/// let mut p = HybridPredictor::new(HybridConfig::paper_default());
/// let stats = Session::new(&mut p).run(&trace);
/// assert_eq!(stats.loads as usize, trace.load_count());
///
/// // The pipelined model (§5): an 8-instruction prediction gap.
/// let mut p = HybridPredictor::new(HybridConfig::paper_pipelined());
/// let gapped = Session::new(&mut p).gap(8).run(&trace);
/// assert_eq!(gapped.loads, stats.loads);
/// ```
#[must_use = "a Session does nothing until `.run(&trace)`"]
#[derive(Debug)]
pub struct Session<'p, P: AddressPredictor + ?Sized> {
    predictor: &'p mut P,
    gap: usize,
    wrong_path_percent: u32,
    wrong_path_depth: usize,
    recovery: bool,
    values: bool,
    obs: Obs,
}

impl<'p, P: AddressPredictor + ?Sized> Session<'p, P> {
    /// A session with the §4 defaults: immediate update, no wrong-path
    /// pollution, predicting load *addresses*, telemetry off.
    pub fn new(predictor: &'p mut P) -> Self {
        Self {
            predictor,
            gap: 0,
            wrong_path_percent: 0,
            wrong_path_depth: 6,
            recovery: false,
            values: false,
            obs: Obs::off(),
        }
    }

    /// Sets the *prediction gap* (§5): the table update for a load is
    /// applied only once `gap` dynamic *instructions* have passed since
    /// its prediction. `0` (the default) is the immediate-update model.
    ///
    /// The gap is instruction-granular rather than load-granular:
    /// stretches of non-load instructions (pipeline bubbles,
    /// branch-misprediction shadows) drain pending resolutions, which
    /// is what lets a context predictor resume after a misprediction
    /// chain — the paper's §5.2 observation that "correct context-based
    /// predictions should resume on the next traversal". The session
    /// also maintains, per static load, the number of unresolved
    /// in-flight instances and passes it as [`LoadContext::pending`] so
    /// the stride catch-up and interval mechanisms can extrapolate.
    pub fn gap(mut self, gap: usize) -> Self {
        self.gap = gap;
        self
    }

    /// Enables *wrong-path pollution* (§5.4): at every conditional
    /// branch, with probability `percent`/100 (deterministic in the
    /// branch IP and position; values above 100 clamp to 100), the
    /// front end is assumed to have fetched down the wrong path and the
    /// next few loads are presented to the predictor with wrong-path
    /// addresses before the flush. Statistics count only correct-path
    /// loads. See [`Session::wrong_path_depth`] and
    /// [`Session::recovery`].
    pub fn wrong_path(mut self, percent: u32) -> Self {
        self.wrong_path_percent = percent.min(100);
        self
    }

    /// How many wrong-path loads are fetched before the flush
    /// (default 6). Only meaningful with [`Session::wrong_path`].
    pub fn wrong_path_depth(mut self, depth: usize) -> Self {
        self.wrong_path_depth = depth;
        self
    }

    /// Models the reorder-buffer-like recovery mechanism: everything
    /// the wrong path did to the predictor is undone (modelled as the
    /// wrong-path loads not touching it at all). Without recovery (the
    /// default), wrong-path loads are predicted *and* destructively
    /// updated — the hazard the paper says recovery must prevent.
    pub fn recovery(mut self, enabled: bool) -> Self {
        self.recovery = enabled;
        self
    }

    /// Predicts the loaded **value** instead of the effective address
    /// (offset is forced to 0 — values have no opcode offset). Driving
    /// the same predictor structures on values reproduces the
    /// value-prediction lineage the paper's §1 contrasts against
    /// (last-value \[Lipa96a\], stride and context value predictors
    /// \[Saze97\]\[Wang97\]) and lets the `ext-value` experiment
    /// measure the paper's claim that values are less predictable than
    /// addresses.
    pub fn values(mut self, enabled: bool) -> Self {
        self.values = enabled;
        self
    }

    /// Attaches a telemetry handle: every resolved load is mirrored
    /// into the registry through
    /// [`PredictorStats::record_with`](crate::metrics::PredictorStats::record_with).
    /// The default is [`Obs::off`], which costs one branch per call.
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The quantity this session predicts and verifies for a load.
    fn actual_of(&self, load: &cap_trace::LoadRecord) -> u64 {
        if self.values { load.value } else { load.addr }
    }

    fn context_of(&self, load: &cap_trace::LoadRecord, control: &ControlState, pending: u32) -> LoadContext {
        LoadContext {
            ip: load.ip,
            offset: if self.values { 0 } else { load.offset },
            ghr: control.ghr,
            path: control.path,
            pending,
        }
    }

    /// Runs the session over `trace`, consuming the builder.
    ///
    /// An attached [`Obs`] is also handed to the predictor
    /// ([`AddressPredictor::set_obs`]) so component-level counters
    /// (`cap.lt.*`, `stride.*`, `pred.lb.*`) land in the same registry
    /// as the `pred.*` mirror of the returned stats.
    pub fn run(self, trace: &Trace) -> PredictorStats {
        if self.obs.enabled() {
            self.predictor.set_obs(self.obs.clone());
        }
        if self.wrong_path_percent > 0 {
            self.run_wrong_path(trace)
        } else if self.gap > 0 {
            self.run_gapped(trace)
        } else {
            self.run_immediate(trace)
        }
    }

    fn run_immediate(self, trace: &Trace) -> PredictorStats {
        let mut stats = PredictorStats::new();
        let mut control = ControlState::default();
        for event in trace.iter() {
            match event {
                TraceEvent::Load(load) => {
                    let ctx = self.context_of(load, &control, 0);
                    let actual = self.actual_of(load);
                    let pred = self.predictor.predict(&ctx);
                    self.predictor.update(&ctx, actual, &pred);
                    stats.record_with(&pred, actual, &self.obs);
                }
                TraceEvent::Branch(b) => control.on_branch(b.ip, b.taken, b.kind),
                TraceEvent::Store(_) | TraceEvent::Op(_) => {}
            }
        }
        stats
    }

    fn run_gapped(self, trace: &Trace) -> PredictorStats {
        let gap = self.gap;
        let mut stats = PredictorStats::new();
        let mut control = ControlState::default();
        let mut pipe: VecDeque<Pending> = VecDeque::with_capacity(gap + 1);
        let mut in_flight: HashMap<u64, u32> = HashMap::new();

        let resolve = |predictor: &mut P,
                       stats: &mut PredictorStats,
                       in_flight: &mut HashMap<u64, u32>,
                       obs: &Obs,
                       p: Pending| {
            predictor.update(&p.ctx, p.actual, &p.pred);
            stats.record_with(&p.pred, p.actual, obs);
            if let Some(n) = in_flight.get_mut(&p.ctx.ip) {
                *n -= 1;
                if *n == 0 {
                    in_flight.remove(&p.ctx.ip);
                }
            }
        };

        for (seq, event) in trace.iter().enumerate() {
            let seq = seq as u64;
            // Drain resolutions older than the gap.
            while let Some(p) = pipe
                .front()
                .is_some_and(|p| p.seq + gap as u64 <= seq)
                .then(|| pipe.pop_front())
                .flatten()
            {
                resolve(self.predictor, &mut stats, &mut in_flight, &self.obs, p);
            }
            match event {
                TraceEvent::Load(load) => {
                    let pending = in_flight.get(&load.ip).copied().unwrap_or(0);
                    let ctx = self.context_of(load, &control, pending);
                    let actual = self.actual_of(load);
                    let pred = self.predictor.predict(&ctx);
                    *in_flight.entry(load.ip).or_insert(0) += 1;
                    pipe.push_back(Pending {
                        ctx,
                        pred,
                        actual,
                        seq,
                    });
                }
                TraceEvent::Branch(b) => control.on_branch(b.ip, b.taken, b.kind),
                TraceEvent::Store(_) | TraceEvent::Op(_) => {}
            }
        }
        while let Some(p) = pipe.pop_front() {
            resolve(self.predictor, &mut stats, &mut in_flight, &self.obs, p);
        }
        stats
    }

    fn run_wrong_path(self, trace: &Trace) -> PredictorStats {
        let gap = self.gap;
        let mut stats = PredictorStats::new();
        let mut control = ControlState::default();
        let mut pipe: VecDeque<Pending> = VecDeque::with_capacity(gap + 1);
        let mut in_flight: HashMap<u64, u32> = HashMap::new();
        let events: Vec<&TraceEvent> = trace.iter().collect();

        let resolve = |predictor: &mut P,
                       stats: &mut PredictorStats,
                       in_flight: &mut HashMap<u64, u32>,
                       obs: &Obs,
                       p: Pending| {
            predictor.update(&p.ctx, p.actual, &p.pred);
            stats.record_with(&p.pred, p.actual, obs);
            if let Some(n) = in_flight.get_mut(&p.ctx.ip) {
                *n -= 1;
                if *n == 0 {
                    in_flight.remove(&p.ctx.ip);
                }
            }
        };

        for (i, event) in events.iter().enumerate() {
            if gap > 0 {
                let seq = i as u64;
                while let Some(p) = pipe
                    .front()
                    .is_some_and(|p| p.seq + gap as u64 <= seq)
                    .then(|| pipe.pop_front())
                    .flatten()
                {
                    resolve(self.predictor, &mut stats, &mut in_flight, &self.obs, p);
                }
            }
            match event {
                TraceEvent::Load(load) => {
                    let pending = if gap > 0 {
                        in_flight.get(&load.ip).copied().unwrap_or(0)
                    } else {
                        0
                    };
                    let ctx = self.context_of(load, &control, pending);
                    let actual = self.actual_of(load);
                    let pred = self.predictor.predict(&ctx);
                    if gap > 0 {
                        *in_flight.entry(load.ip).or_insert(0) += 1;
                        pipe.push_back(Pending {
                            ctx,
                            pred,
                            actual,
                            seq: i as u64,
                        });
                    } else {
                        self.predictor.update(&ctx, actual, &pred);
                        stats.record_with(&pred, actual, &self.obs);
                    }
                }
                TraceEvent::Branch(b) => {
                    control.on_branch(b.ip, b.taken, b.kind);
                    // Deterministic "misprediction" decision.
                    let roll = (b.ip
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64))
                        % 100;
                    if b.kind == BranchKind::Conditional
                        && (roll as u32) < self.wrong_path_percent
                        && !self.recovery
                    {
                        // Wrong path: the next few static loads are fetched
                        // with wrong-path addresses, predicted, and (without
                        // recovery) destructively resolved before the flush.
                        let mut injected = 0;
                        for e in events[i + 1..].iter() {
                            if injected >= self.wrong_path_depth {
                                break;
                            }
                            if let TraceEvent::Load(l) = e {
                                let ctx = self.context_of(l, &control, 0);
                                let wrong = self.actual_of(l) ^ 0x1040;
                                let pred = self.predictor.predict(&ctx);
                                self.predictor.update(&ctx, wrong, &pred);
                                injected += 1;
                            }
                        }
                    }
                }
                TraceEvent::Store(_) | TraceEvent::Op(_) => {}
            }
        }
        while let Some(p) = pipe.pop_front() {
            resolve(self.predictor, &mut stats, &mut in_flight, &self.obs, p);
        }
        stats
    }
}

/// Runs a predictor over a trace under the immediate-update model (§4).
#[deprecated(since = "0.1.0", note = "use `drive::Session::new(predictor).run(trace)`")]
pub fn run_immediate<P: AddressPredictor + ?Sized>(
    predictor: &mut P,
    trace: &Trace,
) -> PredictorStats {
    Session::new(predictor).run(trace)
}

/// Runs a predictor over a trace's *value* stream under the
/// immediate-update model.
#[deprecated(
    since = "0.1.0",
    note = "use `drive::Session::new(predictor).values(true).run(trace)`"
)]
pub fn run_value_immediate<P: AddressPredictor + ?Sized>(
    predictor: &mut P,
    trace: &Trace,
) -> PredictorStats {
    Session::new(predictor).values(true).run(trace)
}

/// Runs a predictor over a trace with a *prediction gap* (§5).
#[deprecated(
    since = "0.1.0",
    note = "use `drive::Session::new(predictor).gap(gap).run(trace)`"
)]
pub fn run_with_gap<P: AddressPredictor + ?Sized>(
    predictor: &mut P,
    trace: &Trace,
    gap: usize,
) -> PredictorStats {
    Session::new(predictor).gap(gap).run(trace)
}

/// Runs a predictor with *wrong-path pollution* (§5.4).
#[deprecated(
    since = "0.1.0",
    note = "use `drive::Session::new(predictor).wrong_path(p).wrong_path_depth(d).recovery(r).run(trace)`"
)]
pub fn run_with_wrong_path<P: AddressPredictor + ?Sized>(
    predictor: &mut P,
    trace: &Trace,
    wrong_path_percent: u32,
    wrong_path_depth: usize,
    recovery: bool,
) -> PredictorStats {
    Session::new(predictor)
        .wrong_path(wrong_path_percent)
        .wrong_path_depth(wrong_path_depth)
        .recovery(recovery)
        .run(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::{HybridConfig, HybridPredictor};
    use crate::load_buffer::LoadBufferConfig;
    use crate::stride::{StrideParams, StridePredictor};
    use cap_trace::builder::TraceBuilder;

    fn lb_small() -> LoadBufferConfig {
        LoadBufferConfig {
            entries: 256,
            assoc: 2,
        }
    }

    // Helper to build a pure-stride trace.
    fn stride_trace(n: u64) -> Trace {
        let mut b = TraceBuilder::new();
        for i in 0..n {
            b.load(0x40, 0x1000 + i * 8, 0);
        }
        b.finish()
    }

    fn small_hybrid() -> HybridPredictor {
        let mut cfg = HybridConfig::paper_default();
        cfg.lb.entries = 256;
        cfg.lt.entries = 1024;
        cfg.lt.assoc = 2;
        cfg.cap.history.index_bits = 10;
        HybridPredictor::new(cfg)
    }

    #[test]
    fn immediate_counts_every_load() {
        let trace = stride_trace(100);
        let mut p = small_hybrid();
        let stats = Session::new(&mut p).run(&trace);
        assert_eq!(stats.loads, 100);
        assert!(stats.prediction_rate() > 0.9);
        assert!(stats.accuracy() > 0.95);
    }

    #[test]
    fn gap_zero_equals_immediate() {
        let trace = stride_trace(200);
        let mut a = small_hybrid();
        let mut b = small_hybrid();
        let sa = Session::new(&mut a).run(&trace);
        let sb = Session::new(&mut b).gap(0).run(&trace);
        assert_eq!(sa, sb);
    }

    #[test]
    fn gap_resolves_every_load_eventually() {
        let trace = stride_trace(100);
        let mut p = small_hybrid();
        let stats = Session::new(&mut p).gap(8).run(&trace);
        assert_eq!(stats.loads, 100);
    }

    #[test]
    fn stride_with_catch_up_survives_gap() {
        // A pure stride is fully predictable even under a gap thanks to
        // extrapolation.
        let trace = stride_trace(500);
        let mut p = StridePredictor::new(lb_small(), StrideParams::paper_default());
        let stats = Session::new(&mut p).gap(8).run(&trace);
        assert!(
            stats.accuracy() > 0.95,
            "catch-up must keep stride accurate under a gap (acc={})",
            stats.accuracy()
        );
        assert!(stats.prediction_rate() > 0.9);
    }

    #[test]
    fn gap_degrades_context_prediction() {
        // A short recurring pattern: perfect under immediate update, hurt
        // by the gap (CAP has no catch-up).
        let pattern = [0x100u64, 0x880, 0x480, 0x280, 0x940, 0x6C0];
        let mut b = TraceBuilder::new();
        for _ in 0..400 {
            for &a in &pattern {
                b.load(0x40, a, 0);
            }
        }
        let trace = b.finish();

        let mut immediate = small_hybrid();
        let si = Session::new(&mut immediate).run(&trace);

        let mut cfg = HybridConfig::paper_pipelined();
        cfg.lb.entries = 256;
        cfg.lt.entries = 1024;
        cfg.lt.assoc = 2;
        cfg.cap.history.index_bits = 10;
        let mut gapped = HybridPredictor::new(cfg);
        let sg = Session::new(&mut gapped).gap(8).run(&trace);

        assert!(
            si.correct_spec_rate() > sg.correct_spec_rate(),
            "gap must hurt context prediction: {} vs {}",
            si.correct_spec_rate(),
            sg.correct_spec_rate()
        );
        assert!(si.correct_spec_rate() > 0.9);
    }

    #[test]
    fn wrong_path_pollution_hurts_without_recovery() {
        let trace = cap_trace::suites::catalog()[2].generate(30_000);
        let mut clean = small_hybrid();
        let with_recovery = Session::new(&mut clean)
            .wrong_path(10)
            .recovery(true)
            .run(&trace);
        let mut dirty = small_hybrid();
        let without = Session::new(&mut dirty).wrong_path(10).run(&trace);
        assert!(
            without.correct_spec_rate() < with_recovery.correct_spec_rate(),
            "destructive wrong-path updates must cost coverage: {:.3} vs {:.3}",
            without.correct_spec_rate(),
            with_recovery.correct_spec_rate()
        );
    }

    #[test]
    fn recovery_mode_equals_clean_run() {
        let trace = cap_trace::suites::catalog()[0].generate(5_000);
        let mut a = small_hybrid();
        let clean = Session::new(&mut a).run(&trace);
        let mut b = small_hybrid();
        let recovered = Session::new(&mut b)
            .wrong_path(25)
            .wrong_path_depth(8)
            .recovery(true)
            .run(&trace);
        assert_eq!(clean, recovered, "perfect recovery leaves no trace");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_session() {
        // The one-release compatibility wrappers must stay bit-identical
        // to the Session they delegate to.
        let trace = cap_trace::suites::catalog()[1].generate(4_000);

        let mut a = small_hybrid();
        let mut b = small_hybrid();
        assert_eq!(
            run_immediate(&mut a, &trace),
            Session::new(&mut b).run(&trace)
        );

        let mut a = small_hybrid();
        let mut b = small_hybrid();
        assert_eq!(
            run_value_immediate(&mut a, &trace),
            Session::new(&mut b).values(true).run(&trace)
        );

        let mut a = small_hybrid();
        let mut b = small_hybrid();
        assert_eq!(
            run_with_gap(&mut a, &trace, 8),
            Session::new(&mut b).gap(8).run(&trace)
        );

        let mut a = small_hybrid();
        let mut b = small_hybrid();
        assert_eq!(
            run_with_wrong_path(&mut a, &trace, 15, 4, false),
            Session::new(&mut b)
                .wrong_path(15)
                .wrong_path_depth(4)
                .run(&trace)
        );
    }

    #[test]
    fn gap_composes_with_wrong_path() {
        // The combination the old quartet could not express: a gapped
        // pipe suffering wrong-path pollution. All correct-path loads
        // must still resolve, and pollution must not help.
        let trace = cap_trace::suites::catalog()[2].generate(10_000);
        let loads = trace.load_count() as u64;
        let mut clean = small_hybrid();
        let gapped = Session::new(&mut clean).gap(8).run(&trace);
        let mut dirty = small_hybrid();
        let polluted = Session::new(&mut dirty).gap(8).wrong_path(20).run(&trace);
        assert_eq!(gapped.loads, loads);
        assert_eq!(polluted.loads, loads);
        assert!(polluted.correct_spec_rate() <= gapped.correct_spec_rate());
    }

    #[test]
    fn session_mirrors_stats_into_registry() {
        use cap_obs::Registry;
        use std::sync::Arc;

        let trace = stride_trace(300);
        let registry = Arc::new(Registry::new());
        let mut p = small_hybrid();
        let stats = Session::new(&mut p).obs(registry.obs()).run(&trace);
        let mut q = small_hybrid();
        let plain = Session::new(&mut q).run(&trace);
        assert_eq!(stats, plain, "telemetry must not change results");
        let snap = registry.snapshot();
        assert_eq!(
            crate::metrics::PredictorStats::from_obs_snapshot(&snap),
            stats,
            "registry view must reconcile with the legacy struct"
        );
    }

    #[test]
    fn ghr_tracks_conditional_branches_only() {
        let mut c = ControlState::default();
        c.on_branch(4, true, BranchKind::Conditional);
        c.on_branch(8, false, BranchKind::Conditional);
        c.on_branch(12, true, BranchKind::Conditional);
        assert_eq!(c.ghr & 0b111, 0b101);
        let before = c.ghr;
        c.on_branch(16, true, BranchKind::Jump);
        assert_eq!(c.ghr, before, "jumps must not shift the GHR");
    }

    #[test]
    fn path_tracks_calls_and_returns() {
        let mut c = ControlState::default();
        c.on_branch(0x100, true, BranchKind::Call);
        let after_call = c.path;
        assert_ne!(after_call, 0);
        c.on_branch(0x200, true, BranchKind::Return);
        assert_ne!(c.path, after_call);
    }
}

