//! Trace-driven predictor evaluation loops.
//!
//! [`run_immediate`] models Section 4: every prediction is resolved before
//! the next one is made. [`run_with_gap`] models Section 5: resolutions
//! (table updates) trail predictions by a configurable *prediction gap*,
//! so predictions are made with outdated or speculative state and
//! mispredictions propagate down the pipe.
//!
//! Both loops maintain the global branch-history register from the trace's
//! branch outcomes and a folded call-site path (for the control-based
//! ablation), and account statistics per the paper's definitions.

use crate::metrics::PredictorStats;
use crate::types::{AddressPredictor, LoadContext, Prediction};
use cap_trace::{BranchKind, Trace, TraceEvent};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Architectural control-flow state carried alongside the instruction
/// stream: the global branch-history register and a folded call path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlState {
    /// Global branch-history register (LSB = most recent outcome).
    pub ghr: u64,
    /// Folded history of recent call-site IPs.
    pub path: u64,
}

impl ControlState {
    /// Applies a branch outcome.
    pub fn on_branch(&mut self, ip: u64, taken: bool, kind: BranchKind) {
        match kind {
            BranchKind::Conditional => {
                self.ghr = (self.ghr << 1) | u64::from(taken);
            }
            BranchKind::Call => {
                self.path = (self.path << 4) ^ (ip >> 2);
            }
            BranchKind::Return => {
                // Cheap pop approximation: age the path.
                self.path >>= 4;
            }
            BranchKind::Jump => {}
        }
    }
}

use cap_snapshot::{Restorable, SectionReader, SectionWriter, Snapshot, SnapshotError};

impl Snapshot for ControlState {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_u64(self.ghr);
        w.put_u64(self.path);
    }
}

impl Restorable for ControlState {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            ghr: r.take_u64("control ghr")?,
            path: r.take_u64("control path")?,
        })
    }
}

/// Runs a predictor over a trace under the immediate-update model (§4):
/// each load is predicted and resolved before the next load is seen.
///
/// # Examples
///
/// ```
/// use cap_predictor::drive::run_immediate;
/// use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
/// use cap_trace::suites::Suite;
///
/// let trace = Suite::Int.traces()[0].generate(2_000);
/// let mut p = HybridPredictor::new(HybridConfig::paper_default());
/// let stats = run_immediate(&mut p, &trace);
/// assert_eq!(stats.loads as usize, trace.load_count());
/// ```
pub fn run_immediate<P: AddressPredictor + ?Sized>(
    predictor: &mut P,
    trace: &Trace,
) -> PredictorStats {
    let mut stats = PredictorStats::new();
    let mut control = ControlState::default();
    for event in trace.iter() {
        match event {
            TraceEvent::Load(load) => {
                let ctx = LoadContext {
                    ip: load.ip,
                    offset: load.offset,
                    ghr: control.ghr,
                    path: control.path,
                    pending: 0,
                };
                let pred = predictor.predict(&ctx);
                predictor.update(&ctx, load.addr, &pred);
                stats.record(&pred, load.addr);
            }
            TraceEvent::Branch(b) => control.on_branch(b.ip, b.taken, b.kind),
            TraceEvent::Store(_) | TraceEvent::Op(_) => {}
        }
    }
    stats
}

/// Runs a predictor over a trace's *value* stream under the immediate-
/// update model: identical to [`run_immediate`] except that the quantity
/// being predicted and verified is the loaded **value**, not the effective
/// address. Driving the same predictor structures on values reproduces the
/// value-prediction lineage the paper's §1 contrasts against
/// (last-value \[Lipa96a\], stride and context value predictors
/// \[Saze97\]\[Wang97\]) and lets the `ext-value` experiment measure the
/// paper's claim that values are less predictable than addresses.
pub fn run_value_immediate<P: AddressPredictor + ?Sized>(
    predictor: &mut P,
    trace: &Trace,
) -> PredictorStats {
    let mut stats = PredictorStats::new();
    let mut control = ControlState::default();
    for event in trace.iter() {
        match event {
            TraceEvent::Load(load) => {
                let ctx = LoadContext {
                    ip: load.ip,
                    offset: 0, // values have no opcode offset
                    ghr: control.ghr,
                    path: control.path,
                    pending: 0,
                };
                let pred = predictor.predict(&ctx);
                predictor.update(&ctx, load.value, &pred);
                stats.record(&pred, load.value);
            }
            TraceEvent::Branch(b) => control.on_branch(b.ip, b.taken, b.kind),
            TraceEvent::Store(_) | TraceEvent::Op(_) => {}
        }
    }
    stats
}

/// One in-flight load awaiting resolution in the gap pipeline.
#[derive(Debug, Clone)]
struct Pending {
    ctx: LoadContext,
    pred: Prediction,
    actual: u64,
    /// Index (in dynamic instructions) at which the load was predicted.
    seq: u64,
}

/// Runs a predictor over a trace with a *prediction gap* (§5): the table
/// update for a load is applied only once `gap` dynamic *instructions*
/// have passed since its prediction. `gap == 0` is equivalent to
/// [`run_immediate`].
///
/// The gap is instruction-granular rather than load-granular: stretches of
/// non-load instructions (pipeline bubbles, branch-misprediction shadows)
/// drain pending resolutions, which is what lets a context predictor
/// resume after a misprediction chain — the paper's §5.2 observation that
/// "correct context-based predictions should resume on the next traversal".
///
/// The loop also maintains, per static load, the number of unresolved
/// in-flight instances and passes it as [`LoadContext::pending`] so the
/// stride catch-up and interval mechanisms can extrapolate.
pub fn run_with_gap<P: AddressPredictor + ?Sized>(
    predictor: &mut P,
    trace: &Trace,
    gap: usize,
) -> PredictorStats {
    if gap == 0 {
        return run_immediate(predictor, trace);
    }
    let mut stats = PredictorStats::new();
    let mut control = ControlState::default();
    let mut pipe: VecDeque<Pending> = VecDeque::with_capacity(gap + 1);
    let mut in_flight: HashMap<u64, u32> = HashMap::new();

    let resolve = |predictor: &mut P,
                   stats: &mut PredictorStats,
                   in_flight: &mut HashMap<u64, u32>,
                   p: Pending| {
        predictor.update(&p.ctx, p.actual, &p.pred);
        stats.record(&p.pred, p.actual);
        if let Some(n) = in_flight.get_mut(&p.ctx.ip) {
            *n -= 1;
            if *n == 0 {
                in_flight.remove(&p.ctx.ip);
            }
        }
    };

    for (seq, event) in trace.iter().enumerate() {
        let seq = seq as u64;
        // Drain resolutions older than the gap.
        while let Some(p) = pipe
            .front()
            .is_some_and(|p| p.seq + gap as u64 <= seq)
            .then(|| pipe.pop_front())
            .flatten()
        {
            resolve(predictor, &mut stats, &mut in_flight, p);
        }
        match event {
            TraceEvent::Load(load) => {
                let pending = in_flight.get(&load.ip).copied().unwrap_or(0);
                let ctx = LoadContext {
                    ip: load.ip,
                    offset: load.offset,
                    ghr: control.ghr,
                    path: control.path,
                    pending,
                };
                let pred = predictor.predict(&ctx);
                *in_flight.entry(load.ip).or_insert(0) += 1;
                pipe.push_back(Pending {
                    ctx,
                    pred,
                    actual: load.addr,
                    seq,
                });
            }
            TraceEvent::Branch(b) => control.on_branch(b.ip, b.taken, b.kind),
            TraceEvent::Store(_) | TraceEvent::Op(_) => {}
        }
    }
    while let Some(p) = pipe.pop_front() {
        resolve(predictor, &mut stats, &mut in_flight, p);
    }
    stats
}

/// Runs a predictor with *wrong-path pollution* (§5.4): at every
/// conditional branch, with probability `wrong_path_percent`, the front
/// end is assumed to have fetched down the wrong path and the next few
/// loads are presented to the predictor with wrong-path addresses before
/// the flush.
///
/// With `recovery` enabled, the machine's reorder-buffer-like mechanism
/// undoes everything the wrong path did to the predictor (modelled as the
/// wrong-path loads not touching it at all). Without recovery, wrong-path
/// loads are predicted *and* destructively updated — the hazard the paper
/// says recovery must prevent.
///
/// Statistics count only correct-path loads.
///
/// `wrong_path_percent` above 100 is clamped to 100 (always wrong path).
pub fn run_with_wrong_path<P: AddressPredictor + ?Sized>(
    predictor: &mut P,
    trace: &Trace,
    wrong_path_percent: u32,
    wrong_path_depth: usize,
    recovery: bool,
) -> PredictorStats {
    let wrong_path_percent = wrong_path_percent.min(100);
    let mut stats = PredictorStats::new();
    let mut control = ControlState::default();
    let events: Vec<&TraceEvent> = trace.iter().collect();
    for (i, event) in events.iter().enumerate() {
        match event {
            TraceEvent::Load(load) => {
                let ctx = LoadContext {
                    ip: load.ip,
                    offset: load.offset,
                    ghr: control.ghr,
                    path: control.path,
                    pending: 0,
                };
                let pred = predictor.predict(&ctx);
                predictor.update(&ctx, load.addr, &pred);
                stats.record(&pred, load.addr);
            }
            TraceEvent::Branch(b) => {
                control.on_branch(b.ip, b.taken, b.kind);
                // Deterministic "misprediction" decision.
                let roll = (b.ip
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64))
                    % 100;
                if b.kind == BranchKind::Conditional
                    && (roll as u32) < wrong_path_percent
                    && !recovery
                {
                    // Wrong path: the next few static loads are fetched
                    // with wrong-path addresses, predicted, and (without
                    // recovery) destructively resolved before the flush.
                    let mut injected = 0;
                    for e in events[i + 1..].iter() {
                        if injected >= wrong_path_depth {
                            break;
                        }
                        if let TraceEvent::Load(l) = e {
                            let ctx = LoadContext {
                                ip: l.ip,
                                offset: l.offset,
                                ghr: control.ghr,
                                path: control.path,
                                pending: 0,
                            };
                            let wrong_addr = l.addr ^ 0x1040;
                            let pred = predictor.predict(&ctx);
                            predictor.update(&ctx, wrong_addr, &pred);
                            injected += 1;
                        }
                    }
                }
            }
            TraceEvent::Store(_) | TraceEvent::Op(_) => {}
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::{HybridConfig, HybridPredictor};
    use crate::load_buffer::LoadBufferConfig;
    use crate::stride::{StrideParams, StridePredictor};
    use cap_trace::builder::TraceBuilder;

    fn lb_small() -> LoadBufferConfig {
        LoadBufferConfig {
            entries: 256,
            assoc: 2,
        }
    }

    // Helper to build a pure-stride trace.
    fn stride_trace(n: u64) -> Trace {
        let mut b = TraceBuilder::new();
        for i in 0..n {
            b.load(0x40, 0x1000 + i * 8, 0);
        }
        b.finish()
    }

    fn small_hybrid() -> HybridPredictor {
        let mut cfg = HybridConfig::paper_default();
        cfg.lb.entries = 256;
        cfg.lt.entries = 1024;
        cfg.lt.assoc = 2;
        cfg.cap.history.index_bits = 10;
        HybridPredictor::new(cfg)
    }

    #[test]
    fn immediate_counts_every_load() {
        let trace = stride_trace(100);
        let mut p = small_hybrid();
        let stats = run_immediate(&mut p, &trace);
        assert_eq!(stats.loads, 100);
        assert!(stats.prediction_rate() > 0.9);
        assert!(stats.accuracy() > 0.95);
    }

    #[test]
    fn gap_zero_equals_immediate() {
        let trace = stride_trace(200);
        let mut a = small_hybrid();
        let mut b = small_hybrid();
        let sa = run_immediate(&mut a, &trace);
        let sb = run_with_gap(&mut b, &trace, 0);
        assert_eq!(sa, sb);
    }

    #[test]
    fn gap_resolves_every_load_eventually() {
        let trace = stride_trace(100);
        let mut p = small_hybrid();
        let stats = run_with_gap(&mut p, &trace, 8);
        assert_eq!(stats.loads, 100);
    }

    #[test]
    fn stride_with_catch_up_survives_gap() {
        // A pure stride is fully predictable even under a gap thanks to
        // extrapolation.
        let trace = stride_trace(500);
        let mut p = StridePredictor::new(lb_small(), StrideParams::paper_default());
        let stats = run_with_gap(&mut p, &trace, 8);
        assert!(
            stats.accuracy() > 0.95,
            "catch-up must keep stride accurate under a gap (acc={})",
            stats.accuracy()
        );
        assert!(stats.prediction_rate() > 0.9);
    }

    #[test]
    fn gap_degrades_context_prediction() {
        // A short recurring pattern: perfect under immediate update, hurt
        // by the gap (CAP has no catch-up).
        let pattern = [0x100u64, 0x880, 0x480, 0x280, 0x940, 0x6C0];
        let mut b = TraceBuilder::new();
        for _ in 0..400 {
            for &a in &pattern {
                b.load(0x40, a, 0);
            }
        }
        let trace = b.finish();

        let mut immediate = small_hybrid();
        let si = run_immediate(&mut immediate, &trace);

        let mut cfg = HybridConfig::paper_pipelined();
        cfg.lb.entries = 256;
        cfg.lt.entries = 1024;
        cfg.lt.assoc = 2;
        cfg.cap.history.index_bits = 10;
        let mut gapped = HybridPredictor::new(cfg);
        let sg = run_with_gap(&mut gapped, &trace, 8);

        assert!(
            si.correct_spec_rate() > sg.correct_spec_rate(),
            "gap must hurt context prediction: {} vs {}",
            si.correct_spec_rate(),
            sg.correct_spec_rate()
        );
        assert!(si.correct_spec_rate() > 0.9);
    }

    #[test]
    fn wrong_path_pollution_hurts_without_recovery() {
        let trace = cap_trace::suites::catalog()[2].generate(30_000);
        let mut clean = small_hybrid();
        let with_recovery = run_with_wrong_path(&mut clean, &trace, 10, 6, true);
        let mut dirty = small_hybrid();
        let without = run_with_wrong_path(&mut dirty, &trace, 10, 6, false);
        assert!(
            without.correct_spec_rate() < with_recovery.correct_spec_rate(),
            "destructive wrong-path updates must cost coverage: {:.3} vs {:.3}",
            without.correct_spec_rate(),
            with_recovery.correct_spec_rate()
        );
    }

    #[test]
    fn recovery_mode_equals_clean_run() {
        let trace = cap_trace::suites::catalog()[0].generate(5_000);
        let mut a = small_hybrid();
        let clean = run_immediate(&mut a, &trace);
        let mut b = small_hybrid();
        let recovered = run_with_wrong_path(&mut b, &trace, 25, 8, true);
        assert_eq!(clean, recovered, "perfect recovery leaves no trace");
    }

    #[test]
    fn ghr_tracks_conditional_branches_only() {
        let mut c = ControlState::default();
        c.on_branch(4, true, BranchKind::Conditional);
        c.on_branch(8, false, BranchKind::Conditional);
        c.on_branch(12, true, BranchKind::Conditional);
        assert_eq!(c.ghr & 0b111, 0b101);
        let before = c.ghr;
        c.on_branch(16, true, BranchKind::Jump);
        assert_eq!(c.ghr, before, "jumps must not shift the GHR");
    }

    #[test]
    fn path_tracks_calls_and_returns() {
        let mut c = ControlState::default();
        c.on_branch(0x100, true, BranchKind::Call);
        let after_call = c.path;
        assert_ne!(after_call, 0);
        c.on_branch(0x200, true, BranchKind::Return);
        assert_ne!(c.path, after_call);
    }
}

