//! The delta-correlation alternative to base addresses (§3.3).
//!
//! > "A potential alternative to the base address scheme … is to record
//! > deltas between successive accesses instead of base addresses both in
//! > the history patterns and the LT. Such a scheme may be highly
//! > efficient especially when dealing with stack references in
//! > control-dependent loads, and it takes advantage of any kind of global
//! > correlation. However, the amount of additional aliasing due to false
//! > global correlation makes this option less attractive."
//!
//! This module implements that rejected design so the trade-off can be
//! measured: histories record the *deltas* between consecutive effective
//! addresses of a static load, and Link Table entries hold the predicted
//! next delta. Two different data structures traversed with the same
//! rhythm now genuinely share predictor state ("any kind of global
//! correlation") — including when they shouldn't ("false global
//! correlation"), which is the aliasing the paper warns about.

use crate::confidence::SaturatingCounter;
use crate::history::HistorySpec;
use crate::link_table::{LinkTable, LinkTableConfig};
use crate::load_buffer::{LoadBuffer, LoadBufferConfig, LbEntryProto};
use crate::types::{AddressPredictor, LoadContext, PredSource, Prediction, PredictionDetail};

/// Configuration of a [`DeltaCapPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaCapConfig {
    /// Load Buffer geometry.
    pub lb: LoadBufferConfig,
    /// Link Table geometry.
    pub lt: LinkTableConfig,
    /// History recording/compression parameters (applied to deltas).
    pub history: HistorySpec,
    /// Confidence threshold for speculation.
    pub conf_threshold: u8,
    /// Confidence saturation value.
    pub conf_max: u8,
}

impl DeltaCapConfig {
    /// Same table geometry as the paper's CAP baseline.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            lb: LoadBufferConfig::paper_default(),
            lt: LinkTableConfig::paper_default(),
            history: HistorySpec::paper_default(),
            conf_threshold: 2,
            conf_max: 3,
        }
    }
}

/// A context predictor over address *deltas* instead of base addresses.
///
/// # Examples
///
/// A recurring delta rhythm is predicted even when the absolute addresses
/// never repeat:
///
/// ```
/// use cap_predictor::delta::{DeltaCapConfig, DeltaCapPredictor};
/// use cap_predictor::types::{AddressPredictor, LoadContext};
///
/// let mut p = DeltaCapPredictor::new(DeltaCapConfig::paper_default());
/// // Deltas cycle +0x10, +0x30, +0x08 while addresses march on forever.
/// let mut addr = 0x1000u64;
/// let mut last = None;
/// for i in 0..60 {
///     let ctx = LoadContext::new(0x40, 0, 0);
///     let pred = p.predict(&ctx);
///     p.update(&ctx, addr, &pred);
///     last = Some((pred, addr));
///     addr += [0x10, 0x30, 0x08][i % 3];
/// }
/// let (pred, actual) = last.unwrap();
/// assert_eq!(pred.addr, Some(actual));
/// ```
#[derive(Debug, Clone)]
pub struct DeltaCapPredictor {
    lb: LoadBuffer,
    lt: LinkTable,
    history: HistorySpec,
}

impl DeltaCapPredictor {
    /// Creates the predictor.
    ///
    /// # Panics
    ///
    /// Panics if the history spec is invalid or its index bits don't cover
    /// the LT.
    #[must_use]
    pub fn new(config: DeltaCapConfig) -> Self {
        config.history.validate();
        assert!(
            (1usize << config.history.index_bits) >= config.lt.sets(),
            "history index bits must cover the LT sets"
        );
        let counter = SaturatingCounter::new(config.conf_threshold, config.conf_max, false);
        Self {
            lb: LoadBuffer::new(
                config.lb,
                LbEntryProto {
                    cap_conf: counter,
                    stride_conf: counter,
                },
            ),
            lt: LinkTable::new(config.lt),
            history: config.history,
        }
    }

    /// Read access to the Link Table (diagnostics).
    #[must_use]
    pub fn link_table(&self) -> &LinkTable {
        &self.lt
    }
}

impl AddressPredictor for DeltaCapPredictor {
    fn predict(&mut self, ctx: &LoadContext) -> Prediction {
        let spec = self.history;
        let Some(entry) = self.lb.lookup(ctx.ip) else {
            return Prediction::none();
        };
        if !entry.stride_seen || !entry.history.is_warm(&spec) {
            return Prediction::none();
        }
        let folded = entry.history.fold(&spec);
        let Some(delta) = self.lt.lookup(&folded) else {
            return Prediction::none();
        };
        let addr = entry.last_addr.wrapping_add(delta);
        Prediction {
            addr: Some(addr),
            speculate: entry.cap_conf.is_confident(),
            source: PredSource::Cap,
            detail: PredictionDetail {
                cap_addr: Some(addr),
                cap_confident: entry.cap_conf.is_confident(),
                ..PredictionDetail::default()
            },
        }
    }

    fn update(&mut self, ctx: &LoadContext, actual: u64, pred: &Prediction) {
        let spec = self.history;
        let (entry, _fresh) = self.lb.lookup_or_insert(ctx.ip);
        if let Some(p) = pred.addr {
            if p == actual {
                entry.cap_conf.on_correct();
            } else {
                entry.cap_conf.on_incorrect();
            }
        }
        if entry.stride_seen {
            let delta = actual.wrapping_sub(entry.last_addr);
            if entry.history.is_warm(&spec) {
                let folded = entry.history.fold(&spec);
                self.lt.update(&folded, delta);
            }
            // Deltas are folded like addresses; drop the 2 alignment bits
            // the fold ignores by pre-scaling (deltas can be small).
            entry.history.push(delta << 2, &spec);
        }
        entry.last_addr = actual;
        entry.stride_seen = true;
    }

    fn name(&self) -> &'static str {
        "delta-cap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> DeltaCapPredictor {
        let mut cfg = DeltaCapConfig::paper_default();
        cfg.lb.entries = 256;
        cfg.lt.entries = 1024;
        cfg.lt.assoc = 2;
        cfg.history.index_bits = 10;
        DeltaCapPredictor::new(cfg)
    }

    fn step(p: &mut DeltaCapPredictor, ip: u64, actual: u64) -> Prediction {
        let ctx = LoadContext::new(ip, 0, 0);
        let pred = p.predict(&ctx);
        p.update(&ctx, actual, &pred);
        pred
    }

    #[test]
    fn predicts_non_repeating_addresses_with_repeating_deltas() {
        // The scheme's unique strength: the stack-reference pattern where
        // addresses never recur but deltas cycle.
        let mut p = predictor();
        let deltas = [0x20u64, 0x50, 0x08, 0x18];
        let mut addr = 0x10_0000u64;
        let mut correct_tail = 0;
        for i in 0..200 {
            let pred = step(&mut p, 0x40, addr);
            if i >= 150 && pred.is_correct(addr) {
                correct_tail += 1;
            }
            addr += deltas[i % deltas.len()];
        }
        assert!(correct_tail >= 45, "delta rhythm must be learned: {correct_tail}/50");
    }

    #[test]
    fn base_cap_cannot_predict_non_repeating_addresses() {
        // Contrast: the base-address CAP needs recurring addresses.
        use crate::cap::{CapConfig, CapPredictor};
        let mut p = CapPredictor::new(CapConfig::paper_default());
        let deltas = [0x20u64, 0x50, 0x08, 0x18];
        let mut addr = 0x10_0000u64;
        let mut correct = 0;
        for i in 0..200 {
            let ctx = LoadContext::new(0x40, 0, 0);
            let pred = p.predict(&ctx);
            p.update(&ctx, addr, &pred);
            if pred.is_correct(addr) {
                correct += 1;
            }
            addr += deltas[i % deltas.len()];
        }
        assert_eq!(correct, 0, "ever-growing addresses defeat base-address CAP");
    }

    #[test]
    fn false_correlation_aliases_unrelated_loads() {
        // The paper's objection: two loads with locally identical delta
        // rhythms cross-train through the shared LT and mispredict each
        // other's continuations. (Short histories make the shared window
        // visible; longer histories shrink but don't eliminate it.)
        let mut cfg = DeltaCapConfig::paper_default();
        cfg.lb.entries = 256;
        cfg.lt.entries = 1024;
        cfg.lt.assoc = 2;
        cfg.history.index_bits = 10;
        cfg.history.length = 2;
        let mut p = DeltaCapPredictor::new(cfg);
        // Load A: deltas (8, 8, 100) — load B: deltas (8, 8, 52). Both
        // produce the context [8, 8]; the link for what follows belongs to
        // whichever load trained it, so the other keeps mispredicting.
        let mut a_addr = 0x10_0000u64;
        let mut b_addr = 0x80_0000u64;
        let mut wrong_after_88 = 0;
        for phase in 0..300usize {
            let da = [8u64, 8, 100][phase % 3];
            let db = [8u64, 8, 52][phase % 3];
            let pred_a = step(&mut p, 0x40, a_addr);
            let pred_b = step(&mut p, 0x80, b_addr);
            // The aliased [8, 8] context predicts the address *after* the
            // big jump, i.e. the phase-0 access of the next cycle.
            if phase.is_multiple_of(3) {
                for (pred, actual) in [(pred_a, a_addr), (pred_b, b_addr)] {
                    if pred.addr.is_some() && !pred.is_correct(actual) {
                        wrong_after_88 += 1;
                    }
                }
            }
            a_addr += da;
            b_addr += db;
        }
        assert!(
            wrong_after_88 > 20,
            "false global correlation should cause cross-training mispredictions, got {wrong_after_88}"
        );
    }

    #[test]
    fn fresh_predictor_predicts_nothing() {
        let mut p = predictor();
        assert_eq!(p.predict(&LoadContext::new(0x40, 0, 0)), Prediction::none());
    }
}
