//! Prediction metrics matching the paper's reporting (§4.2, §4.4).
//!
//! [`PredictorStats`] remains the compact accumulator the driving loops
//! and the service merge and snapshot, but it is no longer a parallel
//! accounting world: [`PredictorStats::record_with`] mirrors every
//! increment into a [`cap_obs`] registry under the `pred.*` names, and
//! [`PredictorStats::from_obs_snapshot`] reads the struct back *out* of
//! a registry snapshot — the struct is a view over the registry, and
//! the two reconcile exactly.

use crate::types::{PredSource, Prediction};
use cap_obs::{Obs, StatsSnapshot};

/// Registry counter names mirrored by [`PredictorStats::record_with`].
/// One name per struct field (selector states get one name per state).
pub mod names {
    /// Dynamic loads observed.
    pub const LOADS: &str = "pred.loads";
    /// Loads for which some address was predicted.
    pub const PREDICTIONS: &str = "pred.predictions";
    /// Speculative accesses launched.
    pub const SPEC_ACCESSES: &str = "pred.spec_accesses";
    /// Correct speculative accesses.
    pub const CORRECT_SPEC: &str = "pred.correct_spec";
    /// Correct predictions (speculated or not).
    pub const CORRECT_PREDICTIONS: &str = "pred.correct_predictions";
    /// Dual-predicted speculative accesses.
    pub const BOTH_PREDICTED_SPEC: &str = "pred.both_predicted_spec";
    /// Mis-selections.
    pub const MISS_SELECTIONS: &str = "pred.miss_selections";
    /// Selector state distribution, one counter per 2-bit state.
    pub const SELECTOR_STATES: [&str; 4] = [
        "pred.selector_state.0",
        "pred.selector_state.1",
        "pred.selector_state.2",
        "pred.selector_state.3",
    ];

    // --- component-level counters (recorded inside the predictors when
    // an `Obs` is attached via `AddressPredictor::set_obs`) ---

    /// Load Buffer hits at predict time.
    pub const LB_HIT: &str = "pred.lb.hit";
    /// Load Buffer misses at predict time.
    pub const LB_MISS: &str = "pred.lb.miss";
    /// Fresh Load Buffer entries allocated at update time.
    pub const LB_ALLOC: &str = "pred.lb.alloc";
    /// Link Table lookup hits on a warm history.
    pub const CAP_LT_HIT: &str = "cap.lt.hit";
    /// Link Table lookup misses on a warm history.
    pub const CAP_LT_MISS: &str = "cap.lt.miss";
    /// LT writes allocating an empty way.
    pub const CAP_LT_FILL: &str = "cap.lt.fill";
    /// LT writes re-confirming an existing link (steady state).
    pub const CAP_LT_REFRESH: &str = "cap.lt.refresh";
    /// LT writes retraining an existing context to a new base.
    pub const CAP_LT_RETRAIN: &str = "cap.lt.retrain";
    /// LT writes evicting a live different-tag entry (pollution, §3.5).
    pub const CAP_LT_REPLACE: &str = "cap.lt.replace";
    /// LT writes deferred by the pollution filter.
    pub const CAP_LT_DEFERRED: &str = "cap.lt.deferred";
    /// CAP confidence counter crossing up through its threshold.
    pub const CAP_CONF_PROMOTE: &str = "cap.conf.promote";
    /// CAP confidence counter dropping below its threshold.
    pub const CAP_CONF_DEMOTE: &str = "cap.conf.demote";
    /// Stride confidence counter crossing up through its threshold.
    pub const STRIDE_CONF_PROMOTE: &str = "stride.conf.promote";
    /// Stride confidence counter dropping below its threshold.
    pub const STRIDE_CONF_DEMOTE: &str = "stride.conf.demote";
    /// Stride state machine entering `Steady`.
    pub const STRIDE_STEADY_ENTER: &str = "stride.steady.enter";
    /// Stride state machine leaving `Steady`.
    pub const STRIDE_STEADY_EXIT: &str = "stride.steady.exit";
    /// Hybrid selector moves toward CAP.
    pub const HYBRID_SELECTOR_UP: &str = "hybrid.selector.up";
    /// Hybrid selector moves toward stride.
    pub const HYBRID_SELECTOR_DOWN: &str = "hybrid.selector.down";
}

/// Accumulated prediction statistics over a trace.
///
/// Terminology follows the paper exactly:
/// * **prediction rate** — speculative accesses (correct *and* incorrect)
///   as a fraction of all dynamic loads;
/// * **accuracy** — correct predictions as a fraction of speculative
///   accesses;
/// * **misprediction rate** — `1 − accuracy`;
/// * **correct-speculative rate** — correct speculative accesses out of
///   all dynamic loads (the Figure 9 metric).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Dynamic loads observed.
    pub loads: u64,
    /// Loads for which some address was predicted (verified or not).
    pub predictions: u64,
    /// Speculative accesses launched.
    pub spec_accesses: u64,
    /// Speculative accesses whose address was correct.
    pub correct_spec: u64,
    /// Predictions (speculated or not) whose address was correct.
    pub correct_predictions: u64,
    // --- hybrid selector diagnostics (Figure 8) ---
    /// Speculative accesses where *both* components offered an address.
    pub both_predicted_spec: u64,
    /// Selector state distribution over `both_predicted_spec` accesses
    /// (index = counter value 0–3).
    pub selector_states: [u64; 4],
    /// Mis-selections: mispredicted speculative accesses where the *other*
    /// component had the correct address.
    pub miss_selections: u64,
}

impl PredictorStats {
    /// Creates zeroed statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Speculative accesses / loads.
    #[must_use]
    pub fn prediction_rate(&self) -> f64 {
        ratio(self.spec_accesses, self.loads)
    }

    /// Correct speculative accesses / speculative accesses.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        ratio(self.correct_spec, self.spec_accesses)
    }

    /// `1 − accuracy` (of speculative accesses).
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        if self.spec_accesses == 0 {
            0.0
        } else {
            1.0 - self.accuracy()
        }
    }

    /// Correct speculative accesses / loads (Figure 9's metric).
    #[must_use]
    pub fn correct_spec_rate(&self) -> f64 {
        ratio(self.correct_spec, self.loads)
    }

    /// Correct selections / dual-predicted speculative accesses.
    #[must_use]
    pub fn correct_selection_rate(&self) -> f64 {
        if self.both_predicted_spec == 0 {
            1.0
        } else {
            1.0 - ratio(self.miss_selections, self.both_predicted_spec)
        }
    }

    /// Accounts one resolved load: the prediction made for it and its
    /// actual address. Used by every driving loop (trace-driven and the
    /// timing core). Equivalent to [`PredictorStats::record_with`] with
    /// telemetry off.
    pub fn record(&mut self, pred: &Prediction, actual: u64) {
        self.record_with(pred, actual, &Obs::off());
    }

    /// [`PredictorStats::record`], additionally mirroring every
    /// increment into `obs` under the [`names`] counters. With
    /// [`Obs::off`] each mirror call is a single branch.
    pub fn record_with(&mut self, pred: &Prediction, actual: u64, obs: &Obs) {
        self.loads += 1;
        obs.incr(names::LOADS);
        if pred.addr.is_some() {
            self.predictions += 1;
            obs.incr(names::PREDICTIONS);
            if pred.is_correct(actual) {
                self.correct_predictions += 1;
                obs.incr(names::CORRECT_PREDICTIONS);
            }
        }
        if pred.speculate {
            self.spec_accesses += 1;
            obs.incr(names::SPEC_ACCESSES);
            let correct = pred.is_correct(actual);
            if correct {
                self.correct_spec += 1;
                obs.incr(names::CORRECT_SPEC);
            }
            let d = &pred.detail;
            if d.stride_addr.is_some() && d.cap_addr.is_some() {
                self.both_predicted_spec += 1;
                obs.incr(names::BOTH_PREDICTED_SPEC);
                if let Some(state) = d.selector_state {
                    let state = usize::from(state.min(3));
                    self.selector_states[state] += 1;
                    obs.incr(names::SELECTOR_STATES[state]);
                }
                if !correct {
                    // Mis-selection: the other component had it right.
                    let other_correct = match pred.source {
                        PredSource::Cap => d.stride_addr == Some(actual),
                        PredSource::Stride => d.cap_addr == Some(actual),
                        _ => false,
                    };
                    if other_correct {
                        self.miss_selections += 1;
                        obs.incr(names::MISS_SELECTIONS);
                    }
                }
            }
        }
    }

    /// Reads the legacy struct back out of a registry snapshot: the
    /// inverse view of [`PredictorStats::record_with`]'s mirroring.
    /// Counters a run never touched read as 0, exactly as the
    /// accumulator would hold them.
    #[must_use]
    pub fn from_obs_snapshot(snap: &StatsSnapshot) -> Self {
        let counter = |name: &str| snap.counter(name).unwrap_or(0);
        let mut selector_states = [0u64; 4];
        for (slot, name) in selector_states.iter_mut().zip(names::SELECTOR_STATES) {
            *slot = counter(name);
        }
        Self {
            loads: counter(names::LOADS),
            predictions: counter(names::PREDICTIONS),
            spec_accesses: counter(names::SPEC_ACCESSES),
            correct_spec: counter(names::CORRECT_SPEC),
            correct_predictions: counter(names::CORRECT_PREDICTIONS),
            both_predicted_spec: counter(names::BOTH_PREDICTED_SPEC),
            selector_states,
            miss_selections: counter(names::MISS_SELECTIONS),
        }
    }

    /// Merges another accumulator into this one (suite-level averaging).
    pub fn merge(&mut self, other: &PredictorStats) {
        self.loads += other.loads;
        self.predictions += other.predictions;
        self.spec_accesses += other.spec_accesses;
        self.correct_spec += other.correct_spec;
        self.correct_predictions += other.correct_predictions;
        self.both_predicted_spec += other.both_predicted_spec;
        for (a, b) in self.selector_states.iter_mut().zip(&other.selector_states) {
            *a += b;
        }
        self.miss_selections += other.miss_selections;
    }
}

use cap_snapshot::{Restorable, SectionReader, SectionWriter, Snapshot, SnapshotError};

impl Snapshot for PredictorStats {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_u64(self.loads);
        w.put_u64(self.predictions);
        w.put_u64(self.spec_accesses);
        w.put_u64(self.correct_spec);
        w.put_u64(self.correct_predictions);
        w.put_u64(self.both_predicted_spec);
        for s in self.selector_states {
            w.put_u64(s);
        }
        w.put_u64(self.miss_selections);
    }
}

impl Restorable for PredictorStats {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let mut stats = Self {
            loads: r.take_u64("stats loads")?,
            predictions: r.take_u64("stats predictions")?,
            spec_accesses: r.take_u64("stats spec accesses")?,
            correct_spec: r.take_u64("stats correct spec")?,
            correct_predictions: r.take_u64("stats correct predictions")?,
            both_predicted_spec: r.take_u64("stats both predicted spec")?,
            ..Self::default()
        };
        for s in &mut stats.selector_states {
            *s = r.take_u64("stats selector state")?;
        }
        stats.miss_selections = r.take_u64("stats miss selections")?;
        Ok(stats)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_safe() {
        let s = PredictorStats::new();
        assert_eq!(s.prediction_rate(), 0.0);
        assert_eq!(s.accuracy(), 0.0);
        assert_eq!(s.misprediction_rate(), 0.0);
        assert_eq!(s.correct_selection_rate(), 1.0);
    }

    #[test]
    fn rates_follow_definitions() {
        let s = PredictorStats {
            loads: 100,
            predictions: 80,
            spec_accesses: 60,
            correct_spec: 57,
            correct_predictions: 70,
            ..PredictorStats::default()
        };
        assert!((s.prediction_rate() - 0.6).abs() < 1e-12);
        assert!((s.accuracy() - 0.95).abs() < 1e-12);
        assert!((s.misprediction_rate() - 0.05).abs() < 1e-12);
        assert!((s.correct_spec_rate() - 0.57).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = PredictorStats {
            loads: 10,
            spec_accesses: 5,
            correct_spec: 4,
            selector_states: [1, 2, 3, 4],
            ..PredictorStats::default()
        };
        let b = PredictorStats {
            loads: 20,
            spec_accesses: 10,
            correct_spec: 9,
            selector_states: [4, 3, 2, 1],
            miss_selections: 2,
            both_predicted_spec: 8,
            ..PredictorStats::default()
        };
        a.merge(&b);
        assert_eq!(a.loads, 30);
        assert_eq!(a.spec_accesses, 15);
        assert_eq!(a.correct_spec, 13);
        assert_eq!(a.selector_states, [5, 5, 5, 5]);
        assert_eq!(a.miss_selections, 2);
    }

    #[test]
    fn selection_rate_counts_miss_selections() {
        let s = PredictorStats {
            both_predicted_spec: 100,
            miss_selections: 1,
            ..PredictorStats::default()
        };
        assert!((s.correct_selection_rate() - 0.99).abs() < 1e-12);
    }
}
