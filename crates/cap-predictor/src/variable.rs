//! Variable history length — one of the paper's §6 future-work directions.
//!
//! > "Improving the predictor by applying novel ideas like variable
//! > history length, history correlation, etc. These ideas were tried on
//! > branch prediction and they seem promising."
//!
//! This module realises the idea the way the branch-prediction lineage
//! eventually did (TAGE-style): two tagged Link Tables indexed by a
//! *short* and a *long* fold of the same per-load history, with
//! longest-matching-context priority. Long contexts disambiguate
//! control-correlated repetition runs; short contexts warm up faster and
//! survive pattern perturbations — the tournament gets both.

use crate::confidence::SaturatingCounter;
use crate::history::HistorySpec;
use crate::link_table::{LinkTable, LinkTableConfig};
use crate::load_buffer::{LoadBuffer, LoadBufferConfig, LbEntryProto};
use crate::types::{AddressPredictor, LoadContext, PredSource, Prediction, PredictionDetail};

/// Configuration of a [`VariableHistoryCap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VariableHistoryConfig {
    /// Load Buffer geometry.
    pub lb: LoadBufferConfig,
    /// Geometry of *each* of the two Link Tables.
    pub lt: LinkTableConfig,
    /// Fold parameters (shift, index/tag widths). `history.length` is the
    /// retention bound and must equal `long_length`.
    pub history: HistorySpec,
    /// Context length of the short table.
    pub short_length: usize,
    /// Context length of the long table.
    pub long_length: usize,
    /// Confidence threshold / max for speculation.
    pub conf_threshold: u8,
    /// Confidence saturation value.
    pub conf_max: u8,
    /// Record base addresses (global correlation), as in baseline CAP.
    pub offset_lsb_bits: u32,
}

impl VariableHistoryConfig {
    /// Short contexts of 2 and long contexts of 4 over the paper's
    /// baseline table geometry (each LT half the baseline size, so total
    /// state matches the 4K-entry baseline).
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            lb: LoadBufferConfig::paper_default(),
            lt: LinkTableConfig {
                entries: 2048,
                ..LinkTableConfig::paper_default()
            },
            history: HistorySpec {
                length: 4,
                shift: 3,
                index_bits: 11,
                tag_bits: 8,
            },
            short_length: 2,
            long_length: 4,
            conf_threshold: 2,
            conf_max: 3,
            offset_lsb_bits: 8,
        }
    }

    fn validate(&self) {
        assert!(
            self.short_length < self.long_length,
            "short context must be shorter than long"
        );
        assert_eq!(
            self.history.length, self.long_length,
            "history retention must equal the long context length"
        );
        assert!(
            (1usize << self.history.index_bits) >= self.lt.sets(),
            "history index bits must cover the LT sets"
        );
    }
}

/// A two-table, longest-match context predictor.
///
/// # Examples
///
/// ```
/// use cap_predictor::variable::{VariableHistoryCap, VariableHistoryConfig};
/// use cap_predictor::types::{AddressPredictor, LoadContext};
///
/// let mut p = VariableHistoryCap::new(VariableHistoryConfig::paper_default());
/// let pattern = [0x1000u64, 0x88A0, 0x4860, 0x2B30];
/// for _ in 0..10 {
///     for &a in &pattern {
///         let ctx = LoadContext::new(0x40, 0, 0);
///         let pred = p.predict(&ctx);
///         p.update(&ctx, a, &pred);
///     }
/// }
/// assert!(p.predict(&LoadContext::new(0x40, 0, 0)).speculate);
/// ```
#[derive(Debug, Clone)]
pub struct VariableHistoryCap {
    config: VariableHistoryConfig,
    lb: LoadBuffer,
    short_lt: LinkTable,
    long_lt: LinkTable,
}

impl VariableHistoryCap {
    /// Creates the predictor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`VariableHistoryConfig`]).
    #[must_use]
    pub fn new(config: VariableHistoryConfig) -> Self {
        config.validate();
        let counter = SaturatingCounter::new(config.conf_threshold, config.conf_max, false);
        Self {
            lb: LoadBuffer::new(
                config.lb,
                LbEntryProto {
                    cap_conf: counter,
                    stride_conf: counter,
                },
            ),
            short_lt: LinkTable::new(config.lt),
            long_lt: LinkTable::new(config.lt),
            config,
        }
    }

}

impl AddressPredictor for VariableHistoryCap {
    fn predict(&mut self, ctx: &LoadContext) -> Prediction {
        let cfg = self.config;
        let Some(entry) = self.lb.lookup(ctx.ip) else {
            return Prediction::none();
        };
        // Longest matching context wins.
        let link = if entry.history.has_at_least(cfg.long_length) {
            let folded = entry.history.fold_last(&cfg.history, cfg.long_length);
            self.long_lt.lookup(&folded)
        } else {
            None
        }
        .or_else(|| {
            if entry.history.has_at_least(cfg.short_length) {
                let folded = entry.history.fold_last(&cfg.history, cfg.short_length);
                self.short_lt.lookup(&folded)
            } else {
                None
            }
        });
        let Some(link) = link else {
            return Prediction::none();
        };
        let addr = link.wrapping_add(u64::from(entry.offset_lsb));
        let confident = entry.cap_conf.is_confident();
        Prediction {
            addr: Some(addr),
            speculate: confident,
            source: PredSource::Cap,
            detail: PredictionDetail {
                cap_addr: Some(addr),
                cap_confident: confident,
                ..PredictionDetail::default()
            },
        }
    }

    fn update(&mut self, ctx: &LoadContext, actual: u64, pred: &Prediction) {
        let cfg = self.config;
        let off_lsb = u64::from((ctx.offset as u32) & ((1u32 << cfg.offset_lsb_bits) - 1));
        let actual_base = actual.wrapping_sub(off_lsb);
        let (entry, _fresh) = self.lb.lookup_or_insert(ctx.ip);
        entry.offset_lsb = off_lsb as u32;
        if let Some(p) = pred.addr {
            if p == actual {
                entry.cap_conf.on_correct();
            } else {
                entry.cap_conf.on_incorrect();
            }
        }
        if entry.history.has_at_least(cfg.long_length) {
            let folded = entry.history.fold_last(&cfg.history, cfg.long_length);
            self.long_lt.update(&folded, actual_base);
        }
        if entry.history.has_at_least(cfg.short_length) {
            let folded = entry.history.fold_last(&cfg.history, cfg.short_length);
            self.short_lt.update(&folded, actual_base);
        }
        entry.history.push(actual_base, &cfg.history);
    }

    fn name(&self) -> &'static str {
        "variable-history-cap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> VariableHistoryCap {
        let mut cfg = VariableHistoryConfig::paper_default();
        cfg.lb.entries = 256;
        cfg.lt.entries = 1024;
        cfg.lt.assoc = 2;
        cfg.history.index_bits = 10;
        VariableHistoryCap::new(cfg)
    }

    fn run_pattern(p: &mut VariableHistoryCap, pattern: &[u64], rounds: usize) -> (usize, usize) {
        let mut correct = 0;
        let mut total = 0;
        for round in 0..rounds {
            for &a in pattern {
                let ctx = LoadContext::new(0x40, 0, 0);
                let pred = p.predict(&ctx);
                p.update(&ctx, a, &pred);
                if round + 2 >= rounds {
                    total += 1;
                    if pred.is_correct(a) {
                        correct += 1;
                    }
                }
            }
        }
        (correct, total)
    }

    #[test]
    fn learns_simple_patterns_via_short_contexts() {
        let mut p = predictor();
        let (correct, total) = run_pattern(&mut p, &[0x1010, 0x88A4, 0x4858, 0x2B3C], 8);
        assert!(correct >= total - 1, "{correct}/{total}");
    }

    #[test]
    fn long_contexts_disambiguate_repetition_runs() {
        // A A A B C: after A, the next may be A or B — short contexts are
        // ambiguous, long contexts decide.
        let mut p = predictor();
        let pattern = [0x1010u64, 0x1010, 0x1010, 0x88A4, 0x4858];
        let (correct, total) = run_pattern(&mut p, &pattern, 20);
        assert!(
            correct as f64 / total as f64 > 0.85,
            "repetition run must be disambiguated: {correct}/{total}"
        );
    }

    #[test]
    fn beats_fixed_short_history_on_repetition_runs() {
        use crate::cap::{CapConfig, CapPredictor};
        let pattern = [0x1010u64, 0x1010, 0x1010, 0x88A4, 0x4858];

        let mut fixed2 = {
            let mut cfg = CapConfig::paper_default();
            cfg.params.history.length = 2;
            cfg.params.confidence_enabled = false;
            CapPredictor::new(cfg)
        };
        let mut f2_correct = 0;
        let mut total = 0;
        for round in 0..20 {
            for &a in &pattern {
                let ctx = LoadContext::new(0x40, 0, 0);
                let pred = fixed2.predict(&ctx);
                fixed2.update(&ctx, a, &pred);
                if round >= 18 {
                    total += 1;
                    if pred.is_correct(a) {
                        f2_correct += 1;
                    }
                }
            }
        }
        let mut var = predictor();
        let (v_correct, v_total) = run_pattern(&mut var, &pattern, 20);
        assert_eq!(total, v_total);
        assert!(
            v_correct > f2_correct,
            "variable ({v_correct}) must beat fixed-2 ({f2_correct}) on runs"
        );
    }

    #[test]
    fn falls_back_to_short_table_before_long_history_warm() {
        let mut p = predictor();
        // Only 3 addresses seen: long context (4) cold, short (2) warm.
        let pattern = [0x1010u64, 0x88A4, 0x4858];
        for &a in &pattern {
            let ctx = LoadContext::new(0x40, 0, 0);
            let pred = p.predict(&ctx);
            p.update(&ctx, a, &pred);
        }
        // Re-walk: short-table hits are possible already.
        let mut any_prediction = false;
        for &a in &pattern {
            let ctx = LoadContext::new(0x40, 0, 0);
            let pred = p.predict(&ctx);
            p.update(&ctx, a, &pred);
            any_prediction |= pred.addr.is_some();
        }
        assert!(any_prediction, "short table must serve before long warms");
    }

    #[test]
    #[should_panic(expected = "short context must be shorter")]
    fn degenerate_lengths_rejected() {
        let mut cfg = VariableHistoryConfig::paper_default();
        cfg.short_length = 4;
        let _ = VariableHistoryCap::new(cfg);
    }
}
