//! The Load Buffer (LB) — first level of every predictor in this crate
//! (§3.1, §3.7).
//!
//! A set-associative, LRU-replaced table indexed by the static load IP.
//! In the hybrid predictor the LB is *shared*: one entry carries the CAP
//! fields (offset LSBs, address history, CAP confidence), the enhanced
//! stride fields (last address, stride, state, interval), and the hybrid
//! selector counter, exactly as Figure 4 draws it.

use crate::confidence::{ControlFlowIndication, SaturatingCounter};
use crate::history::HistoryBuffer;

/// Stride-component state machine (the "state bits" of §3.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrideState {
    /// Only one address seen; no stride yet.
    #[default]
    Init,
    /// A candidate stride observed once.
    Transient,
    /// The same stride observed twice or more.
    Steady,
}

/// Interval tracking for the enhanced stride predictor (§5.2): learn the
/// array length (number of consecutive correct predictions before the
/// wrap) and stop speculating once the current run reaches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntervalCounter {
    /// Learned interval (0 = nothing learned yet).
    pub learned: u32,
    /// Correct predictions in the current run.
    pub run: u32,
}

impl IntervalCounter {
    /// Minimum run length considered a real array traversal; shorter runs
    /// don't overwrite the learned interval.
    const MIN_INTERVAL: u32 = 4;

    /// Records a correct stride prediction.
    pub fn on_correct(&mut self) {
        self.run = self.run.saturating_add(1);
    }

    /// Records a stride misprediction, learning the run length as the
    /// interval when it looks like an array wrap.
    pub fn on_incorrect(&mut self) {
        if self.run >= Self::MIN_INTERVAL {
            self.learned = self.run;
        }
        self.run = 0;
    }

    /// True when speculation should be withheld because the current run
    /// (plus any in-flight predictions) has reached the learned interval.
    #[must_use]
    pub fn exhausted(&self, pending: u32) -> bool {
        self.learned > 0 && self.run + pending >= self.learned
    }
}

/// One Load Buffer entry (Figure 4's field layout).
#[derive(Debug, Clone)]
pub struct LbEntry {
    /// IP tag.
    pub tag: u64,
    // --- CAP fields ---
    /// Architectural history of recent (base) addresses.
    pub history: HistoryBuffer,
    /// Speculative history rolled forward at predict time (pipelined mode).
    pub spec_history: HistoryBuffer,
    /// The recorded LSBs of the load's immediate offset (§3.3).
    pub offset_lsb: u32,
    /// CAP confidence counter.
    pub cap_conf: SaturatingCounter,
    /// CAP control-flow indication state.
    pub cap_cfi: ControlFlowIndication,
    // --- stride fields ---
    /// True once at least one address has been observed (so `last_addr` is
    /// meaningful).
    pub stride_seen: bool,
    /// Last resolved address.
    pub last_addr: u64,
    /// Current stride delta.
    pub stride: i64,
    /// Stride state machine.
    pub stride_state: StrideState,
    /// Stride confidence counter.
    pub stride_conf: SaturatingCounter,
    /// Stride control-flow indication state.
    pub stride_cfi: ControlFlowIndication,
    /// Interval (array-length) tracking.
    pub interval: IntervalCounter,
    // --- hybrid fields ---
    /// 2-bit selector: 0–1 choose stride, 2–3 choose CAP. Initialised to 2
    /// ("weak CAP"), per §4.2.
    pub selector: u8,
    /// LRU timestamp.
    pub lru: u64,
}

impl LbEntry {
    fn new(tag: u64, proto: &LbEntryProto, lru: u64) -> Self {
        Self {
            tag,
            history: HistoryBuffer::new(),
            spec_history: HistoryBuffer::new(),
            offset_lsb: 0,
            cap_conf: proto.cap_conf,
            cap_cfi: ControlFlowIndication::new(),
            stride_seen: false,
            last_addr: 0,
            stride: 0,
            stride_state: StrideState::Init,
            stride_conf: proto.stride_conf,
            stride_cfi: ControlFlowIndication::new(),
            interval: IntervalCounter::default(),
            selector: 2,
            lru,
        }
    }
}

/// Prototype counters cloned into fresh entries.
#[derive(Debug, Clone, Copy)]
pub struct LbEntryProto {
    /// Initial CAP confidence counter (cold).
    pub cap_conf: SaturatingCounter,
    /// Initial stride confidence counter (cold).
    pub stride_conf: SaturatingCounter,
}

/// Configuration of a [`LoadBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadBufferConfig {
    /// Total entries (power of two).
    pub entries: usize,
    /// Associativity.
    pub assoc: usize,
}

impl LoadBufferConfig {
    /// The paper's baseline: 4K entries, 2-way set associative.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            entries: 4096,
            assoc: 2,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.entries / self.assoc
    }

    fn validate(&self) {
        assert!(self.entries.is_power_of_two(), "LB entries must be a power of two");
        assert!(self.assoc >= 1, "associativity must be at least 1");
        assert!(
            self.entries.is_multiple_of(self.assoc) && (self.entries / self.assoc).is_power_of_two(),
            "LB sets must be a power of two"
        );
    }
}

/// The Load Buffer.
#[derive(Debug, Clone)]
pub struct LoadBuffer {
    config: LoadBufferConfig,
    proto: LbEntryProto,
    sets: Vec<Vec<Option<LbEntry>>>,
    tick: u64,
}

impl LoadBuffer {
    /// Creates an empty Load Buffer.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(config: LoadBufferConfig, proto: LbEntryProto) -> Self {
        config.validate();
        Self {
            sets: vec![vec![None; config.assoc]; config.sets()],
            config,
            proto,
            tick: 0,
        }
    }

    /// The buffer's configuration.
    #[must_use]
    pub fn config(&self) -> &LoadBufferConfig {
        &self.config
    }

    fn set_index(&self, ip: u64) -> usize {
        // Drop the 2 alignment bits of the IP before indexing.
        ((ip >> 2) as usize) & (self.config.sets() - 1)
    }

    /// Looks up the entry for `ip` without allocating; refreshes LRU on hit.
    ///
    /// The tick advances on *hits only*: a miss observes the table without
    /// touching it, so diagnostic probes of absent IPs (or a storm of them)
    /// cannot age unrelated entries and perturb eviction order.
    pub fn lookup(&mut self, ip: u64) -> Option<&mut LbEntry> {
        let set_idx = self.set_index(ip);
        let entry = self.sets[set_idx]
            .iter_mut()
            .flatten()
            .find(|e| e.tag == ip)?;
        self.tick += 1;
        entry.lru = self.tick;
        Some(entry)
    }

    /// Looks up the entry for `ip` without touching LRU or tick state —
    /// a pure read for diagnostics and lookahead walks
    /// (e.g. [`crate::cap::CapPredictor::predict_ahead`]).
    #[must_use]
    pub fn peek(&self, ip: u64) -> Option<&LbEntry> {
        self.sets[self.set_index(ip)]
            .iter()
            .flatten()
            .find(|e| e.tag == ip)
    }

    /// Looks up the entry for `ip`, allocating (and possibly evicting LRU)
    /// on miss. Returns the entry and whether it was freshly allocated.
    pub fn lookup_or_insert(&mut self, ip: u64) -> (&mut LbEntry, bool) {
        self.tick += 1;
        let tick = self.tick;
        let set_idx = self.set_index(ip);
        let set = &mut self.sets[set_idx];
        let hit_way = set
            .iter()
            .position(|e| e.as_ref().is_some_and(|e| e.tag == ip));
        let (way, fresh) = match hit_way {
            Some(way) => (way, false),
            None => {
                // Prefer an empty way, else evict the LRU one. `fold`
                // defaults to way 0, so a (config-impossible) empty set
                // cannot make this panic.
                let way = set.iter().position(Option::is_none).unwrap_or_else(|| {
                    set.iter()
                        .enumerate()
                        .fold((0usize, u64::MAX), |best, (i, e)| {
                            let lru = e.as_ref().map_or(0, |e| e.lru);
                            if lru < best.1 { (i, lru) } else { best }
                        })
                        .0
                });
                set[way] = None;
                (way, true)
            }
        };
        let entry = set[way].get_or_insert_with(|| LbEntry::new(ip, &self.proto, tick));
        entry.lru = tick;
        (entry, fresh)
    }

    /// Number of live entries (diagnostics).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.sets.iter().flatten().flatten().count()
    }

    /// Iterates over live entries (diagnostics, invariant checking).
    pub fn entries(&self) -> impl Iterator<Item = &LbEntry> {
        self.sets.iter().flatten().flatten()
    }

    /// Mutably iterates over live entries. This is the fault-injection
    /// surface: a chaos harness may corrupt any entry field through it.
    /// The LB itself stays structurally sound under arbitrary field edits —
    /// set geometry is untouched and lookups tolerate stale tags (a
    /// corrupted tag simply behaves like an evicted/aliased entry).
    pub fn entries_mut(&mut self) -> impl Iterator<Item = &mut LbEntry> {
        self.sets.iter_mut().flatten().flatten()
    }
}

use cap_snapshot::{Restorable, SectionReader, SectionWriter, Snapshot, SnapshotError};

impl Snapshot for StrideState {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_u8(match self {
            StrideState::Init => 0,
            StrideState::Transient => 1,
            StrideState::Steady => 2,
        });
    }
}

impl Restorable for StrideState {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        match r.take_u8("stride state tag")? {
            0 => Ok(StrideState::Init),
            1 => Ok(StrideState::Transient),
            2 => Ok(StrideState::Steady),
            tag => Err(r.bad_value(format!("unknown stride state tag {tag}"))),
        }
    }
}

impl Snapshot for IntervalCounter {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_u32(self.learned);
        w.put_u32(self.run);
    }
}

impl Restorable for IntervalCounter {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            learned: r.take_u32("interval learned")?,
            run: r.take_u32("interval run")?,
        })
    }
}

impl Snapshot for LbEntry {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_u64(self.tag);
        self.history.write_state(w);
        self.spec_history.write_state(w);
        w.put_u32(self.offset_lsb);
        self.cap_conf.write_state(w);
        self.cap_cfi.write_state(w);
        w.put_bool(self.stride_seen);
        w.put_u64(self.last_addr);
        w.put_i64(self.stride);
        self.stride_state.write_state(w);
        self.stride_conf.write_state(w);
        self.stride_cfi.write_state(w);
        self.interval.write_state(w);
        w.put_u8(self.selector);
        w.put_u64(self.lru);
    }
}

impl Restorable for LbEntry {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let entry = Self {
            tag: r.take_u64("lb entry tag")?,
            history: HistoryBuffer::read_state(r)?,
            spec_history: HistoryBuffer::read_state(r)?,
            offset_lsb: r.take_u32("lb offset lsb")?,
            cap_conf: SaturatingCounter::read_state(r)?,
            cap_cfi: ControlFlowIndication::read_state(r)?,
            stride_seen: r.take_bool("lb stride seen")?,
            last_addr: r.take_u64("lb last addr")?,
            stride: r.take_i64("lb stride")?,
            stride_state: StrideState::read_state(r)?,
            stride_conf: SaturatingCounter::read_state(r)?,
            stride_cfi: ControlFlowIndication::read_state(r)?,
            interval: IntervalCounter::read_state(r)?,
            selector: r.take_u8("lb selector")?,
            lru: r.take_u64("lb lru")?,
        };
        if entry.selector > 3 {
            return Err(r.bad_value(format!("lb selector {} above 3 (2-bit counter)", entry.selector)));
        }
        Ok(entry)
    }
}

impl Snapshot for LoadBufferConfig {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_len(self.entries);
        w.put_len(self.assoc);
    }
}

impl Restorable for LoadBufferConfig {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let entries = r.take_u64("lb entries")?;
        let assoc = r.take_u64("lb associativity")?;
        // Mirror LoadBufferConfig::validate without its panics, with a
        // ceiling so hostile configs can't demand unbounded allocation.
        if !entries.is_power_of_two() || entries > 1 << 24 {
            return Err(r.bad_value(format!("lb entries {entries} not a power of two <= 2^24")));
        }
        if assoc == 0 || assoc > entries || entries % assoc != 0 || !(entries / assoc).is_power_of_two() {
            return Err(r.bad_value(format!("lb associativity {assoc} incompatible with {entries} entries")));
        }
        Ok(Self {
            entries: entries as usize,
            assoc: assoc as usize,
        })
    }
}

impl Snapshot for LoadBuffer {
    fn write_state(&self, w: &mut SectionWriter) {
        self.config.write_state(w);
        self.proto.cap_conf.write_state(w);
        self.proto.stride_conf.write_state(w);
        w.put_u64(self.tick);
        for set in &self.sets {
            for way in set {
                match way {
                    Some(entry) => {
                        w.put_bool(true);
                        entry.write_state(w);
                    }
                    None => w.put_bool(false),
                }
            }
        }
    }
}

impl Restorable for LoadBuffer {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let config = LoadBufferConfig::read_state(r)?;
        let proto = LbEntryProto {
            cap_conf: SaturatingCounter::read_state(r)?,
            stride_conf: SaturatingCounter::read_state(r)?,
        };
        let tick = r.take_u64("lb tick")?;
        let mut sets = Vec::with_capacity(config.sets());
        for _ in 0..config.sets() {
            let mut set = Vec::with_capacity(config.assoc);
            for _ in 0..config.assoc {
                set.push(if r.take_bool("lb way presence")? {
                    Some(LbEntry::read_state(r)?)
                } else {
                    None
                });
            }
            sets.push(set);
        }
        Ok(Self {
            config,
            proto,
            sets,
            tick,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proto() -> LbEntryProto {
        LbEntryProto {
            cap_conf: SaturatingCounter::new(2, 3, false),
            stride_conf: SaturatingCounter::new(2, 3, false),
        }
    }

    fn lb(entries: usize, assoc: usize) -> LoadBuffer {
        LoadBuffer::new(LoadBufferConfig { entries, assoc }, proto())
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut b = lb(16, 2);
        assert!(b.lookup(0x100).is_none());
        let (_, fresh) = b.lookup_or_insert(0x100);
        assert!(fresh);
        assert!(b.lookup(0x100).is_some());
        let (_, fresh2) = b.lookup_or_insert(0x100);
        assert!(!fresh2);
    }

    #[test]
    fn new_entries_start_cold_and_weak_cap() {
        let mut b = lb(16, 2);
        let (e, _) = b.lookup_or_insert(0x40);
        assert_eq!(e.selector, 2, "selector initialised to weak CAP (§4.2)");
        assert!(!e.cap_conf.is_confident());
        assert!(!e.stride_conf.is_confident());
        assert_eq!(e.stride_state, StrideState::Init);
        assert!(e.history.is_empty());
    }

    #[test]
    fn lru_eviction_prefers_oldest() {
        let mut b = lb(2, 2); // 1 set, 2 ways
        b.lookup_or_insert(0x100);
        b.lookup_or_insert(0x200);
        // Touch 0x100 so 0x200 becomes LRU.
        b.lookup(0x100);
        b.lookup_or_insert(0x300);
        assert!(b.lookup(0x100).is_some());
        assert!(b.lookup(0x200).is_none(), "LRU way evicted");
        assert!(b.lookup(0x300).is_some());
    }

    #[test]
    fn miss_probe_storm_leaves_eviction_order_unchanged() {
        // Regression: `lookup` used to bump the tick on misses, so a storm
        // of probes for absent IPs aged resident entries and could flip
        // which way a later insert evicted.
        let mut b = lb(2, 2); // 1 set, 2 ways
        b.lookup_or_insert(0x100);
        b.lookup_or_insert(0x200);
        // 0x100 is now LRU. Probe a storm of IPs that are not resident
        // (same set — (ip >> 2) & 0 == 0 for every ip — so the probes
        // actually walk this set's ways).
        for i in 0..10_000u64 {
            assert!(b.lookup(0x1000 + i * 4).is_none());
        }
        // The insert must still evict 0x100, exactly as if the storm
        // never happened.
        b.lookup_or_insert(0x300);
        assert!(b.lookup(0x100).is_none(), "oldest entry still the victim");
        assert!(b.lookup(0x200).is_some());
        assert!(b.lookup(0x300).is_some());
    }

    #[test]
    fn miss_probes_do_not_advance_tick() {
        let mut b = lb(16, 2);
        b.lookup_or_insert(0x100);
        let tick_before = b.tick;
        for i in 0..1000u64 {
            let _ = b.lookup(0x9000 + i * 4);
        }
        assert_eq!(b.tick, tick_before, "misses must not age the table");
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut b = lb(16, 1);
        // ips differ in set index bits (ip >> 2).
        b.lookup_or_insert(0 << 2);
        b.lookup_or_insert(1 << 2);
        assert!(b.lookup(0).is_some());
        assert!(b.lookup(4).is_some());
        assert_eq!(b.occupancy(), 2);
    }

    #[test]
    fn same_set_direct_mapped_conflicts() {
        let mut b = lb(16, 1); // 16 sets
        let a = 0u64;
        let conflicting = 16 << 2; // same (ip>>2) & 15
        b.lookup_or_insert(a);
        b.lookup_or_insert(conflicting);
        assert!(b.lookup(a).is_none(), "direct-mapped conflict evicts");
        assert!(b.lookup(conflicting).is_some());
    }

    #[test]
    fn interval_learns_array_length() {
        let mut iv = IntervalCounter::default();
        for _ in 0..10 {
            iv.on_correct();
        }
        iv.on_incorrect();
        assert_eq!(iv.learned, 10);
        assert_eq!(iv.run, 0);
        // After 9 correct in the new run, one more would be the wrap.
        for _ in 0..9 {
            iv.on_correct();
        }
        assert!(!iv.exhausted(0));
        iv.on_correct();
        assert!(iv.exhausted(0), "run reached learned interval");
    }

    #[test]
    fn interval_accounts_for_pending_predictions() {
        let mut iv = IntervalCounter::default();
        for _ in 0..8 {
            iv.on_correct();
        }
        iv.on_incorrect();
        for _ in 0..5 {
            iv.on_correct();
        }
        assert!(!iv.exhausted(2));
        assert!(iv.exhausted(3), "5 done + 3 pending = 8 = interval");
    }

    #[test]
    fn short_runs_do_not_learn_interval() {
        let mut iv = IntervalCounter::default();
        iv.on_correct();
        iv.on_correct();
        iv.on_incorrect();
        assert_eq!(iv.learned, 0, "runs below MIN_INTERVAL are noise");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_config_rejected() {
        let _ = lb(24, 2);
    }
}
