//! Per-load address-history recording and the shift(m)-xor compression
//! scheme (paper §3.2).
//!
//! The paper's Load Buffer keeps, per static load, a history of the last
//! *N* (base) addresses. The history is compressed into a Link-Table index
//! by the **shift(m)-xor** scheme: fold each address in turn by shifting
//! the accumulator left `m` bits and xoring in the address's low bits
//! (excluding the last two, which only matter on unaligned accesses), then
//! truncate. The scheme "naturally ages past addresses": after enough
//! pushes an old address's bits are entirely shifted out.
//!
//! For experiment fidelity we store the last `N` raw addresses and fold on
//! demand — this makes *history length* an exact, sweepable parameter
//! (Figure 9). Hardware would keep only the folded register; the folded
//! value we compute is identical to what an incremental implementation of
//! width `index_bits + tag_bits` produces.

use std::collections::VecDeque;

/// Parameters of the history compression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistorySpec {
    /// Number of past addresses recorded (the paper sweeps 1–12; default 4).
    pub length: usize,
    /// Shift amount `m` of the shift(m)-xor scheme.
    pub shift: u32,
    /// Bits of the folded history used to index the Link Table.
    pub index_bits: u32,
    /// Extra folded-history bits stored as a Link-Table tag (§3.4); `0`
    /// disables tagging.
    pub tag_bits: u32,
}

impl HistorySpec {
    /// The paper's default configuration: history length 4, shift 3,
    /// 12 index bits (4K-entry LT), 8 tag bits.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            length: 4,
            shift: 3,
            index_bits: 12,
            tag_bits: 8,
        }
    }

    /// Total folded width (index + tag).
    #[must_use]
    pub fn width(&self) -> u32 {
        self.index_bits + self.tag_bits
    }

    /// Splits a folded accumulator of [`HistorySpec::width`] bits into
    /// Link-Table index and tag — shared by the fold-on-demand buffer below
    /// and incremental (bit-packed) folded registers.
    #[must_use]
    pub fn split(&self, h: u64) -> FoldedHistory {
        FoldedHistory {
            index: h & ((1u64 << self.index_bits) - 1),
            tag: if self.tag_bits == 0 {
                0
            } else {
                (h >> self.index_bits) & ((1u64 << self.tag_bits) - 1)
            },
        }
    }

    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero length, zero shift, zero
    /// width, or width > 63).
    pub fn validate(&self) {
        assert!(self.length > 0, "history length must be positive");
        assert!(self.shift > 0, "shift amount must be positive");
        assert!(self.width() > 0, "folded width must be positive");
        assert!(self.width() <= 63, "folded width must fit in u64");
    }
}

/// The folded history split into Link-Table index and tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FoldedHistory {
    /// Link-Table index bits.
    pub index: u64,
    /// Link-Table tag bits (0 when tagging is disabled).
    pub tag: u64,
}

/// A bounded FIFO of recent (base) addresses for one static load.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistoryBuffer {
    addrs: VecDeque<u64>,
}

impl HistoryBuffer {
    /// Creates an empty history.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `addr` as the most recent address, keeping at most
    /// `spec.length` entries.
    pub fn push(&mut self, addr: u64, spec: &HistorySpec) {
        self.addrs.push_back(addr);
        while self.addrs.len() > spec.length {
            self.addrs.pop_front();
        }
    }

    /// Number of recorded addresses (≤ `spec.length`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when no addresses have been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// True once the history holds `spec.length` addresses — predictions
    /// before that point would index the LT with a partial context.
    #[must_use]
    pub fn is_warm(&self, spec: &HistorySpec) -> bool {
        self.addrs.len() >= spec.length
    }

    /// Folds the recorded addresses with the shift(m)-xor scheme and splits
    /// the result into LT index and tag.
    ///
    /// Oldest address first, so the newest address's bits occupy the least
    /// shifted (freshest) position — matching an incremental register that
    /// shifts on every push.
    #[must_use]
    pub fn fold(&self, spec: &HistorySpec) -> FoldedHistory {
        self.fold_last(spec, spec.length)
    }

    /// Folds only the most recent `length` recorded addresses — used by
    /// variable-history-length predictors that serve several context
    /// lengths from one buffer (retain at the longest, fold at each).
    #[must_use]
    pub fn fold_last(&self, spec: &HistorySpec, length: usize) -> FoldedHistory {
        let width = spec.width();
        let mask = (1u64 << width) - 1;
        let mut h: u64 = 0;
        let skip = self.addrs.len().saturating_sub(length);
        for &a in self.addrs.iter().skip(skip) {
            // All LSBs except the last two (alignment bits), per §3.2.
            h = ((h << spec.shift) ^ (a >> 2)) & mask;
        }
        spec.split(h)
    }

    /// True once at least `length` addresses are recorded.
    #[must_use]
    pub fn has_at_least(&self, length: usize) -> bool {
        self.addrs.len() >= length
    }

    /// Flips one bit of a recorded address, modelling an upset in the
    /// history register (fault injection). `slot` and `bit` are wrapped into
    /// range; returns `false` (and does nothing) when the history is empty.
    /// Every `u64` is a structurally valid address, so the buffer's only
    /// invariant — length ≤ `spec.length` — is untouched.
    pub fn corrupt_bit(&mut self, slot: usize, bit: u32) -> bool {
        if self.addrs.is_empty() {
            return false;
        }
        let slot = slot % self.addrs.len();
        if let Some(a) = self.addrs.get_mut(slot) {
            *a ^= 1u64 << (bit % 64);
        }
        true
    }

    /// Clears the history (used when repairing speculative state).
    pub fn clear(&mut self) {
        self.addrs.clear();
    }

    /// Copies another history's contents into this one (state repair).
    pub fn copy_from(&mut self, other: &HistoryBuffer) {
        self.addrs.clear();
        self.addrs.extend(other.addrs.iter().copied());
    }
}

use cap_snapshot::{Restorable, SectionReader, SectionWriter, Snapshot, SnapshotError};

impl Snapshot for HistorySpec {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_len(self.length);
        w.put_u32(self.shift);
        w.put_u32(self.index_bits);
        w.put_u32(self.tag_bits);
    }
}

impl Restorable for HistorySpec {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let length = r.take_u64("history length")?;
        let shift = r.take_u32("history shift")?;
        let index_bits = r.take_u32("history index bits")?;
        let tag_bits = r.take_u32("history tag bits")?;
        // Mirror HistorySpec::validate without its panics, plus a sanity
        // ceiling on length so hostile specs can't demand huge buffers.
        if length == 0 || length > 1 << 16 {
            return Err(r.bad_value(format!("history length {length} outside 1..=65536")));
        }
        if shift == 0 || shift > 63 {
            return Err(r.bad_value(format!("history shift {shift} outside 1..=63")));
        }
        let width = index_bits.checked_add(tag_bits);
        if !matches!(width, Some(1..=63)) {
            return Err(r.bad_value(format!(
                "folded width index {index_bits} + tag {tag_bits} outside 1..=63"
            )));
        }
        Ok(Self {
            length: length as usize,
            shift,
            index_bits,
            tag_bits,
        })
    }
}

impl Snapshot for HistoryBuffer {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_len(self.addrs.len());
        for &a in &self.addrs {
            w.put_u64(a);
        }
    }
}

impl Restorable for HistoryBuffer {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let len = r.take_len(8, "history address count")?;
        let mut addrs = VecDeque::with_capacity(len);
        for _ in 0..len {
            addrs.push_back(r.take_u64("history address")?);
        }
        Ok(Self { addrs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(length: usize) -> HistorySpec {
        HistorySpec {
            length,
            shift: 3,
            index_bits: 12,
            tag_bits: 8,
        }
    }

    #[test]
    fn paper_default_is_valid() {
        HistorySpec::paper_default().validate();
        assert_eq!(HistorySpec::paper_default().width(), 20);
    }

    #[test]
    fn push_keeps_at_most_length() {
        let s = spec(3);
        let mut h = HistoryBuffer::new();
        for a in 0..10u64 {
            h.push(a << 4, &s);
        }
        assert_eq!(h.len(), 3);
        assert!(h.is_warm(&s));
    }

    #[test]
    fn fold_depends_on_every_recorded_address() {
        let s = spec(3);
        let mut h1 = HistoryBuffer::new();
        let mut h2 = HistoryBuffer::new();
        for a in [0x100u64, 0x200, 0x300] {
            h1.push(a, &s);
        }
        for a in [0x104u64, 0x200, 0x300] {
            h2.push(a, &s);
        }
        assert_ne!(h1.fold(&s), h2.fold(&s), "oldest address must still matter");
    }

    #[test]
    fn fold_ignores_alignment_bits() {
        let s = spec(2);
        let mut h1 = HistoryBuffer::new();
        let mut h2 = HistoryBuffer::new();
        h1.push(0x100, &s);
        h1.push(0x200, &s);
        // Differ only in the low 2 bits.
        h2.push(0x101, &s);
        h2.push(0x202, &s);
        assert_eq!(h1.fold(&s), h2.fold(&s));
    }

    #[test]
    fn different_order_folds_differently() {
        let s = spec(2);
        let mut h1 = HistoryBuffer::new();
        let mut h2 = HistoryBuffer::new();
        h1.push(0x100, &s);
        h1.push(0x200, &s);
        h2.push(0x200, &s);
        h2.push(0x100, &s);
        assert_ne!(h1.fold(&s), h2.fold(&s), "shift-xor must be order-sensitive");
    }

    #[test]
    fn old_addresses_age_out_of_window() {
        let s = spec(2);
        let mut h1 = HistoryBuffer::new();
        let mut h2 = HistoryBuffer::new();
        // Same last 2 addresses, different older prefix.
        for a in [0xAAAA0u64, 0x100, 0x200] {
            h1.push(a, &s);
        }
        for a in [0xBBBB0u64, 0x100, 0x200] {
            h2.push(a, &s);
        }
        assert_eq!(h1.fold(&s), h2.fold(&s), "length-2 history keeps only 2");
    }

    #[test]
    fn index_and_tag_partition_folded_value() {
        let s = spec(4);
        let mut h = HistoryBuffer::new();
        for a in [0x1234u64, 0x5678, 0x9ABC, 0xDEF0] {
            h.push(a, &s);
        }
        let f = h.fold(&s);
        assert!(f.index < (1 << 12));
        assert!(f.tag < (1 << 8));
    }

    #[test]
    fn zero_tag_bits_yields_zero_tag() {
        let s = HistorySpec {
            tag_bits: 0,
            ..spec(4)
        };
        let mut h = HistoryBuffer::new();
        h.push(0xFFFF_FFFF, &s);
        assert_eq!(h.fold(&s).tag, 0);
    }

    #[test]
    fn copy_from_replicates_state() {
        let s = spec(3);
        let mut a = HistoryBuffer::new();
        for x in [1u64 << 4, 2 << 4, 3 << 4] {
            a.push(x, &s);
        }
        let mut b = HistoryBuffer::new();
        b.push(0xDEAD0, &s);
        b.copy_from(&a);
        assert_eq!(a, b);
        assert_eq!(a.fold(&s), b.fold(&s));
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_rejected() {
        HistorySpec {
            length: 0,
            ..spec(1)
        }
        .validate();
    }
}
