//! Confidence mechanisms (paper §3.4).
//!
//! Three mechanisms decide whether a prediction is trusted enough to launch
//! a speculative cache access; a speculative access happens only when *all*
//! enabled mechanisms agree:
//!
//! 1. **Saturating counters** — per-LB-entry counter incremented on a
//!    correct prediction, reset on a misprediction, speculating only at
//!    saturation (threshold 2–3), optionally with a hysteresis bit.
//! 2. **Control-flow indications** — the GHR pattern observed at the last
//!    misprediction is recorded; predictions under the same pattern are not
//!    speculated. The advanced variant keeps `2^n` per-path correctness bits.
//! 3. **LT tags** — implemented in [`crate::link_table`] (extra folded
//!    history bits matched against the indexed entry).

/// A saturating confidence counter with optional hysteresis.
///
/// # Examples
///
/// ```
/// use cap_predictor::confidence::SaturatingCounter;
/// let mut c = SaturatingCounter::new(2, 3, false);
/// assert!(!c.is_confident());
/// c.on_correct();
/// c.on_correct();
/// assert!(c.is_confident());
/// c.on_incorrect();
/// assert!(!c.is_confident());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaturatingCounter {
    value: u8,
    threshold: u8,
    max: u8,
    hysteresis: bool,
}

impl SaturatingCounter {
    /// Creates a counter that speculates at `threshold` and saturates at
    /// `max`. With `hysteresis`, a misprediction at saturation drops the
    /// counter to `threshold` (one more strike before silence) instead of
    /// resetting to zero — the paper's "extra bit" hysteresis behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0` or `threshold > max`.
    #[must_use]
    pub fn new(threshold: u8, max: u8, hysteresis: bool) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        assert!(threshold <= max, "threshold must not exceed max");
        Self {
            value: 0,
            threshold,
            max,
            hysteresis,
        }
    }

    /// Current counter value.
    #[must_use]
    pub fn value(&self) -> u8 {
        self.value
    }

    /// Speculation threshold this counter was built with.
    #[must_use]
    pub fn threshold(&self) -> u8 {
        self.threshold
    }

    /// Saturation ceiling this counter was built with.
    #[must_use]
    pub fn max(&self) -> u8 {
        self.max
    }

    /// Whether mispredictions decay to `threshold` (hysteresis) instead of 0
    /// when the counter is saturated.
    #[must_use]
    pub fn hysteresis(&self) -> bool {
        self.hysteresis
    }

    /// Overwrites the stored value with `raw`, modelling a bit upset in the
    /// physical counter. The counter is a `max+1`-state device, so the raw
    /// value wraps into `0..=max` — the structural invariant
    /// `value() <= max` holds even under injected faults.
    pub fn corrupt_value(&mut self, raw: u8) {
        self.value = raw % (self.max + 1);
    }

    /// True when the counter authorises a speculative access.
    #[must_use]
    pub fn is_confident(&self) -> bool {
        self.value >= self.threshold
    }

    /// Records a correct prediction.
    pub fn on_correct(&mut self) {
        self.value = (self.value + 1).min(self.max);
    }

    /// Records a misprediction.
    pub fn on_incorrect(&mut self) {
        self.value = if self.hysteresis && self.value >= self.max {
            self.threshold
        } else {
            0
        };
    }

    /// Resets to cold.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

/// Which control-flow-indication variant is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CfiMode {
    /// Mechanism disabled — always allows speculation.
    #[default]
    Off,
    /// Record the `n` GHR LSBs at the last misprediction; refuse to
    /// speculate when the current GHR matches them (paper's basic scheme).
    LastMisprediction {
        /// Number of GHR bits recorded (1–4 typical).
        bits: u32,
    },
    /// Keep `2^n` per-path bits, each recording whether the last
    /// speculative access on that path was correct (paper's advanced
    /// scheme).
    PerPath {
        /// Number of GHR bits selecting the path (so `2^bits` state bits).
        bits: u32,
    },
}

/// Per-LB-entry control-flow indication state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ControlFlowIndication {
    /// `LastMisprediction`: the recorded pattern, if any.
    bad_pattern: Option<u64>,
    /// `PerPath`: bit `p` set means the last speculative access on path `p`
    /// was *correct*. Initialised to all-correct so fresh entries may
    /// speculate.
    path_bits: u64,
    initialised: bool,
}

impl ControlFlowIndication {
    /// Creates a fresh indication that permits speculation everywhere.
    #[must_use]
    pub fn new() -> Self {
        Self {
            bad_pattern: None,
            path_bits: u64::MAX,
            initialised: true,
        }
    }

    /// Reassembles an indication from raw parts — the inverse of the
    /// getters below, used by bit-packed table layouts that store the
    /// indication field-by-field.
    #[must_use]
    pub fn from_parts(bad_pattern: Option<u64>, path_bits: u64, initialised: bool) -> Self {
        Self {
            bad_pattern,
            path_bits,
            initialised,
        }
    }

    /// `LastMisprediction`: the recorded pattern, if any.
    #[must_use]
    pub fn bad_pattern(&self) -> Option<u64> {
        self.bad_pattern
    }

    /// `PerPath`: the per-path correctness bits.
    #[must_use]
    pub fn path_bits(&self) -> u64 {
        self.path_bits
    }

    /// Whether this indication has been initialised (snapshot bookkeeping).
    #[must_use]
    pub fn initialised(&self) -> bool {
        self.initialised
    }

    /// True when speculation is allowed under the current GHR.
    #[must_use]
    pub fn allows(&self, mode: CfiMode, ghr: u64) -> bool {
        match mode {
            CfiMode::Off => true,
            CfiMode::LastMisprediction { bits } => {
                let mask = (1u64 << bits) - 1;
                self.bad_pattern != Some(ghr & mask)
            }
            CfiMode::PerPath { bits } => {
                let path = (ghr & ((1u64 << bits) - 1)) as u32;
                (self.path_bits >> path) & 1 == 1
            }
        }
    }

    /// Overwrites the indication state wholesale, modelling bit upsets in
    /// the recorded pattern / per-path bits (fault injection). Any `u64` is
    /// a structurally valid pattern, so no masking is needed here; `allows`
    /// masks to the active mode's width on read.
    pub fn corrupt(&mut self, bad_pattern: Option<u64>, path_bits: u64) {
        self.bad_pattern = bad_pattern;
        self.path_bits = path_bits;
        self.initialised = true;
    }

    /// Records the outcome of a *speculative access* under `ghr`.
    pub fn record(&mut self, mode: CfiMode, ghr: u64, correct: bool) {
        match mode {
            CfiMode::Off => {}
            CfiMode::LastMisprediction { bits } => {
                let mask = (1u64 << bits) - 1;
                if correct {
                    // A correct access under the recorded pattern clears it,
                    // restoring speculation on that path.
                    if self.bad_pattern == Some(ghr & mask) {
                        self.bad_pattern = None;
                    }
                } else {
                    self.bad_pattern = Some(ghr & mask);
                }
            }
            CfiMode::PerPath { bits } => {
                let path = ghr & ((1u64 << bits) - 1);
                if correct {
                    self.path_bits |= 1 << path;
                } else {
                    self.path_bits &= !(1 << path);
                }
            }
        }
    }
}

use cap_snapshot::{Restorable, SectionReader, SectionWriter, Snapshot, SnapshotError};

impl Snapshot for SaturatingCounter {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_u8(self.value);
        w.put_u8(self.threshold);
        w.put_u8(self.max);
        w.put_bool(self.hysteresis);
    }
}

impl Restorable for SaturatingCounter {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let value = r.take_u8("counter value")?;
        let threshold = r.take_u8("counter threshold")?;
        let max = r.take_u8("counter max")?;
        let hysteresis = r.take_bool("counter hysteresis")?;
        if threshold == 0 || threshold > max {
            return Err(r.bad_value(format!(
                "counter threshold {threshold} outside 1..=max ({max})"
            )));
        }
        if value > max {
            return Err(r.bad_value(format!("counter value {value} above max {max}")));
        }
        Ok(Self {
            value,
            threshold,
            max,
            hysteresis,
        })
    }
}

impl Snapshot for CfiMode {
    fn write_state(&self, w: &mut SectionWriter) {
        match self {
            CfiMode::Off => w.put_u8(0),
            CfiMode::LastMisprediction { bits } => {
                w.put_u8(1);
                w.put_u32(*bits);
            }
            CfiMode::PerPath { bits } => {
                w.put_u8(2);
                w.put_u32(*bits);
            }
        }
    }
}

impl Restorable for CfiMode {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        match r.take_u8("cfi mode tag")? {
            0 => Ok(CfiMode::Off),
            1 => {
                let bits = r.take_u32("cfi bits")?;
                if bits == 0 || bits > 63 {
                    return Err(r.bad_value(format!("last-misprediction bits {bits} outside 1..=63")));
                }
                Ok(CfiMode::LastMisprediction { bits })
            }
            2 => {
                let bits = r.take_u32("cfi bits")?;
                // path_bits is a u64 bitmap, so at most 2^6 = 64 paths.
                if bits == 0 || bits > 6 {
                    return Err(r.bad_value(format!("per-path bits {bits} outside 1..=6")));
                }
                Ok(CfiMode::PerPath { bits })
            }
            tag => Err(r.bad_value(format!("unknown cfi mode tag {tag}"))),
        }
    }
}

impl Snapshot for ControlFlowIndication {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_opt_u64(self.bad_pattern);
        w.put_u64(self.path_bits);
        w.put_bool(self.initialised);
    }
}

impl Restorable for ControlFlowIndication {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            bad_pattern: r.take_opt_u64("cfi bad pattern")?,
            path_bits: r.take_u64("cfi path bits")?,
            initialised: r.take_bool("cfi initialised")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_requires_threshold_correct_predictions() {
        let mut c = SaturatingCounter::new(3, 3, false);
        c.on_correct();
        c.on_correct();
        assert!(!c.is_confident());
        c.on_correct();
        assert!(c.is_confident());
    }

    #[test]
    fn counter_saturates_at_max() {
        let mut c = SaturatingCounter::new(2, 3, false);
        for _ in 0..10 {
            c.on_correct();
        }
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn misprediction_resets_without_hysteresis() {
        let mut c = SaturatingCounter::new(2, 3, false);
        for _ in 0..3 {
            c.on_correct();
        }
        c.on_incorrect();
        assert_eq!(c.value(), 0);
        assert!(!c.is_confident());
    }

    #[test]
    fn hysteresis_keeps_one_strike_at_saturation() {
        let mut c = SaturatingCounter::new(2, 3, true);
        for _ in 0..3 {
            c.on_correct();
        }
        c.on_incorrect();
        assert!(c.is_confident(), "hysteresis retains confidence once");
        c.on_incorrect();
        assert!(!c.is_confident(), "second miss silences the counter");
    }

    #[test]
    fn hysteresis_below_saturation_still_resets() {
        let mut c = SaturatingCounter::new(2, 3, true);
        c.on_correct();
        c.on_correct(); // value 2 < max 3
        c.on_incorrect();
        assert_eq!(c.value(), 0);
    }

    #[test]
    #[should_panic(expected = "threshold must not exceed max")]
    fn bad_threshold_rejected() {
        let _ = SaturatingCounter::new(4, 3, false);
    }

    #[test]
    fn cfi_off_always_allows() {
        let cfi = ControlFlowIndication::new();
        assert!(cfi.allows(CfiMode::Off, 0b1010));
    }

    #[test]
    fn last_misprediction_blocks_matching_pattern_only() {
        let mode = CfiMode::LastMisprediction { bits: 3 };
        let mut cfi = ControlFlowIndication::new();
        cfi.record(mode, 0b101, false);
        assert!(!cfi.allows(mode, 0b101), "same path blocked");
        assert!(!cfi.allows(mode, 0b1101), "only n LSBs compared");
        assert!(cfi.allows(mode, 0b100), "different path allowed");
    }

    #[test]
    fn last_misprediction_cleared_by_correct_access() {
        let mode = CfiMode::LastMisprediction { bits: 2 };
        let mut cfi = ControlFlowIndication::new();
        cfi.record(mode, 0b11, false);
        assert!(!cfi.allows(mode, 0b11));
        cfi.record(mode, 0b11, true);
        assert!(cfi.allows(mode, 0b11));
    }

    #[test]
    fn per_path_tracks_paths_independently() {
        let mode = CfiMode::PerPath { bits: 2 };
        let mut cfi = ControlFlowIndication::new();
        // Fresh entries allow everywhere.
        for p in 0..4 {
            assert!(cfi.allows(mode, p));
        }
        cfi.record(mode, 0b01, false);
        cfi.record(mode, 0b10, true);
        assert!(!cfi.allows(mode, 0b01));
        assert!(cfi.allows(mode, 0b10));
        assert!(cfi.allows(mode, 0b00));
        // Recovery on path 0b01.
        cfi.record(mode, 0b01, true);
        assert!(cfi.allows(mode, 0b01));
    }

    #[test]
    fn per_path_uses_only_selected_bits() {
        let mode = CfiMode::PerPath { bits: 1 };
        let mut cfi = ControlFlowIndication::new();
        cfi.record(mode, 0b111, false); // path 1
        assert!(!cfi.allows(mode, 0b001));
        assert!(cfi.allows(mode, 0b110)); // path 0
    }
}
