//! Control-based address predictors (§3.6) — an ablation, not a component.
//!
//! The paper briefly evaluates predicting addresses with branch-predictor-
//! style structures: a **g-share** scheme indexing a table of addresses
//! with `IP ⊕ GHR`, and a variant indexed by a hash of the recent
//! **call-site path**. Both "give poor results mainly because the loads are
//! not well correlated to all the individual conditional branches"; the
//! path variant does better but not enough to substitute for CAP. This
//! module implements both so the `text-control-based` experiment can
//! reproduce that negative result.

use crate::confidence::SaturatingCounter;
use crate::types::{AddressPredictor, LoadContext, PredSource, Prediction, PredictionDetail};

/// Which control signal indexes the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ControlIndex {
    /// `IP ⊕ GHR` (g-share style).
    #[default]
    GShare,
    /// `IP ⊕ fold(recent call-site IPs)` (path history over call sites).
    CallPath,
}

/// Configuration of a [`ControlBasedPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlBasedConfig {
    /// Table entries (power of two).
    pub entries: usize,
    /// Index source.
    pub index: ControlIndex,
    /// GHR/path bits folded into the index.
    pub history_bits: u32,
    /// Tag bits stored per entry (0 disables tagging).
    pub tag_bits: u32,
}

impl Default for ControlBasedConfig {
    fn default() -> Self {
        Self {
            entries: 4096,
            index: ControlIndex::GShare,
            history_bits: 8,
            tag_bits: 8,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: u64,
    addr: u64,
    conf: SaturatingCounter,
}

/// A g-share / call-path address predictor.
#[derive(Debug, Clone)]
pub struct ControlBasedPredictor {
    config: ControlBasedConfig,
    table: Vec<Option<Entry>>,
}

impl ControlBasedPredictor {
    /// Creates the predictor.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(config: ControlBasedConfig) -> Self {
        assert!(
            config.entries.is_power_of_two(),
            "table entries must be a power of two"
        );
        Self {
            table: vec![None; config.entries],
            config,
        }
    }

    fn hash(&self, ctx: &LoadContext) -> (usize, u64) {
        let hist_mask = (1u64 << self.config.history_bits) - 1;
        let hist = match self.config.index {
            ControlIndex::GShare => ctx.ghr & hist_mask,
            ControlIndex::CallPath => ctx.path & hist_mask,
        };
        let mixed = (ctx.ip >> 2) ^ hist ^ (hist << 7);
        let index = (mixed as usize) & (self.config.entries - 1);
        let tag = if self.config.tag_bits == 0 {
            0
        } else {
            (mixed >> self.config.entries.trailing_zeros())
                & ((1u64 << self.config.tag_bits) - 1)
        };
        (index, tag)
    }
}

impl AddressPredictor for ControlBasedPredictor {
    fn predict(&mut self, ctx: &LoadContext) -> Prediction {
        let (index, tag) = self.hash(ctx);
        match &self.table[index] {
            Some(e) if e.tag == tag => Prediction {
                addr: Some(e.addr),
                speculate: e.conf.is_confident(),
                source: PredSource::ControlBased,
                detail: PredictionDetail::default(),
            },
            _ => Prediction::none(),
        }
    }

    fn update(&mut self, ctx: &LoadContext, actual: u64, pred: &Prediction) {
        let (index, tag) = self.hash(ctx);
        match &mut self.table[index] {
            Some(e) if e.tag == tag => {
                if pred.addr == Some(actual) {
                    e.conf.on_correct();
                } else {
                    e.conf.on_incorrect();
                }
                e.addr = actual;
            }
            slot => {
                *slot = Some(Entry {
                    tag,
                    addr: actual,
                    conf: SaturatingCounter::new(2, 3, false),
                });
            }
        }
    }

    fn name(&self) -> &'static str {
        match self.config.index {
            ControlIndex::GShare => "control-gshare",
            ControlIndex::CallPath => "control-callpath",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(p: &mut ControlBasedPredictor, ip: u64, ghr: u64, path: u64, actual: u64) -> Prediction {
        let ctx = LoadContext {
            path,
            ..LoadContext::new(ip, 0, ghr)
        };
        let pred = p.predict(&ctx);
        p.update(&ctx, actual, &pred);
        pred
    }

    #[test]
    fn gshare_learns_ghr_correlated_addresses() {
        let mut p = ControlBasedPredictor::new(ControlBasedConfig::default());
        // Address depends entirely on the GHR pattern.
        for _ in 0..6 {
            step(&mut p, 0x40, 0b0001, 0, 0x1000);
            step(&mut p, 0x40, 0b0010, 0, 0x2000);
        }
        let pred = p.predict(&LoadContext::new(0x40, 0, 0b0001));
        assert_eq!(pred.addr, Some(0x1000));
        assert!(pred.speculate);
        let pred = p.predict(&LoadContext::new(0x40, 0, 0b0010));
        assert_eq!(pred.addr, Some(0x2000));
    }

    #[test]
    fn gshare_fails_when_address_not_branch_correlated() {
        // The paper's negative result: addresses advance independently of
        // the GHR, so the same GHR context sees different addresses.
        let mut p = ControlBasedPredictor::new(ControlBasedConfig::default());
        let mut spec_correct = 0;
        for i in 0..100u64 {
            let pred = step(&mut p, 0x40, i % 4, 0, 0x1000 + i * 8);
            if pred.speculate && pred.is_correct(0x1000 + i * 8) {
                spec_correct += 1;
            }
        }
        assert_eq!(spec_correct, 0, "uncorrelated addresses must not predict");
    }

    #[test]
    fn call_path_variant_uses_path_not_ghr() {
        let mut p = ControlBasedPredictor::new(ControlBasedConfig {
            index: ControlIndex::CallPath,
            ..ControlBasedConfig::default()
        });
        for _ in 0..6 {
            step(&mut p, 0x40, 0, 0xA, 0x1000);
            step(&mut p, 0x40, 0, 0xB, 0x2000);
        }
        // GHR varies wildly but path selects the entry.
        let ctx = LoadContext {
            path: 0xA,
            ..LoadContext::new(0x40, 0, 0b110101)
        };
        assert_eq!(p.predict(&ctx).addr, Some(0x1000));
    }

    #[test]
    fn tag_mismatch_misses() {
        let mut p = ControlBasedPredictor::new(ControlBasedConfig {
            entries: 16,
            history_bits: 2,
            tag_bits: 8,
            index: ControlIndex::GShare,
        });
        step(&mut p, 0x40, 0, 0, 0x1000);
        // A different IP mapping to the same set with a different tag.
        let pred = p.predict(&LoadContext::new(0x40 + (16 << 2), 0, 0));
        assert_eq!(pred.addr, None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        let _ = ControlBasedPredictor::new(ControlBasedConfig {
            entries: 100,
            ..ControlBasedConfig::default()
        });
    }
}
