//! Shared predictor-facing types: prediction queries, results, and the
//! `AddressPredictor` trait every predictor in this crate implements.

/// Everything a predictor may consult at prediction time.
///
/// In hardware this is what the front-end knows when the load is fetched:
/// its static IP, the immediate offset from the opcode, the current global
/// branch-history register, and (pipelined machines only) how many earlier
/// instances of the same static load are still unresolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadContext {
    /// Static instruction pointer of the load.
    pub ip: u64,
    /// Immediate offset encoded in the load opcode.
    pub offset: i32,
    /// Global branch-history register (LSB = most recent outcome).
    pub ghr: u64,
    /// Folded history of recent call-site IPs (for control-based ablation).
    pub path: u64,
    /// Number of unresolved earlier instances of this static load.
    /// Always `0` under the immediate-update model of Section 4.
    pub pending: u32,
}

impl LoadContext {
    /// Convenience constructor for the immediate-update model.
    #[must_use]
    pub fn new(ip: u64, offset: i32, ghr: u64) -> Self {
        Self {
            ip,
            offset,
            ghr,
            path: 0,
            pending: 0,
        }
    }
}

/// Which component produced the chosen predicted address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PredSource {
    /// No component produced an address.
    #[default]
    None,
    /// Last-address component.
    LastAddress,
    /// (Enhanced) stride component.
    Stride,
    /// Context-based (CAP) component.
    Cap,
    /// Control-based (g-share / path) component.
    ControlBased,
}

/// Per-component diagnostic detail attached to a [`Prediction`].
///
/// The experiment harness uses these to reproduce Figure 8 (selector-state
/// distribution, correct-selection rate) without reaching into predictor
/// internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PredictionDetail {
    /// Address the stride component would predict, if any.
    pub stride_addr: Option<u64>,
    /// Whether the stride component's confidence allowed speculation.
    pub stride_confident: bool,
    /// Address the CAP component would predict, if any.
    pub cap_addr: Option<u64>,
    /// Whether the CAP component's confidence allowed speculation.
    pub cap_confident: bool,
    /// Hybrid selector counter state at prediction time (0–3; 0–1 stride,
    /// 2–3 CAP), if the prediction came from a hybrid.
    pub selector_state: Option<u8>,
    /// The stride component's projection of the *next* invocation's
    /// address (`predicted + stride`). \[Gonz97\] shares the prediction
    /// structures to prefetch this line; the timing core uses it when
    /// prefetching is enabled.
    pub next_invocation: Option<u64>,
}

/// The outcome of one prediction query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Prediction {
    /// The predicted effective address, if any table produced one.
    pub addr: Option<u64>,
    /// Whether confidence is high enough to launch a speculative cache
    /// access (the paper's *prediction rate* counts these).
    pub speculate: bool,
    /// Component that produced `addr`.
    pub source: PredSource,
    /// Diagnostics for the harness.
    pub detail: PredictionDetail,
}

impl Prediction {
    /// A "no prediction" result.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the predicted address matches `actual` (regardless of
    /// whether a speculative access was launched).
    #[must_use]
    pub fn is_correct(&self, actual: u64) -> bool {
        self.addr == Some(actual)
    }
}

/// A load-address predictor.
///
/// The driving loop calls [`predict`](AddressPredictor::predict) when the
/// load enters the front end and [`update`](AddressPredictor::update) when
/// its actual effective address resolves. Under the immediate-update model
/// the calls alternate; under a prediction gap the updates trail by several
/// loads (see [`crate::drive::Session::gap`]).
///
/// `update` must receive the *same* [`LoadContext`] that was passed to
/// `predict` for that dynamic instance, plus the prediction it returned.
pub trait AddressPredictor {
    /// Queries a prediction for one dynamic load. May speculatively advance
    /// internal state (e.g. CAP's speculative history) — such state is
    /// repaired on a mispredicting `update`.
    fn predict(&mut self, ctx: &LoadContext) -> Prediction;

    /// Resolves one dynamic load with its actual effective address.
    fn update(&mut self, ctx: &LoadContext, actual: u64, pred: &Prediction);

    /// Predicts a whole slice of dynamic loads, appending one
    /// [`Prediction`] per context to `out` in order.
    ///
    /// Semantically identical to calling
    /// [`predict`](AddressPredictor::predict) once per context — the
    /// default implementation does exactly that — but a predictor may
    /// override it to amortise per-call dispatch over the slice (the
    /// bit-packed tables in [`crate::packed`] do). Batch callers such as
    /// the prediction service drain their queues through this entry
    /// point.
    fn predict_batch(&mut self, ctxs: &[LoadContext], out: &mut Vec<Prediction>) {
        out.reserve(ctxs.len());
        for ctx in ctxs {
            let pred = self.predict(ctx);
            out.push(pred);
        }
    }

    /// Human-readable predictor name (used in reports).
    fn name(&self) -> &'static str;

    /// Attaches a telemetry sink for component-level counters (see
    /// `metrics::names`). The default implementation ignores it, so
    /// simple predictors stay telemetry-free; the in-tree predictors
    /// override it. Telemetry is *not* snapshotted — re-attach after a
    /// restore.
    fn set_obs(&mut self, obs: cap_obs::Obs) {
        let _ = obs;
    }
}

/// A predictor that can be shared across service infrastructure as a
/// trait object: it predicts, snapshots its state for warm restarts, and
/// moves between threads.
///
/// Every concrete predictor in this crate gets this via the blanket
/// impl; the point of the named trait is the **dyn-compatibility
/// guarantee** — `Box<dyn SharedPredictor>` must keep compiling, so
/// serving layers can hold heterogeneous backends behind one pointer
/// instead of an enum per call site. (`Restorable` is deliberately not a
/// supertrait: decoding is a constructor and constructors are not
/// dyn-compatible; restore paths dispatch on a kind tag instead.)
pub trait SharedPredictor: AddressPredictor + cap_snapshot::Snapshot + Send {}

impl<T: AddressPredictor + cap_snapshot::Snapshot + Send> SharedPredictor for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_none_is_inert() {
        let p = Prediction::none();
        assert_eq!(p.addr, None);
        assert!(!p.speculate);
        assert_eq!(p.source, PredSource::None);
        assert!(!p.is_correct(0));
    }

    #[test]
    fn correctness_compares_address() {
        let p = Prediction {
            addr: Some(0x40),
            speculate: true,
            source: PredSource::Stride,
            detail: PredictionDetail::default(),
        };
        assert!(p.is_correct(0x40));
        assert!(!p.is_correct(0x44));
    }

    #[test]
    fn shared_predictor_is_dyn_compatible() {
        use crate::hybrid::{HybridConfig, HybridPredictor};
        use crate::load_buffer::LoadBufferConfig;
        use crate::stride::{StrideParams, StridePredictor};

        let mut backends: Vec<Box<dyn SharedPredictor>> = vec![
            Box::new(HybridPredictor::new(HybridConfig::paper_default())),
            Box::new(StridePredictor::new(
                LoadBufferConfig::paper_default(),
                StrideParams::paper_default(),
            )),
        ];
        let ctx = LoadContext::new(0x400, 0, 0);
        for b in &mut backends {
            let pred = b.predict(&ctx);
            b.update(&ctx, 0x1000, &pred);
            // The snapshot half is reachable through the same pointer.
            let mut w = cap_snapshot::SectionWriter::new();
            b.write_state(&mut w);
            assert!(!w.is_empty());
        }
    }

    #[test]
    fn context_constructor_defaults() {
        let ctx = LoadContext::new(0x100, 8, 0b1011);
        assert_eq!(ctx.pending, 0);
        assert_eq!(ctx.path, 0);
        assert_eq!(ctx.ghr, 0b1011);
    }
}
