//! The enhanced stride-based address predictor.
//!
//! Classic stride prediction (`A_{N+1} = A_N + (A_N − A_{N−1})`) extended
//! with the paper's enhancements:
//!
//! * **control-flow indications** shared with the CAP confidence machinery
//!   (§3.4),
//! * the **interval** technique — learn the array length and withhold
//!   speculation at the expected wrap, trading mispredictions for
//!   no-predictions (§5.2),
//! * the pipelined **catch-up** mechanism — extrapolate the stride across
//!   pending unresolved instances so a single wrong stride doesn't stall
//!   the predictor (§5.2).

use crate::confidence::{CfiMode, SaturatingCounter};
use crate::load_buffer::{LbEntry, LoadBuffer, LoadBufferConfig, LbEntryProto, StrideState};
use crate::metrics::names;
use crate::types::{AddressPredictor, LoadContext, PredSource, Prediction, PredictionDetail};
use cap_obs::Obs;

/// Tunables of the stride component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideParams {
    /// Confidence threshold for speculation.
    pub conf_threshold: u8,
    /// Confidence saturation value.
    pub conf_max: u8,
    /// Hysteresis bit on the confidence counter.
    pub hysteresis: bool,
    /// Control-flow indication mode.
    pub cfi: CfiMode,
    /// Enable the interval (array-length) mechanism.
    pub interval: bool,
    /// Enable pipelined catch-up extrapolation (`stride × (pending+1)`).
    pub catch_up: bool,
}

impl StrideParams {
    /// The paper's enhanced stride configuration. The threshold of 3 is at
    /// the conservative end of the paper's "typically 2 or 3" — the
    /// enhanced stride predictor trades prediction rate for accuracy.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            conf_threshold: 3,
            conf_max: 3,
            hysteresis: false,
            cfi: CfiMode::LastMisprediction { bits: 4 },
            interval: true,
            catch_up: true,
        }
    }

    /// A plain stride predictor with only saturating-counter confidence —
    /// the related-work baseline (\[Eick93\]-style).
    #[must_use]
    pub fn plain() -> Self {
        Self {
            conf_threshold: 2,
            conf_max: 3,
            hysteresis: false,
            cfi: CfiMode::Off,
            interval: false,
            catch_up: false,
        }
    }

    /// Initial confidence counter for fresh LB entries.
    #[must_use]
    pub fn counter(&self) -> SaturatingCounter {
        SaturatingCounter::new(self.conf_threshold, self.conf_max, self.hysteresis)
    }
}

/// The stride prediction logic, operating on a shared [`LbEntry`].
///
/// Standalone ([`StridePredictor`]) and hybrid predictors both delegate
/// here, which is how the paper's shared-LB hybrid avoids duplicating
/// structures (§3.7).
#[derive(Debug, Clone)]
pub struct StrideComponent {
    params: StrideParams,
    obs: Obs,
}

impl StrideComponent {
    /// Creates the component.
    #[must_use]
    pub fn new(params: StrideParams) -> Self {
        Self {
            params,
            obs: Obs::off(),
        }
    }

    /// The component's parameters.
    #[must_use]
    pub fn params(&self) -> &StrideParams {
        &self.params
    }

    /// Attaches a telemetry sink for the `stride.*` counters.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Computes the component's prediction for `ctx` given its LB entry.
    /// Returns `(predicted address, confident)`.
    #[must_use]
    pub fn predict(&self, entry: &LbEntry, ctx: &LoadContext) -> (Option<u64>, bool) {
        if !entry.stride_seen || entry.stride_state == StrideState::Init {
            return (None, false);
        }
        let steps = if self.params.catch_up {
            i64::from(ctx.pending) + 1
        } else {
            1
        };
        let addr = entry
            .last_addr
            .wrapping_add((entry.stride.wrapping_mul(steps)) as u64);
        let confident = entry.stride_state == StrideState::Steady
            && entry.stride_conf.is_confident()
            && entry.stride_cfi.allows(self.params.cfi, ctx.ghr)
            && !(self.params.interval && entry.interval.exhausted(ctx.pending));
        (Some(addr), confident)
    }

    /// Applies the resolution of one dynamic load to the entry.
    ///
    /// `component_pred` is what *this component* predicted for the instance
    /// (from [`PredictionDetail::stride_addr`]).
    ///
    /// Control-flow indications record a *bad* pattern only when a
    /// speculative access used this component's address and mispredicted
    /// (§3.4) — unspeculated recovery mispredictions must not overwrite the
    /// remembered bad path. Correct verifications always feed the CFI, so a
    /// path can recover once the load turns predictable there (predictions
    /// are always verified on an LB hit).
    pub fn update(
        &self,
        entry: &mut LbEntry,
        ctx: &LoadContext,
        actual: u64,
        component_pred: Option<u64>,
        speculated: bool,
    ) {
        // Confidence bookkeeping against this component's own prediction.
        if let Some(p) = component_pred {
            let correct = p == actual;
            let was_confident = entry.stride_conf.is_confident();
            if correct {
                entry.stride_conf.on_correct();
                if self.params.interval {
                    entry.interval.on_correct();
                }
            } else {
                entry.stride_conf.on_incorrect();
                if self.params.interval {
                    entry.interval.on_incorrect();
                }
            }
            if self.obs.enabled() && entry.stride_conf.is_confident() != was_confident {
                self.obs.incr(if was_confident {
                    names::STRIDE_CONF_DEMOTE
                } else {
                    names::STRIDE_CONF_PROMOTE
                });
            }
            if correct {
                entry.stride_cfi.record(self.params.cfi, ctx.ghr, true);
            } else if speculated {
                entry.stride_cfi.record(self.params.cfi, ctx.ghr, false);
            }
        }
        // Stride state machine.
        if entry.stride_seen {
            let was_steady = entry.stride_state == StrideState::Steady;
            let delta = actual.wrapping_sub(entry.last_addr) as i64;
            match entry.stride_state {
                StrideState::Init => {
                    entry.stride = delta;
                    entry.stride_state = StrideState::Transient;
                }
                StrideState::Transient | StrideState::Steady => {
                    if delta == entry.stride {
                        entry.stride_state = StrideState::Steady;
                    } else {
                        entry.stride = delta;
                        entry.stride_state = StrideState::Transient;
                    }
                }
            }
            if self.obs.enabled() && (entry.stride_state == StrideState::Steady) != was_steady {
                self.obs.incr(if was_steady {
                    names::STRIDE_STEADY_EXIT
                } else {
                    names::STRIDE_STEADY_ENTER
                });
            }
        }
        entry.last_addr = actual;
        entry.stride_seen = true;
    }
}

/// A standalone enhanced stride predictor (LB + stride component).
#[derive(Debug, Clone)]
pub struct StridePredictor {
    lb: LoadBuffer,
    component: StrideComponent,
}

impl StridePredictor {
    /// Creates the predictor.
    ///
    /// # Examples
    ///
    /// ```
    /// use cap_predictor::stride::{StrideParams, StridePredictor};
    /// use cap_predictor::load_buffer::LoadBufferConfig;
    /// use cap_predictor::types::{AddressPredictor, LoadContext};
    ///
    /// let mut p = StridePredictor::new(LoadBufferConfig::paper_default(),
    ///                                  StrideParams::paper_default());
    /// // Train on a stride-8 sequence.
    /// for i in 0..8u64 {
    ///     let ctx = LoadContext::new(0x400, 0, 0);
    ///     let pred = p.predict(&ctx);
    ///     p.update(&ctx, 0x1000 + i * 8, &pred);
    /// }
    /// let pred = p.predict(&LoadContext::new(0x400, 0, 0));
    /// assert_eq!(pred.addr, Some(0x1000 + 8 * 8));
    /// assert!(pred.speculate);
    /// ```
    #[must_use]
    pub fn new(lb: LoadBufferConfig, params: StrideParams) -> Self {
        let proto = LbEntryProto {
            cap_conf: params.counter(),
            stride_conf: params.counter(),
        };
        Self {
            lb: LoadBuffer::new(lb, proto),
            component: StrideComponent::new(params),
        }
    }

    /// Read access to the underlying Load Buffer (diagnostics).
    #[must_use]
    pub fn load_buffer(&self) -> &LoadBuffer {
        &self.lb
    }

    /// Mutable access to the Load Buffer (fault injection / chaos testing).
    pub fn load_buffer_mut(&mut self) -> &mut LoadBuffer {
        &mut self.lb
    }
}

impl AddressPredictor for StridePredictor {
    fn predict(&mut self, ctx: &LoadContext) -> Prediction {
        let Some(entry) = self.lb.lookup(ctx.ip) else {
            self.component.obs.incr(names::LB_MISS);
            return Prediction::none();
        };
        self.component.obs.incr(names::LB_HIT);
        let (addr, confident) = self.component.predict(entry, ctx);
        let stride = entry.stride;
        Prediction {
            addr,
            speculate: addr.is_some() && confident,
            source: if addr.is_some() {
                PredSource::Stride
            } else {
                PredSource::None
            },
            detail: PredictionDetail {
                stride_addr: addr,
                stride_confident: confident,
                next_invocation: addr.map(|a| a.wrapping_add(stride as u64)),
                ..PredictionDetail::default()
            },
        }
    }

    fn update(&mut self, ctx: &LoadContext, actual: u64, pred: &Prediction) {
        let (entry, fresh) = self.lb.lookup_or_insert(ctx.ip);
        if fresh {
            self.component.obs.incr(names::LB_ALLOC);
        }
        self.component.update(
            entry,
            ctx,
            actual,
            pred.detail.stride_addr,
            pred.speculate,
        );
    }

    fn name(&self) -> &'static str {
        "enhanced-stride"
    }

    fn set_obs(&mut self, obs: Obs) {
        self.component.set_obs(obs);
    }
}

use cap_snapshot::{Restorable, SectionReader, SectionWriter, Snapshot, SnapshotError};

impl Snapshot for StrideParams {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_u8(self.conf_threshold);
        w.put_u8(self.conf_max);
        w.put_bool(self.hysteresis);
        self.cfi.write_state(w);
        w.put_bool(self.interval);
        w.put_bool(self.catch_up);
    }
}

impl Restorable for StrideParams {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let params = Self {
            conf_threshold: r.take_u8("stride conf threshold")?,
            conf_max: r.take_u8("stride conf max")?,
            hysteresis: r.take_bool("stride hysteresis")?,
            cfi: CfiMode::read_state(r)?,
            interval: r.take_bool("stride interval")?,
            catch_up: r.take_bool("stride catch up")?,
        };
        if params.conf_threshold == 0 || params.conf_threshold > params.conf_max {
            return Err(r.bad_value(format!(
                "stride conf threshold {} outside 1..=max ({})",
                params.conf_threshold, params.conf_max
            )));
        }
        Ok(params)
    }
}

impl Snapshot for StridePredictor {
    fn write_state(&self, w: &mut SectionWriter) {
        self.component.params.write_state(w);
        self.lb.write_state(w);
    }
}

impl Restorable for StridePredictor {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let params = StrideParams::read_state(r)?;
        Ok(Self {
            lb: LoadBuffer::read_state(r)?,
            component: StrideComponent::new(params),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> StridePredictor {
        StridePredictor::new(
            LoadBufferConfig {
                entries: 64,
                assoc: 2,
            },
            StrideParams::paper_default(),
        )
    }

    fn step(p: &mut StridePredictor, ip: u64, actual: u64) -> Prediction {
        let ctx = LoadContext::new(ip, 0, 0);
        let pred = p.predict(&ctx);
        p.update(&ctx, actual, &pred);
        pred
    }

    #[test]
    fn learns_constant_stride() {
        let mut p = predictor();
        let mut last = Prediction::none();
        for i in 0..10u64 {
            last = step(&mut p, 0x40, 0x1000 + i * 16);
        }
        assert_eq!(last.addr, Some(0x1000 + 9 * 16));
        assert!(last.speculate);
    }

    #[test]
    fn constant_address_is_zero_stride() {
        let mut p = predictor();
        for _ in 0..5 {
            step(&mut p, 0x40, 0xAAAA);
        }
        let pred = p.predict(&LoadContext::new(0x40, 0, 0));
        assert_eq!(pred.addr, Some(0xAAAA));
        assert!(pred.speculate, "last-address behaviour is stride 0");
    }

    #[test]
    fn stride_change_drops_confidence() {
        let mut p = predictor();
        for i in 0..6u64 {
            step(&mut p, 0x40, 0x1000 + i * 8);
        }
        // Break the stride.
        step(&mut p, 0x40, 0x9000);
        let pred = p.predict(&LoadContext::new(0x40, 0, 0));
        assert!(!pred.speculate, "misprediction must silence speculation");
    }

    #[test]
    fn negative_stride_supported() {
        let mut p = predictor();
        for i in 0..6u64 {
            step(&mut p, 0x40, 0x9000 - i * 4);
        }
        let pred = p.predict(&LoadContext::new(0x40, 0, 0));
        assert_eq!(pred.addr, Some(0x9000 - 6 * 4));
    }

    #[test]
    fn interval_withholds_speculation_at_wrap() {
        let mut p = predictor();
        // Two full sweeps of an 8-element array teach the interval.
        for _sweep in 0..3 {
            for i in 0..8u64 {
                step(&mut p, 0x40, 0x2000 + i * 4);
            }
        }
        // Mid-sweep: confident.
        for i in 0..8u64 {
            let pred = step(&mut p, 0x40, 0x2000 + i * 4);
            if i >= 5 {
                assert!(pred.speculate, "mid-sweep element {i} should speculate");
            }
        }
        // The 8th prediction is the wrap: interval must withhold it.
        let pred = p.predict(&LoadContext::new(0x40, 0, 0));
        assert!(
            !pred.speculate,
            "interval mechanism must withhold the wrap prediction"
        );
    }

    #[test]
    fn catch_up_extrapolates_across_pending() {
        let mut p = predictor();
        for i in 0..6u64 {
            step(&mut p, 0x40, 0x1000 + i * 8);
        }
        // 3 unresolved instances in flight: predict instance N+4.
        let ctx = LoadContext {
            pending: 3,
            ..LoadContext::new(0x40, 0, 0)
        };
        let pred = p.predict(&ctx);
        assert_eq!(pred.addr, Some(0x1000 + 5 * 8 + 4 * 8));
    }

    #[test]
    fn no_catch_up_predicts_stale_next() {
        let mut p = StridePredictor::new(
            LoadBufferConfig {
                entries: 64,
                assoc: 2,
            },
            StrideParams {
                catch_up: false,
                ..StrideParams::paper_default()
            },
        );
        for i in 0..6u64 {
            step(&mut p, 0x40, 0x1000 + i * 8);
        }
        let ctx = LoadContext {
            pending: 3,
            ..LoadContext::new(0x40, 0, 0)
        };
        let pred = p.predict(&ctx);
        assert_eq!(pred.addr, Some(0x1000 + 6 * 8), "no extrapolation");
    }

    #[test]
    fn cfi_reduces_wrong_speculative_accesses_on_bad_paths() {
        // A load that is constant on path 0 of the GHR but jumps to a
        // random address on path 1. Control-flow indications must cut the
        // number of wrong speculative accesses relative to CFI-off,
        // because the bad path gets remembered and vetoed.
        use cap_rand::{Rng, SeedableRng};
        let run = |cfi: CfiMode| {
            let mut rng = cap_rand::rngs::StdRng::seed_from_u64(7);
            let mut p = StridePredictor::new(
                LoadBufferConfig {
                    entries: 64,
                    assoc: 2,
                },
                StrideParams {
                    cfi,
                    interval: false,
                    ..StrideParams::paper_default()
                },
            );
            let mut wrong_spec = 0;
            for i in 0..2000u64 {
                // Mostly path 0 (ghr LSB 0), sometimes path 1.
                let bad_path = i % 7 == 6;
                let ghr = u64::from(bad_path);
                let actual = if bad_path {
                    rng.gen::<u32>() as u64 & !3
                } else {
                    0xAAA0
                };
                let ctx = LoadContext::new(0x40, 0, ghr);
                let pred = p.predict(&ctx);
                if pred.speculate && !pred.is_correct(actual) {
                    wrong_spec += 1;
                }
                p.update(&ctx, actual, &pred);
            }
            wrong_spec
        };
        let without = run(CfiMode::Off);
        let with = run(CfiMode::LastMisprediction { bits: 1 });
        assert!(
            with < without,
            "CFI must reduce wrong speculative accesses: {with} vs {without}"
        );
        assert!(without > 0, "the workload must actually provoke mispredictions");
    }

    #[test]
    fn per_path_cfi_also_reduces_wrong_speculation() {
        use cap_rand::{Rng, SeedableRng};
        let run = |cfi: CfiMode| {
            let mut rng = cap_rand::rngs::StdRng::seed_from_u64(9);
            let mut p = StridePredictor::new(
                LoadBufferConfig {
                    entries: 64,
                    assoc: 2,
                },
                StrideParams {
                    cfi,
                    interval: false,
                    ..StrideParams::paper_default()
                },
            );
            let mut wrong_spec = 0;
            for i in 0..2000u64 {
                let bad_path = i % 9 == 8;
                let ghr = if bad_path { 0b11 } else { i % 2 };
                let actual = if bad_path {
                    rng.gen::<u32>() as u64 & !3
                } else {
                    0xBBB0
                };
                let ctx = LoadContext::new(0x40, 0, ghr);
                let pred = p.predict(&ctx);
                if pred.speculate && !pred.is_correct(actual) {
                    wrong_spec += 1;
                }
                p.update(&ctx, actual, &pred);
            }
            wrong_spec
        };
        let without = run(CfiMode::Off);
        let with = run(CfiMode::PerPath { bits: 2 });
        assert!(
            with < without,
            "per-path CFI must reduce wrong speculative accesses: {with} vs {without}"
        );
    }

    #[test]
    fn unknown_ip_yields_no_prediction() {
        let mut p = predictor();
        let pred = p.predict(&LoadContext::new(0x9999, 0, 0));
        assert_eq!(pred, Prediction::none());
    }

    #[test]
    fn first_occurrence_never_predicts() {
        let mut p = predictor();
        step(&mut p, 0x40, 0x1000);
        let pred = p.predict(&LoadContext::new(0x40, 0, 0));
        assert_eq!(pred.addr, None, "single observation gives no stride");
    }
}
