//! Profile feedback / software assist — the paper's §6 future-work item.
//!
//! > "Profile feedback/Software assist: to ease the hardware work by
//! > letting the compiler/profiler classify loads according to the
//! > expected address pattern: last value, stride, context based, unknown,
//! > etc… This reduces warm-up time, helps reducing predictor size, and
//! > eliminates prediction table pollution."
//!
//! [`Profiler`] performs the offline pass (one observation run over a
//! trace, classifying each static load), and [`ProfileGuidedPredictor`]
//! consumes the classification: constant/stride loads use only the stride
//! component, context loads use only CAP, and *unknown* loads touch no
//! table at all — which is precisely how profiling "eliminates prediction
//! table pollution" and lets smaller tables match bigger unassisted ones.

use crate::cap::{CapComponent, CapParams};
use crate::link_table::LinkTableConfig;
use crate::load_buffer::{LoadBuffer, LoadBufferConfig, LbEntryProto};
use crate::stride::{StrideComponent, StrideParams};
use crate::types::{AddressPredictor, LoadContext, PredSource, Prediction, PredictionDetail};
use cap_trace::{Trace, TraceEvent};
use std::collections::HashMap;

/// The address-pattern classes of §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadClass {
    /// The address is (almost) always the same — last-value predictable.
    Constant,
    /// Consecutive addresses differ by a recurring delta.
    Stride,
    /// Addresses recur (short working set) without stride structure.
    Context,
    /// No exploitable structure observed.
    Unknown,
}

#[derive(Debug, Clone, Default)]
struct ProfileEntry {
    last_addr: u64,
    last_delta: Option<i64>,
    transitions: u64,
    constant: u64,
    stride: u64,
    recurring: u64,
    seen: Vec<u64>, // bounded recent-address sample
}

impl ProfileEntry {
    const SAMPLE: usize = 64;

    fn observe(&mut self, addr: u64) {
        if self.transitions == 0 && self.last_addr == 0 && self.seen.is_empty() {
            self.last_addr = addr;
            self.seen.push(addr);
            return;
        }
        let delta = addr.wrapping_sub(self.last_addr) as i64;
        self.transitions += 1;
        if delta == 0 {
            self.constant += 1;
        }
        if self.last_delta == Some(delta) {
            self.stride += 1;
        }
        if self.seen.contains(&addr) {
            self.recurring += 1;
        } else if self.seen.len() < Self::SAMPLE {
            self.seen.push(addr);
        }
        self.last_delta = Some(delta);
        self.last_addr = addr;
    }

    fn classify(&self) -> LoadClass {
        if self.transitions < 4 {
            return LoadClass::Unknown;
        }
        let frac = |n: u64| n as f64 / self.transitions as f64;
        if frac(self.constant) > 0.75 {
            LoadClass::Constant
        } else if frac(self.stride) > 0.75 {
            LoadClass::Stride
        } else if frac(self.recurring) > 0.5 {
            LoadClass::Context
        } else {
            LoadClass::Unknown
        }
    }
}

/// Per-static-load classification produced by a profiling run.
#[derive(Debug, Clone, Default)]
pub struct LoadClassMap {
    classes: HashMap<u64, LoadClass>,
}

impl LoadClassMap {
    /// The class of a static load (`Unknown` if never profiled).
    #[must_use]
    pub fn class_of(&self, ip: u64) -> LoadClass {
        self.classes.get(&ip).copied().unwrap_or(LoadClass::Unknown)
    }

    /// Number of classified static loads.
    #[must_use]
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when no loads were profiled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Number of loads in a given class.
    #[must_use]
    pub fn count(&self, class: LoadClass) -> usize {
        self.classes.values().filter(|&&c| c == class).count()
    }
}

/// The offline profiling pass.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    per_ip: HashMap<u64, ProfileEntry>,
}

impl Profiler {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one dynamic load.
    pub fn observe(&mut self, ip: u64, addr: u64) {
        self.per_ip.entry(ip).or_default().observe(addr);
    }

    /// Finalises the per-load classification.
    #[must_use]
    pub fn classify(&self) -> LoadClassMap {
        LoadClassMap {
            classes: self
                .per_ip
                .iter()
                .map(|(&ip, e)| (ip, e.classify()))
                .collect(),
        }
    }

    /// Convenience: profiles a whole trace.
    ///
    /// # Examples
    ///
    /// ```
    /// use cap_predictor::profile::{LoadClass, Profiler};
    /// use cap_trace::suites::Suite;
    ///
    /// let trace = Suite::Int.traces()[0].generate(5_000);
    /// let classes = Profiler::profile_trace(&trace);
    /// assert!(classes.count(LoadClass::Constant) > 0);
    /// ```
    #[must_use]
    pub fn profile_trace(trace: &Trace) -> LoadClassMap {
        let mut p = Self::new();
        for event in trace.iter() {
            if let TraceEvent::Load(l) = event {
                p.observe(l.ip, l.addr);
            }
        }
        p.classify()
    }
}

/// A hybrid predictor steered by a profiling pass: each static load only
/// exercises the component its class calls for, and unknown loads touch no
/// table at all.
#[derive(Debug)]
pub struct ProfileGuidedPredictor {
    classes: LoadClassMap,
    lb: LoadBuffer,
    cap: CapComponent,
    stride: StrideComponent,
}

impl ProfileGuidedPredictor {
    /// Creates the predictor from a classification and the usual table
    /// geometry.
    #[must_use]
    pub fn new(
        classes: LoadClassMap,
        lb: LoadBufferConfig,
        lt: LinkTableConfig,
        cap: CapParams,
        stride: StrideParams,
    ) -> Self {
        let proto = LbEntryProto {
            cap_conf: cap.counter(),
            stride_conf: stride.counter(),
        };
        Self {
            classes,
            lb: LoadBuffer::new(lb, proto),
            cap: CapComponent::new(cap, lt),
            stride: StrideComponent::new(stride),
        }
    }

    /// The classification in use.
    #[must_use]
    pub fn classes(&self) -> &LoadClassMap {
        &self.classes
    }
}

impl AddressPredictor for ProfileGuidedPredictor {
    fn predict(&mut self, ctx: &LoadContext) -> Prediction {
        let class = self.classes.class_of(ctx.ip);
        if class == LoadClass::Unknown {
            return Prediction::none();
        }
        let Some(entry) = self.lb.lookup(ctx.ip) else {
            return Prediction::none();
        };
        match class {
            LoadClass::Constant | LoadClass::Stride => {
                let (addr, confident) = self.stride.predict(entry, ctx);
                Prediction {
                    addr,
                    speculate: addr.is_some() && confident,
                    source: if addr.is_some() {
                        PredSource::Stride
                    } else {
                        PredSource::None
                    },
                    detail: PredictionDetail {
                        stride_addr: addr,
                        stride_confident: confident,
                        ..PredictionDetail::default()
                    },
                }
            }
            LoadClass::Context => {
                let (addr, confident) = self.cap.predict(entry, ctx);
                Prediction {
                    addr,
                    speculate: addr.is_some() && confident,
                    source: if addr.is_some() {
                        PredSource::Cap
                    } else {
                        PredSource::None
                    },
                    detail: PredictionDetail {
                        cap_addr: addr,
                        cap_confident: confident,
                        ..PredictionDetail::default()
                    },
                }
            }
            LoadClass::Unknown => unreachable!("handled above"),
        }
    }

    fn update(&mut self, ctx: &LoadContext, actual: u64, pred: &Prediction) {
        let class = self.classes.class_of(ctx.ip);
        if class == LoadClass::Unknown {
            return; // no allocation, no pollution
        }
        let (entry, _fresh) = self.lb.lookup_or_insert(ctx.ip);
        match class {
            LoadClass::Constant | LoadClass::Stride => {
                self.stride
                    .update(entry, ctx, actual, pred.detail.stride_addr, pred.speculate);
            }
            LoadClass::Context => {
                self.cap
                    .update(entry, ctx, actual, pred.detail.cap_addr, pred.speculate, true);
            }
            LoadClass::Unknown => unreachable!("handled above"),
        }
    }

    fn name(&self) -> &'static str {
        "profile-guided"
    }
}

impl ProfileGuidedPredictor {
    /// Number of live Load Buffer entries (diagnostics).
    #[must_use]
    pub fn lb_occupancy(&self) -> usize {
        self.lb.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_trace::builder::TraceBuilder;

    #[test]
    fn classifier_separates_the_four_classes() {
        let mut b = TraceBuilder::new();
        use cap_rand::{Rng, SeedableRng};
        let mut rng = cap_rand::rngs::StdRng::seed_from_u64(1);
        let pattern = [0x100u64, 0x9A0, 0x430, 0x7C8];
        for i in 0..400u64 {
            b.load(0x10, 0xAAAA, 0); // constant
            b.load(0x20, 0x1000 + i * 8, 0); // stride
            b.load(0x30, pattern[(i % 4) as usize], 0); // context
            b.load(0x40, (rng.gen::<u32>() as u64) & !3, 0); // random
        }
        let classes = Profiler::profile_trace(&b.finish());
        assert_eq!(classes.class_of(0x10), LoadClass::Constant);
        assert_eq!(classes.class_of(0x20), LoadClass::Stride);
        assert_eq!(classes.class_of(0x30), LoadClass::Context);
        assert_eq!(classes.class_of(0x40), LoadClass::Unknown);
        assert_eq!(classes.class_of(0x999), LoadClass::Unknown, "unseen ip");
    }

    #[test]
    fn constant_stride_loads_count_as_stride_class_for_zero_delta() {
        // A constant address is a stride of 0; the classifier must prefer
        // the Constant label (last-value predictable).
        let mut b = TraceBuilder::new();
        for _ in 0..50 {
            b.load(0x10, 0x500, 0);
        }
        let classes = Profiler::profile_trace(&b.finish());
        assert_eq!(classes.class_of(0x10), LoadClass::Constant);
    }

    #[test]
    fn too_few_observations_stay_unknown() {
        let mut b = TraceBuilder::new();
        b.load(0x10, 0x500, 0);
        b.load(0x10, 0x500, 0);
        let classes = Profiler::profile_trace(&b.finish());
        assert_eq!(classes.class_of(0x10), LoadClass::Unknown);
    }

    fn guided_for(trace: &Trace) -> ProfileGuidedPredictor {
        ProfileGuidedPredictor::new(
            Profiler::profile_trace(trace),
            LoadBufferConfig {
                entries: 256,
                assoc: 2,
            },
            LinkTableConfig {
                entries: 1024,
                assoc: 2,
                ..LinkTableConfig::paper_default()
            },
            {
                let mut p = CapParams::paper_default();
                p.history.index_bits = 10;
                p
            },
            StrideParams::paper_default(),
        )
    }

    #[test]
    fn guided_predictor_covers_classified_loads() {
        let mut b = TraceBuilder::new();
        let pattern = [0x100u64, 0x9A0, 0x430, 0x7C8];
        for i in 0..600u64 {
            b.load(0x10, 0xAAAA, 0);
            b.load(0x20, 0x1000 + (i % 64) * 8, 0);
            b.load(0x30, pattern[(i % 4) as usize], 0);
        }
        let trace = b.finish();
        let mut p = guided_for(&trace);
        let stats = crate::drive::Session::new(&mut p).run(&trace);
        assert!(
            stats.prediction_rate() > 0.75,
            "classified loads must be covered: {:.3}",
            stats.prediction_rate()
        );
        assert!(stats.accuracy() > 0.95);
    }

    #[test]
    fn unknown_loads_never_touch_tables() {
        use cap_rand::{Rng, SeedableRng};
        let mut rng = cap_rand::rngs::StdRng::seed_from_u64(3);
        let mut b = TraceBuilder::new();
        for _ in 0..500 {
            b.load(0x40, (rng.gen::<u32>() as u64) & !3, 0);
        }
        let trace = b.finish();
        let mut p = guided_for(&trace);
        let stats = crate::drive::Session::new(&mut p).run(&trace);
        assert_eq!(stats.predictions, 0, "unknown loads make no predictions");
        assert_eq!(p.lb_occupancy(), 0, "unknown loads allocate nothing");
    }
}

