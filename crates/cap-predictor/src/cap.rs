//! The correlated Context-based Address Predictor (CAP) — §3.
//!
//! Two levels: the per-static-load **Load Buffer** holds a history of
//! recent *base* addresses; the folded history indexes the **Link Table**,
//! which yields the predicted next base address. The predicted effective
//! address is the link plus the load's recorded offset LSBs (Figure 3).
//!
//! **Global correlation** (§3.3): storing base addresses (`effective −
//! immediate offset`) instead of effective addresses lets every load that
//! walks the same recursive data structure share LT links — one update to
//! any field benefits them all. Only the low
//! [`CapParams::offset_lsb_bits`] bits of the offset are subtracted; the
//! offset MSBs stay inside the base address, which prevents LT aliasing
//! between different arrays/hash tables that share index sequences (and
//! keeps the post-LT adder narrow).
//!
//! **Pipelined operation** (§5.2): with `speculative_history` enabled the
//! predictor rolls a speculative copy of the history forward at predict
//! time so back-to-back instances of the same load chain predictions;
//! a mispredicting resolution repairs the speculative history from the
//! architectural one, which also naturally stops speculation until the
//! pending wrong-path instances drain (CAP has no catch-up mechanism).

use crate::confidence::{CfiMode, SaturatingCounter};
use crate::history::HistorySpec;
use crate::link_table::{LinkTable, LinkTableConfig, LtWrite};
use crate::load_buffer::{LbEntry, LoadBuffer, LoadBufferConfig, LbEntryProto};
use crate::metrics::names;
use crate::types::{AddressPredictor, LoadContext, PredSource, Prediction, PredictionDetail};
use cap_obs::Obs;

/// Tunables of the CAP component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapParams {
    /// History recording/compression parameters.
    pub history: HistorySpec,
    /// Record base addresses (global correlation) instead of effective
    /// addresses.
    pub global_correlation: bool,
    /// How many offset LSBs are subtracted out of the base address and
    /// recorded in the LB (8 in the paper).
    pub offset_lsb_bits: u32,
    /// Confidence threshold for speculation.
    pub conf_threshold: u8,
    /// Confidence saturation value.
    pub conf_max: u8,
    /// Hysteresis bit on the confidence counter.
    pub hysteresis: bool,
    /// Control-flow indication mode.
    pub cfi: CfiMode,
    /// When `false`, every prediction launches a speculative access —
    /// Figure 9 isolates global correlation this way.
    pub confidence_enabled: bool,
    /// Roll a speculative history at predict time (pipelined mode, §5.2).
    pub speculative_history: bool,
}

impl CapParams {
    /// The paper's baseline CAP configuration (immediate update).
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            history: HistorySpec::paper_default(),
            global_correlation: true,
            offset_lsb_bits: 8,
            conf_threshold: 2,
            conf_max: 3,
            hysteresis: false,
            cfi: CfiMode::LastMisprediction { bits: 4 },
            confidence_enabled: true,
            speculative_history: false,
        }
    }

    /// Initial confidence counter for fresh LB entries.
    #[must_use]
    pub fn counter(&self) -> SaturatingCounter {
        SaturatingCounter::new(self.conf_threshold, self.conf_max, self.hysteresis)
    }

    /// The offset LSBs recorded in the LB for a load with this immediate.
    #[must_use]
    pub fn offset_lsb(&self, offset: i32) -> u32 {
        if !self.global_correlation || self.offset_lsb_bits == 0 {
            return 0;
        }
        (offset as u32) & ((1u32 << self.offset_lsb_bits) - 1)
    }

    /// Base address of an effective address under this configuration.
    #[must_use]
    pub fn base_of(&self, addr: u64, offset: i32) -> u64 {
        addr.wrapping_sub(u64::from(self.offset_lsb(offset)))
    }
}

/// The CAP prediction logic (LT + per-entry fields), operating on a shared
/// [`LbEntry`]. Standalone ([`CapPredictor`]) and hybrid predictors both
/// delegate here.
#[derive(Debug, Clone)]
pub struct CapComponent {
    params: CapParams,
    lt: LinkTable,
    obs: Obs,
}

impl CapComponent {
    /// Creates the component.
    ///
    /// # Panics
    ///
    /// Panics if the history spec is invalid or `lt`'s index width doesn't
    /// cover the configured LT.
    #[must_use]
    pub fn new(params: CapParams, lt: LinkTableConfig) -> Self {
        params.history.validate();
        assert!(
            (1usize << params.history.index_bits) >= lt.sets(),
            "history index bits must cover the LT sets"
        );
        Self {
            params,
            lt: LinkTable::new(lt),
            obs: Obs::off(),
        }
    }

    /// The component's parameters.
    #[must_use]
    pub fn params(&self) -> &CapParams {
        &self.params
    }

    /// Attaches a telemetry sink for the `cap.*` counters.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Read access to the Link Table (diagnostics).
    #[must_use]
    pub fn link_table(&self) -> &LinkTable {
        &self.lt
    }

    /// Mutable access to the Link Table (fault injection / chaos testing).
    pub fn link_table_mut(&mut self) -> &mut LinkTable {
        &mut self.lt
    }

    /// Computes the component's prediction for `ctx` given its LB entry.
    /// Returns `(predicted effective address, confident)`.
    ///
    /// With speculative history enabled, a successful lookup also rolls the
    /// entry's speculative history forward by the predicted base.
    pub fn predict(&mut self, entry: &mut LbEntry, ctx: &LoadContext) -> (Option<u64>, bool) {
        let spec = &self.params.history;
        let hist = if self.params.speculative_history {
            &entry.spec_history
        } else {
            &entry.history
        };
        if !hist.is_warm(spec) {
            return (None, false);
        }
        let folded = hist.fold(spec);
        let Some(link) = self.lt.lookup(&folded) else {
            self.obs.incr(names::CAP_LT_MISS);
            return (None, false);
        };
        self.obs.incr(names::CAP_LT_HIT);
        let addr = link.wrapping_add(u64::from(entry.offset_lsb));
        let confident = !self.params.confidence_enabled
            || (entry.cap_conf.is_confident()
                && entry.cap_cfi.allows(self.params.cfi, ctx.ghr));
        if self.params.speculative_history {
            entry.spec_history.push(link, spec);
        }
        (Some(addr), confident)
    }

    /// Predicts the addresses of the next `n` instances of this static
    /// load by chaining Link Table lookups — the §5.4 mechanism for
    /// "performing several predictions of the same static instruction in
    /// the same cycle", analogous in concept to the two-block-ahead branch
    /// predictor \[Sezn96\]. The chain stops early at the first LT miss
    /// (the context beyond it is unknown).
    ///
    /// Does not disturb the entry's speculative state: the walk uses a
    /// scratch copy of the history.
    #[must_use]
    pub(crate) fn predict_ahead(&self, entry: &LbEntry, n: usize) -> Vec<u64> {
        let spec = &self.params.history;
        let mut hist = entry.history.clone();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            if !hist.is_warm(spec) {
                break;
            }
            let folded = hist.fold(spec);
            let Some(link) = self.lt.lookup(&folded) else {
                break;
            };
            out.push(link.wrapping_add(u64::from(entry.offset_lsb)));
            hist.push(link, spec);
        }
        out
    }

    /// Applies the resolution of one dynamic load.
    ///
    /// `component_pred` is what *this component* predicted for the instance
    /// (from [`PredictionDetail::cap_addr`]); `speculated` whether a
    /// speculative access was launched with it; `update_lt` implements the
    /// hybrid's LT update policies (§4.3) — standalone CAP passes `true`.
    pub fn update(
        &mut self,
        entry: &mut LbEntry,
        ctx: &LoadContext,
        actual: u64,
        component_pred: Option<u64>,
        speculated: bool,
        update_lt: bool,
    ) {
        let spec = self.params.history;
        entry.offset_lsb = self.params.offset_lsb(ctx.offset);
        let actual_base = self.params.base_of(actual, ctx.offset);

        // Confidence bookkeeping. Bad CFI patterns are recorded only on
        // speculated mispredictions (§3.4); correct verifications always
        // feed the CFI so blocked paths can recover.
        if let Some(p) = component_pred {
            let correct = p == actual;
            let was_confident = entry.cap_conf.is_confident();
            if correct {
                entry.cap_conf.on_correct();
            } else {
                entry.cap_conf.on_incorrect();
            }
            if self.obs.enabled() && entry.cap_conf.is_confident() != was_confident {
                self.obs.incr(if was_confident {
                    names::CAP_CONF_DEMOTE
                } else {
                    names::CAP_CONF_PROMOTE
                });
            }
            if correct {
                entry.cap_cfi.record(self.params.cfi, ctx.ghr, true);
            } else if speculated {
                entry.cap_cfi.record(self.params.cfi, ctx.ghr, false);
            }
        }

        // Link the architectural context (the history *before* this
        // instance) to the address that followed it.
        if update_lt && entry.history.is_warm(&spec) {
            let folded = entry.history.fold(&spec);
            let outcome = self.lt.update_outcome(&folded, actual_base);
            if self.obs.enabled() {
                self.obs.incr(match outcome {
                    LtWrite::Fill => names::CAP_LT_FILL,
                    LtWrite::Refresh => names::CAP_LT_REFRESH,
                    LtWrite::Retrain => names::CAP_LT_RETRAIN,
                    LtWrite::Replace => names::CAP_LT_REPLACE,
                    LtWrite::Deferred => names::CAP_LT_DEFERRED,
                });
            }
        }

        // Advance the architectural history.
        entry.history.push(actual_base, &spec);

        // Repair speculative state on a wrong or absent prediction: the
        // speculative history has diverged (or missed a push) and every
        // in-flight prediction derived from it is wrong anyway. Copying the
        // architectural history restarts the chain — CAP's lack of a
        // catch-up mechanism (§5.2) falls out of this: until the pending
        // instances resolve, refreshed lookups miss in the LT (cold
        // context) and no speculative accesses are launched.
        if self.params.speculative_history && component_pred != Some(actual) {
            entry.spec_history.copy_from(&entry.history);
        }
    }
}

/// Configuration of a standalone [`CapPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapConfig {
    /// Load Buffer geometry.
    pub lb: LoadBufferConfig,
    /// Link Table geometry.
    pub lt: LinkTableConfig,
    /// Component tunables.
    pub params: CapParams,
}

impl CapConfig {
    /// The paper's baseline: 4K-entry 2-way LB, 4K-entry direct-mapped LT,
    /// base addresses, CF indications, PF bits, 8-bit LT tags.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            lb: LoadBufferConfig::paper_default(),
            lt: LinkTableConfig::paper_default(),
            params: CapParams::paper_default(),
        }
    }
}

/// A standalone CAP predictor (LB + CAP component).
#[derive(Debug, Clone)]
pub struct CapPredictor {
    lb: LoadBuffer,
    component: CapComponent,
}

impl CapPredictor {
    /// Creates the predictor.
    ///
    /// # Examples
    ///
    /// Predicting a recurring non-stride pattern no stride predictor can
    /// handle:
    ///
    /// ```
    /// use cap_predictor::cap::{CapConfig, CapPredictor};
    /// use cap_predictor::types::{AddressPredictor, LoadContext};
    ///
    /// let mut p = CapPredictor::new(CapConfig::paper_default());
    /// let pattern = [0x1018u64, 0x8818, 0x4818, 0x2818]; // linked list
    /// for _ in 0..8 {
    ///     for &addr in &pattern {
    ///         let ctx = LoadContext::new(0x400, 0x18, 0);
    ///         let pred = p.predict(&ctx);
    ///         p.update(&ctx, addr, &pred);
    ///     }
    /// }
    /// let pred = p.predict(&LoadContext::new(0x400, 0x18, 0));
    /// assert_eq!(pred.addr, Some(pattern[0]));
    /// assert!(pred.speculate);
    /// ```
    #[must_use]
    pub fn new(config: CapConfig) -> Self {
        let proto = LbEntryProto {
            cap_conf: config.params.counter(),
            stride_conf: config.params.counter(),
        };
        Self {
            lb: LoadBuffer::new(config.lb, proto),
            component: CapComponent::new(config.params, config.lt),
        }
    }

    /// Read access to the underlying Load Buffer (diagnostics).
    #[must_use]
    pub fn load_buffer(&self) -> &LoadBuffer {
        &self.lb
    }

    /// Mutable access to the Load Buffer (fault injection / chaos testing).
    pub fn load_buffer_mut(&mut self) -> &mut LoadBuffer {
        &mut self.lb
    }

    /// Read access to the CAP component (diagnostics).
    #[must_use]
    pub fn component(&self) -> &CapComponent {
        &self.component
    }

    /// Read access to the Link Table (diagnostics).
    #[must_use]
    pub fn link_table(&self) -> &LinkTable {
        self.component.link_table()
    }

    /// Mutable access to the Link Table (fault injection / chaos testing).
    pub fn link_table_mut(&mut self) -> &mut LinkTable {
        self.component.link_table_mut()
    }

    /// Predicts the next `n` instances of the static load at `ip` by
    /// chaining Link Table lookups over a scratch copy of the entry's
    /// history (§5.4). Returns fewer than `n` addresses when the chain
    /// reaches unknown context, and an empty vector on an LB miss or a
    /// cold history.
    ///
    /// This is the one public lookahead entry point (the component-level
    /// walk it delegates to is crate-private). It is a pure read: it
    /// disturbs neither the entry's speculative state nor the LB's LRU
    /// order, so interleaving it with [`AddressPredictor::predict`] /
    /// [`AddressPredictor::update`] cannot change an evaluation's
    /// outcome.
    #[must_use]
    pub fn predict_ahead(&self, ip: u64, n: usize) -> Vec<u64> {
        match self.lb.peek(ip) {
            Some(entry) => self.component.predict_ahead(entry, n),
            None => Vec::new(),
        }
    }
}

impl AddressPredictor for CapPredictor {
    fn predict(&mut self, ctx: &LoadContext) -> Prediction {
        let Some(entry) = self.lb.lookup(ctx.ip) else {
            self.component.obs.incr(names::LB_MISS);
            return Prediction::none();
        };
        self.component.obs.incr(names::LB_HIT);
        let (addr, confident) = self.component.predict(entry, ctx);
        Prediction {
            addr,
            speculate: addr.is_some() && confident,
            source: if addr.is_some() {
                PredSource::Cap
            } else {
                PredSource::None
            },
            detail: PredictionDetail {
                cap_addr: addr,
                cap_confident: confident,
                ..PredictionDetail::default()
            },
        }
    }

    fn update(&mut self, ctx: &LoadContext, actual: u64, pred: &Prediction) {
        let (entry, fresh) = self.lb.lookup_or_insert(ctx.ip);
        if fresh {
            self.component.obs.incr(names::LB_ALLOC);
        }
        self.component
            .update(entry, ctx, actual, pred.detail.cap_addr, pred.speculate, true);
    }

    fn name(&self) -> &'static str {
        "cap"
    }

    fn set_obs(&mut self, obs: Obs) {
        self.component.set_obs(obs);
    }
}

use cap_snapshot::{Restorable, SectionReader, SectionWriter, Snapshot, SnapshotError};

impl Snapshot for CapParams {
    fn write_state(&self, w: &mut SectionWriter) {
        self.history.write_state(w);
        w.put_bool(self.global_correlation);
        w.put_u32(self.offset_lsb_bits);
        w.put_u8(self.conf_threshold);
        w.put_u8(self.conf_max);
        w.put_bool(self.hysteresis);
        self.cfi.write_state(w);
        w.put_bool(self.confidence_enabled);
        w.put_bool(self.speculative_history);
    }
}

impl Restorable for CapParams {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let params = Self {
            history: HistorySpec::read_state(r)?,
            global_correlation: r.take_bool("cap global correlation")?,
            offset_lsb_bits: r.take_u32("cap offset lsb bits")?,
            conf_threshold: r.take_u8("cap conf threshold")?,
            conf_max: r.take_u8("cap conf max")?,
            hysteresis: r.take_bool("cap hysteresis")?,
            cfi: crate::confidence::CfiMode::read_state(r)?,
            confidence_enabled: r.take_bool("cap confidence enabled")?,
            speculative_history: r.take_bool("cap speculative history")?,
        };
        // offset_lsb() shifts 1u32 by this amount, so 32+ would overflow.
        if params.offset_lsb_bits > 31 {
            return Err(r.bad_value(format!(
                "cap offset lsb bits {} above 31",
                params.offset_lsb_bits
            )));
        }
        if params.conf_threshold == 0 || params.conf_threshold > params.conf_max {
            return Err(r.bad_value(format!(
                "cap conf threshold {} outside 1..=max ({})",
                params.conf_threshold, params.conf_max
            )));
        }
        Ok(params)
    }
}

impl Snapshot for CapComponent {
    fn write_state(&self, w: &mut SectionWriter) {
        self.params.write_state(w);
        self.lt.write_state(w);
    }
}

impl Restorable for CapComponent {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let params = CapParams::read_state(r)?;
        let lt = LinkTable::read_state(r)?;
        // Mirror CapComponent::new's cross-check without its panic.
        if (1usize << params.history.index_bits) < lt.config().sets() {
            return Err(r.bad_value(format!(
                "history index bits {} cannot cover {} LT sets",
                params.history.index_bits,
                lt.config().sets()
            )));
        }
        // Telemetry is not snapshotted: restores come up with it off.
        Ok(Self {
            params,
            lt,
            obs: Obs::off(),
        })
    }
}

impl Snapshot for CapPredictor {
    fn write_state(&self, w: &mut SectionWriter) {
        self.lb.write_state(w);
        self.component.write_state(w);
    }
}

impl Restorable for CapPredictor {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            lb: LoadBuffer::read_state(r)?,
            component: CapComponent::read_state(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistorySpec;
    use crate::link_table::PfMode;

    fn config() -> CapConfig {
        CapConfig {
            lb: LoadBufferConfig {
                entries: 256,
                assoc: 2,
            },
            lt: LinkTableConfig {
                entries: 1024,
                assoc: 2,
                pf_mode: PfMode::Inline,
            },
            params: CapParams {
                history: HistorySpec {
                    length: 2,
                    shift: 3,
                    index_bits: 10,
                    tag_bits: 8,
                },
                ..CapParams::paper_default()
            },
        }
    }

    fn step(p: &mut CapPredictor, ip: u64, offset: i32, actual: u64) -> Prediction {
        let ctx = LoadContext::new(ip, offset, 0);
        let pred = p.predict(&ctx);
        p.update(&ctx, actual, &pred);
        pred
    }

    #[test]
    fn learns_recurring_nonstride_pattern() {
        let mut p = CapPredictor::new(config());
        let pattern = [0x100u64, 0x880, 0x480, 0x280, 0x940];
        let mut correct_in_last_round = 0;
        for round in 0..6 {
            for &a in &pattern {
                let pred = step(&mut p, 0x40, 0, a);
                if round == 5 && pred.is_correct(a) {
                    correct_in_last_round += 1;
                }
            }
        }
        assert_eq!(
            correct_in_last_round,
            pattern.len(),
            "pattern must be fully predicted once warm"
        );
    }

    #[test]
    fn stride_sequences_also_predictable_when_short() {
        // §3.7: CAP can predict stride accesses, just not long ones.
        let mut p = CapPredictor::new(config());
        let seq: Vec<u64> = (0..8).map(|i| 0x2000 + i * 8).collect();
        let mut last_round_correct = 0;
        for round in 0..8 {
            for &a in &seq {
                let pred = step(&mut p, 0x40, 0, a);
                if round == 7 && pred.is_correct(a) {
                    last_round_correct += 1;
                }
            }
        }
        assert!(last_round_correct >= seq.len() - 1);
    }

    /// Drives field B (ip 0x44, offset 0x10) through ONE traversal of the
    /// same RDS that field A trained, and counts correct predictions at the
    /// positions where B's own history is already warm but B has never
    /// updated any link for them itself. Any correct prediction there can
    /// only come from links shared with field A.
    fn first_traversal_cross_hits(p: &mut CapPredictor, bases: &[u64]) -> usize {
        let mut correct = 0;
        for (i, &b) in bases.iter().enumerate() {
            let pred = step(p, 0x44, 0x10, b + 0x10);
            if i >= 2 && pred.is_correct(b + 0x10) {
                correct += 1;
            }
        }
        correct
    }

    #[test]
    fn global_correlation_shares_links_between_fields() {
        // Two static loads walk the same RDS: field offsets 0x8 and 0x10.
        // Train ONLY the 0x8 field; the 0x10 field's very first traversal
        // must already hit, because links store shared base addresses.
        let mut p = CapPredictor::new(config());
        let bases = [0x1010u64, 0x88A4, 0x4858, 0x2B3C];
        for _ in 0..6 {
            for &b in &bases {
                step(&mut p, 0x40, 0x8, b + 0x8);
            }
        }
        let correct = first_traversal_cross_hits(&mut p, &bases);
        assert_eq!(
            correct, 2,
            "warm positions of B's first traversal must hit A's links"
        );
    }

    #[test]
    fn no_global_correlation_blocks_cross_field_sharing() {
        let mut cfg = config();
        cfg.params.global_correlation = false;
        let mut p = CapPredictor::new(cfg);
        let bases = [0x1010u64, 0x88A4, 0x4858, 0x2B3C];
        for _ in 0..6 {
            for &b in &bases {
                step(&mut p, 0x40, 0x8, b + 0x8);
            }
        }
        let correct = first_traversal_cross_hits(&mut p, &bases);
        assert_eq!(
            correct, 0,
            "without base addresses the fields must not share links"
        );
    }

    #[test]
    fn history_length_two_disambiguates_double_list() {
        // Figure 2: val field at offset 2 over a doubly linked list walked
        // both directions. History 1 cannot disambiguate; history 2 can.
        let run = |length: usize| {
            let mut cfg = config();
            cfg.params.history.length = length;
            let mut p = CapPredictor::new(cfg);
            let nodes = [0x10u64, 0x80, 0x40, 0x20];
            let mut correct = 0;
            let mut total = 0;
            for round in 0..40 {
                let forward = round % 2 == 0;
                let order: Vec<u64> = if forward {
                    nodes.to_vec()
                } else {
                    nodes.iter().rev().copied().collect()
                };
                for &n in &order {
                    let a = n + 2;
                    let pred = step(&mut p, 0x40, 2, a);
                    if round >= 20 {
                        total += 1;
                        if pred.is_correct(a) {
                            correct += 1;
                        }
                    }
                }
            }
            correct as f64 / total as f64
        };
        let acc1 = run(1);
        let acc2 = run(2);
        assert!(
            acc2 > acc1 + 0.2,
            "history 2 must beat history 1 on a double list: {acc1} vs {acc2}"
        );
        assert!(acc2 > 0.9, "history 2 should nearly always predict: {acc2}");
    }

    #[test]
    fn confidence_gates_speculation_until_warm() {
        let mut p = CapPredictor::new(config());
        let pattern = [0x100u64, 0x880, 0x480];
        let mut first_spec_round = None;
        for round in 0..6 {
            for &a in &pattern {
                let pred = step(&mut p, 0x40, 0, a);
                if pred.speculate && first_spec_round.is_none() {
                    first_spec_round = Some(round);
                }
            }
        }
        let round = first_spec_round.expect("must eventually speculate");
        assert!(round >= 1, "speculation requires confidence buildup");
    }

    #[test]
    fn confidence_disabled_speculates_on_every_prediction() {
        let mut cfg = config();
        cfg.params.confidence_enabled = false;
        let mut p = CapPredictor::new(cfg);
        let pattern = [0x100u64, 0x880, 0x480];
        for _ in 0..3 {
            for &a in &pattern {
                step(&mut p, 0x40, 0, a);
            }
        }
        let pred = p.predict(&LoadContext::new(0x40, 0, 0));
        assert!(pred.addr.is_some());
        assert!(pred.speculate, "no confidence gate in Figure 9 mode");
    }

    #[test]
    fn random_addresses_stay_unpredicted() {
        use cap_rand::{Rng, SeedableRng};
        let mut rng = cap_rand::rngs::StdRng::seed_from_u64(2);
        let mut p = CapPredictor::new(config());
        let mut spec = 0;
        let mut wrong_spec = 0;
        for _ in 0..4000 {
            let a = (rng.gen::<u32>() as u64) & !3;
            let pred = step(&mut p, 0x40, 0, a);
            if pred.speculate {
                spec += 1;
                if !pred.is_correct(a) {
                    wrong_spec += 1;
                }
            }
        }
        assert!(
            spec < 40,
            "confidence + PF must suppress speculation on noise (spec={spec}, wrong={wrong_spec})"
        );
    }

    #[test]
    fn speculative_history_chains_predictions() {
        let mut cfg = config();
        cfg.params.speculative_history = true;
        let mut p = CapPredictor::new(cfg);
        let pattern = [0x100u64, 0x880, 0x480, 0x280];
        // Warm architecturally (immediate update).
        for _ in 0..8 {
            for &a in &pattern {
                step(&mut p, 0x40, 0, a);
            }
        }
        // Now predict 4 instances back-to-back with NO updates in between:
        // the speculative history must chain them all correctly.
        let mut preds = Vec::new();
        for (i, _) in pattern.iter().enumerate() {
            let ctx = LoadContext {
                pending: i as u32,
                ..LoadContext::new(0x40, 0, 0)
            };
            preds.push(p.predict(&ctx));
        }
        for (pred, &want) in preds.iter().zip(&pattern) {
            assert_eq!(pred.addr, Some(want), "chained prediction must follow");
        }
    }

    #[test]
    fn predict_ahead_chains_through_the_pattern() {
        let mut p = CapPredictor::new(config());
        let pattern = [0x100u64, 0x880, 0x480, 0x280, 0x940];
        for _ in 0..8 {
            for &a in &pattern {
                step(&mut p, 0x40, 0, a);
            }
        }
        // The trace ended after a full pattern: the next 5 instances are
        // one whole period.
        let ahead = p.predict_ahead(0x40, 5);
        assert_eq!(ahead, pattern.to_vec(), "chained lookups must walk the cycle");
        // Asking for more wraps around the cycle.
        let ahead10 = p.predict_ahead(0x40, 10);
        assert_eq!(&ahead10[5..], &pattern[..5]);
    }

    #[test]
    fn predict_ahead_stops_at_unknown_context() {
        let mut p = CapPredictor::new(config());
        // A non-recurring prefix: links exist for seen transitions only.
        for a in [0x100u64, 0x880, 0x480, 0x280] {
            step(&mut p, 0x40, 0, a);
        }
        let ahead = p.predict_ahead(0x40, 8);
        assert!(
            ahead.len() < 8,
            "an unseen continuation must stop the chain (got {ahead:?})"
        );
    }

    #[test]
    fn predict_ahead_cold_entry_is_empty() {
        let p = CapPredictor::new(config());
        assert!(p.predict_ahead(0xDEAD, 4).is_empty());
    }

    #[test]
    fn predict_ahead_is_a_pure_read() {
        use cap_snapshot::Snapshot;
        let mut p = CapPredictor::new(config());
        let pattern = [0x100u64, 0x880, 0x480, 0x280];
        for _ in 0..6 {
            for &a in &pattern {
                step(&mut p, 0x40, 0, a);
            }
        }
        let before = p.to_payload();
        let _ = p.predict_ahead(0x40, 8);
        assert_eq!(
            p.to_payload(),
            before,
            "lookahead must not perturb LRU/tick or any table state"
        );
    }

    #[test]
    fn lb_miss_gives_no_prediction() {
        let mut p = CapPredictor::new(config());
        assert_eq!(p.predict(&LoadContext::new(0xDEAD, 0, 0)), Prediction::none());
    }

    #[test]
    #[should_panic(expected = "history index bits must cover")]
    fn undersized_history_index_rejected() {
        let mut cfg = config();
        cfg.params.history.index_bits = 4; // 16 < 1024 sets
        let _ = CapPredictor::new(cfg);
    }
}
