//! Cache-line-aligned bit-packed backing store for the flat tables.
//!
//! One [`BitTable`] is one contiguous allocation of 64-byte-aligned cache
//! lines holding fixed-width entries. Each entry occupies a whole number
//! of `u64` words; fields live at fixed bit offsets inside the entry and
//! may straddle a word boundary (handled with a two-word read/write).
//! Nothing here knows what the fields *mean* — the layout structs in the
//! sibling modules assign offsets and widths.

/// One 64-byte cache line of packed state.
#[repr(C, align(64))]
#[derive(Debug, Clone, Copy, Default)]
struct CacheLine([u64; 8]);

/// A fixed-width bit field inside a packed entry: bit offset and width.
///
/// A zero-width field is legal (e.g. the LT tag field of an untagged
/// table): reads return 0 and writes are no-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Field {
    /// Bit offset from the start of the entry.
    pub off: u32,
    /// Width in bits (0..=64).
    pub w: u32,
}

impl Field {
    /// Allocates the next `w` bits from a running layout cursor.
    pub fn take(cursor: &mut u32, w: u32) -> Self {
        debug_assert!(w <= 64, "fields are at most one word wide");
        let f = Self { off: *cursor, w };
        *cursor += w;
        f
    }
}

/// A flat array of bit-packed entries in one cache-line-aligned
/// allocation.
#[derive(Debug, Clone)]
pub struct BitTable {
    lines: Vec<CacheLine>,
    words_per_entry: usize,
    entries: usize,
}

impl BitTable {
    /// Creates a zeroed table of `entries` entries of `bits_per_entry`
    /// bits each (rounded up to whole words).
    #[must_use]
    pub fn new(entries: usize, bits_per_entry: u32) -> Self {
        let words_per_entry = (bits_per_entry as usize).div_ceil(64).max(1);
        let words = entries * words_per_entry;
        Self {
            lines: vec![CacheLine::default(); words.div_ceil(8)],
            words_per_entry,
            entries,
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Words each entry occupies (diagnostics: the real storage cost).
    #[must_use]
    pub fn words_per_entry(&self) -> usize {
        self.words_per_entry
    }

    #[inline(always)]
    fn word(&self, w: usize) -> u64 {
        self.lines[w >> 3].0[w & 7]
    }

    #[inline(always)]
    fn word_mut(&mut self, w: usize) -> &mut u64 {
        &mut self.lines[w >> 3].0[w & 7]
    }

    /// Reads field `f` of entry `idx`.
    #[inline(always)]
    #[must_use]
    pub fn get(&self, idx: usize, f: Field) -> u64 {
        if f.w == 0 {
            return 0;
        }
        let base = idx * self.words_per_entry;
        let w = base + (f.off / 64) as usize;
        let shift = f.off % 64;
        let have = 64 - shift;
        let mut v = self.word(w) >> shift;
        if have < f.w {
            v |= self.word(w + 1) << have;
        }
        if f.w == 64 {
            v
        } else {
            v & ((1u64 << f.w) - 1)
        }
    }

    /// Writes field `f` of entry `idx`. `value` must fit in `f.w` bits.
    #[inline(always)]
    pub fn set(&mut self, idx: usize, f: Field, value: u64) {
        if f.w == 0 {
            return;
        }
        debug_assert!(f.w == 64 || value < (1u64 << f.w), "value exceeds field width");
        let base = idx * self.words_per_entry;
        let w = base + (f.off / 64) as usize;
        let shift = f.off % 64;
        let mask = if f.w == 64 { u64::MAX } else { (1u64 << f.w) - 1 };
        let lo = self.word_mut(w);
        *lo = (*lo & !(mask << shift)) | (value << shift);
        let have = 64 - shift;
        if have < f.w {
            let hi = self.word_mut(w + 1);
            *hi = (*hi & !(mask >> have)) | (value >> have);
        }
    }

    /// Zeroes every word of entry `idx`.
    pub fn clear_entry(&mut self, idx: usize) {
        let base = idx * self.words_per_entry;
        for w in base..base + self.words_per_entry {
            *self.word_mut(w) = 0;
        }
    }
}

/// Bits needed to represent values `0..=max` (0 when `max == 0`).
#[must_use]
pub fn bits_for(max: u64) -> u32 {
    64 - max.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_alignment_and_zero_init() {
        let t = BitTable::new(16, 130);
        assert_eq!(t.words_per_entry(), 3);
        assert_eq!(std::mem::align_of::<CacheLine>(), 64);
        for i in 0..16 {
            assert_eq!(t.get(i, Field { off: 64, w: 64 }), 0);
        }
    }

    #[test]
    fn fields_roundtrip_across_word_straddles() {
        let mut t = BitTable::new(4, 200);
        // A 64-bit field straddling the first word boundary.
        let f = Field { off: 33, w: 64 };
        for idx in 0..4 {
            let v = 0xDEAD_BEEF_CAFE_F00Du64 ^ (idx as u64);
            t.set(idx, f, v);
            assert_eq!(t.get(idx, f), v);
        }
        // Neighbouring fields stay untouched.
        let lo = Field { off: 0, w: 33 };
        let hi = Field { off: 97, w: 40 };
        assert_eq!(t.get(0, lo), 0);
        t.set(0, lo, (1 << 33) - 1);
        t.set(0, hi, (1 << 40) - 1);
        assert_eq!(t.get(0, f), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(t.get(0, lo), (1 << 33) - 1);
        assert_eq!(t.get(0, hi), (1 << 40) - 1);
    }

    #[test]
    fn zero_width_fields_are_inert() {
        let mut t = BitTable::new(1, 64);
        let z = Field { off: 10, w: 0 };
        t.set(0, z, 0);
        assert_eq!(t.get(0, z), 0);
        assert_eq!(t.get(0, Field { off: 0, w: 64 }), 0);
    }

    #[test]
    fn clear_entry_is_entry_local() {
        let mut t = BitTable::new(3, 128);
        let f = Field { off: 0, w: 64 };
        for i in 0..3 {
            t.set(i, f, u64::MAX);
        }
        t.clear_entry(1);
        assert_eq!(t.get(0, f), u64::MAX);
        assert_eq!(t.get(1, f), 0);
        assert_eq!(t.get(2, f), u64::MAX);
    }

    #[test]
    fn bits_for_covers_boundaries() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(u64::MAX), 64);
    }
}
