//! Bit-packed Load Buffer: one flat allocation, fields at the paper's
//! widths, and **incrementally maintained** folded history registers.
//!
//! Behaviour is bit-identical to [`crate::load_buffer::LoadBuffer`] as
//! driven by the CAP/stride/hybrid components — the differential suite in
//! `tests/packed_differential.rs` enforces this across every generator
//! family. Two representation differences are invisible at that boundary:
//!
//! * Histories store only bits `2..2+width` of each address — the only
//!   bits the shift(m)-xor fold can ever observe (§3.2 drops the two
//!   alignment bits; the fold masks to `index_bits + tag_bits`). The
//!   fold itself lives in a packed register updated on push (shift, xor
//!   in the newest slot, xor out the evicted slot's aged contribution)
//!   instead of being recomputed from a `VecDeque` on demand.
//! * Saturating counters pack only their *value*; threshold, max and
//!   hysteresis are table-level constants (the prototype counters), as
//!   in hardware.

use crate::confidence::{ControlFlowIndication, SaturatingCounter};
use crate::history::{FoldedHistory, HistorySpec};
use crate::load_buffer::{IntervalCounter, LbEntryProto, LoadBufferConfig, StrideState};
use crate::packed::bits::{bits_for, BitTable, Field};

/// Which history register of an entry an operation addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistHalf {
    /// The architectural history (pushed at update time).
    Arch,
    /// The speculative history (rolled forward at predict time).
    Spec,
}

/// Packed layout of one history register: occupancy count, ring head,
/// the incrementally folded register, and `length` raw slots of
/// `width` bits each.
#[derive(Debug, Clone, Copy)]
struct HistLayout {
    count: Field,
    head: Field,
    fold: Field,
    /// Offset of slot 0; slots are `fold.w` bits wide, `length` of them.
    slot0: u32,
}

impl HistLayout {
    fn take(cursor: &mut u32, spec: &HistorySpec) -> Self {
        let count = Field::take(cursor, bits_for(spec.length as u64));
        let head = Field::take(cursor, bits_for(spec.length.saturating_sub(1) as u64));
        let fold = Field::take(cursor, spec.width());
        let slot0 = *cursor;
        *cursor += spec.width() * spec.length as u32;
        Self {
            count,
            head,
            fold,
            slot0,
        }
    }

    fn slot(&self, k: usize) -> Field {
        Field {
            off: self.slot0 + self.fold.w * k as u32,
            w: self.fold.w,
        }
    }
}

/// Field offsets of one packed LB entry (computed once per table from the
/// history spec, offset width, and counter ceilings).
#[derive(Debug, Clone, Copy)]
struct LbLayout {
    present: Field,
    tag: Field,
    offset_lsb: Field,
    cap_conf: Field,
    stride_conf: Field,
    // CFI state is packed at full width: fault injection stores raw
    // 64-bit patterns/path bits and `allows` masks on read, so narrowing
    // here would diverge from the legacy structs under chaos testing.
    cap_cfi_has: Field,
    cap_cfi_pat: Field,
    cap_cfi_path: Field,
    cap_cfi_init: Field,
    stride_cfi_has: Field,
    stride_cfi_pat: Field,
    stride_cfi_path: Field,
    stride_cfi_init: Field,
    stride_seen: Field,
    last_addr: Field,
    stride: Field,
    stride_state: Field,
    int_learned: Field,
    int_run: Field,
    selector: Field,
    lru: Field,
    hist: HistLayout,
    spec_hist: HistLayout,
    bits: u32,
}

impl LbLayout {
    fn new(spec: &HistorySpec, offset_bits: u32, proto: &LbEntryProto) -> Self {
        let mut c = 0u32;
        let present = Field::take(&mut c, 1);
        let tag = Field::take(&mut c, 64);
        let offset_lsb = Field::take(&mut c, offset_bits);
        let cap_conf = Field::take(&mut c, bits_for(u64::from(proto.cap_conf.max())));
        let stride_conf = Field::take(&mut c, bits_for(u64::from(proto.stride_conf.max())));
        let cap_cfi_has = Field::take(&mut c, 1);
        let cap_cfi_pat = Field::take(&mut c, 64);
        let cap_cfi_path = Field::take(&mut c, 64);
        let cap_cfi_init = Field::take(&mut c, 1);
        let stride_cfi_has = Field::take(&mut c, 1);
        let stride_cfi_pat = Field::take(&mut c, 64);
        let stride_cfi_path = Field::take(&mut c, 64);
        let stride_cfi_init = Field::take(&mut c, 1);
        let stride_seen = Field::take(&mut c, 1);
        let last_addr = Field::take(&mut c, 64);
        let stride = Field::take(&mut c, 64);
        let stride_state = Field::take(&mut c, 2);
        let int_learned = Field::take(&mut c, 32);
        let int_run = Field::take(&mut c, 32);
        let selector = Field::take(&mut c, 2);
        let lru = Field::take(&mut c, 64);
        let hist = HistLayout::take(&mut c, spec);
        let spec_hist = HistLayout::take(&mut c, spec);
        Self {
            present,
            tag,
            offset_lsb,
            cap_conf,
            stride_conf,
            cap_cfi_has,
            cap_cfi_pat,
            cap_cfi_path,
            cap_cfi_init,
            stride_cfi_has,
            stride_cfi_pat,
            stride_cfi_path,
            stride_cfi_init,
            stride_seen,
            last_addr,
            stride,
            stride_state,
            int_learned,
            int_run,
            selector,
            lru,
            hist,
            spec_hist,
            bits: c,
        }
    }
}

/// The bit-packed Load Buffer.
#[derive(Debug, Clone)]
pub struct PackedLoadBuffer {
    config: LoadBufferConfig,
    proto: LbEntryProto,
    spec: HistorySpec,
    offset_bits: u32,
    layout: LbLayout,
    table: BitTable,
    tick: u64,
}

impl PackedLoadBuffer {
    /// Creates an empty packed Load Buffer.
    ///
    /// # Panics
    ///
    /// Panics if the geometry or history spec is invalid (same rules as
    /// the legacy structures).
    #[must_use]
    pub fn new(
        config: LoadBufferConfig,
        proto: LbEntryProto,
        spec: HistorySpec,
        offset_bits: u32,
    ) -> Self {
        spec.validate();
        assert!(offset_bits <= 31, "offset LSB width must fit a u32 shift");
        let layout = LbLayout::new(&spec, offset_bits, &proto);
        // LoadBufferConfig::validate is private; LoadBuffer::new performs
        // it. Constructing a throwaway legacy buffer would allocate, so
        // mirror the checks here.
        assert!(config.entries.is_power_of_two(), "LB entries must be a power of two");
        assert!(config.assoc >= 1, "associativity must be at least 1");
        assert!(
            config.entries.is_multiple_of(config.assoc) && config.sets().is_power_of_two(),
            "LB sets must be a power of two"
        );
        Self {
            table: BitTable::new(config.entries, layout.bits),
            config,
            proto,
            spec,
            offset_bits,
            layout,
            tick: 0,
        }
    }

    /// The buffer's geometry.
    #[must_use]
    pub fn config(&self) -> &LoadBufferConfig {
        &self.config
    }

    /// The prototype counters cloned into fresh entries.
    #[must_use]
    pub fn proto(&self) -> &LbEntryProto {
        &self.proto
    }

    /// The history spec the packed registers are sized for.
    #[must_use]
    pub fn history_spec(&self) -> &HistorySpec {
        &self.spec
    }

    /// The packed offset-LSB field width.
    #[must_use]
    pub fn offset_bits(&self) -> u32 {
        self.offset_bits
    }

    /// Bits one packed entry occupies (diagnostics / DESIGN.md budgets).
    #[must_use]
    pub fn entry_bits(&self) -> u32 {
        self.layout.bits
    }

    /// Current LRU tick (snapshot support).
    #[must_use]
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Overwrites the LRU tick (snapshot restore).
    pub fn set_tick(&mut self, tick: u64) {
        self.tick = tick;
    }

    #[inline(always)]
    fn set_index(&self, ip: u64) -> usize {
        ((ip >> 2) as usize) & (self.config.sets() - 1)
    }

    /// Entry index of `ip` on a hit, bumping tick + LRU exactly like
    /// [`crate::load_buffer::LoadBuffer::lookup`] (hit-only tick).
    #[inline]
    pub fn find(&mut self, ip: u64) -> Option<usize> {
        let base = self.set_index(ip) * self.config.assoc;
        for way in 0..self.config.assoc {
            let idx = base + way;
            if self.present(idx) && self.tag(idx) == ip {
                self.tick += 1;
                self.table.set(idx, self.layout.lru, self.tick);
                return Some(idx);
            }
        }
        None
    }

    /// Pure lookup: no tick, no LRU refresh.
    #[must_use]
    pub fn peek(&self, ip: u64) -> Option<usize> {
        let base = self.set_index(ip) * self.config.assoc;
        (0..self.config.assoc)
            .map(|way| base + way)
            .find(|&idx| self.present(idx) && self.tag(idx) == ip)
    }

    /// Entry index of `ip`, allocating (evicting LRU) on miss; mirrors
    /// [`crate::load_buffer::LoadBuffer::lookup_or_insert`] exactly,
    /// including the unconditional tick advance.
    pub fn find_or_insert(&mut self, ip: u64) -> (usize, bool) {
        self.tick += 1;
        let tick = self.tick;
        let base = self.set_index(ip) * self.config.assoc;
        let mut hit = None;
        for way in 0..self.config.assoc {
            let idx = base + way;
            if self.present(idx) && self.tag(idx) == ip {
                hit = Some(idx);
                break;
            }
        }
        let (idx, fresh) = match hit {
            Some(idx) => (idx, false),
            None => {
                let mut victim = None;
                for way in 0..self.config.assoc {
                    let idx = base + way;
                    if !self.present(idx) {
                        victim = Some(idx);
                        break;
                    }
                }
                let idx = victim.unwrap_or_else(|| {
                    let mut best = (base, u64::MAX);
                    for way in 0..self.config.assoc {
                        let idx = base + way;
                        let lru = self.table.get(idx, self.layout.lru);
                        if lru < best.1 {
                            best = (idx, lru);
                        }
                    }
                    best.0
                });
                self.init_entry(idx, ip, tick);
                (idx, true)
            }
        };
        self.table.set(idx, self.layout.lru, tick);
        (idx, fresh)
    }

    /// Resets entry `idx` to a fresh entry for `ip` — the packed analogue
    /// of `LbEntry::new`.
    fn init_entry(&mut self, idx: usize, ip: u64, lru: u64) {
        self.table.clear_entry(idx);
        let l = self.layout;
        self.table.set(idx, l.present, 1);
        self.table.set(idx, l.tag, ip);
        self.table
            .set(idx, l.cap_conf, u64::from(self.proto.cap_conf.value()));
        self.table
            .set(idx, l.stride_conf, u64::from(self.proto.stride_conf.value()));
        // ControlFlowIndication::new(): no bad pattern, all paths allowed.
        self.set_cap_cfi(idx, ControlFlowIndication::new());
        self.set_stride_cfi(idx, ControlFlowIndication::new());
        self.table.set(idx, l.selector, 2);
        self.table.set(idx, l.lru, lru);
    }

    // ---- per-field accessors -------------------------------------------

    /// Whether entry `idx` is live.
    #[inline(always)]
    #[must_use]
    pub fn present(&self, idx: usize) -> bool {
        self.table.get(idx, self.layout.present) != 0
    }

    /// IP tag of entry `idx`.
    #[inline(always)]
    #[must_use]
    pub fn tag(&self, idx: usize) -> u64 {
        self.table.get(idx, self.layout.tag)
    }

    /// Recorded offset LSBs.
    #[inline(always)]
    #[must_use]
    pub fn offset_lsb(&self, idx: usize) -> u32 {
        self.table.get(idx, self.layout.offset_lsb) as u32
    }

    /// Overwrites the offset LSBs (must fit the configured width).
    #[inline(always)]
    pub fn set_offset_lsb(&mut self, idx: usize, v: u32) {
        self.table.set(idx, self.layout.offset_lsb, u64::from(v));
    }

    /// CAP confidence counter value.
    #[inline(always)]
    #[must_use]
    pub fn cap_conf_value(&self, idx: usize) -> u8 {
        self.table.get(idx, self.layout.cap_conf) as u8
    }

    /// Stride confidence counter value.
    #[inline(always)]
    #[must_use]
    pub fn stride_conf_value(&self, idx: usize) -> u8 {
        self.table.get(idx, self.layout.stride_conf) as u8
    }

    /// Reconstructs the CAP confidence counter (proto parameters + packed
    /// value) for operating on the stack.
    #[inline(always)]
    #[must_use]
    pub fn cap_conf(&self, idx: usize) -> SaturatingCounter {
        let mut c = self.proto.cap_conf;
        c.corrupt_value(self.cap_conf_value(idx));
        c
    }

    /// Reconstructs the stride confidence counter.
    #[inline(always)]
    #[must_use]
    pub fn stride_conf(&self, idx: usize) -> SaturatingCounter {
        let mut c = self.proto.stride_conf;
        c.corrupt_value(self.stride_conf_value(idx));
        c
    }

    /// Stores a CAP confidence value back (value ≤ proto max by
    /// construction of every mutation path).
    #[inline(always)]
    pub fn set_cap_conf_value(&mut self, idx: usize, v: u8) {
        self.table.set(idx, self.layout.cap_conf, u64::from(v));
    }

    /// Stores a stride confidence value back.
    #[inline(always)]
    pub fn set_stride_conf_value(&mut self, idx: usize, v: u8) {
        self.table.set(idx, self.layout.stride_conf, u64::from(v));
    }

    fn cfi_get(&self, idx: usize, has: Field, pat: Field, path: Field, init: Field) -> ControlFlowIndication {
        let bad_pattern = if self.table.get(idx, has) != 0 {
            Some(self.table.get(idx, pat))
        } else {
            None
        };
        ControlFlowIndication::from_parts(
            bad_pattern,
            self.table.get(idx, path),
            self.table.get(idx, init) != 0,
        )
    }

    fn cfi_set(&mut self, idx: usize, has: Field, pat: Field, path: Field, init: Field, v: ControlFlowIndication) {
        match v.bad_pattern() {
            Some(p) => {
                self.table.set(idx, has, 1);
                self.table.set(idx, pat, p);
            }
            None => {
                self.table.set(idx, has, 0);
                self.table.set(idx, pat, 0);
            }
        }
        self.table.set(idx, path, v.path_bits());
        self.table.set(idx, init, u64::from(v.initialised()));
    }

    /// Reconstructs the CAP control-flow indication.
    #[inline(always)]
    #[must_use]
    pub fn cap_cfi(&self, idx: usize) -> ControlFlowIndication {
        let l = self.layout;
        self.cfi_get(idx, l.cap_cfi_has, l.cap_cfi_pat, l.cap_cfi_path, l.cap_cfi_init)
    }

    /// Stores the CAP control-flow indication.
    pub fn set_cap_cfi(&mut self, idx: usize, v: ControlFlowIndication) {
        let l = self.layout;
        self.cfi_set(idx, l.cap_cfi_has, l.cap_cfi_pat, l.cap_cfi_path, l.cap_cfi_init, v);
    }

    /// Reconstructs the stride control-flow indication.
    #[inline(always)]
    #[must_use]
    pub fn stride_cfi(&self, idx: usize) -> ControlFlowIndication {
        let l = self.layout;
        self.cfi_get(idx, l.stride_cfi_has, l.stride_cfi_pat, l.stride_cfi_path, l.stride_cfi_init)
    }

    /// Stores the stride control-flow indication.
    pub fn set_stride_cfi(&mut self, idx: usize, v: ControlFlowIndication) {
        let l = self.layout;
        self.cfi_set(idx, l.stride_cfi_has, l.stride_cfi_pat, l.stride_cfi_path, l.stride_cfi_init, v);
    }

    /// Whether at least one address has resolved for this entry.
    #[inline(always)]
    #[must_use]
    pub fn stride_seen(&self, idx: usize) -> bool {
        self.table.get(idx, self.layout.stride_seen) != 0
    }

    /// Marks the entry as having seen an address.
    #[inline(always)]
    pub fn set_stride_seen(&mut self, idx: usize, v: bool) {
        self.table.set(idx, self.layout.stride_seen, u64::from(v));
    }

    /// Last resolved address.
    #[inline(always)]
    #[must_use]
    pub fn last_addr(&self, idx: usize) -> u64 {
        self.table.get(idx, self.layout.last_addr)
    }

    /// Overwrites the last resolved address.
    #[inline(always)]
    pub fn set_last_addr(&mut self, idx: usize, v: u64) {
        self.table.set(idx, self.layout.last_addr, v);
    }

    /// Current stride delta.
    #[inline(always)]
    #[must_use]
    pub fn stride(&self, idx: usize) -> i64 {
        self.table.get(idx, self.layout.stride) as i64
    }

    /// Overwrites the stride delta.
    #[inline(always)]
    pub fn set_stride(&mut self, idx: usize, v: i64) {
        self.table.set(idx, self.layout.stride, v as u64);
    }

    /// Stride state machine state.
    #[inline(always)]
    #[must_use]
    pub fn stride_state(&self, idx: usize) -> StrideState {
        match self.table.get(idx, self.layout.stride_state) {
            0 => StrideState::Init,
            1 => StrideState::Transient,
            _ => StrideState::Steady,
        }
    }

    /// Overwrites the stride state.
    #[inline(always)]
    pub fn set_stride_state(&mut self, idx: usize, v: StrideState) {
        let raw = match v {
            StrideState::Init => 0,
            StrideState::Transient => 1,
            StrideState::Steady => 2,
        };
        self.table.set(idx, self.layout.stride_state, raw);
    }

    /// Reconstructs the interval counter.
    #[inline(always)]
    #[must_use]
    pub fn interval(&self, idx: usize) -> IntervalCounter {
        IntervalCounter {
            learned: self.table.get(idx, self.layout.int_learned) as u32,
            run: self.table.get(idx, self.layout.int_run) as u32,
        }
    }

    /// Stores the interval counter.
    #[inline(always)]
    pub fn set_interval(&mut self, idx: usize, v: IntervalCounter) {
        self.table.set(idx, self.layout.int_learned, u64::from(v.learned));
        self.table.set(idx, self.layout.int_run, u64::from(v.run));
    }

    /// Hybrid selector state (0–3).
    #[inline(always)]
    #[must_use]
    pub fn selector(&self, idx: usize) -> u8 {
        self.table.get(idx, self.layout.selector) as u8
    }

    /// Overwrites the selector (must be 0–3).
    #[inline(always)]
    pub fn set_selector(&mut self, idx: usize, v: u8) {
        self.table.set(idx, self.layout.selector, u64::from(v));
    }

    /// LRU timestamp of entry `idx`.
    #[inline(always)]
    #[must_use]
    pub fn lru(&self, idx: usize) -> u64 {
        self.table.get(idx, self.layout.lru)
    }

    /// Overwrites the LRU timestamp (snapshot restore).
    pub fn set_lru(&mut self, idx: usize, v: u64) {
        self.table.set(idx, self.layout.lru, v);
    }

    // ---- history registers ---------------------------------------------

    fn hist_layout(&self, half: HistHalf) -> HistLayout {
        match half {
            HistHalf::Arch => self.layout.hist,
            HistHalf::Spec => self.layout.spec_hist,
        }
    }

    /// Number of recorded addresses in the register.
    #[inline(always)]
    #[must_use]
    pub fn hist_len(&self, idx: usize, half: HistHalf) -> usize {
        self.table.get(idx, self.hist_layout(half).count) as usize
    }

    /// True once the register holds `spec.length` addresses.
    #[inline(always)]
    #[must_use]
    pub fn hist_is_warm(&self, idx: usize, half: HistHalf) -> bool {
        self.hist_len(idx, half) >= self.spec.length
    }

    /// The folded register, split into LT index and tag. Only meaningful
    /// when warm — exactly the points where the legacy code folds.
    #[inline(always)]
    #[must_use]
    pub fn hist_fold(&self, idx: usize, half: HistHalf) -> FoldedHistory {
        self.spec.split(self.table.get(idx, self.hist_layout(half).fold))
    }

    /// Raw slot value (bits `2..2+width` of the recorded address) at
    /// *logical* position `k` (0 = oldest). Test/snapshot surface.
    #[must_use]
    pub fn hist_slot(&self, idx: usize, half: HistHalf, k: usize) -> u64 {
        let h = self.hist_layout(half);
        let count = self.table.get(idx, h.count) as usize;
        let phys = self.phys_slot(idx, half, k, count);
        self.table.get(idx, h.slot(phys))
    }

    #[inline(always)]
    fn phys_slot(&self, idx: usize, half: HistHalf, k: usize, count: usize) -> usize {
        if count >= self.spec.length {
            let head = self.table.get(idx, self.hist_layout(half).head) as usize;
            (head + k) % self.spec.length
        } else {
            k
        }
    }

    /// Pushes `addr` into the register: stores the masked slot, advances
    /// the ring, and rolls the folded register incrementally.
    pub fn hist_push(&mut self, idx: usize, half: HistHalf, addr: u64) {
        let h = self.hist_layout(half);
        let n = self.spec.length;
        let m = self.spec.shift;
        let width = self.spec.width();
        let mask = (1u64 << width) - 1;
        let s_new = (addr >> 2) & mask;
        let count = self.table.get(idx, h.count) as usize;
        let mut f = self.table.get(idx, h.fold);
        if count < n {
            self.table.set(idx, h.slot(count), s_new);
            self.table.set(idx, h.count, count as u64 + 1);
            f = ((f << m) ^ s_new) & mask;
        } else {
            let head = self.table.get(idx, h.head) as usize;
            let s_old = self.table.get(idx, h.slot(head));
            // The oldest slot's contribution has aged `m·(N−1)` shifts;
            // xor it back out before shifting the window forward.
            let aged = u64::from(m) * (n as u64 - 1);
            let old_contrib = if aged >= 64 { 0 } else { (s_old << aged) & mask };
            f = (((f ^ old_contrib) << m) ^ s_new) & mask;
            self.table.set(idx, h.slot(head), s_new);
            self.table
                .set(idx, h.head, ((head + 1) % n) as u64);
        }
        self.table.set(idx, h.fold, f);
    }

    /// Recomputes the folded register from the slots (restore and
    /// fault-repair path; self-healing by construction).
    pub fn hist_refold(&mut self, idx: usize, half: HistHalf) {
        let h = self.hist_layout(half);
        let n = self.spec.length;
        let m = self.spec.shift;
        let mask = (1u64 << self.spec.width()) - 1;
        let count = self.table.get(idx, h.count) as usize;
        let head = self.table.get(idx, h.head) as usize;
        let mut f = 0u64;
        for k in 0..count {
            let phys = if count >= n { (head + k) % n } else { k };
            f = ((f << m) ^ self.table.get(idx, h.slot(phys))) & mask;
        }
        self.table.set(idx, h.fold, f);
    }

    /// Copies the architectural history into the speculative register —
    /// the packed analogue of `spec_history.copy_from(&history)`.
    pub fn spec_copy_from_arch(&mut self, idx: usize) {
        let a = self.layout.hist;
        let s = self.layout.spec_hist;
        self.table.set(idx, s.count, self.table.get(idx, a.count));
        self.table.set(idx, s.head, self.table.get(idx, a.head));
        self.table.set(idx, s.fold, self.table.get(idx, a.fold));
        for k in 0..self.spec.length {
            let v = self.table.get(idx, a.slot(k));
            self.table.set(idx, s.slot(k), v);
        }
    }

    /// Clears a history register (restore path).
    pub fn hist_clear(&mut self, idx: usize, half: HistHalf) {
        let h = self.hist_layout(half);
        self.table.set(idx, h.count, 0);
        self.table.set(idx, h.head, 0);
        self.table.set(idx, h.fold, 0);
        for k in 0..self.spec.length {
            self.table.set(idx, h.slot(k), 0);
        }
    }

    /// Appends a raw slot during restore (logical order, head pinned at
    /// 0). The caller refolds afterwards.
    pub fn hist_restore_slot(&mut self, idx: usize, half: HistHalf, slot: u64) {
        let h = self.hist_layout(half);
        let count = self.table.get(idx, h.count) as usize;
        debug_assert!(count < self.spec.length);
        self.table.set(idx, h.slot(count), slot);
        self.table.set(idx, h.count, count as u64 + 1);
    }

    /// Flips one bit of a recorded address, mirroring
    /// [`crate::history::HistoryBuffer::corrupt_bit`]: `slot`/`bit` wrap
    /// into range, empty registers report `false`. Flips of bits the
    /// fold never observes (outside `2..2+width`) are accepted but
    /// change nothing — exactly the legacy behaviour at the prediction
    /// boundary, where such bits are masked out of every fold.
    pub fn hist_corrupt_bit(&mut self, idx: usize, half: HistHalf, slot: usize, bit: u32) -> bool {
        let count = self.hist_len(idx, half);
        if count == 0 {
            return false;
        }
        let slot = slot % count;
        let bit = bit % 64;
        let width = self.spec.width();
        if bit >= 2 && bit < 2 + width {
            let h = self.hist_layout(half);
            let phys = self.phys_slot(idx, half, slot, count);
            let v = self.table.get(idx, h.slot(phys)) ^ (1u64 << (bit - 2));
            self.table.set(idx, h.slot(phys), v);
            self.hist_refold(idx, half);
        }
        true
    }

    // ---- iteration / fault surface -------------------------------------

    /// Number of live entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        (0..self.config.entries).filter(|&i| self.present(i)).count()
    }

    /// Entry index of the `n`-th live entry in table order (sets-major,
    /// then ways) — the same order the legacy `entries_mut()` iterator
    /// walks, which fault-injection draw parity depends on.
    #[must_use]
    pub fn nth_live(&self, n: usize) -> Option<usize> {
        (0..self.config.entries).filter(|&i| self.present(i)).nth(n)
    }

    /// Indices of live entries, in table order.
    pub fn live_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.config.entries).filter(|&i| self.present(i))
    }

    /// Marks entry `idx` live with tag `ip` (restore path; fields are
    /// filled by the caller through the setters).
    pub fn restore_entry(&mut self, idx: usize, ip: u64) {
        self.table.clear_entry(idx);
        self.table.set(idx, self.layout.present, 1);
        self.table.set(idx, self.layout.tag, ip);
    }
}
