//! Bit-packed flat-table implementations of the predictor structures.
//!
//! The legacy structures (`load_buffer`, `link_table`) model the paper
//! with idiomatic Rust containers — `Vec<Vec<Option<Entry>>>` sets,
//! `VecDeque` histories folded on demand. That layout is ideal for
//! sweepable experiments but hostile to a hot predict path: each lookup
//! chases several pointers, and each fold re-walks a deque.
//!
//! This module repacks both tables the way the hardware in the paper
//! would hold them:
//!
//! * one contiguous cache-line-aligned allocation per table
//!   ([`bits::BitTable`]), entries at fixed word strides;
//! * fields at the paper's widths — 8-bit offset LSBs, 4-bit PF bits,
//!   2-bit selector, counters at `bits_for(max)` bits;
//! * the folded history kept **incrementally** in a packed register
//!   (shift, xor in the newest slot, xor out the evicted slot's aged
//!   contribution) instead of re-folded from raw addresses on demand;
//! * zero heap allocation and zero hashing anywhere on the predict path,
//!   plus a [`crate::types::AddressPredictor::predict_batch`] override
//!   that amortises dispatch across a whole queue drain.
//!
//! [`hybrid::PackedHybridPredictor`] is behaviourally identical to
//! [`crate::hybrid::HybridPredictor`] — bit-identical predictions across
//! every generator family, under fault injection, and through snapshot
//! round-trips (see `tests/packed_differential.rs` and the chaos twin
//! suite in `cap-faults`).

pub mod bits;
pub mod hybrid;
pub mod link_table;
pub mod load_buffer;

pub use hybrid::PackedHybridPredictor;
pub use link_table::PackedLinkTable;
pub use load_buffer::{HistHalf, PackedLoadBuffer};
