//! Bit-packed Link Table: one flat allocation for the ways, one for the
//! optional decoupled PF slots (5 bits each).
//!
//! Logic is a line-for-line transcription of
//! [`crate::link_table::LinkTable`] over packed fields; the differential
//! suite proves the two produce identical links, outcomes and PF
//! decisions. Tags are stored at the configured `tag_bits` width (the
//! fold masks them there anyway), links and LRU at full width.

use crate::history::FoldedHistory;
use crate::link_table::{LinkTableConfig, LtWrite, PfMode};
use crate::packed::bits::{BitTable, Field};

/// PF bits of a base address: bits 2..=5, per §3.5.
#[inline(always)]
fn pf_bits(base: u64) -> u8 {
    ((base >> 2) & 0xF) as u8
}

#[derive(Debug, Clone, Copy)]
struct LtLayout {
    present: Field,
    tag: Field,
    link: Field,
    pf: Field,
    primed: Field,
    lru: Field,
    bits: u32,
}

impl LtLayout {
    fn new(tag_bits: u32) -> Self {
        let mut c = 0u32;
        let present = Field::take(&mut c, 1);
        let tag = Field::take(&mut c, tag_bits);
        let link = Field::take(&mut c, 64);
        let pf = Field::take(&mut c, 4);
        let primed = Field::take(&mut c, 1);
        let lru = Field::take(&mut c, 64);
        Self {
            present,
            tag,
            link,
            pf,
            primed,
            lru,
            bits: c,
        }
    }
}

/// Decoupled PF slot layout: 4 PF bits + 1 primed bit.
const PF_SLOT: Field = Field { off: 0, w: 4 };
const PF_PRIMED: Field = Field { off: 4, w: 1 };

/// The bit-packed Link Table.
#[derive(Debug, Clone)]
pub struct PackedLinkTable {
    config: LinkTableConfig,
    tag_bits: u32,
    layout: LtLayout,
    table: BitTable,
    decoupled: BitTable,
    decoupled_len: usize,
    tick: u64,
}

impl PackedLinkTable {
    /// Creates an empty packed table storing `tag_bits`-wide tags.
    ///
    /// # Panics
    ///
    /// Panics on an invalid geometry (same rules as the legacy table).
    #[must_use]
    pub fn new(config: LinkTableConfig, tag_bits: u32) -> Self {
        assert!(config.entries.is_power_of_two(), "LT entries must be a power of two");
        assert!(config.assoc >= 1, "associativity must be at least 1");
        assert!(
            config.entries.is_multiple_of(config.assoc) && config.sets().is_power_of_two(),
            "LT sets must be a power of two"
        );
        assert!(tag_bits <= 63, "LT tag width must be below 64");
        let decoupled_len = match config.pf_mode {
            PfMode::Decoupled { extra_index_bits } => config.sets() << extra_index_bits,
            _ => 0,
        };
        let layout = LtLayout::new(tag_bits);
        Self {
            table: BitTable::new(config.entries, layout.bits),
            decoupled: BitTable::new(decoupled_len, 5),
            decoupled_len,
            config,
            tag_bits,
            layout,
            tick: 0,
        }
    }

    /// The table's configuration.
    #[must_use]
    pub fn config(&self) -> &LinkTableConfig {
        &self.config
    }

    /// Stored tag width in bits.
    #[must_use]
    pub fn tag_bits(&self) -> u32 {
        self.tag_bits
    }

    /// Bits one packed way occupies (diagnostics / DESIGN.md budgets).
    #[must_use]
    pub fn entry_bits(&self) -> u32 {
        self.layout.bits
    }

    /// Current tick (snapshot support).
    #[must_use]
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Overwrites the tick (snapshot restore).
    pub fn set_tick(&mut self, tick: u64) {
        self.tick = tick;
    }

    #[inline(always)]
    fn set_index(&self, folded: &FoldedHistory) -> usize {
        (folded.index as usize) & (self.config.sets() - 1)
    }

    // ---- per-way accessors ---------------------------------------------

    /// Whether way `idx` is live.
    #[inline(always)]
    #[must_use]
    pub fn present(&self, idx: usize) -> bool {
        self.table.get(idx, self.layout.present) != 0
    }

    /// Stored tag of way `idx`.
    #[inline(always)]
    #[must_use]
    pub fn tag(&self, idx: usize) -> u64 {
        self.table.get(idx, self.layout.tag)
    }

    /// Overwrites the tag (must fit `tag_bits`).
    #[inline(always)]
    pub fn set_tag(&mut self, idx: usize, v: u64) {
        self.table.set(idx, self.layout.tag, v);
    }

    /// Linked base address.
    #[inline(always)]
    #[must_use]
    pub fn link(&self, idx: usize) -> u64 {
        self.table.get(idx, self.layout.link)
    }

    /// Overwrites the link.
    #[inline(always)]
    pub fn set_link(&mut self, idx: usize, v: u64) {
        self.table.set(idx, self.layout.link, v);
    }

    /// Inline PF bits.
    #[inline(always)]
    #[must_use]
    pub fn pf(&self, idx: usize) -> u8 {
        self.table.get(idx, self.layout.pf) as u8
    }

    /// Overwrites the inline PF bits (must be ≤ 0xF).
    #[inline(always)]
    pub fn set_pf(&mut self, idx: usize, v: u8) {
        self.table.set(idx, self.layout.pf, u64::from(v));
    }

    /// Whether the inline PF bits have been written at least once.
    #[inline(always)]
    #[must_use]
    pub fn pf_primed(&self, idx: usize) -> bool {
        self.table.get(idx, self.layout.primed) != 0
    }

    /// Overwrites the primed flag.
    #[inline(always)]
    pub fn set_pf_primed(&mut self, idx: usize, v: bool) {
        self.table.set(idx, self.layout.primed, u64::from(v));
    }

    /// LRU timestamp of way `idx`.
    #[inline(always)]
    #[must_use]
    pub fn lru(&self, idx: usize) -> u64 {
        self.table.get(idx, self.layout.lru)
    }

    /// Overwrites the LRU timestamp (snapshot restore).
    pub fn set_lru(&mut self, idx: usize, v: u64) {
        self.table.set(idx, self.layout.lru, v);
    }

    #[inline(always)]
    fn write_entry(&mut self, idx: usize, tag: u64, link: u64, pf: u8, primed: bool, lru: u64) {
        let l = self.layout;
        self.table.set(idx, l.present, 1);
        self.table.set(idx, l.tag, tag);
        self.table.set(idx, l.link, link);
        self.table.set(idx, l.pf, u64::from(pf));
        self.table.set(idx, l.primed, u64::from(primed));
        self.table.set(idx, l.lru, lru);
    }

    /// Marks way `idx` live with `tag` and zeroed fields (restore path;
    /// the caller fills the rest through the setters).
    pub fn restore_entry(&mut self, idx: usize, tag: u64) {
        self.table.clear_entry(idx);
        self.table.set(idx, self.layout.present, 1);
        self.table.set(idx, self.layout.tag, tag);
    }

    // ---- prediction flow -----------------------------------------------

    /// Looks up the link for a folded history: returns the linked base
    /// only on a tag match, exactly like the legacy table.
    #[must_use]
    pub fn lookup(&self, folded: &FoldedHistory) -> Option<u64> {
        let base = self.set_index(folded) * self.config.assoc;
        for way in 0..self.config.assoc {
            let idx = base + way;
            if self.present(idx) && self.tag(idx) == folded.tag {
                return Some(self.link(idx));
            }
        }
        None
    }

    /// Attempts to record `folded → base`; `true` if the link was written.
    pub fn update(&mut self, folded: &FoldedHistory, base: u64) -> bool {
        self.update_outcome(folded, base).written()
    }

    /// [`PackedLinkTable::update`] reporting what the write did —
    /// transcribed from [`crate::link_table::LinkTable::update_outcome`].
    pub fn update_outcome(&mut self, folded: &FoldedHistory, base: u64) -> LtWrite {
        self.tick += 1;
        let new_pf = pf_bits(base);
        let admit = match self.config.pf_mode {
            PfMode::Off => true,
            PfMode::Inline => {
                let set_base = self.set_index(folded) * self.config.assoc;
                let idx = set_base + self.way_for(set_base, folded.tag);
                if self.present(idx) {
                    let admit = self.pf_primed(idx) && self.pf(idx) == new_pf;
                    self.set_pf(idx, new_pf);
                    self.set_pf_primed(idx, true);
                    admit || (self.tag(idx) == folded.tag && self.link(idx) == base)
                } else {
                    // Empty way: allocate immediately, PF primed.
                    let tick = self.tick;
                    self.write_entry(idx, folded.tag, base, new_pf, true, tick);
                    return LtWrite::Fill;
                }
            }
            PfMode::Decoupled { .. } => {
                let idx = (self.set_index(folded)
                    | ((folded.tag as usize) << self.config.sets().trailing_zeros()))
                    & (self.decoupled_len - 1);
                let (pf, primed) = self.decoupled_slot(idx);
                let admit = primed && pf == new_pf;
                self.set_decoupled_slot(idx, new_pf, true);
                admit
            }
        };
        if !admit {
            return LtWrite::Deferred;
        }
        let tick = self.tick;
        let set_base = self.set_index(folded) * self.config.assoc;
        let idx = set_base + self.way_for(set_base, folded.tag);
        let (pf_state, outcome) = if self.present(idx) {
            let pf_state = (self.pf(idx), self.pf_primed(idx));
            if self.tag(idx) == folded.tag {
                if self.link(idx) == base {
                    (pf_state, LtWrite::Refresh)
                } else {
                    (pf_state, LtWrite::Retrain)
                }
            } else {
                (pf_state, LtWrite::Replace)
            }
        } else {
            ((new_pf, true), LtWrite::Fill)
        };
        self.write_entry(idx, folded.tag, base, pf_state.0, pf_state.1, tick);
        outcome
    }

    /// Way holding `tag`, else an empty way, else the LRU way — identical
    /// selection order to the legacy `way_for`.
    fn way_for(&self, set_base: usize, tag: u64) -> usize {
        for way in 0..self.config.assoc {
            if self.present(set_base + way) && self.tag(set_base + way) == tag {
                return way;
            }
        }
        for way in 0..self.config.assoc {
            if !self.present(set_base + way) {
                return way;
            }
        }
        let mut best = (0usize, u64::MAX);
        for way in 0..self.config.assoc {
            let lru = self.lru(set_base + way);
            if lru < best.1 {
                best = (way, lru);
            }
        }
        best.0
    }

    // ---- decoupled PF slots --------------------------------------------

    /// Number of decoupled PF slots (0 unless [`PfMode::Decoupled`]).
    #[must_use]
    pub fn decoupled_len(&self) -> usize {
        self.decoupled_len
    }

    /// Reads decoupled slot `i` as `(pf_bits, primed)`.
    #[inline(always)]
    #[must_use]
    pub fn decoupled_slot(&self, i: usize) -> (u8, bool) {
        (
            self.decoupled.get(i, PF_SLOT) as u8,
            self.decoupled.get(i, PF_PRIMED) != 0,
        )
    }

    /// Writes decoupled slot `i`.
    #[inline(always)]
    pub fn set_decoupled_slot(&mut self, i: usize, pf: u8, primed: bool) {
        self.decoupled.set(i, PF_SLOT, u64::from(pf));
        self.decoupled.set(i, PF_PRIMED, u64::from(primed));
    }

    // ---- iteration / fault surface -------------------------------------

    /// Number of live ways.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        (0..self.config.entries).filter(|&i| self.present(i)).count()
    }

    /// Index of the `n`-th live way in table order (sets-major, then
    /// ways) — matches the legacy `entries_mut()` iteration order that
    /// fault-injection draw parity depends on.
    #[must_use]
    pub fn nth_live(&self, n: usize) -> Option<usize> {
        (0..self.config.entries).filter(|&i| self.present(i)).nth(n)
    }

    /// Indices of live ways, in table order.
    pub fn live_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.config.entries).filter(|&i| self.present(i))
    }
}
