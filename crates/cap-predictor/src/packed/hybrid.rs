//! The bit-packed hybrid CAP/enhanced-stride predictor.
//!
//! Orchestration is a statement-for-statement transcription of
//! [`crate::hybrid::HybridPredictor`] (which in turn delegates to the CAP
//! and stride components); instead of operating on `&mut LbEntry` it
//! reads packed fields, reconstructs the small `Copy` state machines
//! (saturating counters, CFIs, interval counter) on the stack, operates,
//! and writes the mutated values back. The predict path performs **zero
//! heap allocation and zero hashing** — every step is a handful of
//! shift/mask word reads against two flat tables.
//!
//! Behavioural equivalence with the legacy predictor is enforced by the
//! differential suites (`tests/packed_differential.rs` here and the
//! chaos-driven twin test in `cap-faults`).

use crate::cap::CapParams;
use crate::hybrid::{HybridConfig, LtUpdatePolicy, SelectorPolicy};
use crate::load_buffer::{LbEntryProto, StrideState};
use crate::link_table::LtWrite;
use crate::metrics::names;
use crate::packed::load_buffer::{HistHalf, PackedLoadBuffer};
use crate::packed::link_table::PackedLinkTable;
use crate::stride::StrideParams;
use crate::types::{AddressPredictor, LoadContext, PredSource, Prediction, PredictionDetail};
use cap_obs::Obs;

/// The bit-packed hybrid predictor.
#[derive(Debug, Clone)]
pub struct PackedHybridPredictor {
    cap_params: CapParams,
    stride_params: StrideParams,
    lt_update: LtUpdatePolicy,
    selector_policy: SelectorPolicy,
    lb: PackedLoadBuffer,
    lt: PackedLinkTable,
    obs: Obs,
}

impl PackedHybridPredictor {
    /// Creates the predictor from the same configuration the legacy
    /// hybrid takes.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`crate::hybrid::HybridPredictor::new`] (invalid geometry, history
    /// index bits not covering the LT).
    #[must_use]
    pub fn new(config: HybridConfig) -> Self {
        config.cap.history.validate();
        assert!(
            (1usize << config.cap.history.index_bits) >= config.lt.sets(),
            "history index bits must cover the LT sets"
        );
        let proto = LbEntryProto {
            cap_conf: config.cap.counter(),
            stride_conf: config.stride.counter(),
        };
        Self {
            lb: PackedLoadBuffer::new(
                config.lb,
                proto,
                config.cap.history,
                config.cap.offset_lsb_bits,
            ),
            lt: PackedLinkTable::new(config.lt, config.cap.history.tag_bits),
            cap_params: config.cap,
            stride_params: config.stride,
            lt_update: config.lt_update,
            selector_policy: config.selector,
            obs: Obs::off(),
        }
    }

    /// Read access to the packed Load Buffer (diagnostics).
    #[must_use]
    pub fn load_buffer(&self) -> &PackedLoadBuffer {
        &self.lb
    }

    /// Mutable access to the packed Load Buffer (fault injection / chaos
    /// testing).
    pub fn load_buffer_mut(&mut self) -> &mut PackedLoadBuffer {
        &mut self.lb
    }

    /// Read access to the packed Link Table (diagnostics).
    #[must_use]
    pub fn link_table(&self) -> &PackedLinkTable {
        &self.lt
    }

    /// Mutable access to the packed Link Table (fault injection / chaos
    /// testing).
    pub fn link_table_mut(&mut self) -> &mut PackedLinkTable {
        &mut self.lt
    }

    /// The CAP component's parameters.
    #[must_use]
    pub fn cap_params(&self) -> &CapParams {
        &self.cap_params
    }

    /// The stride component's parameters.
    #[must_use]
    pub fn stride_params(&self) -> &StrideParams {
        &self.stride_params
    }

    /// Number of live Link Table entries (diagnostics).
    #[must_use]
    pub fn cap_link_table_occupancy(&self) -> usize {
        self.lt.occupancy()
    }

    fn select_cap(&self, selector: u8) -> bool {
        match self.selector_policy {
            SelectorPolicy::Dynamic => selector >= 2,
            SelectorPolicy::StaticStride => false,
            SelectorPolicy::StaticCap => true,
        }
    }

    /// The stride component's prediction over packed fields — transcribed
    /// from [`crate::stride::StrideComponent::predict`].
    #[inline]
    fn stride_predict(&self, idx: usize, ctx: &LoadContext) -> (Option<u64>, bool) {
        if !self.lb.stride_seen(idx) || self.lb.stride_state(idx) == StrideState::Init {
            return (None, false);
        }
        let steps = if self.stride_params.catch_up {
            i64::from(ctx.pending) + 1
        } else {
            1
        };
        let addr = self
            .lb
            .last_addr(idx)
            .wrapping_add((self.lb.stride(idx).wrapping_mul(steps)) as u64);
        let confident = self.lb.stride_state(idx) == StrideState::Steady
            && self.lb.stride_conf(idx).is_confident()
            && self.lb.stride_cfi(idx).allows(self.stride_params.cfi, ctx.ghr)
            && !(self.stride_params.interval && self.lb.interval(idx).exhausted(ctx.pending));
        (Some(addr), confident)
    }

    /// The CAP component's prediction over packed fields — transcribed
    /// from [`crate::cap::CapComponent::predict`], with the fold read
    /// straight out of the incremental register instead of recomputed.
    #[inline]
    fn cap_predict(&mut self, idx: usize, ctx: &LoadContext) -> (Option<u64>, bool) {
        let half = if self.cap_params.speculative_history {
            HistHalf::Spec
        } else {
            HistHalf::Arch
        };
        if !self.lb.hist_is_warm(idx, half) {
            return (None, false);
        }
        let folded = self.lb.hist_fold(idx, half);
        let Some(link) = self.lt.lookup(&folded) else {
            self.obs.incr(names::CAP_LT_MISS);
            return (None, false);
        };
        self.obs.incr(names::CAP_LT_HIT);
        let addr = link.wrapping_add(u64::from(self.lb.offset_lsb(idx)));
        let confident = !self.cap_params.confidence_enabled
            || (self.lb.cap_conf(idx).is_confident()
                && self.lb.cap_cfi(idx).allows(self.cap_params.cfi, ctx.ghr));
        if self.cap_params.speculative_history {
            self.lb.hist_push(idx, HistHalf::Spec, link);
        }
        (Some(addr), confident)
    }

    /// One prediction, shared by [`AddressPredictor::predict`] and the
    /// batch entry point — transcribed from the legacy hybrid.
    #[inline]
    fn predict_inner(&mut self, ctx: &LoadContext) -> Prediction {
        let Some(idx) = self.lb.find(ctx.ip) else {
            self.obs.incr(names::LB_MISS);
            return Prediction::none();
        };
        self.obs.incr(names::LB_HIT);
        let (stride_addr, stride_conf) = self.stride_predict(idx, ctx);
        let (cap_addr, cap_conf) = self.cap_predict(idx, ctx);
        let selector_state = self.lb.selector(idx);
        let next_invocation = stride_addr
            .filter(|_| stride_conf)
            .map(|a| a.wrapping_add(self.lb.stride(idx) as u64));

        let prefer_cap = self.select_cap(selector_state);
        let (addr, source, speculate) = match (
            stride_addr.filter(|_| stride_conf),
            cap_addr.filter(|_| cap_conf),
        ) {
            (Some(s), Some(c)) => {
                if prefer_cap {
                    (Some(c), PredSource::Cap, true)
                } else {
                    (Some(s), PredSource::Stride, true)
                }
            }
            (Some(s), None) => (Some(s), PredSource::Stride, true),
            (None, Some(c)) => (Some(c), PredSource::Cap, true),
            (None, None) => match (stride_addr, cap_addr) {
                (Some(_), Some(c)) if prefer_cap => (Some(c), PredSource::Cap, false),
                (Some(s), _) => (Some(s), PredSource::Stride, false),
                (None, Some(c)) => (Some(c), PredSource::Cap, false),
                (None, None) => (None, PredSource::None, false),
            },
        };
        Prediction {
            addr,
            speculate,
            source,
            detail: PredictionDetail {
                stride_addr,
                stride_confident: stride_conf,
                cap_addr,
                cap_confident: cap_conf,
                selector_state: Some(selector_state),
                next_invocation,
            },
        }
    }

    /// CAP-side resolution — transcribed from
    /// [`crate::cap::CapComponent::update`].
    fn cap_update(
        &mut self,
        idx: usize,
        ctx: &LoadContext,
        actual: u64,
        component_pred: Option<u64>,
        speculated: bool,
        update_lt: bool,
    ) {
        self.lb
            .set_offset_lsb(idx, self.cap_params.offset_lsb(ctx.offset));
        let actual_base = self.cap_params.base_of(actual, ctx.offset);

        if let Some(p) = component_pred {
            let correct = p == actual;
            let mut conf = self.lb.cap_conf(idx);
            let was_confident = conf.is_confident();
            if correct {
                conf.on_correct();
            } else {
                conf.on_incorrect();
            }
            if self.obs.enabled() && conf.is_confident() != was_confident {
                self.obs.incr(if was_confident {
                    names::CAP_CONF_DEMOTE
                } else {
                    names::CAP_CONF_PROMOTE
                });
            }
            self.lb.set_cap_conf_value(idx, conf.value());
            if correct {
                let mut cfi = self.lb.cap_cfi(idx);
                cfi.record(self.cap_params.cfi, ctx.ghr, true);
                self.lb.set_cap_cfi(idx, cfi);
            } else if speculated {
                let mut cfi = self.lb.cap_cfi(idx);
                cfi.record(self.cap_params.cfi, ctx.ghr, false);
                self.lb.set_cap_cfi(idx, cfi);
            }
        }

        if update_lt && self.lb.hist_is_warm(idx, HistHalf::Arch) {
            let folded = self.lb.hist_fold(idx, HistHalf::Arch);
            let outcome = self.lt.update_outcome(&folded, actual_base);
            if self.obs.enabled() {
                self.obs.incr(match outcome {
                    LtWrite::Fill => names::CAP_LT_FILL,
                    LtWrite::Refresh => names::CAP_LT_REFRESH,
                    LtWrite::Retrain => names::CAP_LT_RETRAIN,
                    LtWrite::Replace => names::CAP_LT_REPLACE,
                    LtWrite::Deferred => names::CAP_LT_DEFERRED,
                });
            }
        }

        self.lb.hist_push(idx, HistHalf::Arch, actual_base);

        if self.cap_params.speculative_history && component_pred != Some(actual) {
            self.lb.spec_copy_from_arch(idx);
        }
    }

    /// Stride-side resolution — transcribed from
    /// [`crate::stride::StrideComponent::update`].
    fn stride_update(
        &mut self,
        idx: usize,
        ctx: &LoadContext,
        actual: u64,
        component_pred: Option<u64>,
        speculated: bool,
    ) {
        if let Some(p) = component_pred {
            let correct = p == actual;
            let mut conf = self.lb.stride_conf(idx);
            let was_confident = conf.is_confident();
            if correct {
                conf.on_correct();
                if self.stride_params.interval {
                    let mut iv = self.lb.interval(idx);
                    iv.on_correct();
                    self.lb.set_interval(idx, iv);
                }
            } else {
                conf.on_incorrect();
                if self.stride_params.interval {
                    let mut iv = self.lb.interval(idx);
                    iv.on_incorrect();
                    self.lb.set_interval(idx, iv);
                }
            }
            if self.obs.enabled() && conf.is_confident() != was_confident {
                self.obs.incr(if was_confident {
                    names::STRIDE_CONF_DEMOTE
                } else {
                    names::STRIDE_CONF_PROMOTE
                });
            }
            self.lb.set_stride_conf_value(idx, conf.value());
            if correct {
                let mut cfi = self.lb.stride_cfi(idx);
                cfi.record(self.stride_params.cfi, ctx.ghr, true);
                self.lb.set_stride_cfi(idx, cfi);
            } else if speculated {
                let mut cfi = self.lb.stride_cfi(idx);
                cfi.record(self.stride_params.cfi, ctx.ghr, false);
                self.lb.set_stride_cfi(idx, cfi);
            }
        }
        if self.lb.stride_seen(idx) {
            let was_steady = self.lb.stride_state(idx) == StrideState::Steady;
            let delta = actual.wrapping_sub(self.lb.last_addr(idx)) as i64;
            match self.lb.stride_state(idx) {
                StrideState::Init => {
                    self.lb.set_stride(idx, delta);
                    self.lb.set_stride_state(idx, StrideState::Transient);
                }
                StrideState::Transient | StrideState::Steady => {
                    if delta == self.lb.stride(idx) {
                        self.lb.set_stride_state(idx, StrideState::Steady);
                    } else {
                        self.lb.set_stride(idx, delta);
                        self.lb.set_stride_state(idx, StrideState::Transient);
                    }
                }
            }
            if self.obs.enabled()
                && (self.lb.stride_state(idx) == StrideState::Steady) != was_steady
            {
                self.obs.incr(if was_steady {
                    names::STRIDE_STEADY_EXIT
                } else {
                    names::STRIDE_STEADY_ENTER
                });
            }
        }
        self.lb.set_last_addr(idx, actual);
        self.lb.set_stride_seen(idx, true);
    }
}

impl AddressPredictor for PackedHybridPredictor {
    fn predict(&mut self, ctx: &LoadContext) -> Prediction {
        self.predict_inner(ctx)
    }

    fn predict_batch(&mut self, ctxs: &[LoadContext], out: &mut Vec<Prediction>) {
        // One reservation, one monomorphised inner loop: batch callers
        // skip per-call dyn dispatch entirely.
        out.reserve(ctxs.len());
        for ctx in ctxs {
            let pred = self.predict_inner(ctx);
            out.push(pred);
        }
    }

    fn update(&mut self, ctx: &LoadContext, actual: u64, pred: &Prediction) {
        let (idx, fresh) = self.lb.find_or_insert(ctx.ip);
        if fresh {
            self.obs.incr(names::LB_ALLOC);
        }
        let d = &pred.detail;
        let stride_correct = d.stride_addr == Some(actual);
        let cap_correct = d.cap_addr == Some(actual);

        let update_lt = match self.lt_update {
            LtUpdatePolicy::Always => true,
            LtUpdatePolicy::UnlessStrideCorrect => !stride_correct,
            LtUpdatePolicy::UnlessStrideCorrectAndSelected => {
                !(stride_correct && pred.source == PredSource::Stride)
            }
        };

        let cap_speculated = pred.speculate && pred.source == PredSource::Cap;
        let stride_speculated = pred.speculate && pred.source == PredSource::Stride;
        self.cap_update(idx, ctx, actual, d.cap_addr, cap_speculated, update_lt);
        self.stride_update(idx, ctx, actual, d.stride_addr, stride_speculated);

        if d.stride_addr.is_some() && d.cap_addr.is_some() {
            if cap_correct && !stride_correct {
                let selector = self.lb.selector(idx);
                if selector < 3 {
                    self.obs.incr(names::HYBRID_SELECTOR_UP);
                }
                self.lb.set_selector(idx, (selector + 1).min(3));
            } else if stride_correct && !cap_correct {
                let selector = self.lb.selector(idx);
                if selector > 0 {
                    self.obs.incr(names::HYBRID_SELECTOR_DOWN);
                }
                self.lb.set_selector(idx, selector.saturating_sub(1));
            }
        }
    }

    fn name(&self) -> &'static str {
        "packed-hybrid"
    }

    fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }
}

use cap_snapshot::{Restorable, SectionReader, SectionWriter, Snapshot, SnapshotError};

impl Snapshot for PackedHybridPredictor {
    fn write_state(&self, w: &mut SectionWriter) {
        self.cap_params.write_state(w);
        self.stride_params.write_state(w);
        w.put_len(self.lb.config().entries);
        w.put_len(self.lb.config().assoc);
        self.lt.config().write_state(w);
        self.lb.proto().cap_conf.write_state(w);
        self.lb.proto().stride_conf.write_state(w);
        self.lt_update.write_state(w);
        self.selector_policy.write_state(w);

        w.put_u64(self.lb.tick());
        for idx in 0..self.lb.config().entries {
            if !self.lb.present(idx) {
                w.put_bool(false);
                continue;
            }
            w.put_bool(true);
            w.put_u64(self.lb.tag(idx));
            w.put_u32(self.lb.offset_lsb(idx));
            w.put_u8(self.lb.cap_conf_value(idx));
            w.put_u8(self.lb.stride_conf_value(idx));
            for cfi in [self.lb.cap_cfi(idx), self.lb.stride_cfi(idx)] {
                w.put_opt_u64(cfi.bad_pattern());
                w.put_u64(cfi.path_bits());
                w.put_bool(cfi.initialised());
            }
            w.put_bool(self.lb.stride_seen(idx));
            w.put_u64(self.lb.last_addr(idx));
            w.put_i64(self.lb.stride(idx));
            w.put_u8(match self.lb.stride_state(idx) {
                StrideState::Init => 0,
                StrideState::Transient => 1,
                StrideState::Steady => 2,
            });
            let iv = self.lb.interval(idx);
            w.put_u32(iv.learned);
            w.put_u32(iv.run);
            w.put_u8(self.lb.selector(idx));
            w.put_u64(self.lb.lru(idx));
            // Histories in logical (oldest-first) order; the fold register
            // is recomputed on restore, so it needs no wire format.
            for half in [HistHalf::Arch, HistHalf::Spec] {
                let n = self.lb.hist_len(idx, half);
                w.put_len(n);
                for k in 0..n {
                    w.put_u64(self.lb.hist_slot(idx, half, k));
                }
            }
        }

        w.put_u64(self.lt.tick());
        for idx in 0..self.lt.config().entries {
            if !self.lt.present(idx) {
                w.put_bool(false);
                continue;
            }
            w.put_bool(true);
            w.put_u64(self.lt.tag(idx));
            w.put_u64(self.lt.link(idx));
            w.put_u8(self.lt.pf(idx));
            w.put_bool(self.lt.pf_primed(idx));
            w.put_u64(self.lt.lru(idx));
        }
        for i in 0..self.lt.decoupled_len() {
            let (pf, primed) = self.lt.decoupled_slot(i);
            w.put_u8(pf);
            w.put_bool(primed);
        }
    }
}

impl Restorable for PackedHybridPredictor {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        use crate::confidence::{ControlFlowIndication, SaturatingCounter};
        use crate::load_buffer::{IntervalCounter, LoadBufferConfig};
        use crate::link_table::LinkTableConfig;

        let cap_params = CapParams::read_state(r)?;
        let stride_params = StrideParams::read_state(r)?;
        let lb_entries = r.take_u64("packed lb entries")?;
        let lb_assoc = r.take_u64("packed lb associativity")?;
        if !lb_entries.is_power_of_two() || lb_entries > 1 << 24 {
            return Err(r.bad_value(format!(
                "packed lb entries {lb_entries} not a power of two <= 2^24"
            )));
        }
        if lb_assoc == 0
            || lb_assoc > lb_entries
            || lb_entries % lb_assoc != 0
            || !(lb_entries / lb_assoc).is_power_of_two()
        {
            return Err(r.bad_value(format!(
                "packed lb associativity {lb_assoc} incompatible with {lb_entries} entries"
            )));
        }
        let lb_config = LoadBufferConfig {
            entries: lb_entries as usize,
            assoc: lb_assoc as usize,
        };
        let lt_config = LinkTableConfig::read_state(r)?;
        if (1usize << cap_params.history.index_bits) < lt_config.sets() {
            return Err(r.bad_value(format!(
                "history index bits {} cannot cover {} LT sets",
                cap_params.history.index_bits,
                lt_config.sets()
            )));
        }
        let proto = LbEntryProto {
            cap_conf: SaturatingCounter::read_state(r)?,
            stride_conf: SaturatingCounter::read_state(r)?,
        };
        let lt_update = LtUpdatePolicy::read_state(r)?;
        let selector_policy = SelectorPolicy::read_state(r)?;

        let spec = cap_params.history;
        let width_mask = (1u64 << spec.width()) - 1;
        let mut lb = PackedLoadBuffer::new(lb_config, proto, spec, cap_params.offset_lsb_bits);
        lb.set_tick(r.take_u64("packed lb tick")?);
        for idx in 0..lb_config.entries {
            if !r.take_bool("packed lb entry presence")? {
                continue;
            }
            lb.restore_entry(idx, r.take_u64("packed lb entry tag")?);
            let offset = r.take_u32("packed lb entry offset lsb")?;
            if u64::from(offset) > (1u64 << cap_params.offset_lsb_bits) - 1 {
                return Err(r.bad_value(format!(
                    "packed offset lsb {offset} exceeds {} bits",
                    cap_params.offset_lsb_bits
                )));
            }
            lb.set_offset_lsb(idx, offset);
            let cap_v = r.take_u8("packed cap conf value")?;
            if cap_v > proto.cap_conf.max() {
                return Err(r.bad_value(format!(
                    "packed cap conf value {cap_v} above max {}",
                    proto.cap_conf.max()
                )));
            }
            lb.set_cap_conf_value(idx, cap_v);
            let stride_v = r.take_u8("packed stride conf value")?;
            if stride_v > proto.stride_conf.max() {
                return Err(r.bad_value(format!(
                    "packed stride conf value {stride_v} above max {}",
                    proto.stride_conf.max()
                )));
            }
            lb.set_stride_conf_value(idx, stride_v);
            let read_cfi = |r: &mut SectionReader<'_>| -> Result<_, SnapshotError> {
                Ok(ControlFlowIndication::from_parts(
                    r.take_opt_u64("packed cfi bad pattern")?,
                    r.take_u64("packed cfi path bits")?,
                    r.take_bool("packed cfi initialised")?,
                ))
            };
            let cap_cfi = read_cfi(r)?;
            lb.set_cap_cfi(idx, cap_cfi);
            let stride_cfi = read_cfi(r)?;
            lb.set_stride_cfi(idx, stride_cfi);
            lb.set_stride_seen(idx, r.take_bool("packed stride seen")?);
            lb.set_last_addr(idx, r.take_u64("packed last addr")?);
            lb.set_stride(idx, r.take_i64("packed stride")?);
            lb.set_stride_state(
                idx,
                match r.take_u8("packed stride state")? {
                    0 => StrideState::Init,
                    1 => StrideState::Transient,
                    2 => StrideState::Steady,
                    s => return Err(r.bad_value(format!("packed stride state {s} unknown"))),
                },
            );
            lb.set_interval(
                idx,
                IntervalCounter {
                    learned: r.take_u32("packed interval learned")?,
                    run: r.take_u32("packed interval run")?,
                },
            );
            let selector = r.take_u8("packed selector")?;
            if selector > 3 {
                return Err(r.bad_value(format!("packed selector {selector} above 3")));
            }
            lb.set_selector(idx, selector);
            lb.set_lru(idx, r.take_u64("packed lb entry lru")?);
            for half in [HistHalf::Arch, HistHalf::Spec] {
                let n = r.take_len(8, "packed history slot count")?;
                if n > spec.length {
                    return Err(r.bad_value(format!(
                        "packed history slot count {n} above length {}",
                        spec.length
                    )));
                }
                for _ in 0..n {
                    let slot = r.take_u64("packed history slot")?;
                    if slot > width_mask {
                        return Err(r.bad_value(format!(
                            "packed history slot {slot:#x} exceeds fold width {}",
                            spec.width()
                        )));
                    }
                    lb.hist_restore_slot(idx, half, slot);
                }
                lb.hist_refold(idx, half);
            }
        }

        let mut lt = PackedLinkTable::new(lt_config, spec.tag_bits);
        lt.set_tick(r.take_u64("packed lt tick")?);
        let tag_limit = if spec.tag_bits == 0 {
            1
        } else {
            1u64 << spec.tag_bits
        };
        for idx in 0..lt_config.entries {
            if !r.take_bool("packed lt way presence")? {
                continue;
            }
            let tag = r.take_u64("packed lt tag")?;
            if tag >= tag_limit {
                return Err(r.bad_value(format!(
                    "packed lt tag {tag:#x} exceeds {} bits",
                    spec.tag_bits
                )));
            }
            lt.restore_entry(idx, tag);
            lt.set_link(idx, r.take_u64("packed lt link")?);
            let pf = r.take_u8("packed lt pf bits")?;
            if pf > 0xF {
                return Err(r.bad_value(format!("packed lt pf bits {pf:#x} above 0xF")));
            }
            lt.set_pf(idx, pf);
            lt.set_pf_primed(idx, r.take_bool("packed lt pf primed")?);
            lt.set_lru(idx, r.take_u64("packed lt lru")?);
        }
        for i in 0..lt.decoupled_len() {
            let pf = r.take_u8("packed decoupled pf bits")?;
            if pf > 0xF {
                return Err(r.bad_value(format!("packed decoupled pf bits {pf:#x} above 0xF")));
            }
            let primed = r.take_bool("packed decoupled pf primed")?;
            lt.set_decoupled_slot(i, pf, primed);
        }

        // Telemetry is not snapshotted: restores come up with it off.
        Ok(Self {
            cap_params,
            stride_params,
            lt_update,
            selector_policy,
            lb,
            lt,
            obs: Obs::off(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::HybridPredictor;

    fn step(
        p: &mut impl AddressPredictor,
        ip: u64,
        actual: u64,
    ) -> Prediction {
        let ctx = LoadContext::new(ip, 0, 0);
        let pred = p.predict(&ctx);
        p.update(&ctx, actual, &pred);
        pred
    }

    #[test]
    fn covers_stride_patterns() {
        let mut p = PackedHybridPredictor::new(HybridConfig::paper_default());
        let mut last = Prediction::none();
        for i in 0..2000u64 {
            last = step(&mut p, 0x40, 0x10_0000 + i * 8);
        }
        assert!(last.speculate);
        assert!(last.is_correct(0x10_0000 + 1999 * 8));
        assert_eq!(last.source, PredSource::Stride);
    }

    #[test]
    fn covers_nonstride_patterns_via_cap() {
        let mut p = PackedHybridPredictor::new(HybridConfig::paper_default());
        let pattern = [0x100u64, 0x880, 0x480, 0x280, 0x940];
        let mut last = Prediction::none();
        for _ in 0..10 {
            for &a in &pattern {
                last = step(&mut p, 0x40, a);
            }
        }
        assert!(last.speculate);
        assert_eq!(last.source, PredSource::Cap);
    }

    #[test]
    fn matches_legacy_on_a_mixed_trace() {
        let mut legacy = HybridPredictor::new(HybridConfig::paper_default());
        let mut packed = PackedHybridPredictor::new(HybridConfig::paper_default());
        // Three interleaved loads: stride, recurring pattern, noise-ish.
        let pattern = [0x9100u64, 0x2880, 0x7480, 0x1280];
        for i in 0..3000u64 {
            let (ip, actual) = match i % 3 {
                0 => (0x40, 0x5000 + (i / 3) * 16),
                1 => (0x44, pattern[(i as usize / 3) % pattern.len()]),
                _ => (0x48, (i.wrapping_mul(2_654_435_761) << 2) & 0xFFFF_FFFC),
            };
            let ctx = LoadContext::new(ip, 0, i & 0xF);
            let lp = legacy.predict(&ctx);
            let pp = packed.predict(&ctx);
            assert_eq!(lp, pp, "prediction diverged at step {i}");
            legacy.update(&ctx, actual, &lp);
            packed.update(&ctx, actual, &pp);
        }
    }

    #[test]
    fn batch_predict_matches_sequential() {
        let mut a = PackedHybridPredictor::new(HybridConfig::paper_default());
        let mut b = PackedHybridPredictor::new(HybridConfig::paper_default());
        for i in 0..64u64 {
            step(&mut a, 0x40, 0x2000 + i * 8);
            step(&mut b, 0x40, 0x2000 + i * 8);
        }
        let ctxs: Vec<LoadContext> = (0..8u64)
            .map(|i| LoadContext::new(0x40 + (i % 2) * 4, 0, i))
            .collect();
        let mut batched = Vec::new();
        a.predict_batch(&ctxs, &mut batched);
        let sequential: Vec<Prediction> = ctxs.iter().map(|c| b.predict(c)).collect();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn snapshot_roundtrips_and_reencodes_canonically() {
        use cap_snapshot::{Restorable, Snapshot};
        let mut p = PackedHybridPredictor::new(HybridConfig::paper_pipelined());
        let pattern = [0x100u64, 0x880, 0x480, 0x280];
        for i in 0..400u64 {
            step(&mut p, 0x40, pattern[i as usize % pattern.len()]);
            step(&mut p, 0x44, 0x9000 + i * 4);
        }
        let payload = p.to_payload();
        let mut q =
            PackedHybridPredictor::from_payload(&payload, "packed-hybrid").expect("restore");
        assert_eq!(q.to_payload(), payload, "re-encode must be canonical");
        // The restored predictor must continue identically.
        for i in 0..40u64 {
            let ctx = LoadContext::new(0x40, 0, 0);
            assert_eq!(p.predict(&ctx), q.predict(&ctx));
            let actual = pattern[i as usize % pattern.len()];
            let pred = p.predict(&ctx);
            p.update(&ctx, actual, &pred);
            q.update(&ctx, actual, &pred);
        }
    }

    #[test]
    fn predict_path_stays_flat() {
        // The packed predict path must not allocate: drive a warm
        // predictor and check the tables report a stable word footprint
        // (structural proxy — the real property is no Vec/HashMap in the
        // path, enforced by the types used).
        let mut p = PackedHybridPredictor::new(HybridConfig::paper_default());
        for i in 0..100u64 {
            step(&mut p, 0x40, 0x1000 + i * 8);
        }
        let words = p.load_buffer().entry_bits();
        for _ in 0..1000 {
            let _ = p.predict(&LoadContext::new(0x40, 0, 0));
        }
        assert_eq!(p.load_buffer().entry_bits(), words);
    }
}
