//! Snapshot round-trip fidelity for the predictor structures.
//!
//! Two properties are checked for every predictor flavour:
//!
//! 1. **Canonical encoding** — encode → decode → encode is byte-identical,
//!    so a snapshot of a restored predictor equals the original snapshot.
//! 2. **Behavioural equivalence** — a run paused at an arbitrary event,
//!    snapshotted, restored into fresh objects, and resumed produces
//!    *bit-identical* final statistics to the uninterrupted run.

use cap_predictor::cap::{CapConfig, CapPredictor};
use cap_predictor::drive::ControlState;
use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
use cap_predictor::load_buffer::LoadBufferConfig;
use cap_predictor::metrics::PredictorStats;
use cap_predictor::stride::{StrideParams, StridePredictor};
use cap_predictor::types::{AddressPredictor, LoadContext};
use cap_snapshot::{Restorable, Snapshot, SnapshotArchive, SnapshotBuilder};
use cap_trace::{Trace, TraceEvent};

fn trace() -> Trace {
    cap_trace::suites::catalog()[1].generate(20_000)
}

/// Mirrors an immediate-update `Session`, pausing after `pause_at` events to hand the
/// live state to `checkpoint`, which may replace predictor/control/stats.
fn run_with_pause<P, F>(
    predictor: &mut P,
    trace: &Trace,
    pause_at: usize,
    mut checkpoint: F,
) -> PredictorStats
where
    P: AddressPredictor + Snapshot + Restorable,
    F: FnMut(&mut P, &mut ControlState, &mut PredictorStats),
{
    let mut stats = PredictorStats::new();
    let mut control = ControlState::default();
    for (i, event) in trace.iter().enumerate() {
        if i == pause_at {
            checkpoint(predictor, &mut control, &mut stats);
        }
        match event {
            TraceEvent::Load(load) => {
                let ctx = LoadContext {
                    ip: load.ip,
                    offset: load.offset,
                    ghr: control.ghr,
                    path: control.path,
                    pending: 0,
                };
                let pred = predictor.predict(&ctx);
                predictor.update(&ctx, load.addr, &pred);
                stats.record(&pred, load.addr);
            }
            TraceEvent::Branch(b) => control.on_branch(b.ip, b.taken, b.kind),
            TraceEvent::Store(_) | TraceEvent::Op(_) => {}
        }
    }
    stats
}

fn assert_resume_is_bit_identical<P, M>(make: M)
where
    P: AddressPredictor + Snapshot + Restorable,
    M: Fn() -> P,
{
    let trace = trace();
    let mut uninterrupted = make();
    let reference = run_with_pause(&mut uninterrupted, &trace, usize::MAX, |_, _, _| {});

    for pause_at in [0, 1, 137, trace.len() / 2, trace.len() - 1] {
        let mut p = make();
        let stats = run_with_pause(&mut p, &trace, pause_at, |p, control, stats| {
            let mut b = SnapshotBuilder::new();
            b.add("predictor", p);
            b.add("control", control as &ControlState);
            b.add("stats", stats as &PredictorStats);
            let bytes = b.finish();

            let archive = SnapshotArchive::parse(&bytes).expect("own snapshot parses");
            *p = archive.restore::<P>("predictor").expect("predictor restores");
            *control = archive.restore("control").expect("control restores");
            *stats = archive.restore("stats").expect("stats restore");
        });
        assert_eq!(
            stats, reference,
            "resume at event {pause_at} must be bit-identical"
        );
    }
}

fn assert_reencode_is_identical<P, M>(make: M)
where
    P: AddressPredictor + Snapshot + Restorable,
    M: Fn() -> P,
{
    let trace = trace();
    let mut p = make();
    cap_predictor::drive::Session::new(&mut p).run(&trace);
    let first = p.to_payload();
    let restored = P::from_payload(&first, "predictor").expect("payload restores");
    assert_eq!(
        restored.to_payload(),
        first,
        "decode must reproduce the exact encoding"
    );
}

fn small_hybrid() -> HybridPredictor {
    let mut cfg = HybridConfig::paper_default();
    cfg.lb.entries = 256;
    cfg.lt.entries = 1024;
    cfg.lt.assoc = 2;
    cfg.cap.history.index_bits = 10;
    HybridPredictor::new(cfg)
}

fn small_cap() -> CapPredictor {
    let mut cfg = CapConfig::paper_default();
    cfg.lb.entries = 256;
    cfg.lt.entries = 1024;
    cfg.lt.assoc = 2;
    cfg.params.history.index_bits = 10;
    CapPredictor::new(cfg)
}

fn small_stride() -> StridePredictor {
    StridePredictor::new(
        LoadBufferConfig {
            entries: 256,
            assoc: 2,
        },
        StrideParams::paper_default(),
    )
}

#[test]
fn hybrid_resume_is_bit_identical() {
    assert_resume_is_bit_identical(small_hybrid);
}

#[test]
fn cap_resume_is_bit_identical() {
    assert_resume_is_bit_identical(small_cap);
}

#[test]
fn stride_resume_is_bit_identical() {
    assert_resume_is_bit_identical(small_stride);
}

#[test]
fn hybrid_reencode_is_identical() {
    assert_reencode_is_identical(small_hybrid);
}

#[test]
fn cap_reencode_is_identical() {
    assert_reencode_is_identical(small_cap);
}

#[test]
fn stride_reencode_is_identical() {
    assert_reencode_is_identical(small_stride);
}

#[test]
fn stats_roundtrip_preserves_every_counter() {
    let s = PredictorStats {
        loads: 1,
        predictions: 2,
        spec_accesses: 3,
        correct_spec: 4,
        correct_predictions: 5,
        both_predicted_spec: 6,
        selector_states: [7, 8, 9, 10],
        miss_selections: 11,
    };
    let restored = PredictorStats::from_payload(&s.to_payload(), "stats").unwrap();
    assert_eq!(restored, s);
}
