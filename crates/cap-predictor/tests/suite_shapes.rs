//! Cross-crate sanity: predictor behaviour over the 8 synthetic suites
//! must reproduce the paper's qualitative shapes (Figure 5).

use cap_predictor::prelude::*;
use cap_trace::suites::Suite;

const LOADS: usize = 60_000;

fn suite_stats<F>(suite: Suite, mut make: F) -> PredictorStats
where
    F: FnMut() -> Box<dyn AddressPredictor>,
{
    let mut total = PredictorStats::new();
    for spec in suite.traces().into_iter().take(2) {
        let trace = spec.generate(LOADS);
        let mut p = make();
        total.merge(&Session::new(p.as_mut()).run(&trace));
    }
    total
}

fn stride() -> Box<dyn AddressPredictor> {
    Box::new(StridePredictor::new(
        LoadBufferConfig::paper_default(),
        StrideParams::paper_default(),
    ))
}

fn cap() -> Box<dyn AddressPredictor> {
    Box::new(CapPredictor::new(CapConfig::paper_default()))
}

fn hybrid() -> Box<dyn AddressPredictor> {
    Box::new(HybridPredictor::new(HybridConfig::paper_default()))
}

#[test]
fn int_suite_cap_beats_stride() {
    let s = suite_stats(Suite::Int, stride);
    let c = suite_stats(Suite::Int, cap);
    assert!(
        c.prediction_rate() > s.prediction_rate(),
        "INT: CAP {:.3} must beat stride {:.3}",
        c.prediction_rate(),
        s.prediction_rate()
    );
}

#[test]
fn mm_suite_stride_beats_cap() {
    let s = suite_stats(Suite::Mm, stride);
    let c = suite_stats(Suite::Mm, cap);
    assert!(
        s.prediction_rate() > c.prediction_rate(),
        "MM: stride {:.3} must beat CAP {:.3}",
        s.prediction_rate(),
        c.prediction_rate()
    );
}

#[test]
fn hybrid_beats_both_components_on_average() {
    let mut s = PredictorStats::new();
    let mut c = PredictorStats::new();
    let mut h = PredictorStats::new();
    for suite in Suite::ALL {
        s.merge(&suite_stats(suite, stride));
        c.merge(&suite_stats(suite, cap));
        h.merge(&suite_stats(suite, hybrid));
    }
    eprintln!(
        "avg pred rate: stride {:.3} cap {:.3} hybrid {:.3}",
        s.prediction_rate(),
        c.prediction_rate(),
        h.prediction_rate()
    );
    eprintln!(
        "avg accuracy:  stride {:.4} cap {:.4} hybrid {:.4}",
        s.accuracy(),
        c.accuracy(),
        h.accuracy()
    );
    assert!(h.prediction_rate() > s.prediction_rate());
    assert!(h.prediction_rate() >= c.prediction_rate() - 0.01);
    assert!(h.accuracy() > 0.95, "hybrid accuracy {:.4}", h.accuracy());
}

#[test]
fn per_suite_shapes_snapshot() {
    // Not an assertion-heavy test: prints the Figure-5 shape for manual
    // calibration runs (`cargo test -p cap-predictor --test suite_shapes
    // -- --nocapture per_suite`).
    for suite in Suite::ALL {
        let s = suite_stats(suite, stride);
        let c = suite_stats(suite, cap);
        let h = suite_stats(suite, hybrid);
        eprintln!(
            "{:>4}: stride {:.3}/{:.4}  cap {:.3}/{:.4}  hybrid {:.3}/{:.4}",
            suite.name(),
            s.prediction_rate(),
            s.accuracy(),
            c.prediction_rate(),
            c.accuracy(),
            h.prediction_rate(),
            h.accuracy()
        );
    }
}
