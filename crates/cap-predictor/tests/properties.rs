//! Property-based tests for the predictor crate's core data structures
//! and invariants, driven by the in-repo `cap_check` harness.

use cap_predictor::confidence::SaturatingCounter;
use cap_predictor::history::{HistoryBuffer, HistorySpec};
use cap_predictor::prelude::*;
use cap_rand::check;
use cap_rand::Rng;

fn small_hybrid() -> HybridPredictor {
    let mut cfg = HybridConfig::paper_default();
    cfg.lb.entries = 256;
    cfg.lt.entries = 512;
    cfg.cap.history.index_bits = 9;
    HybridPredictor::new(cfg)
}

/// The folded history always fits in the configured index/tag widths.
#[test]
fn fold_respects_widths() {
    check::run("fold_respects_widths", |rng| {
        let addrs = check::vec_of(rng, 1..32, |r| r.gen::<u64>());
        let spec = HistorySpec {
            length: rng.gen_range(1usize..8),
            shift: rng.gen_range(1u32..8),
            index_bits: rng.gen_range(4u32..14),
            tag_bits: rng.gen_range(0u32..10),
        };
        let mut h = HistoryBuffer::new();
        for a in addrs {
            h.push(a, &spec);
            assert!(h.len() <= spec.length);
        }
        let f = h.fold(&spec);
        assert!(f.index < (1u64 << spec.index_bits));
        assert!(spec.tag_bits == 0 && f.tag == 0 || f.tag < (1u64 << spec.tag_bits.max(1)));
    });
}

/// Folding depends only on the retained window: any two push sequences
/// with the same last `length` addresses fold identically.
#[test]
fn fold_depends_only_on_window() {
    check::run("fold_depends_only_on_window", |rng| {
        let prefix_a = check::vec_of(rng, 0..16, |r| r.gen::<u64>());
        let prefix_b = check::vec_of(rng, 0..16, |r| r.gen::<u64>());
        let window = check::vec_of(rng, 4..8, |r| r.gen::<u64>());
        let spec = HistorySpec {
            length: 4,
            shift: 3,
            index_bits: 12,
            tag_bits: 8,
        };
        let tail = &window[window.len() - 4..];
        let mut ha = HistoryBuffer::new();
        let mut hb = HistoryBuffer::new();
        for &a in prefix_a.iter().chain(tail) {
            ha.push(a, &spec);
        }
        for &a in prefix_b.iter().chain(tail) {
            hb.push(a, &spec);
        }
        assert_eq!(ha.fold(&spec), hb.fold(&spec));
    });
}

/// Saturating counters stay within bounds under any event sequence.
#[test]
fn counter_stays_bounded() {
    check::run("counter_stays_bounded", |rng| {
        let threshold = rng.gen_range(1u8..4);
        let max = threshold + rng.gen_range(0u8..4);
        let hysteresis = rng.gen::<bool>();
        let events = check::vec_of(rng, 0..100, |r| r.gen::<bool>());
        let mut c = SaturatingCounter::new(threshold, max, hysteresis);
        for correct in events {
            if correct {
                c.on_correct()
            } else {
                c.on_incorrect()
            }
            assert!(c.value() <= max);
            assert_eq!(c.is_confident(), c.value() >= threshold);
        }
    });
}

/// Predictors never panic and stats stay internally consistent on
/// arbitrary load streams.
#[test]
fn stats_invariants_on_arbitrary_streams() {
    check::run("stats_invariants_on_arbitrary_streams", |rng| {
        let loads = check::vec_of(rng, 1..400, |r| (r.gen_range(0u64..64), r.gen::<u64>()));
        let mut p = small_hybrid();
        let mut stats = PredictorStats::new();
        for (ip_idx, addr) in loads {
            let ctx = LoadContext::new(0x400 + ip_idx * 4, 0, 0);
            let pred = p.predict(&ctx);
            p.update(&ctx, addr & !3, &pred);
            stats.record(&pred, addr & !3);
            // A speculative access implies a predicted address.
            assert!(!pred.speculate || pred.addr.is_some());
        }
        assert!(stats.spec_accesses <= stats.predictions);
        assert!(stats.predictions <= stats.loads);
        assert!(stats.correct_spec <= stats.spec_accesses);
        assert!(stats.correct_predictions <= stats.predictions);
        assert!(stats.correct_spec <= stats.correct_predictions);
        assert!(stats.both_predicted_spec <= stats.spec_accesses);
        assert!(stats.miss_selections <= stats.both_predicted_spec);
        let dist: u64 = stats.selector_states.iter().sum();
        assert_eq!(dist, stats.both_predicted_spec);
        assert!((0.0..=1.0).contains(&stats.prediction_rate()));
        assert!((0.0..=1.0).contains(&stats.accuracy()));
    });
}

/// A constant-stride sequence is eventually predicted exactly, for any
/// base and step.
#[test]
fn stride_learns_any_arithmetic_sequence() {
    check::run("stride_learns_any_arithmetic_sequence", |rng| {
        let base = rng.gen::<u64>();
        let step_raw = rng.gen_range(-1000i64..1000);
        let step = if step_raw == 0 { 4 } else { step_raw };
        let mut p = StridePredictor::new(
            LoadBufferConfig {
                entries: 64,
                assoc: 2,
            },
            StrideParams {
                interval: false,
                ..StrideParams::paper_default()
            },
        );
        let mut last = Prediction::none();
        for i in 0..12i64 {
            let ctx = LoadContext::new(0x40, 0, 0);
            last = p.predict(&ctx);
            p.update(&ctx, base.wrapping_add((step * i) as u64), &last);
        }
        // After 12 steps the 12th prediction (for i=11) must be correct.
        assert!(last.is_correct(base.wrapping_add((step * 11) as u64)));
        assert!(last.speculate);
    });
}

/// Any short recurring sequence of distinct 4-aligned addresses is
/// eventually predicted by CAP (prediction correctness, not only
/// speculation).
#[test]
fn cap_learns_any_short_recurring_sequence() {
    check::run("cap_learns_any_short_recurring_sequence", |rng| {
        let len = rng.gen_range(3usize..9);
        let mut raw = std::collections::BTreeSet::new();
        while raw.len() < len {
            raw.insert(rng.gen_range(1u64..1_000_000));
        }
        let pattern: Vec<u64> = raw.into_iter().map(|a| a << 2).collect();
        let mut cfg = CapConfig::paper_default();
        cfg.lt.assoc = 4; // tolerate fold collisions in adversarial patterns
        let mut p = CapPredictor::new(cfg);
        let rounds = 12;
        let mut last_round_correct = 0;
        for round in 0..rounds {
            for &a in &pattern {
                let ctx = LoadContext::new(0x40, 0, 0);
                let pred = p.predict(&ctx);
                p.update(&ctx, a, &pred);
                if round == rounds - 1 && pred.is_correct(a) {
                    last_round_correct += 1;
                }
            }
        }
        // Allow one miss for residual aliasing.
        assert!(
            last_round_correct + 1 >= pattern.len(),
            "{last_round_correct}/{} correct in final round",
            pattern.len()
        );
    });
}

/// A gap-0 `Session` and an immediate-update `Session` agree on any
/// suite trace prefix.
#[test]
fn gap_zero_is_immediate() {
    check::run_n("gap_zero_is_immediate", 16, |rng| {
        let spec = &cap_trace::suites::catalog()[rng.gen_range(0usize..8)];
        let trace = spec.generate(rng.gen_range(500usize..2_000));
        let mut a = small_hybrid();
        let mut b = small_hybrid();
        assert_eq!(
            Session::new(&mut a).run(&trace),
            Session::new(&mut b).gap(0).run(&trace)
        );
    });
}
