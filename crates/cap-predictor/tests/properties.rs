//! Property-based tests for the predictor crate's core data structures
//! and invariants.

use cap_predictor::confidence::SaturatingCounter;
use cap_predictor::history::{HistoryBuffer, HistorySpec};
use cap_predictor::prelude::*;
use proptest::prelude::*;

fn small_hybrid() -> HybridPredictor {
    let mut cfg = HybridConfig::paper_default();
    cfg.lb.entries = 256;
    cfg.lt.entries = 512;
    cfg.cap.history.index_bits = 9;
    HybridPredictor::new(cfg)
}

proptest! {
    /// The folded history always fits in the configured index/tag widths.
    #[test]
    fn fold_respects_widths(
        addrs in proptest::collection::vec(any::<u64>(), 1..32),
        length in 1usize..8,
        shift in 1u32..8,
        index_bits in 4u32..14,
        tag_bits in 0u32..10,
    ) {
        let spec = HistorySpec { length, shift, index_bits, tag_bits };
        let mut h = HistoryBuffer::new();
        for a in addrs {
            h.push(a, &spec);
            prop_assert!(h.len() <= length);
        }
        let f = h.fold(&spec);
        prop_assert!(f.index < (1u64 << index_bits));
        prop_assert!(tag_bits == 0 && f.tag == 0 || f.tag < (1u64 << tag_bits.max(1)));
    }

    /// Folding depends only on the retained window: any two push sequences
    /// with the same last `length` addresses fold identically.
    #[test]
    fn fold_depends_only_on_window(
        prefix_a in proptest::collection::vec(any::<u64>(), 0..16),
        prefix_b in proptest::collection::vec(any::<u64>(), 0..16),
        window in proptest::collection::vec(any::<u64>(), 4..8),
    ) {
        let spec = HistorySpec { length: 4, shift: 3, index_bits: 12, tag_bits: 8 };
        let tail = &window[window.len() - 4..];
        let mut ha = HistoryBuffer::new();
        let mut hb = HistoryBuffer::new();
        for &a in prefix_a.iter().chain(tail) {
            ha.push(a, &spec);
        }
        for &a in prefix_b.iter().chain(tail) {
            hb.push(a, &spec);
        }
        prop_assert_eq!(ha.fold(&spec), hb.fold(&spec));
    }

    /// Saturating counters stay within bounds under any event sequence.
    #[test]
    fn counter_stays_bounded(
        threshold in 1u8..4,
        extra in 0u8..4,
        hysteresis in any::<bool>(),
        events in proptest::collection::vec(any::<bool>(), 0..100),
    ) {
        let max = threshold + extra;
        let mut c = SaturatingCounter::new(threshold, max, hysteresis);
        for correct in events {
            if correct { c.on_correct() } else { c.on_incorrect() }
            prop_assert!(c.value() <= max);
            prop_assert_eq!(c.is_confident(), c.value() >= threshold);
        }
    }

    /// Predictors never panic and stats stay internally consistent on
    /// arbitrary load streams.
    #[test]
    fn stats_invariants_on_arbitrary_streams(
        loads in proptest::collection::vec((0u64..64, any::<u64>()), 1..400),
    ) {
        let mut p = small_hybrid();
        let mut stats = PredictorStats::new();
        for (ip_idx, addr) in loads {
            let ctx = LoadContext::new(0x400 + ip_idx * 4, 0, 0);
            let pred = p.predict(&ctx);
            p.update(&ctx, addr & !3, &pred);
            stats.record(&pred, addr & !3);
            // A speculative access implies a predicted address.
            prop_assert!(!pred.speculate || pred.addr.is_some());
        }
        prop_assert!(stats.spec_accesses <= stats.predictions);
        prop_assert!(stats.predictions <= stats.loads);
        prop_assert!(stats.correct_spec <= stats.spec_accesses);
        prop_assert!(stats.correct_predictions <= stats.predictions);
        prop_assert!(stats.correct_spec <= stats.correct_predictions);
        prop_assert!(stats.both_predicted_spec <= stats.spec_accesses);
        prop_assert!(stats.miss_selections <= stats.both_predicted_spec);
        let dist: u64 = stats.selector_states.iter().sum();
        prop_assert_eq!(dist, stats.both_predicted_spec);
        prop_assert!((0.0..=1.0).contains(&stats.prediction_rate()));
        prop_assert!((0.0..=1.0).contains(&stats.accuracy()));
    }

    /// A constant-stride sequence is eventually predicted exactly, for any
    /// base and step.
    #[test]
    fn stride_learns_any_arithmetic_sequence(
        base in any::<u64>(),
        step_raw in -1000i64..1000,
    ) {
        let step = if step_raw == 0 { 4 } else { step_raw };
        let mut p = StridePredictor::new(
            LoadBufferConfig { entries: 64, assoc: 2 },
            StrideParams { interval: false, ..StrideParams::paper_default() },
        );
        let mut last = Prediction::none();
        for i in 0..12i64 {
            let ctx = LoadContext::new(0x40, 0, 0);
            last = p.predict(&ctx);
            p.update(&ctx, base.wrapping_add((step * i) as u64), &last);
        }
        // After 12 steps the 12th prediction (for i=11) must be correct.
        prop_assert!(last.is_correct(base.wrapping_add((step * 11) as u64)));
        prop_assert!(last.speculate);
    }

    /// Any short recurring sequence of distinct 4-aligned addresses is
    /// eventually predicted by CAP (prediction correctness, not only
    /// speculation).
    #[test]
    fn cap_learns_any_short_recurring_sequence(
        raw in proptest::collection::btree_set(1u64..1_000_000, 3..9),
    ) {
        let pattern: Vec<u64> = raw.into_iter().map(|a| a << 2).collect();
        let mut cfg = CapConfig::paper_default();
        cfg.lt.assoc = 4; // tolerate fold collisions in adversarial patterns
        let mut p = CapPredictor::new(cfg);
        let rounds = 12;
        let mut last_round_correct = 0;
        for round in 0..rounds {
            for &a in &pattern {
                let ctx = LoadContext::new(0x40, 0, 0);
                let pred = p.predict(&ctx);
                p.update(&ctx, a, &pred);
                if round == rounds - 1 && pred.is_correct(a) {
                    last_round_correct += 1;
                }
            }
        }
        // Allow one miss for residual aliasing.
        prop_assert!(
            last_round_correct + 1 >= pattern.len(),
            "{last_round_correct}/{} correct in final round", pattern.len()
        );
    }

    /// `run_with_gap(.., 0)` and `run_immediate` agree on any suite trace
    /// prefix.
    #[test]
    fn gap_zero_is_immediate(seed in 0usize..8, loads in 500usize..2_000) {
        let spec = &cap_trace::suites::catalog()[seed];
        let trace = spec.generate(loads);
        let mut a = small_hybrid();
        let mut b = small_hybrid();
        prop_assert_eq!(
            run_immediate(&mut a, &trace),
            run_with_gap(&mut b, &trace, 0)
        );
    }
}
