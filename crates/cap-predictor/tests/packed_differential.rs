//! Differential gate for the packed hot path: `PackedHybridPredictor`
//! must be *bit-identical* to `HybridPredictor` — same prediction, same
//! predicted address, same source — on every load of every generator
//! family, across the configuration space the experiments sweep, and
//! through a mid-trace snapshot round-trip.

use cap_predictor::confidence::CfiMode;
use cap_predictor::drive::{ControlState, Session};
use cap_predictor::hybrid::{HybridConfig, HybridPredictor, LtUpdatePolicy, SelectorPolicy};
use cap_predictor::link_table::PfMode;
use cap_predictor::packed::PackedHybridPredictor;
use cap_predictor::types::{AddressPredictor, LoadContext};
use cap_snapshot::{Restorable, Snapshot};
use cap_trace::suites::{catalog, Suite, TraceSpec};
use cap_trace::{Trace, TraceEvent};

/// One representative trace per generator family (suite) — the catalog
/// holds 45 siblings; family coverage is what the gate needs.
fn family_reps() -> Vec<TraceSpec> {
    let mut reps: Vec<TraceSpec> = Vec::new();
    let mut seen: Vec<Suite> = Vec::new();
    for spec in catalog() {
        if !seen.contains(&spec.suite) {
            seen.push(spec.suite);
            reps.push(spec);
        }
    }
    reps
}

/// The configuration points the packed path must match on: the paper
/// defaults, the pipelined model, and each mechanism the tables encode
/// differently (decoupled PF, per-path CFI, hysteresis, LT update
/// policies, static selectors).
fn config_points() -> Vec<(&'static str, HybridConfig)> {
    let mut points = vec![
        ("paper_default", HybridConfig::paper_default()),
        ("paper_pipelined", HybridConfig::paper_pipelined()),
    ];
    let mut c = HybridConfig::paper_default();
    c.lt.pf_mode = PfMode::Decoupled { extra_index_bits: 2 };
    points.push(("decoupled_pf", c));
    let mut c = HybridConfig::paper_default();
    c.cap.cfi = CfiMode::PerPath { bits: 4 };
    c.stride.cfi = CfiMode::PerPath { bits: 3 };
    points.push(("per_path_cfi", c));
    let mut c = HybridConfig::paper_default();
    c.cap.hysteresis = true;
    c.stride.hysteresis = true;
    points.push(("hysteresis", c));
    let mut c = HybridConfig::paper_default();
    c.lt_update = LtUpdatePolicy::UnlessStrideCorrect;
    points.push(("lt_unless_stride_correct", c));
    let mut c = HybridConfig::paper_default();
    c.lt_update = LtUpdatePolicy::UnlessStrideCorrectAndSelected;
    points.push(("lt_unless_stride_correct_and_selected", c));
    let mut c = HybridConfig::paper_default();
    c.selector = SelectorPolicy::StaticCap;
    points.push(("static_cap", c));
    let mut c = HybridConfig::paper_default();
    c.selector = SelectorPolicy::StaticStride;
    points.push(("static_stride", c));
    points
}

/// Drives both predictors through `trace` under the immediate model,
/// asserting full `Prediction` equality on every load. Returns the
/// number of loads compared.
fn assert_twin_on_trace(
    legacy: &mut HybridPredictor,
    packed: &mut PackedHybridPredictor,
    trace: &Trace,
    label: &str,
) -> usize {
    let mut control = ControlState::default();
    let mut loads = 0usize;
    for event in trace.iter() {
        match event {
            TraceEvent::Load(load) => {
                let ctx = LoadContext {
                    ip: load.ip,
                    offset: load.offset,
                    ghr: control.ghr,
                    path: control.path,
                    pending: 0,
                };
                let pl = legacy.predict(&ctx);
                let pp = packed.predict(&ctx);
                assert_eq!(
                    pl, pp,
                    "[{label}] prediction diverged at load {loads} (ip {:#x})",
                    load.ip
                );
                legacy.update(&ctx, load.addr, &pl);
                packed.update(&ctx, load.addr, &pp);
                loads += 1;
            }
            TraceEvent::Branch(b) => control.on_branch(b.ip, b.taken, b.kind),
            TraceEvent::Store(_) | TraceEvent::Op(_) => {}
        }
    }
    loads
}

#[test]
fn packed_matches_legacy_on_every_family_paper_default() {
    for spec in family_reps() {
        let trace = spec.generate(6_000);
        let mut legacy = HybridPredictor::new(HybridConfig::paper_default());
        let mut packed = PackedHybridPredictor::new(HybridConfig::paper_default());
        let loads = assert_twin_on_trace(&mut legacy, &mut packed, &trace, spec.name);
        assert!(loads >= 6_000, "[{}] drove {loads} loads", spec.name);
    }
}

#[test]
fn packed_matches_legacy_across_config_space() {
    // One family per config point keeps the matrix quadratic-free; the
    // family sweep above already covers every generator at the default
    // point.
    let reps = family_reps();
    for (i, (label, config)) in config_points().into_iter().enumerate() {
        let spec = &reps[i % reps.len()];
        let trace = spec.generate(6_000);
        let mut legacy = HybridPredictor::new(config);
        let mut packed = PackedHybridPredictor::new(config);
        let tag = format!("{label}/{}", spec.name);
        assert_twin_on_trace(&mut legacy, &mut packed, &trace, &tag);
    }
}

#[test]
fn packed_matches_legacy_under_the_gap_driver() {
    // The pipelined model (prediction gap, pending counts, speculative
    // history repair) is driven by `Session::gap`; equal stats over the
    // same trace means the packed tables made the same calls the legacy
    // ones did at every delayed-update point.
    for gap in [1usize, 3, 8] {
        let trace = catalog()[0].generate(10_000);
        let mut legacy = HybridPredictor::new(HybridConfig::paper_pipelined());
        let mut packed = PackedHybridPredictor::new(HybridConfig::paper_pipelined());
        let sl = Session::new(&mut legacy).gap(gap).run(&trace);
        let sp = Session::new(&mut packed).gap(gap).run(&trace);
        assert_eq!(sl, sp, "stats diverged at gap {gap}");
    }
}

#[test]
fn packed_matches_legacy_under_wrong_path_recovery() {
    let trace = catalog()[4 % catalog().len()].generate(10_000);
    let mut legacy = HybridPredictor::new(HybridConfig::paper_pipelined());
    let mut packed = PackedHybridPredictor::new(HybridConfig::paper_pipelined());
    let sl = Session::new(&mut legacy)
        .gap(4)
        .wrong_path(10)
        .recovery(true)
        .run(&trace);
    let sp = Session::new(&mut packed)
        .gap(4)
        .wrong_path(10)
        .recovery(true)
        .run(&trace);
    assert_eq!(sl, sp, "stats diverged under wrong-path recovery");
}

#[test]
fn packed_snapshot_mid_trace_continues_identically() {
    // Half the trace, snapshot the packed predictor, restore it, then
    // drive original + restored + legacy in lock-step over the rest:
    // all three must agree on every remaining load.
    let spec = &catalog()[7 % catalog().len()];
    let trace = spec.generate(8_000);
    let events: Vec<_> = trace.iter().collect();
    let half = events.len() / 2;

    let mut legacy = HybridPredictor::new(HybridConfig::paper_default());
    let mut packed = PackedHybridPredictor::new(HybridConfig::paper_default());
    let mut control = ControlState::default();
    for event in &events[..half] {
        match event {
            TraceEvent::Load(load) => {
                let ctx = LoadContext {
                    ip: load.ip,
                    offset: load.offset,
                    ghr: control.ghr,
                    path: control.path,
                    pending: 0,
                };
                let pl = legacy.predict(&ctx);
                let pp = packed.predict(&ctx);
                assert_eq!(pl, pp, "diverged before the snapshot point");
                legacy.update(&ctx, load.addr, &pl);
                packed.update(&ctx, load.addr, &pp);
            }
            TraceEvent::Branch(b) => control.on_branch(b.ip, b.taken, b.kind),
            TraceEvent::Store(_) | TraceEvent::Op(_) => {}
        }
    }

    let payload = packed.to_payload();
    let mut restored =
        PackedHybridPredictor::from_payload(&payload, "packed-differential").expect("restores");
    assert_eq!(
        restored.to_payload(),
        payload,
        "restore must re-encode canonically"
    );

    for event in &events[half..] {
        match event {
            TraceEvent::Load(load) => {
                let ctx = LoadContext {
                    ip: load.ip,
                    offset: load.offset,
                    ghr: control.ghr,
                    path: control.path,
                    pending: 0,
                };
                let pl = legacy.predict(&ctx);
                let pp = packed.predict(&ctx);
                let pr = restored.predict(&ctx);
                assert_eq!(pl, pp, "original packed diverged after snapshot");
                assert_eq!(pp, pr, "restored packed diverged from original");
                legacy.update(&ctx, load.addr, &pl);
                packed.update(&ctx, load.addr, &pp);
                restored.update(&ctx, load.addr, &pr);
            }
            TraceEvent::Branch(b) => control.on_branch(b.ip, b.taken, b.kind),
            TraceEvent::Store(_) | TraceEvent::Op(_) => {}
        }
    }
}

#[test]
fn packed_batch_matches_sequential_on_a_real_family() {
    // `predict_batch` is the service fast path; over live, mid-trace
    // table state it must equal the same predicts issued one at a time
    // (predicts tick LRU state, so this is not a purity freebie — the
    // batch must mutate exactly as the sequence does).
    let trace = catalog()[2].generate(4_000);
    let mut packed = PackedHybridPredictor::new(HybridConfig::paper_default());
    let mut twin = packed.clone();
    let mut control = ControlState::default();
    let mut pending_batch: Vec<(LoadContext, u64)> = Vec::new();
    let mut batches = 0usize;
    for event in trace.iter() {
        match event {
            TraceEvent::Load(load) => {
                let ctx = LoadContext {
                    ip: load.ip,
                    offset: load.offset,
                    ghr: control.ghr,
                    path: control.path,
                    pending: 0,
                };
                pending_batch.push((ctx, load.addr));
                if pending_batch.len() == 32 {
                    let ctxs: Vec<LoadContext> =
                        pending_batch.iter().map(|(c, _)| *c).collect();
                    let mut batch = Vec::new();
                    packed.predict_batch(&ctxs, &mut batch);
                    let sequential: Vec<_> = ctxs.iter().map(|c| twin.predict(c)).collect();
                    assert_eq!(batch, sequential, "batch {batches} diverged");
                    for ((ctx, addr), pred) in pending_batch.drain(..).zip(batch) {
                        packed.update(&ctx, addr, &pred);
                        twin.update(&ctx, addr, &pred);
                    }
                    batches += 1;
                }
            }
            TraceEvent::Branch(b) => control.on_branch(b.ip, b.taken, b.kind),
            TraceEvent::Store(_) | TraceEvent::Op(_) => {}
        }
    }
    assert!(batches > 100, "drove {batches} batches");
}
