//! Property suite for the bit-packed tables: every packed field must
//! round-trip at its exact configured width (including the 2-bit
//! saturating-counter boundaries), and the packed history register must
//! track the legacy deque fold under arbitrary push/corrupt sequences.

use cap_predictor::confidence::{ControlFlowIndication, SaturatingCounter};
use cap_predictor::history::{HistoryBuffer, HistorySpec};
use cap_predictor::link_table::{LinkTableConfig, PfMode};
use cap_predictor::load_buffer::{LbEntryProto, LoadBufferConfig, StrideState};
use cap_predictor::packed::bits::{bits_for, BitTable, Field};
use cap_predictor::packed::{HistHalf, PackedLinkTable, PackedLoadBuffer};
use cap_rand::check;
use cap_rand::Rng;

fn mask(w: u32) -> u64 {
    if w == 0 {
        0
    } else if w == 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// A raw `BitTable` with arbitrary field widths round-trips every field
/// of every entry independently — including fields straddling word
/// boundaries — without perturbing its neighbours.
#[test]
fn bit_table_round_trips_arbitrary_layouts() {
    check::run("bit_table_round_trips_arbitrary_layouts", |rng| {
        let entries = rng.gen_range(1usize..24);
        let n_fields = rng.gen_range(1usize..12);
        let mut cursor = 0u32;
        let fields: Vec<Field> = (0..n_fields)
            .map(|_| Field::take(&mut cursor, rng.gen_range(0u32..=64)))
            .collect();
        let mut table = BitTable::new(entries, cursor.max(1));
        let mut model = vec![vec![0u64; n_fields]; entries];
        for _ in 0..200 {
            let e = rng.gen_range(0..entries);
            let f = rng.gen_range(0..n_fields);
            let v = rng.gen::<u64>() & mask(fields[f].w);
            table.set(e, fields[f], v);
            model[e][f] = v;
            // The whole model must still be intact, not just the slot
            // we wrote.
            for (me, row) in model.iter().enumerate() {
                for (mf, &mv) in row.iter().enumerate() {
                    assert_eq!(
                        table.get(me, fields[mf]),
                        mv,
                        "field {mf} of entry {me} perturbed by write to ({e},{f})"
                    );
                }
            }
        }
    });
}

fn random_spec(rng: &mut impl Rng) -> HistorySpec {
    HistorySpec {
        length: rng.gen_range(1usize..8),
        shift: rng.gen_range(1u32..8),
        index_bits: rng.gen_range(4u32..14),
        tag_bits: rng.gen_range(0u32..10),
    }
}

fn random_proto(rng: &mut impl Rng) -> LbEntryProto {
    let t1 = rng.gen_range(1u8..4);
    let t2 = rng.gen_range(1u8..4);
    LbEntryProto {
        cap_conf: SaturatingCounter::new(t1, t1 + rng.gen_range(0u8..4), rng.gen()),
        stride_conf: SaturatingCounter::new(t2, t2 + rng.gen_range(0u8..4), rng.gen()),
    }
}

fn random_lb(rng: &mut impl Rng) -> PackedLoadBuffer {
    let entries = 1usize << rng.gen_range(3u32..8);
    let assoc = 1usize << rng.gen_range(0u32..3);
    let config = LoadBufferConfig { entries, assoc };
    let offset_bits = rng.gen_range(0u32..=16);
    PackedLoadBuffer::new(config, random_proto(rng), random_spec(rng), offset_bits)
}

/// Every packed LB field round-trips at its exact width over a random
/// geometry, and writing one entry's fields never leaks into another.
#[test]
fn packed_lb_fields_round_trip_at_exact_width() {
    check::run("packed_lb_fields_round_trip_at_exact_width", |rng| {
        let mut lb = random_lb(rng);
        let entries = lb.config().entries;
        let a = rng.gen_range(0..entries);
        let b = (a + rng.gen_range(1..entries)) % entries;
        lb.restore_entry(a, 0x400);
        lb.restore_entry(b, 0x404);

        let offset = rng.gen::<u32>() & (mask(lb.offset_bits()) as u32);
        lb.set_offset_lsb(a, offset);
        let cap_v = rng.gen_range(0..=lb.proto().cap_conf.max());
        let stride_v = rng.gen_range(0..=lb.proto().stride_conf.max());
        lb.set_cap_conf_value(a, cap_v);
        lb.set_stride_conf_value(a, stride_v);
        let cfi = ControlFlowIndication::from_parts(
            if rng.gen() { Some(rng.gen()) } else { None },
            rng.gen(),
            rng.gen(),
        );
        lb.set_cap_cfi(a, cfi);
        let stride = rng.gen::<i64>();
        let last_addr = rng.gen::<u64>();
        lb.set_stride(a, stride);
        lb.set_last_addr(a, last_addr);
        let state = [StrideState::Init, StrideState::Transient, StrideState::Steady]
            [rng.gen_range(0usize..3)];
        lb.set_stride_state(a, state);
        let mut iv = lb.interval(a);
        iv.learned = rng.gen();
        iv.run = rng.gen();
        lb.set_interval(a, iv);
        let sel = rng.gen_range(0u8..4);
        lb.set_selector(a, sel);
        let seen = rng.gen::<bool>();
        lb.set_stride_seen(a, seen);
        let lru = rng.gen::<u64>();
        lb.set_lru(a, lru);

        assert_eq!(lb.offset_lsb(a), offset);
        assert_eq!(lb.cap_conf_value(a), cap_v);
        assert_eq!(lb.stride_conf_value(a), stride_v);
        assert_eq!(lb.cap_cfi(a), cfi);
        assert_eq!(lb.stride(a), stride);
        assert_eq!(lb.last_addr(a), last_addr);
        assert_eq!(lb.stride_state(a), state);
        assert_eq!(lb.interval(a).learned, iv.learned);
        assert_eq!(lb.interval(a).run, iv.run);
        assert_eq!(lb.selector(a), sel);
        assert_eq!(lb.stride_seen(a), seen);
        assert_eq!(lb.lru(a), lru);

        // The neighbouring entry keeps its freshly-restored defaults.
        assert_eq!(lb.tag(b), 0x404);
        assert_eq!(lb.offset_lsb(b), 0);
        assert_eq!(lb.selector(b), 0);
        assert_eq!(lb.hist_len(b, HistHalf::Arch), 0);
    });
}

/// The packed confidence counters behave exactly like a freestanding
/// `SaturatingCounter` through reconstruct → event → repack cycles,
/// across the saturation boundaries — including the paper's 2-bit
/// (threshold 2, max 3) shape with and without hysteresis.
#[test]
fn packed_counter_saturation_boundaries() {
    for (threshold, max) in [(1u8, 1u8), (2, 3), (2, 4), (3, 7)] {
        for hysteresis in [false, true] {
            let proto = LbEntryProto {
                cap_conf: SaturatingCounter::new(threshold, max, hysteresis),
                stride_conf: SaturatingCounter::new(threshold, max, hysteresis),
            };
            let config = LoadBufferConfig { entries: 8, assoc: 1 };
            let mut lb =
                PackedLoadBuffer::new(config, proto, HistorySpec::paper_default(), 8);
            lb.restore_entry(0, 0x400);
            let mut model = SaturatingCounter::new(threshold, max, hysteresis);
            lb.set_cap_conf_value(0, model.value());
            // Walk the counter over every boundary: up to saturation,
            // one miss (hysteresis drop vs reset), and back up.
            let script = [true, true, true, true, true, false, true, false, false, true];
            for correct in script {
                let mut c = lb.cap_conf(0);
                assert_eq!(c.value(), model.value());
                assert_eq!(c.is_confident(), model.is_confident());
                if correct {
                    c.on_correct();
                    model.on_correct();
                } else {
                    c.on_incorrect();
                    model.on_incorrect();
                }
                lb.set_cap_conf_value(0, c.value());
                assert_eq!(lb.cap_conf_value(0), model.value());
                assert!(lb.cap_conf_value(0) <= max);
                assert!(u32::from(lb.cap_conf_value(0)) < (1 << bits_for(u64::from(max))));
            }
        }
    }
}

/// The packed incremental fold tracks the legacy deque fold over
/// arbitrary push sequences and random specs.
#[test]
fn packed_history_tracks_legacy_fold() {
    check::run("packed_history_tracks_legacy_fold", |rng| {
        let mut lb = random_lb(rng);
        let spec = *lb.history_spec();
        lb.restore_entry(0, 0x400);
        let mut legacy = HistoryBuffer::new();
        let addrs = check::vec_of(rng, 1..40, |r| r.gen::<u64>());
        for a in addrs {
            lb.hist_push(0, HistHalf::Arch, a);
            legacy.push(a, &spec);
            assert_eq!(lb.hist_len(0, HistHalf::Arch), legacy.len());
            assert_eq!(lb.hist_is_warm(0, HistHalf::Arch), legacy.is_warm(&spec));
            assert_eq!(lb.hist_fold(0, HistHalf::Arch), legacy.fold(&spec));
        }
    });
}

/// `hist_corrupt_bit` stays in lock-step with the legacy
/// `HistoryBuffer::corrupt_bit`: same return value, and the same folded
/// register afterwards — for any slot/bit, including fold-invisible bits.
#[test]
fn packed_history_corruption_matches_legacy() {
    check::run("packed_history_corruption_matches_legacy", |rng| {
        let mut lb = random_lb(rng);
        let spec = *lb.history_spec();
        lb.restore_entry(0, 0x400);
        let mut legacy = HistoryBuffer::new();
        for _ in 0..rng.gen_range(0usize..12) {
            let a = rng.gen::<u64>();
            lb.hist_push(0, HistHalf::Arch, a);
            legacy.push(a, &spec);
        }
        for _ in 0..8 {
            let slot = rng.gen::<u32>() as usize;
            let bit = rng.gen_range(0u32..64);
            let packed_hit = lb.hist_corrupt_bit(0, HistHalf::Arch, slot, bit);
            let legacy_hit = legacy.corrupt_bit(slot, bit);
            assert_eq!(packed_hit, legacy_hit, "corrupt_bit({slot},{bit}) return diverged");
            if legacy_hit {
                assert_eq!(
                    lb.hist_fold(0, HistHalf::Arch),
                    legacy.fold(&spec),
                    "fold diverged after corrupt_bit({slot},{bit})"
                );
            }
        }
    });
}

/// Speculative-history copy repair mirrors the legacy `copy_from`.
#[test]
fn packed_spec_history_copy_matches_arch() {
    check::run("packed_spec_history_copy_matches_arch", |rng| {
        let mut lb = random_lb(rng);
        lb.restore_entry(0, 0x400);
        for _ in 0..rng.gen_range(0usize..12) {
            lb.hist_push(0, HistHalf::Arch, rng.gen());
        }
        for _ in 0..rng.gen_range(0usize..6) {
            lb.hist_push(0, HistHalf::Spec, rng.gen());
        }
        lb.spec_copy_from_arch(0);
        assert_eq!(lb.hist_len(0, HistHalf::Spec), lb.hist_len(0, HistHalf::Arch));
        assert_eq!(
            lb.hist_fold(0, HistHalf::Spec),
            lb.hist_fold(0, HistHalf::Arch)
        );
        for k in 0..lb.hist_len(0, HistHalf::Arch) {
            assert_eq!(
                lb.hist_slot(0, HistHalf::Spec, k),
                lb.hist_slot(0, HistHalf::Arch, k)
            );
        }
    });
}

/// Packed LT fields round-trip at exact width, and decoupled PF slots
/// are independent of the ways.
#[test]
fn packed_lt_fields_round_trip_at_exact_width() {
    check::run("packed_lt_fields_round_trip_at_exact_width", |rng| {
        let entries = 1usize << rng.gen_range(3u32..9);
        let assoc = 1usize << rng.gen_range(0u32..3);
        let pf_mode = match rng.gen_range(0u32..3) {
            0 => PfMode::Off,
            1 => PfMode::Inline,
            _ => PfMode::Decoupled {
                extra_index_bits: rng.gen_range(0u32..3),
            },
        };
        let config = LinkTableConfig { entries, assoc, pf_mode };
        let tag_bits = rng.gen_range(0u32..12);
        let mut lt = PackedLinkTable::new(config, tag_bits);

        let idx = rng.gen_range(0..entries);
        let tag = rng.gen::<u64>() & mask(tag_bits);
        lt.restore_entry(idx, tag);
        let link = rng.gen::<u64>();
        let pf = rng.gen::<u8>() & 0xF;
        let primed = rng.gen::<bool>();
        let lru = rng.gen::<u64>();
        lt.set_link(idx, link);
        lt.set_pf(idx, pf);
        lt.set_pf_primed(idx, primed);
        lt.set_lru(idx, lru);
        assert_eq!(lt.tag(idx), tag);
        assert_eq!(lt.link(idx), link);
        assert_eq!(lt.pf(idx), pf);
        assert_eq!(lt.pf_primed(idx), primed);
        assert_eq!(lt.lru(idx), lru);
        assert_eq!(lt.occupancy(), 1);
        assert_eq!(lt.nth_live(0), Some(idx));

        if lt.decoupled_len() > 0 {
            let s = rng.gen_range(0..lt.decoupled_len());
            let spf = rng.gen::<u8>() & 0xF;
            let sprimed = rng.gen::<bool>();
            lt.set_decoupled_slot(s, spf, sprimed);
            assert_eq!(lt.decoupled_slot(s), (spf, sprimed));
            // Way state is untouched by side-table writes.
            assert_eq!(lt.pf(idx), pf);
            assert_eq!(lt.link(idx), link);
        }
    });
}
