//! Confidence-loss and re-earn behaviour (§3.4): a saturated-confident
//! entry must stop speculating within at most two mispredictions —
//! immediately without hysteresis, two with — and must re-earn the right
//! to speculate through the paper's 2-of-3 counter discipline.

use cap_predictor::cap::{CapConfig, CapPredictor};
use cap_predictor::confidence::SaturatingCounter;
use cap_predictor::types::{AddressPredictor, LoadContext, Prediction};

// --- Counter-level guarantees -------------------------------------------

#[test]
fn saturated_counter_without_hysteresis_drops_in_one_misprediction() {
    let mut c = SaturatingCounter::new(2, 3, false);
    for _ in 0..4 {
        c.on_correct();
    }
    assert_eq!(c.value(), 3, "saturated");
    c.on_incorrect();
    assert!(!c.is_confident(), "one misprediction must clear confidence");
    assert_eq!(c.value(), 0);
}

#[test]
fn saturated_counter_with_hysteresis_drops_within_two_mispredictions() {
    let mut c = SaturatingCounter::new(2, 3, true);
    for _ in 0..4 {
        c.on_correct();
    }
    c.on_incorrect();
    assert!(
        c.is_confident(),
        "hysteresis: first misprediction falls to the threshold, still confident"
    );
    c.on_incorrect();
    assert!(!c.is_confident(), "second misprediction must clear confidence");
}

#[test]
fn confidence_is_re_earned_at_the_paper_threshold() {
    for hysteresis in [false, true] {
        let mut c = SaturatingCounter::new(2, 3, hysteresis);
        for _ in 0..4 {
            c.on_correct();
        }
        c.on_incorrect();
        c.on_incorrect();
        assert!(!c.is_confident());
        c.on_correct();
        assert!(!c.is_confident(), "one correct is not enough (threshold 2)");
        c.on_correct();
        assert!(
            c.is_confident(),
            "two corrects re-earn speculation (hysteresis={hysteresis})"
        );
    }
}

// --- End-to-end through a CAP predictor ---------------------------------

const IP: u64 = 0x400;
/// A globally stable load target (e.g. a repeatedly-dereferenced global);
/// the simplest context CAP learns, which keeps these tests about the
/// confidence machinery rather than Link-Table geometry.
const STABLE: u64 = 0x1000;

fn step(p: &mut CapPredictor, actual: u64) -> Prediction {
    let ctx = LoadContext::new(IP, 0, 0);
    let pred = p.predict(&ctx);
    p.update(&ctx, actual, &pred);
    pred
}

/// Trains on the stable address until the predictor has speculated
/// correctly several times in a row, i.e. its counter is saturated.
fn train_to_saturation(p: &mut CapPredictor) {
    let mut streak = 0;
    for _ in 0..64 {
        let pred = step(p, STABLE);
        if pred.speculate && pred.is_correct(STABLE) {
            streak += 1;
            if streak >= 4 {
                return;
            }
        } else {
            streak = 0;
        }
    }
    panic!("predictor never reached confident steady state");
}

#[test]
fn trained_cap_entry_stops_speculating_within_two_mispredictions() {
    for hysteresis in [false, true] {
        let mut cfg = CapConfig::paper_default();
        cfg.params.hysteresis = hysteresis;
        let mut p = CapPredictor::new(cfg);
        train_to_saturation(&mut p);

        // Feed addresses that contradict every prediction. Count actual
        // mispredictions (speculative accesses launched at wrong targets)
        // until speculation stops.
        let mut mispredictions = 0;
        for i in 0..16u64 {
            let actual = 0xDEAD_0000 + i * 0x40; // never what CAP predicts
            let pred = step(&mut p, actual);
            if !pred.speculate {
                break;
            }
            assert!(!pred.is_correct(actual));
            mispredictions += 1;
        }
        assert!(
            (1..=2).contains(&mispredictions),
            "speculation must stop within two mispredictions \
             (hysteresis={hysteresis}, took {mispredictions})"
        );
    }
}

#[test]
fn cap_entry_re_earns_speculation_after_relearning() {
    let mut p = CapPredictor::new(CapConfig::paper_default());
    train_to_saturation(&mut p);

    // Break the pattern until speculation stops.
    for i in 0..16u64 {
        let pred = step(&mut p, 0xDEAD_0000 + i * 0x40);
        if !pred.speculate {
            break;
        }
    }

    // Resume the original address. The entry must come back: first the LT
    // relearns the link (non-speculative correct predictions), then the
    // counter re-earns its threshold, and speculation resumes.
    let mut correct_before_speculation = 0;
    let mut resumed = false;
    for _ in 0..64 {
        let pred = step(&mut p, STABLE);
        if pred.speculate {
            resumed = true;
            break;
        }
        if pred.is_correct(STABLE) {
            correct_before_speculation += 1;
        }
    }
    assert!(resumed, "speculation must resume once the pattern returns");
    assert!(
        correct_before_speculation >= 2,
        "the paper's threshold demands at least two verified corrects \
         before speculating again (saw {correct_before_speculation})"
    );
}
