//! Core trace record types.
//!
//! A trace is a flat sequence of [`TraceEvent`]s produced by the synthetic
//! workload generators in [`crate::gen`]. Events carry exactly the
//! information the ISCA '99 predictors and the timing substrate consume:
//! static instruction pointers, effective addresses, the immediate offset
//! encoded in the load opcode (needed for the paper's *base address* global
//! correlation), branch outcomes (needed for the global branch-history
//! register used by control-flow confidence indications), and register
//! dependence information (needed by the out-of-order timing model).

/// A virtual architectural register name.
///
/// The synthetic ISA exposes a flat namespace of [`RegId::COUNT`] registers;
/// generators allocate them like a compiler's register allocator would, so
/// pointer-chasing chains carry true load-to-load dependences.
///
/// # Examples
///
/// ```
/// use cap_trace::RegId;
/// let r = RegId::new(3);
/// assert_eq!(r.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegId(u8);

impl RegId {
    /// Number of architectural registers in the synthetic ISA.
    pub const COUNT: usize = 64;

    /// Creates a register name.
    ///
    /// # Panics
    ///
    /// Panics if `index >= RegId::COUNT`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < Self::COUNT,
            "register index {index} out of range (< {})",
            Self::COUNT
        );
        Self(index)
    }

    /// The raw register index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RegId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A dynamic load instruction instance.
///
/// `addr` is the *effective* address of the access; the paper's base-address
/// scheme recovers the shared RDS base as `addr - offset` (see
/// [`LoadRecord::base_addr`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoadRecord {
    /// Static instruction pointer of the load.
    pub ip: u64,
    /// Effective (virtual) address accessed.
    pub addr: u64,
    /// Immediate displacement encoded in the load opcode
    /// (e.g. `8` for `movl 0x8(%eax),%edx`).
    pub offset: i32,
    /// Access size in bytes.
    pub size: u8,
    /// The value loaded from memory. Pointer-field loads carry the next
    /// node's address; data loads carry whatever the generator modelled.
    /// Used by the value-prediction comparison (the paper's §1 argues
    /// value predictability is lower than address predictability).
    pub value: u64,
    /// Destination register receiving the loaded value.
    pub dst: Option<RegId>,
    /// Base register used for address generation, if any. The timing model
    /// uses this to delay address generation until the producer completes —
    /// the pointer-chase serialization the paper's Section 2 discusses.
    pub addr_src: Option<RegId>,
}

impl LoadRecord {
    /// The base address the paper's global-correlation scheme stores in the
    /// Load Buffer / Link Table: effective address minus immediate offset.
    ///
    /// All loads that walk fields of the same recursive-data-structure node
    /// share this value, which is what lets them share Link Table entries.
    ///
    /// # Examples
    ///
    /// ```
    /// use cap_trace::LoadRecord;
    /// let load = LoadRecord { ip: 0x40, addr: 0x88, offset: 8, size: 4, value: 0, dst: None, addr_src: None };
    /// assert_eq!(load.base_addr(), 0x80);
    /// ```
    #[must_use]
    pub fn base_addr(&self) -> u64 {
        self.addr.wrapping_sub(self.offset as i64 as u64)
    }
}

/// A dynamic store instruction instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreRecord {
    /// Static instruction pointer of the store.
    pub ip: u64,
    /// Effective address written.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
    /// Register providing the stored value, if modelled.
    pub data_src: Option<RegId>,
    /// Base register used for address generation, if any.
    pub addr_src: Option<RegId>,
}

/// A dynamic conditional or unconditional branch instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchRecord {
    /// Static instruction pointer of the branch.
    pub ip: u64,
    /// Architectural outcome.
    pub taken: bool,
    /// Branch target (informational; the trace is already the committed path).
    pub target: u64,
    /// Kind of control transfer.
    pub kind: BranchKind,
}

/// Classification of control-transfer instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BranchKind {
    /// Conditional branch — participates in GHR updates and prediction.
    #[default]
    Conditional,
    /// Direct call — pushes onto the call-path history.
    Call,
    /// Return — pops the call-path history.
    Return,
    /// Unconditional jump.
    Jump,
}

/// A non-memory computation instruction (ALU, FP, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpRecord {
    /// Static instruction pointer.
    pub ip: u64,
    /// Execution latency class.
    pub latency: OpLatency,
    /// Destination register, if any.
    pub dst: Option<RegId>,
    /// Up to two source registers.
    pub srcs: [Option<RegId>; 2],
}

/// Latency classes for computation instructions, mirroring the "instruction
/// latencies common to Intel's processors" the paper simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OpLatency {
    /// Single-cycle integer ALU operation.
    #[default]
    Alu,
    /// Integer multiply (~4 cycles).
    Mul,
    /// Integer divide (~20 cycles).
    Div,
    /// FP add/sub (~3 cycles).
    FpAdd,
    /// FP multiply (~5 cycles).
    FpMul,
}

impl OpLatency {
    /// Execution latency in cycles.
    #[must_use]
    pub fn cycles(self) -> u32 {
        match self {
            OpLatency::Alu => 1,
            OpLatency::Mul => 4,
            OpLatency::Div => 20,
            OpLatency::FpAdd => 3,
            OpLatency::FpMul => 5,
        }
    }
}

/// One committed-path dynamic instruction in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// A load instruction.
    Load(LoadRecord),
    /// A store instruction.
    Store(StoreRecord),
    /// A branch instruction.
    Branch(BranchRecord),
    /// A computation instruction.
    Op(OpRecord),
}

impl TraceEvent {
    /// Static instruction pointer of the event.
    #[must_use]
    pub fn ip(&self) -> u64 {
        match self {
            TraceEvent::Load(l) => l.ip,
            TraceEvent::Store(s) => s.ip,
            TraceEvent::Branch(b) => b.ip,
            TraceEvent::Op(o) => o.ip,
        }
    }

    /// Returns the contained load, if this event is a load.
    #[must_use]
    pub fn as_load(&self) -> Option<&LoadRecord> {
        match self {
            TraceEvent::Load(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the contained branch, if this event is a branch.
    #[must_use]
    pub fn as_branch(&self) -> Option<&BranchRecord> {
        match self {
            TraceEvent::Branch(b) => Some(b),
            _ => None,
        }
    }

    /// True for loads and stores.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        matches!(self, TraceEvent::Load(_) | TraceEvent::Store(_))
    }
}

/// An owned instruction trace: the unit of work every experiment consumes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an event vector as a trace.
    #[must_use]
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        Self { events }
    }

    /// All events in program order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of dynamic instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Iterates over events in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEvent> {
        self.events.iter()
    }

    /// Iterates over just the loads, in program order.
    pub fn loads(&self) -> impl Iterator<Item = &LoadRecord> + '_ {
        self.events.iter().filter_map(TraceEvent::as_load)
    }

    /// Number of dynamic loads.
    #[must_use]
    pub fn load_count(&self) -> usize {
        self.loads().count()
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        Self {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceEvent> for Trace {
    fn extend<I: IntoIterator<Item = TraceEvent>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl IntoIterator for Trace {
    type Item = TraceEvent;
    type IntoIter = std::vec::IntoIter<TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_addr_subtracts_offset() {
        let l = LoadRecord {
            ip: 0x1000,
            addr: 0x88,
            offset: 8,
            size: 4,
            value: 0,
            dst: None,
            addr_src: None,
        };
        assert_eq!(l.base_addr(), 0x80);
    }

    #[test]
    fn base_addr_handles_negative_offset() {
        let l = LoadRecord {
            ip: 0x1000,
            addr: 0x80,
            offset: -16,
            size: 4,
            value: 0,
            dst: None,
            addr_src: None,
        };
        assert_eq!(l.base_addr(), 0x90);
    }

    #[test]
    fn base_addr_wraps_rather_than_panics() {
        let l = LoadRecord {
            ip: 0,
            addr: 4,
            offset: 8,
            size: 4,
            value: 0,
            dst: None,
            addr_src: None,
        };
        // 4 - 8 wraps around u64 space.
        assert_eq!(l.base_addr(), u64::MAX - 3);
    }

    #[test]
    fn reg_id_roundtrip() {
        let r = RegId::new(63);
        assert_eq!(r.index(), 63);
        assert_eq!(r.to_string(), "r63");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_id_rejects_out_of_range() {
        let _ = RegId::new(64);
    }

    #[test]
    fn trace_collects_and_filters_loads() {
        let mut trace = Trace::new();
        trace.push(TraceEvent::Op(OpRecord {
            ip: 1,
            latency: OpLatency::Alu,
            dst: None,
            srcs: [None, None],
        }));
        trace.push(TraceEvent::Load(LoadRecord {
            ip: 2,
            addr: 0x100,
            offset: 0,
            size: 4,
            value: 0,
            dst: None,
            addr_src: None,
        }));
        trace.push(TraceEvent::Branch(BranchRecord {
            ip: 3,
            taken: true,
            target: 1,
            kind: BranchKind::Conditional,
        }));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.load_count(), 1);
        assert_eq!(trace.loads().next().unwrap().addr, 0x100);
        assert!(!trace.is_empty());
    }

    #[test]
    fn trace_from_iterator() {
        let events = vec![TraceEvent::Op(OpRecord {
            ip: 1,
            latency: OpLatency::Alu,
            dst: None,
            srcs: [None, None],
        })];
        let t: Trace = events.clone().into_iter().collect();
        assert_eq!(t.events(), &events[..]);
    }

    #[test]
    fn op_latency_cycles_are_ordered_sensibly() {
        assert!(OpLatency::Alu.cycles() < OpLatency::Mul.cycles());
        assert!(OpLatency::Mul.cycles() < OpLatency::Div.cycles());
    }

    #[test]
    fn event_accessors() {
        let e = TraceEvent::Load(LoadRecord {
            ip: 7,
            addr: 1,
            offset: 0,
            size: 4,
            value: 0,
            dst: None,
            addr_src: None,
        });
        assert_eq!(e.ip(), 7);
        assert!(e.is_memory());
        assert!(e.as_load().is_some());
        assert!(e.as_branch().is_none());
    }
}
