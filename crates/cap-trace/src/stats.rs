//! Trace statistics — the characterisation numbers Section 2 of the paper
//! derives from its traces (static footprint, memory density, stride-ness).

use crate::record::{Trace, TraceEvent};
use std::collections::HashMap;

/// Summary statistics for a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total dynamic instructions.
    pub instructions: usize,
    /// Dynamic loads.
    pub loads: usize,
    /// Dynamic stores.
    pub stores: usize,
    /// Dynamic branches.
    pub branches: usize,
    /// Distinct static load IPs.
    pub static_loads: usize,
    /// Distinct load addresses (working set).
    pub unique_addresses: usize,
    /// Fraction of per-static-load address transitions that repeat the
    /// previous address (last-address predictability ceiling).
    pub constant_fraction: f64,
    /// Fraction of per-static-load address transitions whose delta matches
    /// the previous delta (stride predictability ceiling).
    pub stride_fraction: f64,
}

impl TraceStats {
    /// Computes statistics in one pass over the trace.
    ///
    /// # Examples
    ///
    /// ```
    /// use cap_trace::builder::TraceBuilder;
    /// use cap_trace::stats::TraceStats;
    /// let mut b = TraceBuilder::new();
    /// for i in 0..10 {
    ///     b.load(0x100, 0x1000 + i * 8, 0);
    /// }
    /// let stats = TraceStats::compute(&b.finish());
    /// assert_eq!(stats.loads, 10);
    /// assert!(stats.stride_fraction > 0.8);
    /// ```
    #[must_use]
    pub fn compute(trace: &Trace) -> Self {
        let mut loads = 0usize;
        let mut stores = 0usize;
        let mut branches = 0usize;
        let mut addr_set: HashMap<u64, ()> = HashMap::new();
        // per-IP: (last addr, last delta)
        let mut per_ip: HashMap<u64, (u64, Option<i64>)> = HashMap::new();
        let mut transitions = 0usize;
        let mut constant = 0usize;
        let mut stride = 0usize;
        for e in trace.iter() {
            match e {
                TraceEvent::Load(l) => {
                    loads += 1;
                    addr_set.insert(l.addr, ());
                    match per_ip.get_mut(&l.ip) {
                        None => {
                            per_ip.insert(l.ip, (l.addr, None));
                        }
                        Some(entry) => {
                            transitions += 1;
                            let delta = l.addr as i64 - entry.0 as i64;
                            if delta == 0 {
                                constant += 1;
                            }
                            if entry.1 == Some(delta) {
                                stride += 1;
                            }
                            *entry = (l.addr, Some(delta));
                        }
                    }
                }
                TraceEvent::Store(_) => stores += 1,
                TraceEvent::Branch(_) => branches += 1,
                TraceEvent::Op(_) => {}
            }
        }
        let frac = |n: usize| {
            if transitions == 0 {
                0.0
            } else {
                n as f64 / transitions as f64
            }
        };
        Self {
            instructions: trace.len(),
            loads,
            stores,
            branches,
            static_loads: per_ip.len(),
            unique_addresses: addr_set.len(),
            constant_fraction: frac(constant),
            stride_fraction: frac(stride),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    #[test]
    fn constant_loads_have_high_constant_fraction() {
        let mut b = TraceBuilder::new();
        for _ in 0..100 {
            b.load(0x10, 0xAAAA, 0);
        }
        let s = TraceStats::compute(&b.finish());
        assert!(s.constant_fraction > 0.98);
        // A constant delta of 0 is also a repeated stride.
        assert!(s.stride_fraction > 0.9);
        assert_eq!(s.static_loads, 1);
        assert_eq!(s.unique_addresses, 1);
    }

    #[test]
    fn random_loads_have_low_predictability() {
        use cap_rand::{Rng, SeedableRng};
        let mut rng = cap_rand::rngs::StdRng::seed_from_u64(1);
        let mut b = TraceBuilder::new();
        for _ in 0..1000 {
            b.load(0x10, rng.gen::<u32>() as u64, 0);
        }
        let s = TraceStats::compute(&b.finish());
        assert!(s.constant_fraction < 0.02);
        assert!(s.stride_fraction < 0.02);
    }

    #[test]
    fn counts_are_per_kind() {
        let mut b = TraceBuilder::new();
        b.load(1, 0x10, 0);
        b.store(2, 0x20);
        b.cond_branch(3, true);
        b.alu(4);
        let s = TraceStats::compute(&b.finish());
        assert_eq!(s.instructions, 4);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.branches, 1);
    }

    #[test]
    fn empty_trace_yields_zeroes() {
        let s = TraceStats::compute(&Trace::new());
        assert_eq!(s.loads, 0);
        assert_eq!(s.constant_fraction, 0.0);
    }

    #[test]
    fn interleaved_static_loads_tracked_independently() {
        let mut b = TraceBuilder::new();
        // IP 1 is constant; IP 2 strides. Interleaved.
        for i in 0..50u64 {
            b.load(1, 0x5000, 0);
            b.load(2, 0x100 + i * 4, 0);
        }
        let s = TraceStats::compute(&b.finish());
        assert_eq!(s.static_loads, 2);
        assert!(s.constant_fraction > 0.45 && s.constant_fraction < 0.55);
        assert!(s.stride_fraction > 0.9);
    }
}
