//! Seeded corruption generator over the text trace format.
//!
//! Produces the mutation classes a trace pipeline meets in the wild —
//! truncated transfers, bit-garbled bytes, dropped fields, interleaved
//! junk — as pure functions of a `cap_rand` stream, so every corrupted
//! byte string is replayable from a seed. The contract the chaos suite in
//! `cap-faults` enforces: [`crate::io::read_trace`] returns a
//! [`crate::io::ParseTraceError`] (never panics) on every mutation, and
//! [`crate::io::read_trace_lenient`] recovers the intact lines.

use cap_rand::{seq::SliceRandom, Rng};

/// The corruption classes the generator can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Cut the stream at an arbitrary byte (partial write / lost tail).
    Truncate,
    /// Flip random bits in random bytes (storage or transport garbling —
    /// may produce invalid UTF-8).
    BitGarble,
    /// Remove one whitespace-separated field from a line (format drift).
    FieldDrop,
    /// Insert lines of junk between events (interleaved foreign output).
    JunkLines,
}

impl CorruptionKind {
    /// Every corruption class, for sweeps.
    pub const ALL: [CorruptionKind; 4] = [
        CorruptionKind::Truncate,
        CorruptionKind::BitGarble,
        CorruptionKind::FieldDrop,
        CorruptionKind::JunkLines,
    ];
}

/// Applies one randomly chosen corruption class to `bytes`, returning the
/// mutated stream and the class applied. Inputs too small to mutate (empty
/// streams) come back unchanged.
#[must_use]
pub fn corrupt<R: Rng>(bytes: &[u8], rng: &mut R) -> (Vec<u8>, CorruptionKind) {
    let kind = *CorruptionKind::ALL
        .choose(rng)
        .unwrap_or(&CorruptionKind::BitGarble);
    (corrupt_as(bytes, kind, rng), kind)
}

/// Applies a specific corruption class to `bytes`.
#[must_use]
pub fn corrupt_as<R: Rng>(bytes: &[u8], kind: CorruptionKind, rng: &mut R) -> Vec<u8> {
    if bytes.is_empty() {
        return Vec::new();
    }
    match kind {
        CorruptionKind::Truncate => {
            let cut = rng.gen_range(0..bytes.len());
            bytes[..cut].to_vec()
        }
        CorruptionKind::BitGarble => {
            let mut out = bytes.to_vec();
            let flips = rng.gen_range(1..=8usize);
            for _ in 0..flips {
                let i = rng.gen_range(0..out.len());
                out[i] ^= 1u8 << rng.gen_range(0..8u32);
            }
            out
        }
        CorruptionKind::FieldDrop => drop_field(bytes, rng),
        CorruptionKind::JunkLines => insert_junk(bytes, rng),
    }
}

/// Removes one whitespace-separated field from a randomly chosen non-empty
/// line. Falls back to the input when no line has a droppable field.
fn drop_field<R: Rng>(bytes: &[u8], rng: &mut R) -> Vec<u8> {
    let lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
    let candidates: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.split(|&b| b == b' ').filter(|f| !f.is_empty()).count() >= 2)
        .map(|(i, _)| i)
        .collect();
    let Some(&target) = candidates.as_slice().choose(rng) else {
        return bytes.to_vec();
    };
    let mut out = Vec::with_capacity(bytes.len());
    for (i, line) in lines.iter().enumerate() {
        if i > 0 {
            out.push(b'\n');
        }
        if i == target {
            let fields: Vec<&[u8]> = line
                .split(|&b| b == b' ')
                .filter(|f| !f.is_empty())
                .collect();
            let victim = rng.gen_range(0..fields.len());
            let kept: Vec<&[u8]> = fields
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != victim)
                .map(|(_, f)| *f)
                .collect();
            out.extend_from_slice(&kept.join(&b' '));
        } else {
            out.extend_from_slice(line);
        }
    }
    out
}

/// Inserts 1–3 junk lines (random printable garbage) at random line
/// boundaries, leaving every original line intact.
fn insert_junk<R: Rng>(bytes: &[u8], rng: &mut R) -> Vec<u8> {
    let lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
    let junk_count = rng.gen_range(1..=3usize);
    let mut insert_at: Vec<usize> = (0..junk_count)
        .map(|_| rng.gen_range(0..=lines.len()))
        .collect();
    insert_at.sort_unstable();
    let mut parts: Vec<Vec<u8>> = Vec::with_capacity(lines.len() + junk_count);
    let mut pending = insert_at.into_iter().peekable();
    for (i, line) in lines.iter().enumerate() {
        while pending.peek().is_some_and(|&at| at == i) {
            parts.push(junk_line(rng));
            pending.next();
        }
        parts.push(line.to_vec());
    }
    for _ in pending {
        parts.push(junk_line(rng));
    }
    parts.join(&b'\n' as &u8)
}

/// Junk content is drawn from printable non-space ASCII, so a junk line is
/// a single unparseable field (or a harmless `#` comment) and can never
/// alias a well-formed event.
fn junk_line<R: Rng>(rng: &mut R) -> Vec<u8> {
    let len = rng.gen_range(1..24usize);
    (0..len)
        .map(|_| rng.gen_range(0x21..0x7Fu32) as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::io::write_trace;
    use cap_rand::{rngs::StdRng, SeedableRng};

    fn sample_bytes() -> Vec<u8> {
        let mut b = TraceBuilder::new();
        for i in 0..20u64 {
            b.load(0x400 + i * 4, 0x1000 + i * 8, 8);
            b.cond_branch(0x500 + i * 4, i % 2 == 0);
        }
        let mut buf = Vec::new();
        write_trace(&mut buf, &b.finish()).expect("write to Vec cannot fail");
        buf
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let bytes = sample_bytes();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(corrupt(&bytes, &mut a), corrupt(&bytes, &mut b));
    }

    #[test]
    fn truncate_shortens_the_stream() {
        let bytes = sample_bytes();
        let mut rng = StdRng::seed_from_u64(1);
        let out = corrupt_as(&bytes, CorruptionKind::Truncate, &mut rng);
        assert!(out.len() < bytes.len());
        assert_eq!(out, bytes[..out.len()]);
    }

    #[test]
    fn bit_garble_changes_but_preserves_length() {
        let bytes = sample_bytes();
        let mut rng = StdRng::seed_from_u64(2);
        let out = corrupt_as(&bytes, CorruptionKind::BitGarble, &mut rng);
        assert_eq!(out.len(), bytes.len());
        assert_ne!(out, bytes);
    }

    #[test]
    fn field_drop_removes_exactly_one_field() {
        let bytes = sample_bytes();
        let mut rng = StdRng::seed_from_u64(3);
        let out = corrupt_as(&bytes, CorruptionKind::FieldDrop, &mut rng);
        let count = |b: &[u8]| b.split(|&c| c == b' ').filter(|f| !f.is_empty()).count();
        assert_eq!(count(&out), count(&bytes) - 1);
    }

    #[test]
    fn junk_lines_add_lines() {
        let bytes = sample_bytes();
        let mut rng = StdRng::seed_from_u64(4);
        let out = corrupt_as(&bytes, CorruptionKind::JunkLines, &mut rng);
        let lines = |b: &[u8]| b.iter().filter(|&&c| c == b'\n').count();
        assert!(lines(&out) > lines(&bytes));
    }

    #[test]
    fn empty_input_stays_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(corrupt(&[], &mut rng).0.is_empty());
    }
}
