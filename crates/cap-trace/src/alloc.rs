//! A synthetic heap-allocator model.
//!
//! Recursive data structures only defeat stride predictors when their nodes
//! land at irregular addresses. Real allocators produce exactly that after
//! some churn: freelist reuse, interleaved allocations from other sites, and
//! alignment padding. [`HeapModel`] reproduces those layouts deterministically
//! so generated linked lists and trees exhibit the paper's
//! "short recurring but non-stride" address fingerprints.

use cap_rand::seq::SliceRandom;
use cap_rand::Rng;

/// Address-layout policy for a batch of same-sized allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LayoutPolicy {
    /// Sequential bump allocation — nodes end up at stride addresses.
    /// Useful as a control: a stride predictor *can* follow such an RDS.
    Bump,
    /// Bump allocation with random-sized gaps between nodes, as if other
    /// allocation sites interleaved. Breaks strides while keeping locality.
    #[default]
    Fragmented,
    /// Nodes allocated bump-style then permuted, as if drawn from a
    /// well-churned freelist. Fully order-decorrelated addresses.
    Shuffled,
}

/// Deterministic synthetic heap.
///
/// # Examples
///
/// ```
/// use cap_trace::alloc::{HeapModel, LayoutPolicy};
/// use cap_rand::SeedableRng;
///
/// let mut rng = cap_rand::rngs::StdRng::seed_from_u64(1);
/// let mut heap = HeapModel::new(0x1000_0000, 16);
/// let nodes = heap.alloc_nodes(8, 32, LayoutPolicy::Fragmented, &mut rng);
/// assert_eq!(nodes.len(), 8);
/// // All nodes are aligned.
/// assert!(nodes.iter().all(|a| a % 16 == 0));
/// ```
#[derive(Debug, Clone)]
pub struct HeapModel {
    cursor: u64,
    align: u64,
}

impl HeapModel {
    /// Creates a heap whose first allocation starts at `base`, aligning every
    /// object to `align` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero or not a power of two.
    #[must_use]
    pub fn new(base: u64, align: u64) -> Self {
        assert!(
            align.is_power_of_two(),
            "alignment must be a power of two, got {align}"
        );
        Self {
            cursor: round_up(base, align),
            align,
        }
    }

    /// Current top-of-heap address.
    #[must_use]
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Allocates one object of `size` bytes and returns its base address.
    pub fn alloc(&mut self, size: u64) -> u64 {
        let addr = self.cursor;
        self.cursor = round_up(self.cursor + size.max(1), self.align);
        addr
    }

    /// Skips `gap` bytes, as if another allocation site consumed them.
    pub fn skip(&mut self, gap: u64) {
        self.cursor = round_up(self.cursor + gap, self.align);
    }

    /// Allocates `count` nodes of `size` bytes under the given layout policy
    /// and returns their base addresses in *logical* (data-structure) order.
    pub fn alloc_nodes<R: Rng>(
        &mut self,
        count: usize,
        size: u64,
        policy: LayoutPolicy,
        rng: &mut R,
    ) -> Vec<u64> {
        let mut nodes = Vec::with_capacity(count);
        match policy {
            LayoutPolicy::Bump => {
                for _ in 0..count {
                    nodes.push(self.alloc(size));
                }
            }
            LayoutPolicy::Fragmented => {
                for _ in 0..count {
                    nodes.push(self.alloc(size));
                    // Interleave a random foreign allocation 0..4x node size.
                    let gap = rng.gen_range(0..=4) * size;
                    self.skip(gap);
                }
            }
            LayoutPolicy::Shuffled => {
                for _ in 0..count {
                    nodes.push(self.alloc(size));
                }
                nodes.shuffle(rng);
            }
        }
        nodes
    }
}

fn round_up(value: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (value + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_rand::SeedableRng;

    fn rng() -> cap_rand::rngs::StdRng {
        cap_rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn bump_layout_is_stride() {
        let mut heap = HeapModel::new(0x1000, 16);
        let nodes = heap.alloc_nodes(10, 32, LayoutPolicy::Bump, &mut rng());
        let stride = nodes[1] - nodes[0];
        assert!(stride >= 32);
        for w in nodes.windows(2) {
            assert_eq!(w[1] - w[0], stride, "bump layout must be constant-stride");
        }
    }

    #[test]
    fn fragmented_layout_breaks_stride() {
        let mut heap = HeapModel::new(0x1000, 16);
        let nodes = heap.alloc_nodes(32, 32, LayoutPolicy::Fragmented, &mut rng());
        let deltas: Vec<u64> = nodes.windows(2).map(|w| w[1] - w[0]).collect();
        let first = deltas[0];
        assert!(
            deltas.iter().any(|&d| d != first),
            "fragmented layout should not be constant-stride"
        );
        // Still monotonically increasing (locality preserved).
        assert!(nodes.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn shuffled_layout_is_permutation_of_bump() {
        let mut heap_a = HeapModel::new(0x1000, 16);
        let mut heap_b = HeapModel::new(0x1000, 16);
        let mut sorted = heap_a.alloc_nodes(16, 48, LayoutPolicy::Shuffled, &mut rng());
        let bump = heap_b.alloc_nodes(16, 48, LayoutPolicy::Bump, &mut rng());
        sorted.sort_unstable();
        assert_eq!(sorted, bump);
    }

    #[test]
    fn allocations_respect_alignment() {
        let mut heap = HeapModel::new(0x1003, 64);
        for _ in 0..20 {
            assert_eq!(heap.alloc(7) % 64, 0);
        }
    }

    #[test]
    fn zero_size_alloc_still_advances() {
        let mut heap = HeapModel::new(0, 8);
        let a = heap.alloc(0);
        let b = heap.alloc(0);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_alignment_rejected() {
        let _ = HeapModel::new(0, 24);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut h1 = HeapModel::new(0x2000, 16);
        let mut h2 = HeapModel::new(0x2000, 16);
        let n1 = h1.alloc_nodes(20, 32, LayoutPolicy::Fragmented, &mut rng());
        let n2 = h2.alloc_nodes(20, 32, LayoutPolicy::Fragmented, &mut rng());
        assert_eq!(n1, n2);
    }
}
