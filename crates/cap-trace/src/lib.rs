//! # cap-trace — trace substrate for the CAP reproduction
//!
//! The ISCA 1999 paper *Correlated Load-Address Predictors* evaluates its
//! predictors on 45 proprietary IA-32 traces. This crate replaces them with
//! a deterministic synthetic trace infrastructure that reproduces the
//! *pattern classes* the paper analyses:
//!
//! * recursive-data-structure walks (linked lists, trees) — §2.1,
//! * control-correlated callee loads — §2.2,
//! * stride arrays with wraps (intervals) and long media strides,
//! * recurring stack frames, hash probes, and irregular pollution loads.
//!
//! ## Quick start
//!
//! ```
//! use cap_trace::suites::{catalog, Suite};
//!
//! // Generate the first INT trace at a small scale.
//! let spec = Suite::Int.traces().into_iter().next().unwrap();
//! let trace = spec.generate(5_000);
//! assert!(trace.load_count() >= 5_000);
//!
//! // Every load carries what the predictors need:
//! let load = trace.loads().next().unwrap();
//! let _static_ip = load.ip;
//! let _effective = load.addr;
//! let _base = load.base_addr(); // addr - immediate offset
//! ```
//!
//! Workloads can also be composed manually — see [`gen`] and
//! [`builder::TraceBuilder`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc;
pub mod builder;
pub mod corrupt;
pub mod cursor;
pub mod gen;
pub mod io;
pub mod record;
pub mod stats;
pub mod suites;

pub use record::{
    BranchKind, BranchRecord, LoadRecord, OpLatency, OpRecord, RegId, StoreRecord, Trace,
    TraceEvent,
};

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::builder::{IpAllocator, TraceBuilder};
    pub use crate::gen::{SeatAllocator, Workload};
    pub use crate::record::{LoadRecord, Trace, TraceEvent};
    pub use crate::stats::TraceStats;
    pub use crate::suites::{catalog, Suite, TraceSpec};
}
