//! Helpers for emitting well-formed traces from workload generators.

use crate::record::{
    BranchKind, BranchRecord, LoadRecord, OpLatency, OpRecord, RegId, StoreRecord, Trace,
    TraceEvent,
};

/// Allocates static instruction pointers for synthetic code.
///
/// Generators allocate their "code" once up front and then reuse the same
/// static IPs on every dynamic iteration — this is what gives each static
/// load a stable identity in the predictors' Load Buffer.
///
/// # Examples
///
/// ```
/// use cap_trace::builder::IpAllocator;
/// let mut ips = IpAllocator::new(0x400000);
/// let a = ips.next_ip();
/// let b = ips.next_ip();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct IpAllocator {
    next: u64,
}

impl IpAllocator {
    /// Instruction size used for synthetic code layout.
    const INSTR_SIZE: u64 = 4;

    /// Creates an allocator starting at `base`.
    #[must_use]
    pub fn new(base: u64) -> Self {
        Self { next: base }
    }

    /// Allocates the next static instruction pointer.
    pub fn next_ip(&mut self) -> u64 {
        let ip = self.next;
        self.next += Self::INSTR_SIZE;
        ip
    }

    /// Allocates a contiguous block of `count` static IPs.
    pub fn code_block(&mut self, count: usize) -> Vec<u64> {
        (0..count).map(|_| self.next_ip()).collect()
    }

    /// Skips ahead to separate unrelated code regions.
    pub fn gap(&mut self, instrs: u64) {
        self.next += instrs * Self::INSTR_SIZE;
    }
}

/// Accumulates [`TraceEvent`]s with convenience emitters.
///
/// # Examples
///
/// ```
/// use cap_trace::builder::TraceBuilder;
/// let mut b = TraceBuilder::new();
/// b.load(0x400000, 0x1008, 8);
/// b.cond_branch(0x400004, true);
/// let trace = b.finish();
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.load_count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    trace: Trace,
}

impl TraceBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// True when nothing has been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Emits a load with no register-dependence information.
    pub fn load(&mut self, ip: u64, addr: u64, offset: i32) {
        self.load_dep(ip, addr, offset, None, None);
    }

    /// Emits a load with destination and address-source registers.
    pub fn load_dep(
        &mut self,
        ip: u64,
        addr: u64,
        offset: i32,
        dst: Option<RegId>,
        addr_src: Option<RegId>,
    ) {
        self.load_val(ip, addr, offset, 0, dst, addr_src);
    }

    /// Emits a load carrying the value read from memory (used by the
    /// value-prediction comparison experiments).
    pub fn load_val(
        &mut self,
        ip: u64,
        addr: u64,
        offset: i32,
        value: u64,
        dst: Option<RegId>,
        addr_src: Option<RegId>,
    ) {
        self.trace.push(TraceEvent::Load(LoadRecord {
            ip,
            addr,
            offset,
            size: 4,
            value,
            dst,
            addr_src,
        }));
    }

    /// Emits a store.
    pub fn store(&mut self, ip: u64, addr: u64) {
        self.store_dep(ip, addr, None, None);
    }

    /// Emits a store with register-dependence information.
    pub fn store_dep(
        &mut self,
        ip: u64,
        addr: u64,
        data_src: Option<RegId>,
        addr_src: Option<RegId>,
    ) {
        self.trace.push(TraceEvent::Store(StoreRecord {
            ip,
            addr,
            size: 4,
            data_src,
            addr_src,
        }));
    }

    /// Emits a conditional branch.
    pub fn cond_branch(&mut self, ip: u64, taken: bool) {
        self.branch(ip, taken, if taken { ip.wrapping_sub(0x20) } else { ip + 4 });
    }

    /// Emits a conditional branch with an explicit target.
    pub fn branch(&mut self, ip: u64, taken: bool, target: u64) {
        self.trace.push(TraceEvent::Branch(BranchRecord {
            ip,
            taken,
            target,
            kind: BranchKind::Conditional,
        }));
    }

    /// Emits a call control transfer.
    pub fn call(&mut self, ip: u64, target: u64) {
        self.trace.push(TraceEvent::Branch(BranchRecord {
            ip,
            taken: true,
            target,
            kind: BranchKind::Call,
        }));
    }

    /// Emits a return control transfer.
    pub fn ret(&mut self, ip: u64, target: u64) {
        self.trace.push(TraceEvent::Branch(BranchRecord {
            ip,
            taken: true,
            target,
            kind: BranchKind::Return,
        }));
    }

    /// Emits a single-cycle ALU op with no dependences.
    pub fn alu(&mut self, ip: u64) {
        self.op(ip, OpLatency::Alu, None, [None, None]);
    }

    /// Emits a computation op.
    pub fn op(
        &mut self,
        ip: u64,
        latency: OpLatency,
        dst: Option<RegId>,
        srcs: [Option<RegId>; 2],
    ) {
        self.trace.push(TraceEvent::Op(OpRecord {
            ip,
            latency,
            dst,
            srcs,
        }));
    }

    /// Appends all events of another trace.
    pub fn append(&mut self, other: &Trace) {
        self.trace.extend(other.iter().copied());
    }

    /// Counts loads emitted at or after event index `since`.
    ///
    /// Used by interleaving schedulers to attribute load counts to the
    /// component that just ran without rescanning the whole trace.
    #[must_use]
    pub fn loads_since(&self, since: usize) -> usize {
        self.trace.events()[since..]
            .iter()
            .filter(|e| matches!(e, TraceEvent::Load(_)))
            .count()
    }

    /// Consumes the builder and returns the trace.
    #[must_use]
    pub fn finish(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_allocator_is_monotone_and_disjoint() {
        let mut ips = IpAllocator::new(0x1000);
        let block_a = ips.code_block(4);
        ips.gap(16);
        let block_b = ips.code_block(4);
        for w in block_a.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(block_a.last().unwrap() < block_b.first().unwrap());
    }

    #[test]
    fn builder_emits_in_order() {
        let mut b = TraceBuilder::new();
        b.load(1, 0x10, 0);
        b.store(2, 0x20);
        b.cond_branch(3, false);
        b.alu(4);
        b.call(5, 100);
        b.ret(6, 5);
        let trace = b.finish();
        let ips: Vec<u64> = trace.iter().map(TraceEvent::ip).collect();
        assert_eq!(ips, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(trace.load_count(), 1);
    }

    #[test]
    fn append_concatenates() {
        let mut a = TraceBuilder::new();
        a.load(1, 0x10, 0);
        let ta = a.finish();
        let mut b = TraceBuilder::new();
        b.alu(2);
        b.append(&ta);
        let t = b.finish();
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[1].ip(), 1);
    }

    #[test]
    fn branch_kinds_recorded() {
        let mut b = TraceBuilder::new();
        b.call(1, 100);
        b.ret(2, 5);
        b.cond_branch(3, true);
        let t = b.finish();
        let kinds: Vec<BranchKind> = t
            .iter()
            .filter_map(TraceEvent::as_branch)
            .map(|br| br.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![BranchKind::Call, BranchKind::Return, BranchKind::Conditional]
        );
    }
}
