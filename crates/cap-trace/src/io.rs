//! Trace serialization — a compact, line-oriented text format.
//!
//! One event per line, whitespace-separated, hex-encoded:
//!
//! ```text
//! L <ip> <addr> <offset> <size> <value> <dst|-> <addr_src|->
//! S <ip> <addr> <size> <data_src|-> <addr_src|->
//! B <ip> <taken:0|1> <target> <kind:C|A|R|J>
//! O <ip> <lat:A|M|D|F|P> <dst|-> <src0|-> <src1|->
//! ```
//!
//! Lines starting with `#` are comments. The format exists so traces can
//! be inspected with standard text tools, diffed, or produced by external
//! generators and fed to the predictors.

use crate::record::{
    BranchKind, BranchRecord, LoadRecord, OpLatency, OpRecord, RegId, StoreRecord, Trace,
    TraceEvent,
};
use std::io::{self, BufRead, Write};

/// Errors produced while parsing a trace.
#[derive(Debug)]
pub enum ParseTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ParseTraceError::Malformed { line, reason } => {
                write!(f, "malformed trace line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseTraceError::Io(e) => Some(e),
            ParseTraceError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for ParseTraceError {
    fn from(e: io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

fn reg_str(r: Option<RegId>) -> String {
    match r {
        Some(r) => r.index().to_string(),
        None => "-".to_owned(),
    }
}

fn lat_char(l: OpLatency) -> char {
    match l {
        OpLatency::Alu => 'A',
        OpLatency::Mul => 'M',
        OpLatency::Div => 'D',
        OpLatency::FpAdd => 'F',
        OpLatency::FpMul => 'P',
    }
}

fn kind_char(k: BranchKind) -> char {
    match k {
        BranchKind::Conditional => 'C',
        BranchKind::Call => 'A',
        BranchKind::Return => 'R',
        BranchKind::Jump => 'J',
    }
}

/// Writes a trace in the text format.
///
/// # Errors
///
/// Propagates any I/O error from `w`.
///
/// # Examples
///
/// ```
/// use cap_trace::builder::TraceBuilder;
/// use cap_trace::io::{read_trace, write_trace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = TraceBuilder::new();
/// b.load(0x400, 0x1008, 8);
/// b.cond_branch(0x404, true);
/// let trace = b.finish();
///
/// let mut buf = Vec::new();
/// write_trace(&mut buf, &trace)?;
/// let back = read_trace(buf.as_slice())?;
/// assert_eq!(trace, back);
/// # Ok(())
/// # }
/// ```
pub fn write_trace<W: Write>(mut w: W, trace: &Trace) -> io::Result<()> {
    writeln!(w, "# cap-trace v1: {} events", trace.len())?;
    for event in trace.iter() {
        writeln!(w, "{}", event_line(event))?;
    }
    Ok(())
}

/// Renders one event as its canonical trace line (no trailing newline).
///
/// This is the inverse of [`parse_event_line`] and round-trips exactly:
/// `parse_event_line(&event_line(e)) == e` for every event. The delta
/// journal in `cap-harness` leans on that — journaled events are stored
/// as these lines and re-parsed at replay.
#[must_use]
pub fn event_line(event: &TraceEvent) -> String {
    match event {
        TraceEvent::Load(l) => format!(
            "L {:x} {:x} {} {} {:x} {} {}",
            l.ip,
            l.addr,
            l.offset,
            l.size,
            l.value,
            reg_str(l.dst),
            reg_str(l.addr_src)
        ),
        TraceEvent::Store(s) => format!(
            "S {:x} {:x} {} {} {}",
            s.ip,
            s.addr,
            s.size,
            reg_str(s.data_src),
            reg_str(s.addr_src)
        ),
        TraceEvent::Branch(b) => format!(
            "B {:x} {} {:x} {}",
            b.ip,
            u8::from(b.taken),
            b.target,
            kind_char(b.kind)
        ),
        TraceEvent::Op(o) => format!(
            "O {:x} {} {} {} {}",
            o.ip,
            lat_char(o.latency),
            reg_str(o.dst),
            reg_str(o.srcs[0]),
            reg_str(o.srcs[1])
        ),
    }
}

struct LineParser<'a> {
    fields: std::str::SplitWhitespace<'a>,
    line: usize,
}

impl<'a> LineParser<'a> {
    fn err(&self, reason: impl Into<String>) -> ParseTraceError {
        ParseTraceError::Malformed {
            line: self.line,
            reason: reason.into(),
        }
    }

    fn next(&mut self) -> Result<&'a str, ParseTraceError> {
        self.fields.next().ok_or_else(|| self.err("missing field"))
    }

    fn hex(&mut self) -> Result<u64, ParseTraceError> {
        let f = self.next()?;
        u64::from_str_radix(f, 16).map_err(|_| self.err(format!("bad hex value '{f}'")))
    }

    fn int<T: std::str::FromStr>(&mut self) -> Result<T, ParseTraceError> {
        let f = self.next()?;
        f.parse().map_err(|_| self.err(format!("bad integer '{f}'")))
    }

    fn reg(&mut self) -> Result<Option<RegId>, ParseTraceError> {
        let f = self.next()?;
        if f == "-" {
            return Ok(None);
        }
        let idx: u8 = f
            .parse()
            .map_err(|_| self.err(format!("bad register '{f}'")))?;
        if (idx as usize) >= RegId::COUNT {
            return Err(self.err(format!("register {idx} out of range")));
        }
        Ok(Some(RegId::new(idx)))
    }
}

/// Parses one non-blank, non-comment line into an event. Shared by the
/// strict and lenient readers and by delta-journal replay in
/// `cap-harness`; every failure mode is a structured
/// [`ParseTraceError::Malformed`] carrying `line_no` — this function never
/// panics, whatever the input bytes were.
///
/// # Errors
///
/// [`ParseTraceError::Malformed`] for any line that is not a canonical
/// event rendering.
pub fn parse_event_line(trimmed: &str, line_no: usize) -> Result<TraceEvent, ParseTraceError> {
    let mut fields = trimmed.split_whitespace();
    let Some(tag) = fields.next() else {
        // Unreachable through the public readers (blank lines are skipped
        // before this call), but a structured error beats an expect.
        return Err(ParseTraceError::Malformed {
            line: line_no,
            reason: "empty line".to_owned(),
        });
    };
    let mut p = LineParser {
        fields,
        line: line_no,
    };
    let event = match tag {
        "L" => TraceEvent::Load(LoadRecord {
            ip: p.hex()?,
            addr: p.hex()?,
            offset: p.int()?,
            size: p.int()?,
            value: p.hex()?,
            dst: p.reg()?,
            addr_src: p.reg()?,
        }),
        "S" => TraceEvent::Store(StoreRecord {
            ip: p.hex()?,
            addr: p.hex()?,
            size: p.int()?,
            data_src: p.reg()?,
            addr_src: p.reg()?,
        }),
        "B" => {
            let ip = p.hex()?;
            let taken: u8 = p.int()?;
            let target = p.hex()?;
            let kind = match p.next()? {
                "C" => BranchKind::Conditional,
                "A" => BranchKind::Call,
                "R" => BranchKind::Return,
                "J" => BranchKind::Jump,
                other => return Err(p.err(format!("bad branch kind '{other}'"))),
            };
            TraceEvent::Branch(BranchRecord {
                ip,
                taken: taken != 0,
                target,
                kind,
            })
        }
        "O" => {
            let ip = p.hex()?;
            let latency = match p.next()? {
                "A" => OpLatency::Alu,
                "M" => OpLatency::Mul,
                "D" => OpLatency::Div,
                "F" => OpLatency::FpAdd,
                "P" => OpLatency::FpMul,
                other => return Err(p.err(format!("bad latency class '{other}'"))),
            };
            TraceEvent::Op(OpRecord {
                ip,
                latency,
                dst: p.reg()?,
                srcs: [p.reg()?, p.reg()?],
            })
        }
        other => return Err(p.err(format!("unknown event tag '{other}'"))),
    };
    if let Some(extra) = p.fields.next() {
        return Err(p.err(format!("trailing field '{extra}'")));
    }
    Ok(event)
}

/// Reads a trace from the text format.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on I/O failure or any malformed line
/// (including non-UTF-8 bytes, surfaced as [`ParseTraceError::Io`]). This
/// reader never panics, whatever bytes `r` yields — the guarantee the
/// corruption suite in `cap-faults` exercises.
pub fn read_trace<R: BufRead>(r: R) -> Result<Trace, ParseTraceError> {
    let mut trace = Trace::new();
    for (i, line) in r.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        trace.push(parse_event_line(trimmed, line_no)?);
    }
    Ok(trace)
}

/// One malformed line skipped by [`read_trace_lenient`], with enough
/// position information to inspect the damage in the source stream (`dd`,
/// hex editors, or a re-read with [`crate::cursor::TraceCursor`] all work
/// in byte offsets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedLine {
    /// 1-based line number.
    pub line: usize,
    /// Byte offset of the start of the line in the input stream.
    pub byte_offset: u64,
    /// Why the line was rejected.
    pub reason: String,
}

/// Outcome of a lossy [`read_trace_lenient`] pass.
#[derive(Debug)]
#[must_use]
pub struct LenientParse {
    /// The events recovered from well-formed lines.
    pub trace: Trace,
    /// Number of malformed lines skipped.
    pub skipped: usize,
    /// The first skip, as `(1-based line number, reason)` — a ready-made
    /// warning message for callers that log degradation.
    pub first_error: Option<(usize, String)>,
    /// Every skipped line with its byte offset, in stream order.
    pub skips: Vec<SkippedLine>,
}

impl LenientParse {
    /// True when every line parsed cleanly.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.skipped == 0
    }
}

/// Reads a trace in lossy mode: malformed lines (including lines that are
/// not valid UTF-8) are skipped and counted instead of aborting the parse,
/// so a partially corrupted stream still yields every recoverable event.
///
/// # Errors
///
/// Only genuine I/O errors from `r` abort the parse; malformed content
/// never does.
pub fn read_trace_lenient<R: BufRead>(mut r: R) -> io::Result<LenientParse> {
    let mut out = LenientParse {
        trace: Trace::new(),
        skipped: 0,
        first_error: None,
        skips: Vec::new(),
    };
    let mut raw = Vec::new();
    let mut line_no = 0usize;
    let mut consumed = 0u64;
    loop {
        raw.clear();
        if r.read_until(b'\n', &mut raw)? == 0 {
            break;
        }
        line_no += 1;
        let line_start = consumed;
        consumed += raw.len() as u64;
        let skip = |out: &mut LenientParse, reason: String| {
            out.skipped += 1;
            if out.first_error.is_none() {
                out.first_error = Some((line_no, reason.clone()));
            }
            out.skips.push(SkippedLine {
                line: line_no,
                byte_offset: line_start,
                reason,
            });
        };
        let Ok(line) = std::str::from_utf8(&raw) else {
            skip(&mut out, "invalid UTF-8".to_owned());
            continue;
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match parse_event_line(trimmed, line_no) {
            Ok(event) => out.trace.push(event),
            Err(e) => skip(&mut out, e.to_string()),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::suites::catalog;

    fn roundtrip(trace: &Trace) -> Trace {
        let mut buf = Vec::new();
        write_trace(&mut buf, trace).expect("write to Vec cannot fail");
        read_trace(buf.as_slice()).expect("roundtrip must parse")
    }

    #[test]
    fn roundtrips_every_event_kind() {
        let mut b = TraceBuilder::new();
        b.load_val(0x400, 0x1008, 8, 0xDEAD, Some(RegId::new(3)), Some(RegId::new(4)));
        b.load(0x404, 0x2000, -16);
        b.store_dep(0x408, 0x3000, Some(RegId::new(5)), None);
        b.cond_branch(0x40C, true);
        b.call(0x410, 0x800);
        b.ret(0x814, 0x414);
        b.op(
            0x418,
            OpLatency::Div,
            Some(RegId::new(6)),
            [Some(RegId::new(7)), None],
        );
        let trace = b.finish();
        assert_eq!(roundtrip(&trace), trace);
    }

    #[test]
    fn roundtrips_catalog_trace() {
        let trace = catalog()[0].generate(2_000);
        assert_eq!(roundtrip(&trace), trace);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\nL 400 1008 8 4 0 - -\n# trailing\n";
        let trace = read_trace(text.as_bytes()).expect("parses");
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.loads().next().unwrap().addr, 0x1008);
    }

    #[test]
    fn malformed_lines_report_position() {
        let text = "L 400 1008 8 4 0 - -\nX what\n";
        let err = read_trace(text.as_bytes()).expect_err("must fail");
        match err {
            ParseTraceError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error kind: {other}"),
        }
    }

    #[test]
    fn out_of_range_register_rejected() {
        let text = "L 400 1008 8 4 0 99 -\n";
        assert!(read_trace(text.as_bytes()).is_err());
    }

    #[test]
    fn bad_hex_rejected_with_description() {
        let text = "L zz 1008 8 4 0 - -\n";
        let err = read_trace(text.as_bytes()).expect_err("must fail");
        assert!(err.to_string().contains("bad hex"));
    }

    #[test]
    fn trailing_fields_rejected() {
        let text = "L 400 1008 8 4 0 - - junk\n";
        let err = read_trace(text.as_bytes()).expect_err("must fail");
        assert!(err.to_string().contains("trailing field"));
    }

    #[test]
    fn lenient_skips_malformed_lines_and_counts_them() {
        let text = "L 400 1008 8 4 0 - -\nX what\nL 404 2000 0 4 0 - -\n";
        let parsed = read_trace_lenient(text.as_bytes()).expect("no io error");
        assert_eq!(parsed.trace.len(), 2);
        assert_eq!(parsed.skipped, 1);
        let (line, reason) = parsed.first_error.expect("skip recorded");
        assert_eq!(line, 2);
        assert!(reason.contains("unknown event tag"));
    }

    #[test]
    fn lenient_survives_invalid_utf8() {
        let mut bytes = b"L 400 1008 8 4 0 - -\n".to_vec();
        bytes.extend_from_slice(&[0xFF, 0xFE, b'\n']);
        bytes.extend_from_slice(b"L 404 2000 0 4 0 - -\n");
        let parsed = read_trace_lenient(bytes.as_slice()).expect("no io error");
        assert_eq!(parsed.trace.len(), 2);
        assert_eq!(parsed.skipped, 1);
        assert!(!parsed.is_clean());
    }

    #[test]
    fn lenient_on_clean_input_matches_strict() {
        let trace = catalog()[0].generate(1_000);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("write to Vec cannot fail");
        let parsed = read_trace_lenient(buf.as_slice()).expect("no io error");
        assert!(parsed.is_clean());
        assert_eq!(parsed.trace, trace);
    }

    #[test]
    fn lenient_records_byte_offset_of_every_skip() {
        let good1 = "L 400 1008 8 4 0 - -\n";
        let bad1 = "X what\n";
        let good2 = "L 404 2000 0 4 0 - -\n";
        let bad2 = "L zz zz\n";
        let text = format!("{good1}{bad1}{good2}{bad2}");
        let parsed = read_trace_lenient(text.as_bytes()).expect("no io error");
        assert_eq!(parsed.skipped, 2);
        assert_eq!(parsed.skips.len(), 2);
        assert_eq!(parsed.skips[0].line, 2);
        assert_eq!(parsed.skips[0].byte_offset, good1.len() as u64);
        assert!(parsed.skips[0].reason.contains("unknown event tag"));
        assert_eq!(
            parsed.skips[1].byte_offset,
            (good1.len() + bad1.len() + good2.len()) as u64
        );
        // The offset points at the damaged bytes in the original stream.
        let start = parsed.skips[1].byte_offset as usize;
        assert!(text[start..].starts_with("L zz"));
    }

    #[test]
    fn event_line_roundtrips_every_event() {
        let trace = catalog()[0].generate(2_000);
        for (i, event) in trace.iter().enumerate() {
            let line = event_line(event);
            let back = parse_event_line(&line, i + 1).expect("canonical line parses");
            assert_eq!(&back, event, "event {i}: '{line}'");
        }
    }

    #[test]
    fn negative_offsets_roundtrip() {
        let mut b = TraceBuilder::new();
        b.load(0x400, 0x1000, -128);
        let trace = b.finish();
        let back = roundtrip(&trace);
        assert_eq!(back.loads().next().unwrap().offset, -128);
    }
}
