//! The 45-trace / 8-suite catalog substituting for the paper's IA-32 traces.
//!
//! The paper evaluates 45 proprietary traces grouped into eight suites
//! (§4.1). We cannot use Intel's traces, so each suite is reproduced as a
//! *pattern-class mix* engineered from the paper's own characterisation:
//!
//! * **INT** — SPECint95: RDS walks (`xlisp`, `go` lists), control-correlated
//!   callees (`xlmatch`), moderate arrays — CAP's home turf.
//! * **CAD** — large static-load footprint, lists + struct arrays, address
//!   volatility (LT-size sensitive).
//! * **MM** — multimedia/MMX: large-matrix strides that exceed LT capacity;
//!   the one suite where CAP underperforms the stride predictor.
//! * **GAM** — games: array geometry + tree/spatial lookups.
//! * **JAV** — Java: stack-machine frames, short procedures, tiny unstable
//!   inner-loop arrays (the §4.3 example), very high memory density.
//! * **TPC** — database: hash probing, large footprint, irregular rows —
//!   high LB contention, lower prediction rates.
//! * **NT** / **W95** — desktop apps: wide mixes with thousands of static
//!   loads; W95 skews more irregular. Prediction rate grows with LB size.
//!
//! Every trace is generated deterministically from its catalog seed.

use crate::alloc::LayoutPolicy;
use crate::builder::TraceBuilder;
use crate::gen::array::{ArrayConfig, ArraySpec, ArrayWorkload};
use crate::gen::call_site::{CallSiteConfig, CallSiteWorkload};
use crate::gen::globals::{GlobalsConfig, GlobalsWorkload};
use crate::gen::hash::{HashConfig, HashWorkload};
use crate::gen::linked_list::{
    DoublyLinkedListConfig, DoublyLinkedListWorkload, LinkedListConfig, LinkedListWorkload,
};
use crate::gen::matrix::{MatrixConfig, MatrixWorkload};
use crate::gen::mix::MixWorkload;
use crate::gen::random::{RandomConfig, RandomWorkload};
use crate::gen::stack::{StackConfig, StackWorkload};
use crate::gen::tree::{BinaryTreeConfig, BinaryTreeWorkload};
use crate::gen::{SeatAllocator, Workload};
use crate::record::Trace;
use cap_rand::rngs::StdRng;
use cap_rand::SeedableRng;

/// The paper's eight application suites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Suite {
    /// CAD programs (2 traces).
    Cad,
    /// Games (4 traces).
    Gam,
    /// SPECint95 (8 traces).
    Int,
    /// Java programs (5 traces).
    Jav,
    /// Multimedia / MMX applications (8 traces).
    Mm,
    /// Windows NT applications (8 traces).
    Nt,
    /// TPC database benchmarks (3 traces).
    Tpc,
    /// Windows 95 applications (7 traces).
    W95,
}

impl Suite {
    /// All suites in the paper's reporting order.
    pub const ALL: [Suite; 8] = [
        Suite::Cad,
        Suite::Gam,
        Suite::Int,
        Suite::Jav,
        Suite::Mm,
        Suite::Nt,
        Suite::Tpc,
        Suite::W95,
    ];

    /// Display name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Suite::Cad => "CAD",
            Suite::Gam => "GAM",
            Suite::Int => "INT",
            Suite::Jav => "JAV",
            Suite::Mm => "MM",
            Suite::Nt => "NT",
            Suite::Tpc => "TPC",
            Suite::W95 => "W95",
        }
    }

    /// The traces belonging to this suite.
    #[must_use]
    pub fn traces(self) -> Vec<TraceSpec> {
        catalog().into_iter().filter(|t| t.suite == self).collect()
    }
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A named trace in the catalog.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Short name, e.g. `"INT_go"`.
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Generation seed (fixed per catalog entry).
    pub seed: u64,
    /// Within-suite variant index; perturbs structure sizes so the traces
    /// of a suite are siblings, not clones.
    pub variant: u64,
}

impl TraceSpec {
    /// Generates this trace with at least `loads` dynamic loads.
    ///
    /// # Examples
    ///
    /// ```
    /// use cap_trace::suites::catalog;
    /// let spec = &catalog()[0];
    /// let trace = spec.generate(1_000);
    /// assert!(trace.load_count() >= 1_000);
    /// ```
    #[must_use]
    pub fn generate(&self, loads: usize) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut seats = SeatAllocator::new();
        let mut mix = build_suite_mix(self.suite, self.variant, &mut seats, &mut rng);
        let mut builder = TraceBuilder::new();
        mix.emit(&mut builder, &mut rng, loads);
        builder.finish()
    }
}

/// The full 45-trace catalog, grouped per the paper: INT-8, CAD-2, MM-8,
/// GAM-4, JAV-5, TPC-3, NT-8, W95-7.
#[must_use]
pub fn catalog() -> Vec<TraceSpec> {
    fn spec(name: &'static str, suite: Suite, seed: u64, variant: u64) -> TraceSpec {
        TraceSpec {
            name,
            suite,
            seed,
            variant,
        }
    }
    vec![
        // CAD (2)
        spec("CAD_cat", Suite::Cad, 0x0CAD_0001, 0),
        spec("CAD_mic", Suite::Cad, 0x0CAD_0002, 1),
        // GAM (4)
        spec("GAM_duk", Suite::Gam, 0x06A0_0001, 0),
        spec("GAM_fal", Suite::Gam, 0x06A0_0002, 1),
        spec("GAM_mec", Suite::Gam, 0x06A0_0003, 2),
        spec("GAM_qua", Suite::Gam, 0x06A0_0004, 3),
        // INT (8)
        spec("INT_cmp", Suite::Int, 0x017E_0001, 0),
        spec("INT_gcc", Suite::Int, 0x017E_0002, 1),
        spec("INT_go", Suite::Int, 0x017E_0003, 2),
        spec("INT_ijp", Suite::Int, 0x017E_0004, 3),
        spec("INT_m88", Suite::Int, 0x017E_0005, 4),
        spec("INT_prl", Suite::Int, 0x017E_0006, 5),
        spec("INT_vtx", Suite::Int, 0x017E_0007, 6),
        spec("INT_xli", Suite::Int, 0x017E_0008, 7),
        // JAV (5)
        spec("JAV_3dg", Suite::Jav, 0x0A1A_0001, 0),
        spec("JAV_aud", Suite::Jav, 0x0A1A_0002, 1),
        spec("JAV_cfc", Suite::Jav, 0x0A1A_0003, 2),
        spec("JAV_cwc", Suite::Jav, 0x0A1A_0004, 3),
        spec("JAV_jit", Suite::Jav, 0x0A1A_0005, 4),
        // MM (8)
        spec("MM_aud", Suite::Mm, 0x03B3_0001, 0),
        spec("MM_cwc", Suite::Mm, 0x03B3_0002, 1),
        spec("MM_cws", Suite::Mm, 0x03B3_0003, 2),
        spec("MM_ind", Suite::Mm, 0x03B3_0004, 3),
        spec("MM_ine", Suite::Mm, 0x03B3_0005, 4),
        spec("MM_mpa", Suite::Mm, 0x03B3_0006, 5),
        spec("MM_mpg", Suite::Mm, 0x03B3_0007, 6),
        spec("MM_mpv", Suite::Mm, 0x03B3_0008, 7),
        // NT (8)
        spec("NT_cdw", Suite::Nt, 0x0217_0001, 0),
        spec("NT_exl", Suite::Nt, 0x0217_0002, 1),
        spec("NT_frl", Suite::Nt, 0x0217_0003, 2),
        spec("NT_pdx", Suite::Nt, 0x0217_0004, 3),
        spec("NT_pmk", Suite::Nt, 0x0217_0005, 4),
        spec("NT_pwp", Suite::Nt, 0x0217_0006, 5),
        spec("NT_wdp", Suite::Nt, 0x0217_0007, 6),
        spec("NT_wwd", Suite::Nt, 0x0217_0008, 7),
        // TPC (3)
        spec("TPC_23", Suite::Tpc, 0x07C0_0001, 0),
        spec("TPC_33", Suite::Tpc, 0x07C0_0002, 1),
        spec("TPC_b", Suite::Tpc, 0x07C0_0003, 2),
        // W95 (7)
        spec("W95_cdw", Suite::W95, 0x0950_0001, 0),
        spec("W95_exl", Suite::W95, 0x0950_0002, 1),
        spec("W95_frl", Suite::W95, 0x0950_0003, 2),
        spec("W95_prx", Suite::W95, 0x0950_0004, 3),
        spec("W95_pwp", Suite::W95, 0x0950_0005, 4),
        spec("W95_wdp", Suite::W95, 0x0950_0006, 5),
        spec("W95_wwd", Suite::W95, 0x0950_0007, 6),
    ]
}

/// Builds the workload mix that defines a suite's pattern-class profile.
fn build_suite_mix(
    suite: Suite,
    variant: u64,
    seats: &mut SeatAllocator,
    rng: &mut StdRng,
) -> MixWorkload {
    // Helper closures keep the recipes readable.
    let v = variant as usize;
    let mut mix = MixWorkload::new(120);

    let add_lists = |mix: &mut MixWorkload,
                         seats: &mut SeatAllocator,
                         rng: &mut StdRng,
                         instances: usize,
                         nodes: usize,
                         weight: u32| {
        for i in 0..instances {
            let cfg = LinkedListConfig {
                lists: 1 + (i % 2),
                nodes_per_list: nodes + (i % 5),
                field_offsets: vec![0, 4, 8],
                node_size: 32,
                layout: LayoutPolicy::Fragmented,
                mutate_every_inverse: 6,
            };
            mix.add(
                Box::new(LinkedListWorkload::new(cfg, seats.next_seat(), rng)),
                weight,
            );
        }
    };
    let add_call_sites = |mix: &mut MixWorkload,
                              seats: &mut SeatAllocator,
                              rng: &mut StdRng,
                              instances: usize,
                              loads_in_callee: usize,
                              weight: u32| {
        let patterns: [&[usize]; 3] = [&[0, 1, 2, 0], &[0, 0, 1, 2, 3], &[0, 1, 0, 2]];
        for i in 0..instances {
            let cfg = CallSiteConfig {
                sites: 4,
                pattern: patterns[i % patterns.len()].to_vec(),
                loads_in_callee,
                noise_percent: 8,
                site_block_size: 256,
            };
            mix.add(
                Box::new(CallSiteWorkload::new(cfg, seats.next_seat(), rng)),
                weight,
            );
        }
    };

    let add_globals = |mix: &mut MixWorkload,
                       seats: &mut SeatAllocator,
                       rng: &mut StdRng,
                       static_loads: usize,
                       weight: u32| {
        mix.add(
            Box::new(GlobalsWorkload::new(
                GlobalsConfig {
                    static_loads,
                    ..GlobalsConfig::default()
                },
                seats.next_seat(),
                rng,
            )),
            weight,
        );
    };
    // Bump-allocated lists: pointer chases whose nodes happen to be laid
    // out sequentially — serialised on load-to-use latency (so address
    // prediction pays) yet predictable by BOTH the stride and context
    // components. A large part of the paper's speedup comes from such
    // "regular RDS" code.
    let add_bump_lists = |mix: &mut MixWorkload,
                          seats: &mut SeatAllocator,
                          rng: &mut StdRng,
                          instances: usize,
                          nodes: usize,
                          weight: u32| {
        for i in 0..instances {
            let cfg = LinkedListConfig {
                lists: 1,
                nodes_per_list: nodes + 3 * (i % 3),
                field_offsets: vec![0, 8],
                node_size: 32,
                layout: LayoutPolicy::Bump,
                mutate_every_inverse: 0,
            };
            mix.add(
                Box::new(LinkedListWorkload::new(cfg, seats.next_seat(), rng)),
                weight,
            );
        }
    };
    let add_long_array = |mix: &mut MixWorkload,
                          seats: &mut SeatAllocator,
                          rng: &mut StdRng,
                          len: usize,
                          weight: u32| {
        mix.add(
            Box::new(ArrayWorkload::new(
                ArrayConfig {
                    arrays: vec![ArraySpec {
                        len,
                        elem_size: 8,
                        field_offsets: vec![0],
                    }],
                    skip_percent: 0,
                },
                seats.next_seat(),
                rng,
            )),
            weight,
        );
    };

    match suite {
        Suite::Int => {
            add_globals(&mut mix, seats, rng, 96, 18);
            add_bump_lists(&mut mix, seats, rng, 2, 24, 3);
            add_long_array(&mut mix, seats, rng, 3072, 3);
            add_lists(&mut mix, seats, rng, 3, 10 + v, 2);
            add_call_sites(&mut mix, seats, rng, 2, 3, 3);
            mix.add(
                Box::new(DoublyLinkedListWorkload::new(
                    DoublyLinkedListConfig::default(),
                    seats.next_seat(),
                    rng,
                )),
                1,
            );
            mix.add(
                Box::new(BinaryTreeWorkload::new(
                    BinaryTreeConfig {
                        depth: 5 + v % 3,
                        hot_paths: 3,
                        cold_percent: 15,
                        ..BinaryTreeConfig::default()
                    },
                    seats.next_seat(),
                    rng,
                )),
                2,
            );
            mix.add(
                Box::new(ArrayWorkload::new(
                    ArrayConfig {
                        arrays: vec![
                            ArraySpec {
                                len: 32 + 8 * v,
                                elem_size: 8,
                                field_offsets: vec![0],
                            },
                            ArraySpec {
                                len: 64,
                                elem_size: 16,
                                field_offsets: vec![0, 8],
                            },
                        ],
                        skip_percent: 0,
                    },
                    seats.next_seat(),
                    rng,
                )),
                6,
            );
            mix.add(
                Box::new(HashWorkload::new(
                    HashConfig {
                        cold_percent: 20,
                        ..HashConfig::default()
                    },
                    seats.next_seat(),
                    rng,
                )),
                1,
            );
            mix.add(
                Box::new(RandomWorkload::new(
                    RandomConfig {
                        static_loads: 96,
                        ..RandomConfig::default()
                    },
                    seats.next_seat(),
                    rng,
                )),
                12,
            );
        }
        Suite::Cad => {
            add_globals(&mut mix, seats, rng, 256, 26);
            add_bump_lists(&mut mix, seats, rng, 2, 32, 3);
            add_long_array(&mut mix, seats, rng, 4096, 3);
            // Big static footprint: many replicated structures.
            add_lists(&mut mix, seats, rng, 12, 8 + v, 1);
            add_call_sites(&mut mix, seats, rng, 8, 6, 1);
            mix.add(
                Box::new(ArrayWorkload::new(
                    ArrayConfig {
                        arrays: (0..6)
                            .map(|i| ArraySpec {
                                len: 48 + 16 * i,
                                elem_size: 24,
                                field_offsets: vec![0, 8, 16],
                            })
                            .collect(),
                        skip_percent: 0,
                    },
                    seats.next_seat(),
                    rng,
                )),
                6,
            );
            mix.add(
                Box::new(BinaryTreeWorkload::new(
                    BinaryTreeConfig {
                        depth: 7,
                        hot_paths: 6,
                        cold_percent: 25,
                        ..BinaryTreeConfig::default()
                    },
                    seats.next_seat(),
                    rng,
                )),
                3,
            );
            mix.add(
                Box::new(RandomWorkload::new(
                    RandomConfig {
                        static_loads: 2048,
                        ..RandomConfig::default()
                    },
                    seats.next_seat(),
                    rng,
                )),
                16,
            );
        }
        Suite::Mm => {
            add_globals(&mut mix, seats, rng, 48, 10);
            add_bump_lists(&mut mix, seats, rng, 1, 48, 3);
            // Short media loop tables: both components predict these.
            mix.add(
                Box::new(ArrayWorkload::new(
                    ArrayConfig {
                        arrays: vec![ArraySpec {
                            len: 24,
                            elem_size: 4,
                            field_offsets: vec![0],
                        }],
                        skip_percent: 0,
                    },
                    seats.next_seat(),
                    rng,
                )),
                6,
            );
            mix.add(
                Box::new(MatrixWorkload::new(
                    MatrixConfig {
                        rows: 192 + 32 * (v % 3),
                        cols: 256,
                        elem_size: 4,
                        streams: 2,
                        column_pass_every: 8,
                    },
                    seats.next_seat(),
                    rng,
                )),
                5,
            );
            mix.add(
                Box::new(MatrixWorkload::new(
                    MatrixConfig {
                        rows: 128,
                        cols: 128,
                        elem_size: 2,
                        streams: 3,
                        column_pass_every: 0,
                    },
                    seats.next_seat(),
                    rng,
                )),
                2,
            );
            mix.add(
                Box::new(ArrayWorkload::new(
                    ArrayConfig {
                        arrays: vec![ArraySpec {
                            len: 4096,
                            elem_size: 4,
                            field_offsets: vec![0],
                        }],
                        skip_percent: 0,
                    },
                    seats.next_seat(),
                    rng,
                )),
                3,
            );
            add_lists(&mut mix, seats, rng, 1, 8, 1);
            mix.add(
                Box::new(RandomWorkload::new(
                    RandomConfig {
                        static_loads: 64,
                        ..RandomConfig::default()
                    },
                    seats.next_seat(),
                    rng,
                )),
                6,
            );
        }
        Suite::Gam => {
            add_globals(&mut mix, seats, rng, 96, 13);
            add_bump_lists(&mut mix, seats, rng, 2, 24, 3);
            add_long_array(&mut mix, seats, rng, 2048, 2);
            mix.add(
                Box::new(ArrayWorkload::new(
                    ArrayConfig {
                        arrays: vec![
                            ArraySpec {
                                len: 128,
                                elem_size: 16,
                                field_offsets: vec![0, 4],
                            },
                            ArraySpec {
                                len: 256 + 64 * v,
                                elem_size: 32,
                                field_offsets: vec![0],
                            },
                        ],
                        skip_percent: 5,
                    },
                    seats.next_seat(),
                    rng,
                )),
                5,
            );
            mix.add(
                Box::new(BinaryTreeWorkload::new(
                    BinaryTreeConfig {
                        depth: 6,
                        hot_paths: 4,
                        cold_percent: 20,
                        ..BinaryTreeConfig::default()
                    },
                    seats.next_seat(),
                    rng,
                )),
                3,
            );
            add_lists(&mut mix, seats, rng, 2, 12, 2);
            mix.add(
                Box::new(RandomWorkload::new(
                    RandomConfig {
                        static_loads: 128,
                        ..RandomConfig::default()
                    },
                    seats.next_seat(),
                    rng,
                )),
                9,
            );
        }
        Suite::Jav => {
            add_globals(&mut mix, seats, rng, 64, 8);
            add_bump_lists(&mut mix, seats, rng, 1, 16, 2);
            mix.add(
                Box::new(ArrayWorkload::new(
                    ArrayConfig {
                        arrays: vec![ArraySpec {
                            len: 48,
                            elem_size: 8,
                            field_offsets: vec![0],
                        }],
                        skip_percent: 0,
                    },
                    seats.next_seat(),
                    rng,
                )),
                4,
            );
            mix.add(
                Box::new(StackWorkload::new(
                    StackConfig {
                        procedures: 6 + v,
                        loads_per_proc: 4,
                        program_len: 24,
                        ..StackConfig::default()
                    },
                    seats.next_seat(),
                    rng,
                )),
                10,
            );
            mix.add(
                Box::new(StackWorkload::new(
                    StackConfig {
                        procedures: 4,
                        loads_per_proc: 6,
                        program_len: 16,
                        ..StackConfig::default()
                    },
                    seats.next_seat(),
                    rng,
                )),
                6,
            );
            add_call_sites(&mut mix, seats, rng, 2, 4, 2);
            mix.add(
                Box::new(RandomWorkload::new(
                    RandomConfig {
                        static_loads: 256,
                        ..RandomConfig::default()
                    },
                    seats.next_seat(),
                    rng,
                )),
                8,
            );
            // The §4.3 "JAVA inner loop": a tiny array swept over and over —
            // unstable stride, perfectly context-predictable.
            mix.add(
                Box::new(ArrayWorkload::new(
                    ArrayConfig {
                        arrays: vec![ArraySpec {
                            len: 7,
                            elem_size: 4,
                            field_offsets: vec![0],
                        }],
                        skip_percent: 0,
                    },
                    seats.next_seat(),
                    rng,
                )),
                3,
            );
            add_lists(&mut mix, seats, rng, 1, 8, 1);
        }
        Suite::Tpc => {
            add_globals(&mut mix, seats, rng, 384, 12);
            add_bump_lists(&mut mix, seats, rng, 2, 40, 2);
            add_long_array(&mut mix, seats, rng, 4096, 2);
            mix.add(
                Box::new(HashWorkload::new(
                    HashConfig {
                        buckets: 4096,
                        hot_keys: 24,
                        cold_percent: 45,
                        max_chain: 3,
                        ..HashConfig::default()
                    },
                    seats.next_seat(),
                    rng,
                )),
                5,
            );
            mix.add(
                Box::new(HashWorkload::new(
                    HashConfig {
                        buckets: 1024,
                        hot_keys: 12,
                        cold_percent: 30,
                        max_chain: 2,
                        ..HashConfig::default()
                    },
                    seats.next_seat(),
                    rng,
                )),
                3,
            );
            add_lists(&mut mix, seats, rng, 4, 10, 1);
            add_call_sites(&mut mix, seats, rng, 6, 8, 1);
            mix.add(
                Box::new(ArrayWorkload::new(
                    ArrayConfig {
                        arrays: vec![ArraySpec {
                            len: 200,
                            elem_size: 64,
                            field_offsets: vec![0, 8],
                        }],
                        skip_percent: 0,
                    },
                    seats.next_seat(),
                    rng,
                )),
                2,
            );
            mix.add(
                Box::new(RandomWorkload::new(
                    RandomConfig {
                        static_loads: 4096,
                        region_size: 1 << 26,
                        ..RandomConfig::default()
                    },
                    seats.next_seat(),
                    rng,
                )),
                9,
            );
        }
        Suite::Nt | Suite::W95 => {
            let is_w95 = suite == Suite::W95;
            add_globals(&mut mix, seats, rng, if is_w95 { 320 } else { 256 }, if is_w95 { 16 } else { 20 });
            add_bump_lists(&mut mix, seats, rng, 2, 28, 2);
            add_long_array(&mut mix, seats, rng, 3072, 2);
            add_lists(&mut mix, seats, rng, 8, 10 + v % 4, 1);
            add_call_sites(&mut mix, seats, rng, 12, 6, 1);
            mix.add(
                Box::new(StackWorkload::new(
                    StackConfig::default(),
                    seats.next_seat(),
                    rng,
                )),
                2,
            );
            mix.add(
                Box::new(ArrayWorkload::new(
                    ArrayConfig {
                        arrays: vec![
                            ArraySpec {
                                len: 96,
                                elem_size: 8,
                                field_offsets: vec![0],
                            },
                            ArraySpec {
                                len: 160,
                                elem_size: 12,
                                field_offsets: vec![0, 4],
                            },
                        ],
                        skip_percent: 2,
                    },
                    seats.next_seat(),
                    rng,
                )),
                6,
            );
            mix.add(
                Box::new(HashWorkload::new(
                    HashConfig {
                        cold_percent: if is_w95 { 40 } else { 25 },
                        ..HashConfig::default()
                    },
                    seats.next_seat(),
                    rng,
                )),
                2,
            );
            mix.add(
                Box::new(RandomWorkload::new(
                    RandomConfig {
                        static_loads: if is_w95 { 5120 } else { 3072 },
                        ..RandomConfig::default()
                    },
                    seats.next_seat(),
                    rng,
                )),
                if is_w95 { 14 } else { 12 },
            );
        }
    }
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn catalog_has_45_traces_with_paper_group_sizes() {
        let cat = catalog();
        assert_eq!(cat.len(), 45);
        let count = |s: Suite| cat.iter().filter(|t| t.suite == s).count();
        assert_eq!(count(Suite::Int), 8);
        assert_eq!(count(Suite::Cad), 2);
        assert_eq!(count(Suite::Mm), 8);
        assert_eq!(count(Suite::Gam), 4);
        assert_eq!(count(Suite::Jav), 5);
        assert_eq!(count(Suite::Tpc), 3);
        assert_eq!(count(Suite::Nt), 8);
        assert_eq!(count(Suite::W95), 7);
    }

    #[test]
    fn trace_names_are_unique() {
        let cat = catalog();
        let names: BTreeSet<&str> = cat.iter().map(|t| t.name).collect();
        assert_eq!(names.len(), cat.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = &catalog()[0];
        let a = spec.generate(2_000);
        let b = spec.generate(2_000);
        assert_eq!(a, b);
    }

    #[test]
    fn every_trace_generates_and_meets_budget() {
        for spec in catalog() {
            let t = spec.generate(500);
            assert!(
                t.load_count() >= 500,
                "{} produced only {} loads",
                spec.name,
                t.load_count()
            );
        }
    }

    #[test]
    fn suite_traces_filter_matches() {
        assert_eq!(Suite::Jav.traces().len(), 5);
        assert!(Suite::Jav.traces().iter().all(|t| t.suite == Suite::Jav));
    }

    #[test]
    fn pressure_suites_have_larger_static_footprints() {
        let footprint = |suite: Suite| {
            let t = suite.traces()[0].generate(20_000);
            t.loads().map(|l| l.ip).collect::<BTreeSet<_>>().len()
        };
        let tpc = footprint(Suite::Tpc);
        let int = footprint(Suite::Int);
        assert!(
            tpc > 2 * int,
            "TPC static footprint ({tpc}) should dwarf INT ({int})"
        );
    }

    #[test]
    fn mm_suite_is_stride_dominated() {
        let t = Suite::Mm.traces()[0].generate(10_000);
        // Measure the fraction of per-IP consecutive deltas that are
        // constant — a crude stride-ness metric.
        use std::collections::HashMap;
        let mut last: HashMap<u64, (u64, Option<i64>)> = HashMap::new();
        let mut same = 0usize;
        let mut total = 0usize;
        for l in t.loads() {
            let e = last.entry(l.ip).or_insert((l.addr, None));
            let delta = l.addr as i64 - e.0 as i64;
            if let Some(prev_delta) = e.1 {
                total += 1;
                if prev_delta == delta {
                    same += 1;
                }
            }
            *e = (l.addr, Some(delta));
        }
        assert!(
            same as f64 / total as f64 > 0.6,
            "MM should be mostly stride ({same}/{total})"
        );
    }
}
