//! Stack-frame workloads modelling the paper's JAV (Java) suite.
//!
//! The paper attributes Java's unusually large speedups to "the stack-based
//! model and short procedures used in JAVA bytecode" (§4.2): a dense stream
//! of loads at stack-pointer-relative addresses. Because call depth recurs
//! exactly across iterations of an interpreter loop, frame addresses recur
//! too, making these loads highly predictable by last-address/context
//! predictors while carrying almost no stride structure.

use super::{Seat, Workload};
use crate::builder::{IpAllocator, TraceBuilder};
use crate::record::OpLatency;
use cap_rand::rngs::StdRng;
use cap_rand::Rng;

/// Configuration for [`StackWorkload`].
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// Number of distinct short procedures.
    pub procedures: usize,
    /// Loads per procedure body (operand pops, local reads).
    pub loads_per_proc: usize,
    /// Frame size in bytes.
    pub frame_size: u64,
    /// Length of the recurring call sequence (procedure indices cycle
    /// through a fixed pseudo-random program of this length).
    pub program_len: usize,
    /// Maximum call nesting depth.
    pub max_depth: usize,
}

impl Default for StackConfig {
    fn default() -> Self {
        Self {
            procedures: 6,
            loads_per_proc: 4,
            frame_size: 64,
            program_len: 24,
            max_depth: 4,
        }
    }
}

/// Short recurring procedures operating on a downward-growing stack.
#[derive(Debug)]
pub struct StackWorkload {
    config: StackConfig,
    seat: Seat,
    stack_top: u64,
    /// The fixed "program": (procedure index, nesting depth) pairs.
    program: Vec<(usize, usize)>,
    /// Per-procedure static code: call ip, load ips, ret ip.
    proc_code: Vec<(u64, Vec<u64>, u64)>,
    pc: usize,
    /// Monotone counter making operand values vary per invocation.
    tick: u64,
}

impl StackWorkload {
    /// Builds the workload, drawing the fixed procedure program from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if any count in the configuration is zero.
    #[must_use]
    pub fn new(config: StackConfig, seat: Seat, rng: &mut StdRng) -> Self {
        assert!(config.procedures > 0, "need at least one procedure");
        assert!(config.loads_per_proc > 0, "procedures must load something");
        assert!(config.program_len > 0, "program must not be empty");
        assert!(config.max_depth > 0, "max depth must be positive");
        let program = (0..config.program_len)
            .map(|_| {
                (
                    rng.gen_range(0..config.procedures),
                    rng.gen_range(1..=config.max_depth),
                )
            })
            .collect();
        let mut ips = IpAllocator::new(seat.ip_base);
        let proc_code = (0..config.procedures)
            .map(|_| {
                let call = ips.next_ip();
                let loads = ips.code_block(config.loads_per_proc);
                let ret = ips.next_ip();
                ips.gap(8);
                (call, loads, ret)
            })
            .collect();
        // The stack grows down from the top of the seat's heap region.
        let stack_top = seat.heap_base + (1 << 20);
        Self {
            config,
            seat,
            stack_top,
            program,
            proc_code,
            pc: 0,
            tick: 0,
        }
    }

    fn run_program_step(&mut self, b: &mut TraceBuilder) -> usize {
        let (proc, depth) = self.program[self.pc];
        self.pc = (self.pc + 1) % self.program.len();
        let sp_reg = self.seat.reg(0);
        let val = self.seat.reg(1);
        let (call_ip, load_ips, ret_ip) = self.proc_code[proc].clone();
        let mut loads = 0;
        // Descend `depth` frames (recurring depth => recurring addresses).
        for d in 0..depth {
            let sp = self.stack_top - (d as u64 + 1) * self.config.frame_size;
            b.call(call_ip, load_ips[0]);
            for (i, &ip) in load_ips.iter().enumerate() {
                let off = (i as i32) * 4;
                // Within one program step every access flows through the
                // operand-stack register — a stack machine dereferences
                // what it just computed, so bytecode execution serialises
                // on the load-to-use latency across the step's frames.
                // This is the paper's explanation for Java's outsized
                // address-prediction speedups (§4.2). Steps themselves are
                // independent (a fresh pop via the stack pointer), keeping
                // some instruction-level parallelism between them.
                let addr_src = if d == 0 && i == 0 { sp_reg } else { val };
                self.tick += 1;
                b.load_val(
                    ip,
                    sp.wrapping_add(off as i64 as u64),
                    off,
                    crate::gen::splitmix(self.tick),
                    Some(val),
                    Some(addr_src),
                );
                loads += 1;
            }
            // The procedure body computes on its operands.
            b.op(
                ret_ip.wrapping_sub(4),
                OpLatency::Alu,
                Some(self.seat.reg(2)),
                [Some(self.seat.reg(2)), Some(val)],
            );
            b.ret(ret_ip, call_ip + 4);
        }
        loads
    }
}

impl Workload for StackWorkload {
    fn emit(&mut self, builder: &mut TraceBuilder, _rng: &mut StdRng, loads: usize) {
        let mut emitted = 0;
        while emitted < loads {
            emitted += self.run_program_step(builder);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SeatAllocator;
    use cap_rand::SeedableRng;
    use std::collections::BTreeSet;

    fn make(config: StackConfig) -> (StackWorkload, StdRng) {
        let mut seats = SeatAllocator::new();
        let mut r = StdRng::seed_from_u64(17);
        let wl = StackWorkload::new(config, seats.next_seat(), &mut r);
        (wl, r)
    }

    #[test]
    fn program_recurs_exactly() {
        let (mut wl, mut r) = make(StackConfig::default());
        let mut b = TraceBuilder::new();
        // Run well past two full program cycles.
        wl.emit(&mut b, &mut r, 2000);
        let trace = b.finish();
        let addrs: Vec<u64> = trace.loads().map(|l| l.addr).collect();
        // Loads per full program cycle:
        let per_cycle: usize = {
            let mut count = 0;
            for &(_, depth) in &wl.program {
                count += depth * wl.config.loads_per_proc;
            }
            count
        };
        assert!(addrs.len() >= 2 * per_cycle);
        assert_eq!(
            &addrs[0..per_cycle],
            &addrs[per_cycle..2 * per_cycle],
            "stack address stream must recur with the program"
        );
    }

    #[test]
    fn working_set_is_small() {
        let (mut wl, mut r) = make(StackConfig::default());
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 5000);
        let trace = b.finish();
        let unique: BTreeSet<u64> = trace.loads().map(|l| l.addr).collect();
        // Stack reuse keeps the footprint tiny: depth * frame/4 at most.
        assert!(unique.len() <= 4 * 16 * 4);
    }

    #[test]
    fn memory_density_is_high() {
        let (mut wl, mut r) = make(StackConfig::default());
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 1000);
        let trace = b.finish();
        let mem = trace.iter().filter(|e| e.is_memory()).count();
        assert!(
            mem * 2 > trace.len(),
            "JAV-style traces must be load-dominated"
        );
    }

    #[test]
    fn frames_grow_down_from_stack_top() {
        let (mut wl, mut r) = make(StackConfig::default());
        let top = wl.stack_top;
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 100);
        let trace = b.finish();
        assert!(trace.loads().all(|l| l.addr < top));
    }

    #[test]
    #[should_panic(expected = "program must not be empty")]
    fn empty_program_rejected() {
        let _ = make(StackConfig {
            program_len: 0,
            ..StackConfig::default()
        });
    }
}
