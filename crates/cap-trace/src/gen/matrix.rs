//! Large-matrix workloads modelling the paper's MM (multimedia) suite.
//!
//! MM applications "mainly process large arrays which CAP, with its limited
//! storage, can hardly handle" (§4.2) — the address sequences are strides
//! whose period vastly exceeds any realistic Link Table, so the context
//! component cannot capture them while the stride component predicts them
//! almost perfectly. This generator produces row-major and strided
//! column-major sweeps over matrices far larger than the LT, interleaved
//! with multiply-accumulate compute ops to mimic MMX kernels.

use super::{Seat, Workload};
use crate::builder::{IpAllocator, TraceBuilder};
use crate::record::OpLatency;
use cap_rand::rngs::StdRng;

/// Configuration for [`MatrixWorkload`].
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Element size in bytes.
    pub elem_size: u64,
    /// Number of matrices processed in lock-step (e.g. 2 sources + 1 dest
    /// in a pixel blend: sources are loads, dest is a store stream).
    pub streams: usize,
    /// Every `column_pass_every`-th pass walks a column (large stride)
    /// instead of a row. `0` disables column passes.
    pub column_pass_every: usize,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        Self {
            rows: 256,
            cols: 256,
            elem_size: 4,
            streams: 2,
            column_pass_every: 8,
        }
    }
}

/// Long-stride media-kernel sweeps.
#[derive(Debug)]
pub struct MatrixWorkload {
    config: MatrixConfig,
    seat: Seat,
    stream_bases: Vec<u64>,
    load_ips: Vec<u64>,
    store_ip: u64,
    mac_ip: u64,
    branch_ip: u64,
    pass: usize,
    cursor: usize,
}

impl MatrixWorkload {
    /// Builds the workload.
    ///
    /// # Panics
    ///
    /// Panics if dimensions or stream count are zero.
    #[must_use]
    pub fn new(config: MatrixConfig, seat: Seat, _rng: &mut StdRng) -> Self {
        assert!(config.rows > 0 && config.cols > 0, "matrix must be non-empty");
        assert!(config.streams > 0, "need at least one stream");
        let matrix_bytes = (config.rows * config.cols) as u64 * config.elem_size;
        let stream_bases = (0..config.streams as u64)
            .map(|s| seat.heap_base + s * (matrix_bytes + 4096))
            .collect();
        let mut ips = IpAllocator::new(seat.ip_base);
        let load_ips = ips.code_block(config.streams);
        let store_ip = ips.next_ip();
        let mac_ip = ips.next_ip();
        let branch_ip = ips.next_ip();
        Self {
            config,
            seat,
            stream_bases,
            load_ips,
            store_ip,
            mac_ip,
            branch_ip,
            pass: 0,
            cursor: 0,
        }
    }

    /// Emits one element step of the current pass; returns loads emitted.
    fn step(&mut self, b: &mut TraceBuilder) -> usize {
        let column_pass = self.config.column_pass_every > 0
            && self.pass % self.config.column_pass_every == self.config.column_pass_every - 1;
        let (len, stride) = if column_pass {
            (
                self.config.rows,
                self.config.cols as u64 * self.config.elem_size,
            )
        } else {
            (self.config.rows * self.config.cols, self.config.elem_size)
        };
        let idx_reg = self.seat.reg(0);
        let acc = self.seat.reg(1);
        let v = self.seat.reg(2);
        let offset_in_pass = self.cursor as u64 * stride;
        let mut loads = 0;
        for (s, &base) in self.stream_bases.iter().enumerate() {
            let ea = base + offset_in_pass;
            // Media buffers are rewritten pass after pass: the value at an
            // address churns even though the address stream is a perfect
            // stride — the case where addresses are predictable and values
            // are not (§1).
            let value = crate::gen::splitmix(ea ^ (self.pass as u64).wrapping_mul(0x9E37));
            b.load_val(self.load_ips[s], ea, 0, value, Some(v), Some(idx_reg));
            loads += 1;
        }
        b.op(self.mac_ip, OpLatency::Mul, Some(acc), [Some(acc), Some(v)]);
        b.store_dep(
            self.store_ip,
            self.stream_bases[0] + offset_in_pass,
            Some(acc),
            Some(idx_reg),
        );
        self.cursor += 1;
        let done = self.cursor >= len;
        b.cond_branch(self.branch_ip, !done);
        if done {
            self.cursor = 0;
            self.pass += 1;
        }
        loads
    }
}

impl Workload for MatrixWorkload {
    fn emit(&mut self, builder: &mut TraceBuilder, _rng: &mut StdRng, loads: usize) {
        let mut emitted = 0;
        while emitted < loads {
            emitted += self.step(builder);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SeatAllocator;
    use cap_rand::SeedableRng;
    use std::collections::BTreeSet;

    fn make(config: MatrixConfig) -> (MatrixWorkload, StdRng) {
        let mut seats = SeatAllocator::new();
        let mut r = StdRng::seed_from_u64(21);
        let wl = MatrixWorkload::new(config, seats.next_seat(), &mut r);
        (wl, r)
    }

    #[test]
    fn row_pass_is_elem_size_stride() {
        let (mut wl, mut r) = make(MatrixConfig {
            column_pass_every: 0,
            streams: 1,
            ..MatrixConfig::default()
        });
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 100);
        let trace = b.finish();
        let addrs: Vec<u64> = trace.loads().take(100).map(|l| l.addr).collect();
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], 4);
        }
    }

    #[test]
    fn column_pass_uses_row_stride() {
        let cfg = MatrixConfig {
            rows: 16,
            cols: 16,
            elem_size: 4,
            streams: 1,
            column_pass_every: 1, // every pass is a column pass
        };
        let (mut wl, mut r) = make(cfg);
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 8);
        let trace = b.finish();
        let addrs: Vec<u64> = trace.loads().map(|l| l.addr).collect();
        assert_eq!(addrs[1] - addrs[0], 64, "column stride = cols * elem_size");
    }

    #[test]
    fn unique_addresses_exceed_lt_scale() {
        // The defining property of MM: the sweep's working set of unique
        // addresses is much larger than a 4K-entry link table.
        let (mut wl, mut r) = make(MatrixConfig {
            streams: 1,
            column_pass_every: 0,
            ..MatrixConfig::default()
        });
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 40_000);
        let trace = b.finish();
        let unique: BTreeSet<u64> = trace.loads().map(|l| l.addr).collect();
        assert!(unique.len() > 8192, "MM working set must exceed LT capacity");
    }

    #[test]
    fn streams_are_disjoint() {
        let (mut wl, mut r) = make(MatrixConfig::default());
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 16);
        let trace = b.finish();
        let loads: Vec<_> = trace.loads().collect();
        assert_ne!(loads[0].addr, loads[1].addr, "streams start at distinct bases");
    }

    #[test]
    fn pass_restarts_at_base() {
        let cfg = MatrixConfig {
            rows: 2,
            cols: 4,
            elem_size: 4,
            streams: 1,
            column_pass_every: 0,
        };
        let (mut wl, mut r) = make(cfg);
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 16);
        let trace = b.finish();
        let addrs: Vec<u64> = trace.loads().map(|l| l.addr).collect();
        assert_eq!(addrs[0], addrs[8], "new pass restarts at matrix base");
    }
}
