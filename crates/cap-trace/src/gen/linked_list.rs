//! Linked-list (recursive data structure) workloads — the paper's §2.1.
//!
//! A traversal loop compiled like the `xlevarg` example in the paper emits
//! one static load per field (`car`, `cdr`, `n_type`, …) all sharing the
//! node's base address. The dynamic address sequence of each static load is
//! a short, recurring, non-stride fingerprint like
//! `A B C D E F  B C D E F  B C D E F …`.

use super::{Seat, Workload};
use crate::alloc::{HeapModel, LayoutPolicy};
use crate::builder::{IpAllocator, TraceBuilder};
use crate::record::OpLatency;
use cap_rand::rngs::StdRng;
use cap_rand::Rng;

/// Configuration for [`LinkedListWorkload`].
#[derive(Debug, Clone)]
pub struct LinkedListConfig {
    /// Number of independent lists walked by the same static code.
    pub lists: usize,
    /// Nodes per list.
    pub nodes_per_list: usize,
    /// Field offsets loaded at each node. The *last* offset is the `next`
    /// pointer field (its load carries the pointer-chase dependence).
    pub field_offsets: Vec<i32>,
    /// Node size in bytes (determines allocator spacing).
    pub node_size: u64,
    /// Heap layout of the nodes.
    pub layout: LayoutPolicy,
    /// With probability `1/mutate_every_inverse` per full traversal, one
    /// node is re-allocated (list mutation), mildly perturbing the pattern.
    /// `0` disables mutation.
    pub mutate_every_inverse: u32,
}

impl Default for LinkedListConfig {
    fn default() -> Self {
        Self {
            lists: 1,
            nodes_per_list: 12,
            field_offsets: vec![0, 4, 8],
            node_size: 32,
            layout: LayoutPolicy::Fragmented,
            mutate_every_inverse: 0,
        }
    }
}

/// A pointer-chasing workload over one or more singly linked lists.
///
/// # Examples
///
/// ```
/// use cap_trace::gen::linked_list::{LinkedListConfig, LinkedListWorkload};
/// use cap_trace::gen::{SeatAllocator, Workload};
/// use cap_trace::builder::TraceBuilder;
/// use cap_rand::SeedableRng;
///
/// let mut seats = SeatAllocator::new();
/// let mut rng = cap_rand::rngs::StdRng::seed_from_u64(7);
/// let mut wl = LinkedListWorkload::new(LinkedListConfig::default(), seats.next_seat(), &mut rng);
/// let mut b = TraceBuilder::new();
/// wl.emit(&mut b, &mut rng, 100);
/// assert!(b.finish().load_count() >= 100);
/// ```
#[derive(Debug)]
pub struct LinkedListWorkload {
    config: LinkedListConfig,
    seat: Seat,
    heap: HeapModel,
    /// `lists[l][i]` is the base address of node `i` of list `l`.
    lists: Vec<Vec<u64>>,
    /// Static IPs: per-field load IPs plus a consuming op and the loop
    /// branch.
    field_ips: Vec<u64>,
    use_ip: u64,
    loop_branch_ip: u64,
    next_list: usize,
}

impl LinkedListWorkload {
    /// Builds the workload, allocating its lists on a private heap.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero lists, zero nodes, or no fields.
    #[must_use]
    pub fn new(config: LinkedListConfig, seat: Seat, rng: &mut StdRng) -> Self {
        assert!(config.lists > 0, "need at least one list");
        assert!(config.nodes_per_list > 0, "need at least one node");
        assert!(!config.field_offsets.is_empty(), "need at least one field");
        let mut heap = HeapModel::new(seat.heap_base, 16);
        let lists = (0..config.lists)
            .map(|_| heap.alloc_nodes(config.nodes_per_list, config.node_size, config.layout, rng))
            .collect();
        let mut ips = IpAllocator::new(seat.ip_base);
        let field_ips = ips.code_block(config.field_offsets.len());
        let use_ip = ips.next_ip();
        let loop_branch_ip = ips.next_ip();
        Self {
            config,
            seat,
            heap,
            lists,
            field_ips,
            use_ip,
            loop_branch_ip,
            next_list: 0,
        }
    }

    /// Walks one full list, emitting the per-node field loads.
    fn traverse_one(&mut self, b: &mut TraceBuilder, rng: &mut StdRng) -> usize {
        let list_idx = self.next_list;
        self.next_list = (self.next_list + 1) % self.lists.len();

        if self.config.mutate_every_inverse > 0
            && rng.gen_range(0..self.config.mutate_every_inverse) == 0
        {
            let pos = rng.gen_range(0..self.lists[list_idx].len());
            let fresh = self.heap.alloc(self.config.node_size);
            self.lists[list_idx][pos] = fresh;
        }

        let ptr_reg = self.seat.reg(0);
        let val_reg = self.seat.reg(1);
        let acc = self.seat.reg(2);
        let nodes = self.lists[list_idx].clone();
        let mut loads = 0;
        for (i, &node) in nodes.iter().enumerate() {
            let last_field = self.config.field_offsets.len() - 1;
            let next_node = nodes.get(i + 1).copied().unwrap_or(nodes[0]);
            for (f, &off) in self.config.field_offsets.iter().enumerate() {
                let dst = if f == last_field { ptr_reg } else { val_reg };
                // The next-pointer field loads the next node's address;
                // data fields load stable per-node values.
                let value = if f == last_field {
                    next_node
                } else {
                    crate::gen::splitmix(node ^ (off as u64))
                };
                b.load_val(
                    self.field_ips[f],
                    node.wrapping_add(off as i64 as u64),
                    off,
                    value,
                    Some(dst),
                    Some(ptr_reg),
                );
                loads += 1;
            }
            // sum += p->val, as in the paper's §2.1 example.
            b.op(self.use_ip, OpLatency::Alu, Some(acc), [Some(acc), Some(val_reg)]);
            // Loop back-edge: taken while more nodes remain.
            b.cond_branch(self.loop_branch_ip, i + 1 < nodes.len());
        }
        loads
    }
}

impl Workload for LinkedListWorkload {
    fn emit(&mut self, builder: &mut TraceBuilder, rng: &mut StdRng, loads: usize) {
        let mut emitted = 0;
        while emitted < loads {
            emitted += self.traverse_one(builder, rng);
        }
    }
}

/// Configuration for [`DoublyLinkedListWorkload`].
#[derive(Debug, Clone)]
pub struct DoublyLinkedListConfig {
    /// Nodes in the list.
    pub nodes: usize,
    /// Offset of the `val` field (needs history ≥ 2 to predict, Fig. 2).
    pub val_offset: i32,
    /// Offset of the `next` field.
    pub next_offset: i32,
    /// Offset of the `previous` field.
    pub prev_offset: i32,
    /// Node size in bytes.
    pub node_size: u64,
    /// Heap layout of the nodes.
    pub layout: LayoutPolicy,
}

impl Default for DoublyLinkedListConfig {
    fn default() -> Self {
        Self {
            nodes: 10,
            val_offset: 2,
            next_offset: 6,
            prev_offset: 8,
            node_size: 32,
            layout: LayoutPolicy::Fragmented,
        }
    }
}

/// A doubly linked list walked forward then backward, alternating.
///
/// This reproduces the paper's Figure 2 argument: the `next`/`previous`
/// loads are predictable with history 1, but the `val` load sees each node
/// from *two* directions — `82` may be followed by `12` or `42` — so it
/// needs a history of two base addresses to disambiguate.
#[derive(Debug)]
pub struct DoublyLinkedListWorkload {
    config: DoublyLinkedListConfig,
    seat: Seat,
    nodes: Vec<u64>,
    val_ip: u64,
    next_ip: u64,
    prev_ip: u64,
    branch_ip: u64,
    forward: bool,
}

impl DoublyLinkedListWorkload {
    /// Builds the workload.
    ///
    /// # Panics
    ///
    /// Panics if `config.nodes < 2`.
    #[must_use]
    pub fn new(config: DoublyLinkedListConfig, seat: Seat, rng: &mut StdRng) -> Self {
        assert!(config.nodes >= 2, "a doubly linked list walk needs >= 2 nodes");
        let mut heap = HeapModel::new(seat.heap_base, 16);
        let nodes = heap.alloc_nodes(config.nodes, config.node_size, config.layout, rng);
        let mut ips = IpAllocator::new(seat.ip_base);
        let val_ip = ips.next_ip();
        let next_ip = ips.next_ip();
        let prev_ip = ips.next_ip();
        let branch_ip = ips.next_ip();
        Self {
            config,
            seat,
            nodes,
            val_ip,
            next_ip,
            prev_ip,
            branch_ip,
            forward: true,
        }
    }

    fn walk_once(&mut self, b: &mut TraceBuilder) -> usize {
        let ptr = self.seat.reg(0);
        let val = self.seat.reg(1);
        let order: Vec<u64> = if self.forward {
            self.nodes.clone()
        } else {
            self.nodes.iter().rev().copied().collect()
        };
        let (link_ip, link_off) = if self.forward {
            (self.next_ip, self.config.next_offset)
        } else {
            (self.prev_ip, self.config.prev_offset)
        };
        self.forward = !self.forward;
        let mut loads = 0;
        for (i, &node) in order.iter().enumerate() {
            b.load_val(
                self.val_ip,
                node.wrapping_add(self.config.val_offset as i64 as u64),
                self.config.val_offset,
                crate::gen::splitmix(node),
                Some(val),
                Some(ptr),
            );
            let next_node = order.get(i + 1).copied().unwrap_or(order[0]);
            b.load_val(
                link_ip,
                node.wrapping_add(link_off as i64 as u64),
                link_off,
                next_node,
                Some(ptr),
                Some(ptr),
            );
            loads += 2;
            b.cond_branch(self.branch_ip, i + 1 < order.len());
        }
        loads
    }
}

impl Workload for DoublyLinkedListWorkload {
    fn emit(&mut self, builder: &mut TraceBuilder, _rng: &mut StdRng, loads: usize) {
        let mut emitted = 0;
        while emitted < loads {
            emitted += self.walk_once(builder);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SeatAllocator;
    use cap_rand::SeedableRng;
    use std::collections::BTreeSet;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    fn build(config: LinkedListConfig) -> (LinkedListWorkload, StdRng) {
        let mut seats = SeatAllocator::new();
        let mut r = rng();
        let wl = LinkedListWorkload::new(config, seats.next_seat(), &mut r);
        (wl, r)
    }

    #[test]
    fn fields_share_base_addresses() {
        let (mut wl, mut r) = build(LinkedListConfig::default());
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 60);
        let trace = b.finish();
        // Group loads by IP; all field loads at the same dynamic node must
        // share the same base address.
        let loads: Vec<_> = trace.loads().collect();
        for chunk in loads.chunks(3) {
            if chunk.len() == 3 {
                let bases: BTreeSet<u64> = chunk.iter().map(|l| l.base_addr()).collect();
                assert_eq!(bases.len(), 1, "field loads must share node base");
            }
        }
    }

    #[test]
    fn traversal_repeats_same_sequence() {
        let (mut wl, mut r) = build(LinkedListConfig {
            lists: 1,
            nodes_per_list: 5,
            field_offsets: vec![8],
            ..LinkedListConfig::default()
        });
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 20);
        let trace = b.finish();
        let addrs: Vec<u64> = trace.loads().map(|l| l.addr).collect();
        assert_eq!(&addrs[0..5], &addrs[5..10], "second traversal must repeat");
    }

    #[test]
    fn fragmented_list_is_not_stride() {
        let (mut wl, mut r) = build(LinkedListConfig {
            lists: 1,
            nodes_per_list: 16,
            field_offsets: vec![8],
            ..LinkedListConfig::default()
        });
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 16);
        let trace = b.finish();
        let addrs: Vec<u64> = trace.loads().map(|l| l.addr).collect();
        let deltas: BTreeSet<i64> = addrs.windows(2).map(|w| w[1] as i64 - w[0] as i64).collect();
        assert!(deltas.len() > 1, "fragmented walk must not be constant stride");
    }

    #[test]
    fn pointer_chase_dependence_recorded() {
        let (mut wl, mut r) = build(LinkedListConfig::default());
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 9);
        let trace = b.finish();
        for l in trace.loads() {
            assert!(l.addr_src.is_some(), "RDS loads must chase a pointer register");
        }
    }

    #[test]
    fn mutation_changes_pattern_eventually() {
        let (mut wl, mut r) = build(LinkedListConfig {
            lists: 1,
            nodes_per_list: 8,
            field_offsets: vec![8],
            mutate_every_inverse: 1, // mutate on every traversal
            ..LinkedListConfig::default()
        });
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 200);
        let trace = b.finish();
        let unique: BTreeSet<u64> = trace.loads().map(|l| l.addr).collect();
        assert!(unique.len() > 8, "mutation should introduce fresh node addresses");
    }

    #[test]
    fn dlist_val_field_is_direction_ambiguous() {
        let mut seats = SeatAllocator::new();
        let mut r = rng();
        let cfg = DoublyLinkedListConfig::default();
        let val_off = cfg.val_offset;
        let mut wl = DoublyLinkedListWorkload::new(cfg, seats.next_seat(), &mut r);
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 120);
        let trace = b.finish();
        // Find the val-field loads and check some address is followed by two
        // *different* successors across the trace (the Fig. 2 ambiguity).
        let vals: Vec<u64> = trace
            .loads()
            .filter(|l| l.offset == val_off)
            .map(|l| l.addr)
            .collect();
        let mut successors: std::collections::BTreeMap<u64, BTreeSet<u64>> = Default::default();
        for w in vals.windows(2) {
            successors.entry(w[0]).or_default().insert(w[1]);
        }
        assert!(
            successors.values().any(|s| s.len() >= 2),
            "val field should have direction-dependent successors"
        );
    }

    #[test]
    fn emit_meets_load_budget() {
        let (mut wl, mut r) = build(LinkedListConfig::default());
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 500);
        assert!(b.finish().load_count() >= 500);
    }

    #[test]
    #[should_panic(expected = "at least one field")]
    fn rejects_empty_fields() {
        let _ = build(LinkedListConfig {
            field_offsets: vec![],
            ..LinkedListConfig::default()
        });
    }
}
