//! Stride-based array workloads, with wrap-around restarts.
//!
//! The bread and butter of stride predictors: a load sweeping a linear
//! array. The interesting part for the paper is the *wrap*: every time the
//! sweep restarts, a plain stride predictor mispredicts, which is what the
//! enhanced stride predictor's **interval** mechanism (record the array
//! length, stop speculating past it) is designed to avoid. Short arrays also
//! fit in the Link Table, letting CAP learn the wrap itself — the
//! "unstable stride-like behaviour" of the paper's JAVA inner-loop example.

use super::{Seat, Workload};
use crate::builder::{IpAllocator, TraceBuilder};
use crate::record::OpLatency;
use cap_rand::rngs::StdRng;
use cap_rand::Rng;

/// One array traversed by the workload.
#[derive(Debug, Clone)]
pub struct ArraySpec {
    /// Number of elements per sweep (the paper's "interval").
    pub len: usize,
    /// Element size in bytes (the stride).
    pub elem_size: u64,
    /// Field offsets loaded per element (arrays of structs share bases).
    pub field_offsets: Vec<i32>,
}

impl Default for ArraySpec {
    fn default() -> Self {
        Self {
            len: 64,
            elem_size: 8,
            field_offsets: vec![0],
        }
    }
}

/// Configuration for [`ArrayWorkload`].
#[derive(Debug, Clone)]
pub struct ArrayConfig {
    /// The arrays; sweeps rotate round-robin across them.
    pub arrays: Vec<ArraySpec>,
    /// Probability (percent) that a sweep skips one element mid-stream —
    /// the "single wrong stride" case §5.2 says the catch-up handles.
    pub skip_percent: u32,
}

impl Default for ArrayConfig {
    fn default() -> Self {
        Self {
            arrays: vec![ArraySpec::default()],
            skip_percent: 0,
        }
    }
}

/// Linear sweeps over one or more arrays.
///
/// Emission is element-granular: `emit` stops as soon as the load budget is
/// met and the next call resumes mid-sweep, so a long array interleaves
/// fairly with other workloads in a mix instead of monopolising the trace
/// one sweep at a time.
#[derive(Debug)]
pub struct ArrayWorkload {
    config: ArrayConfig,
    seat: Seat,
    bases: Vec<u64>,
    /// Per-array static IPs: one load per field, a consuming ALU op, and
    /// the loop branch.
    code: Vec<(Vec<u64>, u64, u64)>,
    next_array: usize,
    /// Position within the in-progress sweep of `next_array`.
    cursor: usize,
    /// Element index skipped in the in-progress sweep, if any.
    skip_at: Option<usize>,
    /// Completed sweeps; element values churn with it (the loop body
    /// updates the array between traversals).
    sweeps: u64,
}

impl ArrayWorkload {
    /// Builds the workload.
    ///
    /// # Panics
    ///
    /// Panics if there are no arrays or an array has no fields / zero length.
    #[must_use]
    pub fn new(config: ArrayConfig, seat: Seat, _rng: &mut StdRng) -> Self {
        assert!(!config.arrays.is_empty(), "need at least one array");
        for a in &config.arrays {
            assert!(a.len > 0, "array length must be positive");
            assert!(!a.field_offsets.is_empty(), "array needs at least one field");
        }
        let mut ips = IpAllocator::new(seat.ip_base);
        let mut bases = Vec::new();
        let mut code = Vec::new();
        let mut heap_cursor = seat.heap_base;
        for a in &config.arrays {
            bases.push(heap_cursor);
            // Leave a gap after each array so arrays never overlap.
            heap_cursor += (a.len as u64 + 16) * a.elem_size.max(1) + 4096;
            let loads = ips.code_block(a.field_offsets.len());
            let use_op = ips.next_ip();
            let branch = ips.next_ip();
            ips.gap(8);
            code.push((loads, use_op, branch));
        }
        Self {
            config,
            seat,
            bases,
            code,
            next_array: 0,
            cursor: 0,
            skip_at: None,
            sweeps: 0,
        }
    }

    /// Emits one element of the in-progress sweep; returns loads emitted.
    fn step(&mut self, b: &mut TraceBuilder, rng: &mut StdRng) -> usize {
        let idx = self.next_array;
        let spec = self.config.arrays[idx].clone();
        let base = self.bases[idx];
        let (load_ips, use_ip, branch_ip) = self.code[idx].clone();
        let idx_reg = self.seat.reg(0);
        let val_reg = self.seat.reg(1);
        let acc = self.seat.reg(2);
        if self.cursor == 0 {
            // New sweep: draw the skip position, if any.
            self.skip_at = if self.config.skip_percent > 0
                && rng.gen_range(0..100) < self.config.skip_percent
            {
                Some(rng.gen_range(1..spec.len.max(2)))
            } else {
                None
            };
        }
        if Some(self.cursor) == self.skip_at {
            self.cursor += 1; // skip one element: a single wrong stride
        }
        let mut loads = 0;
        if self.cursor < spec.len {
            let elem = base + (self.cursor as u64) * spec.elem_size;
            for (f, &off) in spec.field_offsets.iter().enumerate() {
                let ea = elem.wrapping_add(off as i64 as u64);
                b.load_val(
                    load_ips[f],
                    ea,
                    off,
                    crate::gen::splitmix(ea ^ self.sweeps.rotate_left(32)),
                    Some(val_reg),
                    Some(idx_reg),
                );
                loads += 1;
            }
            // Consume the loaded value, as the loop body would.
            b.op(use_ip, OpLatency::Alu, Some(acc), [Some(acc), Some(val_reg)]);
            self.cursor += 1;
            b.cond_branch(branch_ip, self.cursor < spec.len);
        }
        if self.cursor >= spec.len {
            self.cursor = 0;
            self.next_array = (self.next_array + 1) % self.config.arrays.len();
            self.sweeps += 1;
        }
        loads
    }
}

impl Workload for ArrayWorkload {
    fn emit(&mut self, builder: &mut TraceBuilder, rng: &mut StdRng, loads: usize) {
        let mut emitted = 0;
        while emitted < loads {
            emitted += self.step(builder, rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SeatAllocator;
    use cap_rand::SeedableRng;

    fn make(config: ArrayConfig) -> (ArrayWorkload, StdRng) {
        let mut seats = SeatAllocator::new();
        let mut r = StdRng::seed_from_u64(9);
        let wl = ArrayWorkload::new(config, seats.next_seat(), &mut r);
        (wl, r)
    }

    #[test]
    fn sweep_is_constant_stride_within_array() {
        let (mut wl, mut r) = make(ArrayConfig::default());
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 64);
        let trace = b.finish();
        let addrs: Vec<u64> = trace.loads().take(64).map(|l| l.addr).collect();
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], 8, "in-sweep stride must be elem_size");
        }
    }

    #[test]
    fn wrap_restarts_at_base() {
        let cfg = ArrayConfig {
            arrays: vec![ArraySpec {
                len: 8,
                elem_size: 4,
                field_offsets: vec![0],
            }],
            skip_percent: 0,
        };
        let (mut wl, mut r) = make(cfg);
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 24);
        let trace = b.finish();
        let addrs: Vec<u64> = trace.loads().map(|l| l.addr).collect();
        assert_eq!(addrs[0], addrs[8], "sweep must restart at the array base");
        assert_eq!(addrs[0], addrs[16]);
    }

    #[test]
    fn multiple_arrays_rotate() {
        let cfg = ArrayConfig {
            arrays: vec![
                ArraySpec {
                    len: 4,
                    elem_size: 8,
                    field_offsets: vec![0],
                },
                ArraySpec {
                    len: 4,
                    elem_size: 8,
                    field_offsets: vec![0],
                },
            ],
            skip_percent: 0,
        };
        let (mut wl, mut r) = make(cfg);
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 8);
        let trace = b.finish();
        let addrs: Vec<u64> = trace.loads().map(|l| l.addr).collect();
        // Two sweeps over two different arrays — disjoint address ranges.
        assert_ne!(addrs[0], addrs[4]);
        assert!(addrs[4] > addrs[3], "second array must live above the first");
    }

    #[test]
    fn struct_fields_share_element_base() {
        let cfg = ArrayConfig {
            arrays: vec![ArraySpec {
                len: 8,
                elem_size: 16,
                field_offsets: vec![0, 4, 8],
            }],
            skip_percent: 0,
        };
        let (mut wl, mut r) = make(cfg);
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 24);
        let trace = b.finish();
        let loads: Vec<_> = trace.loads().collect();
        for group in loads.chunks(3).take(8) {
            let base0 = group[0].base_addr();
            assert!(group.iter().all(|l| l.base_addr() == base0));
        }
    }

    #[test]
    fn skip_introduces_single_double_stride() {
        let cfg = ArrayConfig {
            arrays: vec![ArraySpec {
                len: 32,
                elem_size: 8,
                field_offsets: vec![0],
            }],
            skip_percent: 100,
        };
        let (mut wl, mut r) = make(cfg);
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 31);
        let trace = b.finish();
        let addrs: Vec<u64> = trace.loads().map(|l| l.addr).collect();
        let deltas: Vec<u64> = addrs.windows(2).map(|w| w[1] - w[0]).collect();
        let doubles = deltas.iter().filter(|&&d| d == 16).count();
        assert_eq!(doubles, 1, "exactly one skipped element per sweep");
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_array_rejected() {
        let _ = make(ArrayConfig {
            arrays: vec![ArraySpec {
                len: 0,
                ..ArraySpec::default()
            }],
            skip_percent: 0,
        });
    }
}
