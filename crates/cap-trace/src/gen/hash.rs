//! Hash-table probing workloads modelling TPC-style database access.
//!
//! Hash probes mix two populations: a *hot key set* that recurs in a stable
//! order (index lookups inside a loop — context-predictable) and *cold keys*
//! drawn uniformly (probe misses and one-off rows — irregular, LT-polluting).
//! The paper notes hash-table loads as a source of Link-Table aliasing
//! (§3.3), which is why the offset LSBs are excluded from the base address.

use super::{Seat, Workload};
use crate::alloc::HeapModel;
use crate::builder::{IpAllocator, TraceBuilder};
use crate::record::OpLatency;
use cap_rand::rngs::StdRng;
use cap_rand::Rng;

/// Configuration for [`HashWorkload`].
#[derive(Debug, Clone)]
pub struct HashConfig {
    /// Number of hash buckets (power of two).
    pub buckets: usize,
    /// Size of the recurring hot-key sequence.
    pub hot_keys: usize,
    /// Percentage of probes that use a cold (uniform random) key.
    pub cold_percent: u32,
    /// Maximum chain length walked past the bucket head.
    pub max_chain: usize,
    /// Bytes per chain node.
    pub node_size: u64,
}

impl Default for HashConfig {
    fn default() -> Self {
        Self {
            buckets: 1024,
            hot_keys: 16,
            cold_percent: 30,
            max_chain: 2,
            node_size: 32,
        }
    }
}

/// Probes into a chained hash table.
#[derive(Debug)]
pub struct HashWorkload {
    config: HashConfig,
    seat: Seat,
    table_base: u64,
    /// Chain node addresses per bucket (allocated lazily up front).
    chains: Vec<Vec<u64>>,
    hot_sequence: Vec<u64>,
    head_ip: u64,
    chain_ip: u64,
    cmp_branch_ip: u64,
    hot_pos: usize,
}

impl HashWorkload {
    /// Builds the table and hot sequence.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is not a power of two or `hot_keys == 0`.
    #[must_use]
    pub fn new(config: HashConfig, seat: Seat, rng: &mut StdRng) -> Self {
        assert!(config.buckets.is_power_of_two(), "buckets must be a power of two");
        assert!(config.hot_keys > 0, "need at least one hot key");
        assert!(config.cold_percent <= 100, "cold_percent is a percentage");
        let table_base = seat.heap_base;
        let mut heap = HeapModel::new(
            seat.heap_base + (config.buckets as u64) * 8 + 4096,
            16,
        );
        let chains = (0..config.buckets)
            .map(|_| {
                let len = rng.gen_range(0..=config.max_chain);
                (0..len).map(|_| heap.alloc(config.node_size)).collect()
            })
            .collect();
        let hot_sequence = (0..config.hot_keys)
            .map(|_| rng.gen::<u64>())
            .collect();
        let mut ips = IpAllocator::new(seat.ip_base);
        let head_ip = ips.next_ip();
        let chain_ip = ips.next_ip();
        let cmp_branch_ip = ips.next_ip();
        Self {
            config,
            seat,
            table_base,
            chains,
            hot_sequence,
            head_ip,
            chain_ip,
            cmp_branch_ip,
            hot_pos: 0,
        }
    }

    fn bucket_of(&self, key: u64) -> usize {
        // Simple multiplicative hash, deterministic.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & (self.config.buckets - 1)
    }

    fn probe(&mut self, b: &mut TraceBuilder, key: u64) -> usize {
        let bucket = self.bucket_of(key);
        let ptr = self.seat.reg(0);
        let k = self.seat.reg(1);
        // Load the bucket head: table_base + bucket*8. Its value is the
        // first chain node's address (or null).
        let chain = self.chains[bucket].clone();
        b.load_val(
            self.head_ip,
            self.table_base + (bucket as u64) * 8,
            0,
            chain.first().copied().unwrap_or(0),
            Some(ptr),
            Some(k),
        );
        let mut loads = 1;
        // Key comparison consumes the loaded head pointer.
        b.op(
            self.cmp_branch_ip.wrapping_add(4),
            OpLatency::Alu,
            Some(k),
            [Some(k), Some(ptr)],
        );
        for (i, &node) in chain.iter().enumerate() {
            let next = chain.get(i + 1).copied().unwrap_or(0);
            b.load_val(self.chain_ip, node, 0, next, Some(ptr), Some(ptr));
            loads += 1;
            b.cond_branch(self.cmp_branch_ip, i + 1 < chain.len());
        }
        loads
    }
}

impl Workload for HashWorkload {
    fn emit(&mut self, builder: &mut TraceBuilder, rng: &mut StdRng, loads: usize) {
        let mut emitted = 0;
        while emitted < loads {
            let cold = rng.gen_range(0..100) < self.config.cold_percent;
            let key = if cold {
                rng.gen::<u64>()
            } else {
                let key = self.hot_sequence[self.hot_pos];
                self.hot_pos = (self.hot_pos + 1) % self.hot_sequence.len();
                key
            };
            emitted += self.probe(builder, key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SeatAllocator;
    use cap_rand::SeedableRng;
    use std::collections::BTreeSet;

    fn make(config: HashConfig) -> (HashWorkload, StdRng) {
        let mut seats = SeatAllocator::new();
        let mut r = StdRng::seed_from_u64(23);
        let wl = HashWorkload::new(config, seats.next_seat(), &mut r);
        (wl, r)
    }

    #[test]
    fn hot_only_probes_recur() {
        let cfg = HashConfig {
            cold_percent: 0,
            hot_keys: 4,
            max_chain: 0,
            ..HashConfig::default()
        };
        let (mut wl, mut r) = make(cfg);
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 16);
        let trace = b.finish();
        let addrs: Vec<u64> = trace.loads().map(|l| l.addr).collect();
        assert_eq!(&addrs[0..4], &addrs[4..8], "hot key sequence must recur");
    }

    #[test]
    fn cold_probes_scatter() {
        let cfg = HashConfig {
            cold_percent: 100,
            max_chain: 0,
            ..HashConfig::default()
        };
        let (mut wl, mut r) = make(cfg);
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 512);
        let trace = b.finish();
        let unique: BTreeSet<u64> = trace.loads().map(|l| l.addr).collect();
        assert!(unique.len() > 200, "cold probes must hit many buckets");
    }

    #[test]
    fn head_addresses_stay_in_table() {
        let cfg = HashConfig::default();
        let buckets = cfg.buckets as u64;
        let (mut wl, mut r) = make(cfg);
        let table_base = wl.table_base;
        let head_ip = wl.head_ip;
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 200);
        let trace = b.finish();
        for l in trace.loads().filter(|l| l.ip == head_ip) {
            assert!(l.addr >= table_base);
            assert!(l.addr < table_base + buckets * 8);
        }
    }

    #[test]
    fn chain_walk_emits_chain_loads() {
        let cfg = HashConfig {
            cold_percent: 0,
            max_chain: 4,
            ..HashConfig::default()
        };
        let (mut wl, mut r) = make(cfg);
        let chain_ip = wl.chain_ip;
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 400);
        let trace = b.finish();
        let chain_loads = trace.loads().filter(|l| l.ip == chain_ip).count();
        assert!(chain_loads > 0, "some buckets must have chains");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_buckets_rejected() {
        let _ = make(HashConfig {
            buckets: 1000,
            ..HashConfig::default()
        });
    }
}
