//! Binary-tree workloads — recurring root-to-leaf search paths (§2.1).
//!
//! The tree is built once; the workload then cycles through a small, fixed
//! set of search paths (hot keys), so each static load sees a short
//! recurring base-address sequence. The direction taken at each node is also
//! emitted as a conditional branch, which correlates the global
//! branch-history register with the addresses — the raw material for the
//! paper's control-flow confidence indications.

use super::{Seat, Workload};
use crate::alloc::{HeapModel, LayoutPolicy};
use crate::builder::{IpAllocator, TraceBuilder};
use cap_rand::rngs::StdRng;
use cap_rand::Rng;

/// Configuration for [`BinaryTreeWorkload`].
#[derive(Debug, Clone)]
pub struct BinaryTreeConfig {
    /// Depth of the (complete) binary tree.
    pub depth: usize,
    /// Number of distinct hot search paths cycled through.
    pub hot_paths: usize,
    /// Probability (in percent) that a lookup uses a random cold path
    /// instead of the recurring hot set.
    pub cold_percent: u32,
    /// Node size in bytes.
    pub node_size: u64,
    /// Offset of the key field.
    pub key_offset: i32,
    /// Offset of the left-child pointer.
    pub left_offset: i32,
    /// Offset of the right-child pointer.
    pub right_offset: i32,
    /// Heap layout policy.
    pub layout: LayoutPolicy,
}

impl Default for BinaryTreeConfig {
    fn default() -> Self {
        Self {
            depth: 6,
            hot_paths: 4,
            cold_percent: 0,
            node_size: 32,
            key_offset: 0,
            left_offset: 8,
            right_offset: 16,
            layout: LayoutPolicy::Fragmented,
        }
    }
}

/// Repeated searches over a fixed binary tree.
#[derive(Debug)]
pub struct BinaryTreeWorkload {
    config: BinaryTreeConfig,
    seat: Seat,
    /// Heap-ordered complete tree: node `i` has children `2i+1`, `2i+2`.
    nodes: Vec<u64>,
    hot_paths: Vec<Vec<bool>>,
    key_ip: u64,
    left_ip: u64,
    right_ip: u64,
    dir_branch_ip: u64,
    next_hot: usize,
}

impl BinaryTreeWorkload {
    /// Builds the tree and pre-draws the hot path set.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`, `hot_paths == 0`, or `cold_percent > 100`.
    #[must_use]
    pub fn new(config: BinaryTreeConfig, seat: Seat, rng: &mut StdRng) -> Self {
        assert!(config.depth > 0, "tree depth must be positive");
        assert!(config.hot_paths > 0, "need at least one hot path");
        assert!(config.cold_percent <= 100, "cold_percent is a percentage");
        let node_count = (1usize << (config.depth + 1)) - 1;
        let mut heap = HeapModel::new(seat.heap_base, 16);
        let nodes = heap.alloc_nodes(node_count, config.node_size, config.layout, rng);
        let hot_paths = (0..config.hot_paths)
            .map(|_| (0..config.depth).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        let mut ips = IpAllocator::new(seat.ip_base);
        let key_ip = ips.next_ip();
        let left_ip = ips.next_ip();
        let right_ip = ips.next_ip();
        let dir_branch_ip = ips.next_ip();
        Self {
            config,
            seat,
            nodes,
            hot_paths,
            key_ip,
            left_ip,
            right_ip,
            dir_branch_ip,
            next_hot: 0,
        }
    }

    /// Performs one root-to-leaf search along `path` (`true` = go left).
    fn search(&mut self, b: &mut TraceBuilder, path: &[bool]) -> usize {
        let ptr = self.seat.reg(0);
        let key = self.seat.reg(1);
        let mut idx = 0usize;
        let mut loads = 0;
        for &go_left in path {
            let node = self.nodes[idx];
            b.load_val(
                self.key_ip,
                node.wrapping_add(self.config.key_offset as i64 as u64),
                self.config.key_offset,
                crate::gen::splitmix(node),
                Some(key),
                Some(ptr),
            );
            let (ip, off) = if go_left {
                (self.left_ip, self.config.left_offset)
            } else {
                (self.right_ip, self.config.right_offset)
            };
            let child_idx = if go_left { 2 * idx + 1 } else { 2 * idx + 2 };
            let child_addr = self.nodes.get(child_idx).copied().unwrap_or(0);
            b.load_val(
                ip,
                node.wrapping_add(off as i64 as u64),
                off,
                child_addr,
                Some(ptr),
                Some(ptr),
            );
            loads += 2;
            b.cond_branch(self.dir_branch_ip, go_left);
            idx = child_idx;
        }
        loads
    }
}

impl Workload for BinaryTreeWorkload {
    fn emit(&mut self, builder: &mut TraceBuilder, rng: &mut StdRng, loads: usize) {
        let mut emitted = 0;
        while emitted < loads {
            let cold = rng.gen_range(0..100) < self.config.cold_percent;
            let path: Vec<bool> = if cold {
                (0..self.config.depth).map(|_| rng.gen_bool(0.5)).collect()
            } else {
                let p = self.hot_paths[self.next_hot].clone();
                self.next_hot = (self.next_hot + 1) % self.hot_paths.len();
                p
            };
            emitted += self.search(builder, &path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SeatAllocator;
    use cap_rand::SeedableRng;
    use std::collections::BTreeSet;

    fn make(config: BinaryTreeConfig) -> (BinaryTreeWorkload, StdRng) {
        let mut seats = SeatAllocator::new();
        let mut r = StdRng::seed_from_u64(3);
        let wl = BinaryTreeWorkload::new(config, seats.next_seat(), &mut r);
        (wl, r)
    }

    #[test]
    fn hot_paths_recur_exactly() {
        let cfg = BinaryTreeConfig {
            hot_paths: 2,
            depth: 4,
            cold_percent: 0,
            ..BinaryTreeConfig::default()
        };
        let (mut wl, mut r) = make(cfg);
        let mut b = TraceBuilder::new();
        // 2 hot paths x depth 4 x 2 loads = 16 loads per full cycle.
        wl.emit(&mut b, &mut r, 64);
        let trace = b.finish();
        let addrs: Vec<u64> = trace.loads().map(|l| l.addr).collect();
        assert_eq!(&addrs[0..16], &addrs[16..32], "hot cycle must repeat");
    }

    #[test]
    fn branch_outcomes_follow_path_directions() {
        let cfg = BinaryTreeConfig {
            hot_paths: 1,
            depth: 5,
            ..BinaryTreeConfig::default()
        };
        let (mut wl, mut r) = make(cfg);
        let path = wl.hot_paths[0].clone();
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 10);
        let trace = b.finish();
        let outcomes: Vec<bool> = trace
            .iter()
            .filter_map(crate::TraceEvent::as_branch)
            .map(|br| br.taken)
            .take(path.len())
            .collect();
        assert_eq!(outcomes, path);
    }

    #[test]
    fn cold_paths_widen_address_set() {
        let hot_only = {
            let (mut wl, mut r) = make(BinaryTreeConfig {
                cold_percent: 0,
                ..BinaryTreeConfig::default()
            });
            let mut b = TraceBuilder::new();
            wl.emit(&mut b, &mut r, 600);
            let t = b.finish();
            t.loads().map(|l| l.addr).collect::<BTreeSet<_>>().len()
        };
        let with_cold = {
            let (mut wl, mut r) = make(BinaryTreeConfig {
                cold_percent: 50,
                ..BinaryTreeConfig::default()
            });
            let mut b = TraceBuilder::new();
            wl.emit(&mut b, &mut r, 600);
            let t = b.finish();
            t.loads().map(|l| l.addr).collect::<BTreeSet<_>>().len()
        };
        assert!(with_cold > hot_only, "cold lookups must visit more nodes");
    }

    #[test]
    fn key_and_child_loads_share_node_base() {
        let (mut wl, mut r) = make(BinaryTreeConfig::default());
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 40);
        let trace = b.finish();
        let loads: Vec<_> = trace.loads().collect();
        for pair in loads.chunks(2) {
            if pair.len() == 2 {
                assert_eq!(pair[0].base_addr(), pair[1].base_addr());
            }
        }
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_rejected() {
        let _ = make(BinaryTreeConfig {
            depth: 0,
            ..BinaryTreeConfig::default()
        });
    }
}
