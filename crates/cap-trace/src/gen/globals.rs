//! Constant-address loads: globals, read-only constants, and stable stack
//! slots.
//!
//! The paper's Section 1 notes that a plain last-address predictor covers
//! about 40% of all loads — global scalar variables, read-only constants,
//! and "simple, reoccurring, stack references". This workload supplies that
//! population: many static loads, each re-reading its own fixed address,
//! with an optional slow re-target rate (a global pointer being swung to a
//! new object).

use super::{Seat, Workload};
use crate::builder::{IpAllocator, TraceBuilder};
use crate::record::OpLatency;
use cap_rand::rngs::StdRng;
use cap_rand::Rng;

/// Configuration for [`GlobalsWorkload`].
#[derive(Debug, Clone)]
pub struct GlobalsConfig {
    /// Number of static loads (each with its own fixed address).
    pub static_loads: usize,
    /// Per-load probability (in 1/10000) of being re-targeted to a fresh
    /// address on any given access. `0` means perfectly constant.
    pub retarget_per_10k: u32,
    /// Interleave a conditional branch every `branch_every` loads (keeps
    /// the GHR moving like real glue code). `0` disables.
    pub branch_every: usize,
}

impl Default for GlobalsConfig {
    fn default() -> Self {
        Self {
            static_loads: 48,
            retarget_per_10k: 2,
            branch_every: 3,
        }
    }
}

/// Loads of global variables and other constant addresses.
#[derive(Debug)]
pub struct GlobalsWorkload {
    config: GlobalsConfig,
    seat: Seat,
    load_ips: Vec<u64>,
    use_ip: u64,
    branch_ip: u64,
    targets: Vec<u64>,
    /// Per-target value version: bumped stochastically to model stores to
    /// the global between reads (addresses constant, values churning).
    value_versions: Vec<u64>,
    next_fresh: u64,
    cursor: usize,
}

impl GlobalsWorkload {
    /// Builds the workload.
    ///
    /// # Panics
    ///
    /// Panics if `static_loads == 0`.
    #[must_use]
    pub fn new(config: GlobalsConfig, seat: Seat, rng: &mut StdRng) -> Self {
        assert!(config.static_loads > 0, "need at least one static load");
        let mut ips = IpAllocator::new(seat.ip_base);
        let load_ips = ips.code_block(config.static_loads);
        let use_ip = ips.next_ip();
        let branch_ip = ips.next_ip();
        let targets = (0..config.static_loads)
            .map(|_| seat.heap_base + (rng.gen_range(0..1u64 << 20) & !3))
            .collect();
        Self {
            next_fresh: seat.heap_base + (1 << 20),
            value_versions: vec![0; config.static_loads],
            config,
            seat,
            load_ips,
            use_ip,
            branch_ip,
            targets,
            cursor: 0,
        }
    }
}

impl Workload for GlobalsWorkload {
    fn emit(&mut self, builder: &mut TraceBuilder, rng: &mut StdRng, loads: usize) {
        let val = self.seat.reg(0);
        let acc = self.seat.reg(1);
        for n in 0..loads {
            let i = self.cursor;
            self.cursor = (self.cursor + 1) % self.load_ips.len();
            if self.config.retarget_per_10k > 0
                && rng.gen_range(0..10_000) < self.config.retarget_per_10k
            {
                self.targets[i] = self.next_fresh;
                self.next_fresh += 16;
            }
            if rng.gen_range(0..100) < 12 {
                // Someone stored to the global since the last read.
                self.value_versions[i] += 1;
            }
            builder.load_val(
                self.load_ips[i],
                self.targets[i],
                0,
                crate::gen::splitmix(self.targets[i] ^ self.value_versions[i].rotate_left(32)),
                Some(val),
                None,
            );
            // Every loaded value feeds dependent work, as compiled code
            // would — this is what puts load-to-use latency on the
            // critical path.
            builder.op(self.use_ip, OpLatency::Alu, Some(acc), [Some(acc), Some(val)]);
            if self.config.branch_every > 0 && n % self.config.branch_every == 0 {
                builder.cond_branch(self.branch_ip, rng.gen_bool(0.7));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SeatAllocator;
    use cap_rand::SeedableRng;
    use std::collections::BTreeMap;

    fn make(config: GlobalsConfig) -> (GlobalsWorkload, StdRng) {
        let mut seats = SeatAllocator::new();
        let mut r = StdRng::seed_from_u64(41);
        let wl = GlobalsWorkload::new(config, seats.next_seat(), &mut r);
        (wl, r)
    }

    #[test]
    fn without_retarget_every_ip_is_constant() {
        let (mut wl, mut r) = make(GlobalsConfig {
            retarget_per_10k: 0,
            ..GlobalsConfig::default()
        });
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 1000);
        let trace = b.finish();
        let mut per_ip: BTreeMap<u64, std::collections::BTreeSet<u64>> = BTreeMap::new();
        for l in trace.loads() {
            per_ip.entry(l.ip).or_default().insert(l.addr);
        }
        assert!(per_ip.values().all(|s| s.len() == 1));
    }

    #[test]
    fn retarget_changes_some_targets_eventually() {
        let (mut wl, mut r) = make(GlobalsConfig {
            retarget_per_10k: 500,
            ..GlobalsConfig::default()
        });
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 2000);
        let trace = b.finish();
        let mut per_ip: BTreeMap<u64, std::collections::BTreeSet<u64>> = BTreeMap::new();
        for l in trace.loads() {
            per_ip.entry(l.ip).or_default().insert(l.addr);
        }
        assert!(per_ip.values().any(|s| s.len() > 1));
    }

    #[test]
    fn branches_are_interleaved() {
        let (mut wl, mut r) = make(GlobalsConfig::default());
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 300);
        let trace = b.finish();
        let branches = trace.iter().filter(|e| e.as_branch().is_some()).count();
        assert!(branches >= 90);
    }

    #[test]
    fn exact_load_budget() {
        let (mut wl, mut r) = make(GlobalsConfig::default());
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 257);
        assert_eq!(b.finish().load_count(), 257);
    }
}
