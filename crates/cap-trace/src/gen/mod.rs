//! Synthetic workload generators.
//!
//! Each generator reproduces one of the load-address pattern classes the
//! paper analyses in Section 2 (and the classes its related work covers):
//!
//! | Generator | Pattern class | Paper reference |
//! |---|---|---|
//! | [`linked_list::LinkedListWorkload`] | short recurring RDS walk | §2.1, Fig. 1 |
//! | [`linked_list::DoublyLinkedListWorkload`] | RDS needing history 2 | §3.2, Fig. 2 |
//! | [`tree::BinaryTreeWorkload`] | recurring tree paths | §2.1 |
//! | [`call_site::CallSiteWorkload`] | control-correlated loads | §2.2 |
//! | [`globals::GlobalsWorkload`] | constant addresses (globals) | §1 |
//! | [`array::ArrayWorkload`] | stride with wrap (interval) | §1, §5.2 |
//! | [`matrix::MatrixWorkload`] | long strides, CAP-defeating | §4.2 (MM suite) |
//! | [`stack::StackWorkload`] | recurring stack frames | §4.2 (JAV suite) |
//! | [`hash::HashWorkload`] | semi-regular hash probing | §3.3 |
//! | [`random::RandomWorkload`] | irregular / polluting loads | §3.5 |
//! | [`mix::MixWorkload`] | weighted interleaving | §4.1 suite composition |

pub mod array;
pub mod call_site;
pub mod globals;
pub mod hash;
pub mod linked_list;
pub mod matrix;
pub mod mix;
pub mod random;
pub mod stack;
pub mod tree;

use crate::builder::TraceBuilder;
use cap_rand::rngs::StdRng;

/// A stateful trace generator.
///
/// Generators keep their data structures (heaps, lists, cursors) across
/// calls, so a [`mix::MixWorkload`] can interleave blocks from several
/// generators and each continues its own pattern — exactly how distinct
/// program phases interleave in a real trace.
pub trait Workload: std::fmt::Debug {
    /// Emits events until *at least* `loads` dynamic loads have been
    /// produced by this call (generators finish their current structural
    /// unit, e.g. a full list traversal, so slight overshoot is expected).
    fn emit(&mut self, builder: &mut TraceBuilder, rng: &mut StdRng, loads: usize);
}

/// Disjoint code/heap/register resources for one workload instance.
///
/// Keeping seats disjoint guarantees interleaved workloads never alias
/// static IPs, heap regions, or architectural registers.
#[derive(Debug, Clone, Copy)]
pub struct Seat {
    /// Base of the workload's static code region.
    pub ip_base: u64,
    /// Base of the workload's heap region.
    pub heap_base: u64,
    /// First architectural register in the workload's palette.
    pub reg_base: u8,
    /// Number of registers in the palette.
    pub reg_count: u8,
}

/// Hands out disjoint [`Seat`]s.
///
/// # Examples
///
/// ```
/// use cap_trace::gen::SeatAllocator;
/// let mut seats = SeatAllocator::new();
/// let a = seats.next_seat();
/// let b = seats.next_seat();
/// assert_ne!(a.ip_base, b.ip_base);
/// assert_ne!(a.heap_base, b.heap_base);
/// ```
#[derive(Debug, Clone)]
pub struct SeatAllocator {
    index: u64,
}

impl SeatAllocator {
    const IP_REGION: u64 = 1 << 20; // 1 MiB of code per seat
    const HEAP_REGION: u64 = 1 << 28; // 256 MiB of heap per seat
    const IP_FLOOR: u64 = 0x0040_0000;
    const HEAP_FLOOR: u64 = 0x1000_0000;
    /// Registers per seat; palettes cycle through the register file while
    /// staying clear of the low 8 registers (reserved for glue code).
    const REGS_PER_SEAT: u8 = 4;
    const REG_FLOOR: u8 = 8;

    /// Creates a fresh allocator.
    #[must_use]
    pub fn new() -> Self {
        Self { index: 0 }
    }

    /// Allocates the next disjoint seat.
    ///
    /// Code bases are salted with a per-seat hash so that seats do not all
    /// start at the same large power-of-two boundary — real text segments
    /// place functions at effectively arbitrary low-order offsets, and
    /// without the salt every workload's loads would alias into the same
    /// few sets of any IP-indexed table.
    pub fn next_seat(&mut self) -> Seat {
        let i = self.index;
        self.index += 1;
        let reg_slots =
            (crate::RegId::COUNT as u8 - Self::REG_FLOOR) / Self::REGS_PER_SEAT;
        let salt = (splitmix(i) & 0x7FFF) * 4; // < 128 KiB, inside the region
        Seat {
            ip_base: Self::IP_FLOOR + i * Self::IP_REGION + salt,
            heap_base: Self::HEAP_FLOOR + i * Self::HEAP_REGION,
            reg_base: Self::REG_FLOOR + (i as u8 % reg_slots) * Self::REGS_PER_SEAT,
            reg_count: Self::REGS_PER_SEAT,
        }
    }
}

/// A deterministic 64-bit mixer (splitmix64 finaliser), used for seat
/// salting and for synthesising stable per-object data values.
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Default for SeatAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl Seat {
    /// The `n`-th register of this seat's palette.
    ///
    /// # Panics
    ///
    /// Panics if `n >= self.reg_count`.
    #[must_use]
    pub fn reg(&self, n: u8) -> crate::RegId {
        assert!(n < self.reg_count, "register palette exhausted");
        crate::RegId::new(self.reg_base + n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seats_are_disjoint_in_code_and_heap() {
        let mut alloc = SeatAllocator::new();
        let seats: Vec<Seat> = (0..16).map(|_| alloc.next_seat()).collect();
        for (i, a) in seats.iter().enumerate() {
            for b in &seats[i + 1..] {
                assert!(
                    a.ip_base.abs_diff(b.ip_base) >= SeatAllocator::IP_REGION / 2,
                    "code regions overlap"
                );
                assert!(
                    a.heap_base.abs_diff(b.heap_base) >= SeatAllocator::HEAP_REGION,
                    "heap regions overlap"
                );
            }
        }
    }

    #[test]
    fn seat_code_bases_spread_across_low_bits() {
        // The salt must decorrelate the low IP bits used by IP-indexed
        // tables (e.g. a 2048-set Load Buffer).
        let mut alloc = SeatAllocator::new();
        let sets: std::collections::BTreeSet<u64> = (0..64)
            .map(|_| (alloc.next_seat().ip_base >> 2) & 2047)
            .collect();
        assert!(sets.len() > 48, "seat bases must spread over sets, got {}", sets.len());
    }

    #[test]
    fn seat_registers_stay_in_range() {
        let mut alloc = SeatAllocator::new();
        for _ in 0..100 {
            let seat = alloc.next_seat();
            for n in 0..seat.reg_count {
                let r = seat.reg(n);
                assert!(r.index() >= 8);
                assert!(r.index() < crate::RegId::COUNT);
            }
        }
    }

    #[test]
    #[should_panic(expected = "palette exhausted")]
    fn seat_reg_out_of_palette_panics() {
        let mut alloc = SeatAllocator::new();
        let seat = alloc.next_seat();
        let _ = seat.reg(seat.reg_count);
    }
}
