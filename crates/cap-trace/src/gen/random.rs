//! Irregular-load workloads — the pollution source §3.5 defends against.
//!
//! "Many loads are completely unpredictable by nature; they may trash the
//! LT." This generator emits loads whose addresses are uniform over a large
//! region from many distinct static IPs, and never repeats a sequence — the
//! adversarial input for the pollution-free (PF) bits.

use super::{Seat, Workload};
use crate::builder::{IpAllocator, TraceBuilder};
use cap_rand::rngs::StdRng;
use cap_rand::Rng;

/// Configuration for [`RandomWorkload`].
#[derive(Debug, Clone)]
pub struct RandomConfig {
    /// Number of distinct static load IPs cycling through.
    pub static_loads: usize,
    /// Size of the address region sampled (bytes).
    pub region_size: u64,
    /// Fraction (percent) of loads that instead re-read one fixed hot
    /// address — makes the workload not *entirely* hopeless, like real
    /// irregular code with the occasional global.
    pub constant_percent: u32,
}

impl Default for RandomConfig {
    fn default() -> Self {
        Self {
            static_loads: 64,
            region_size: 1 << 24,
            constant_percent: 0,
        }
    }
}

/// Uniformly random loads over a large region.
#[derive(Debug)]
pub struct RandomWorkload {
    config: RandomConfig,
    seat: Seat,
    load_ips: Vec<u64>,
    hot_addr: u64,
    next_ip: usize,
}

impl RandomWorkload {
    /// Builds the workload.
    ///
    /// # Panics
    ///
    /// Panics if `static_loads == 0` or `region_size == 0`.
    #[must_use]
    pub fn new(config: RandomConfig, seat: Seat, _rng: &mut StdRng) -> Self {
        assert!(config.static_loads > 0, "need at least one static load");
        assert!(config.region_size > 0, "region must be non-empty");
        assert!(config.constant_percent <= 100, "constant_percent is a percentage");
        let mut ips = IpAllocator::new(seat.ip_base);
        let load_ips = ips.code_block(config.static_loads);
        Self {
            hot_addr: seat.heap_base,
            config,
            seat,
            load_ips,
            next_ip: 0,
        }
    }
}

impl Workload for RandomWorkload {
    fn emit(&mut self, builder: &mut TraceBuilder, rng: &mut StdRng, loads: usize) {
        let val = self.seat.reg(0);
        for _ in 0..loads {
            let ip = self.load_ips[self.next_ip];
            self.next_ip = (self.next_ip + 1) % self.load_ips.len();
            let constant = self.config.constant_percent > 0
                && rng.gen_range(0..100) < self.config.constant_percent;
            let addr = if constant {
                self.hot_addr
            } else {
                // 4-byte aligned uniform address in the region.
                self.seat.heap_base + (rng.gen_range(0..self.config.region_size) & !3)
            };
            builder.load_val(ip, addr, 0, crate::gen::splitmix(addr), Some(val), None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SeatAllocator;
    use cap_rand::SeedableRng;
    use std::collections::BTreeSet;

    fn make(config: RandomConfig) -> (RandomWorkload, StdRng) {
        let mut seats = SeatAllocator::new();
        let mut r = StdRng::seed_from_u64(31);
        let wl = RandomWorkload::new(config, seats.next_seat(), &mut r);
        (wl, r)
    }

    #[test]
    fn addresses_are_spread() {
        let (mut wl, mut r) = make(RandomConfig::default());
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 1000);
        let trace = b.finish();
        let unique: BTreeSet<u64> = trace.loads().map(|l| l.addr).collect();
        assert!(unique.len() > 990, "uniform loads must rarely repeat");
    }

    #[test]
    fn static_ips_cycle() {
        let cfg = RandomConfig {
            static_loads: 8,
            ..RandomConfig::default()
        };
        let (mut wl, mut r) = make(cfg);
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 64);
        let trace = b.finish();
        let ips: BTreeSet<u64> = trace.loads().map(|l| l.ip).collect();
        assert_eq!(ips.len(), 8);
    }

    #[test]
    fn constant_fraction_hits_hot_address() {
        let cfg = RandomConfig {
            constant_percent: 100,
            ..RandomConfig::default()
        };
        let (mut wl, mut r) = make(cfg);
        let hot = wl.hot_addr;
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 50);
        let trace = b.finish();
        assert!(trace.loads().all(|l| l.addr == hot));
    }

    #[test]
    fn emit_exact_budget() {
        let (mut wl, mut r) = make(RandomConfig::default());
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 123);
        assert_eq!(b.finish().load_count(), 123);
    }

    #[test]
    fn addresses_are_aligned() {
        let (mut wl, mut r) = make(RandomConfig::default());
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 200);
        assert!(b.finish().loads().all(|l| l.addr % 4 == 0));
    }
}
