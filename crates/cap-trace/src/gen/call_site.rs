//! Control-correlated loads — the paper's §2.2 (`xlmatch` / `xllastarg`).
//!
//! A shared function contains static loads whose addresses depend entirely
//! on the call site (arguments passed in registers or on the stack). When
//! the call-site pattern recurs — `a-c-u-a` in the paper's xlisp example —
//! each static load's address sequence is `A1 A1 C U A2 A2 C U …`: recurring
//! and completely stride-hostile, but trivially context-predictable once the
//! history spans one period.

use super::{Seat, Workload};
use crate::alloc::HeapModel;
use crate::builder::{IpAllocator, TraceBuilder};
use cap_rand::rngs::StdRng;
use cap_rand::Rng;

/// Configuration for [`CallSiteWorkload`].
#[derive(Debug, Clone)]
pub struct CallSiteConfig {
    /// Number of distinct call sites.
    pub sites: usize,
    /// The recurring site sequence, as indices into `0..sites`. The paper's
    /// `xllastarg` pattern `a-a-u-c-b` would be `[0, 0, 1, 2, 3]` — note the
    /// immediate repetition, which forces histories of 4+ to disambiguate.
    pub pattern: Vec<usize>,
    /// Number of static loads inside the shared callee.
    pub loads_in_callee: usize,
    /// Probability (percent) of deviating from the pattern to a random site.
    pub noise_percent: u32,
    /// Size of each call site's argument block.
    pub site_block_size: u64,
}

impl Default for CallSiteConfig {
    fn default() -> Self {
        Self {
            sites: 4,
            // a - c - u - a : the xlmatch pattern (two sites repeat).
            pattern: vec![0, 1, 2, 0],
            loads_in_callee: 3,
            noise_percent: 0,
            site_block_size: 256,
        }
    }
}

/// A callee whose loads are correlated with the call site.
#[derive(Debug)]
pub struct CallSiteWorkload {
    config: CallSiteConfig,
    seat: Seat,
    /// Base address of each call site's argument/frame block. Within one
    /// pattern position the *same* block recurs, so the callee's loads form
    /// recurring sequences keyed by call history.
    site_bases: Vec<u64>,
    /// Distinct argument blocks for repeated occurrences of the same site in
    /// the pattern (the paper's `A1` vs `A2` for the two calls in `xaref`).
    occurrence_bases: Vec<u64>,
    call_ips: Vec<u64>,
    callee_entry: u64,
    load_ips: Vec<u64>,
    ret_ip: u64,
    position: usize,
}

impl CallSiteWorkload {
    /// Builds the workload.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty, references an out-of-range site, or
    /// the callee has no loads.
    #[must_use]
    pub fn new(config: CallSiteConfig, seat: Seat, _rng: &mut StdRng) -> Self {
        assert!(!config.pattern.is_empty(), "pattern must not be empty");
        assert!(config.loads_in_callee > 0, "callee needs at least one load");
        assert!(
            config.pattern.iter().all(|&s| s < config.sites),
            "pattern references unknown call site"
        );
        let mut heap = HeapModel::new(seat.heap_base, 16);
        let site_bases: Vec<u64> = (0..config.sites)
            .map(|_| heap.alloc(config.site_block_size))
            .collect();
        // Each *occurrence* in the pattern gets its own block (A1 vs A2 in
        // the paper's xaref example) — except that consecutive occurrences
        // of the same site repeat the same arguments ("the function may be
        // called several times in a row with the same input parameters",
        // §3.2), which is what makes short histories ambiguous: after one
        // A1 the next address may be A1 again or the next site's block.
        let mut occurrence_bases: Vec<u64> = Vec::with_capacity(config.pattern.len());
        for (i, &site) in config.pattern.iter().enumerate() {
            if i > 0 && config.pattern[i - 1] == site {
                let prev = occurrence_bases[i - 1];
                occurrence_bases.push(prev);
            } else {
                occurrence_bases.push(heap.alloc(config.site_block_size));
            }
        }
        let mut ips = IpAllocator::new(seat.ip_base);
        let call_ips = ips.code_block(config.sites);
        ips.gap(64);
        let callee_entry = ips.next_ip();
        let load_ips = ips.code_block(config.loads_in_callee);
        let ret_ip = ips.next_ip();
        Self {
            config,
            seat,
            site_bases,
            occurrence_bases,
            call_ips,
            callee_entry,
            load_ips,
            ret_ip,
            position: 0,
        }
    }

    fn one_call(&mut self, b: &mut TraceBuilder, rng: &mut StdRng) -> usize {
        let noisy = self.config.noise_percent > 0
            && rng.gen_range(0..100) < self.config.noise_percent;
        let (site, base) = if noisy {
            let s = rng.gen_range(0..self.config.sites);
            (s, self.site_bases[s])
        } else {
            let pos = self.position;
            self.position = (self.position + 1) % self.config.pattern.len();
            (self.config.pattern[pos], self.occurrence_bases[pos])
        };
        let arg = self.seat.reg(0);
        let tmp = self.seat.reg(1);
        b.call(self.call_ips[site], self.callee_entry);
        for (i, &ip) in self.load_ips.iter().enumerate() {
            let off = (i as i32) * 8;
            let ea = base.wrapping_add(off as i64 as u64);
            b.load_val(ip, ea, off, crate::gen::splitmix(ea), Some(tmp), Some(arg));
        }
        b.ret(self.ret_ip, self.call_ips[site] + 4);
        self.load_ips.len()
    }
}

impl Workload for CallSiteWorkload {
    fn emit(&mut self, builder: &mut TraceBuilder, rng: &mut StdRng, loads: usize) {
        let mut emitted = 0;
        while emitted < loads {
            emitted += self.one_call(builder, rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SeatAllocator;
    use crate::record::BranchKind;
    use cap_rand::SeedableRng;
    use std::collections::BTreeSet;

    fn make(config: CallSiteConfig) -> (CallSiteWorkload, StdRng) {
        let mut seats = SeatAllocator::new();
        let mut r = StdRng::seed_from_u64(5);
        let wl = CallSiteWorkload::new(config, seats.next_seat(), &mut r);
        (wl, r)
    }

    #[test]
    fn pattern_produces_recurring_address_sequence() {
        let cfg = CallSiteConfig {
            pattern: vec![0, 1, 2, 0],
            loads_in_callee: 1,
            ..CallSiteConfig::default()
        };
        let (mut wl, mut r) = make(cfg);
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 16);
        let trace = b.finish();
        let addrs: Vec<u64> = trace.loads().map(|l| l.addr).collect();
        assert_eq!(&addrs[0..4], &addrs[4..8], "pattern period must recur");
    }

    #[test]
    fn consecutive_same_site_occurrences_share_a_block() {
        // Pattern [0, 0, 1]: back-to-back calls from site 0 pass the same
        // arguments (the paper's "several times in a row" case).
        let cfg = CallSiteConfig {
            sites: 2,
            pattern: vec![0, 0, 1],
            loads_in_callee: 1,
            ..CallSiteConfig::default()
        };
        let (mut wl, mut r) = make(cfg);
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 3);
        let trace = b.finish();
        let addrs: Vec<u64> = trace.loads().map(|l| l.addr).collect();
        assert_eq!(addrs[0], addrs[1], "consecutive occurrences share A1");
    }

    #[test]
    fn non_consecutive_repeats_use_distinct_blocks() {
        // Pattern [0, 1, 0]: the two occurrences of site 0 are separated,
        // so they are A1 and A2 (distinct argument blocks).
        let cfg = CallSiteConfig {
            sites: 2,
            pattern: vec![0, 1, 0],
            loads_in_callee: 1,
            ..CallSiteConfig::default()
        };
        let (mut wl, mut r) = make(cfg);
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 3);
        let trace = b.finish();
        let addrs: Vec<u64> = trace.loads().map(|l| l.addr).collect();
        assert_ne!(addrs[0], addrs[2], "A1 and A2 must differ");
    }

    #[test]
    fn callee_loads_share_call_block_base() {
        let (mut wl, mut r) = make(CallSiteConfig::default());
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 9);
        let trace = b.finish();
        let loads: Vec<_> = trace.loads().collect();
        for group in loads.chunks(3) {
            if group.len() == 3 {
                let bases: BTreeSet<u64> = group.iter().map(|l| l.base_addr()).collect();
                assert_eq!(bases.len(), 1);
            }
        }
    }

    #[test]
    fn calls_come_from_distinct_static_sites() {
        let (mut wl, mut r) = make(CallSiteConfig::default());
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 30);
        let trace = b.finish();
        let call_ips: BTreeSet<u64> = trace
            .iter()
            .filter_map(crate::TraceEvent::as_branch)
            .filter(|br| br.kind == BranchKind::Call)
            .map(|br| br.ip)
            .collect();
        assert_eq!(call_ips.len(), 3, "pattern 0,1,2,0 exercises 3 static sites");
    }

    #[test]
    fn noise_breaks_strict_recurrence() {
        let cfg = CallSiteConfig {
            noise_percent: 100,
            loads_in_callee: 1,
            ..CallSiteConfig::default()
        };
        let (mut wl, mut r) = make(cfg);
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut r, 64);
        let trace = b.finish();
        let addrs: Vec<u64> = trace.loads().map(|l| l.addr).collect();
        // With 100% noise the sequence is site-random; a strict period of 4
        // across 16 periods is astronomically unlikely.
        let periodic = addrs.chunks(4).collect::<Vec<_>>().windows(2).all(|w| w[0] == w[1]);
        assert!(!periodic);
    }

    #[test]
    #[should_panic(expected = "unknown call site")]
    fn pattern_site_out_of_range_rejected() {
        let _ = make(CallSiteConfig {
            sites: 2,
            pattern: vec![0, 5],
            ..CallSiteConfig::default()
        });
    }
}
