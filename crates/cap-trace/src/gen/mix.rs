//! Weighted interleaving of workloads into a composite trace.
//!
//! Real traces interleave phases: a stretch of pointer chasing, a stretch of
//! array code, some irregular glue. [`MixWorkload`] emits blocks from its
//! component workloads with probabilities proportional to their weights,
//! letting suite definitions dial in the pattern-class mix that
//! characterises each of the paper's eight application suites.

use super::Workload;
use crate::builder::TraceBuilder;
use cap_rand::rngs::StdRng;
use cap_rand::Rng;

/// A weighted component of a mix.
#[derive(Debug)]
struct Component {
    workload: Box<dyn Workload>,
    weight: u32,
}

/// Interleaves component workloads block-by-block.
///
/// # Examples
///
/// ```
/// use cap_trace::gen::mix::MixWorkload;
/// use cap_trace::gen::random::{RandomConfig, RandomWorkload};
/// use cap_trace::gen::{SeatAllocator, Workload};
/// use cap_trace::builder::TraceBuilder;
/// use cap_rand::SeedableRng;
///
/// let mut seats = SeatAllocator::new();
/// let mut rng = cap_rand::rngs::StdRng::seed_from_u64(1);
/// let a = RandomWorkload::new(RandomConfig::default(), seats.next_seat(), &mut rng);
/// let b = RandomWorkload::new(RandomConfig::default(), seats.next_seat(), &mut rng);
/// let mut mix = MixWorkload::new(100);
/// mix.add(Box::new(a), 3);
/// mix.add(Box::new(b), 1);
/// let mut builder = TraceBuilder::new();
/// mix.emit(&mut builder, &mut rng, 1000);
/// assert!(builder.finish().load_count() >= 1000);
/// ```
#[derive(Debug)]
pub struct MixWorkload {
    components: Vec<Component>,
    block_loads: usize,
}

impl MixWorkload {
    /// Creates an empty mix emitting `block_loads` loads per scheduling
    /// quantum.
    ///
    /// # Panics
    ///
    /// Panics if `block_loads == 0`.
    #[must_use]
    pub fn new(block_loads: usize) -> Self {
        assert!(block_loads > 0, "block size must be positive");
        Self {
            components: Vec::new(),
            block_loads,
        }
    }

    /// Adds a component with the given scheduling weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight == 0`.
    pub fn add(&mut self, workload: Box<dyn Workload>, weight: u32) {
        assert!(weight > 0, "component weight must be positive");
        self.components.push(Component { workload, weight });
    }

    /// Number of components.
    #[must_use]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when no components have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    fn pick(&self, rng: &mut StdRng) -> usize {
        let total: u32 = self.components.iter().map(|c| c.weight).sum();
        let mut roll = rng.gen_range(0..total);
        for (i, c) in self.components.iter().enumerate() {
            if roll < c.weight {
                return i;
            }
            roll -= c.weight;
        }
        unreachable!("weights sum mismatch")
    }
}

impl Workload for MixWorkload {
    /// Emits interleaved blocks until the load budget is met.
    ///
    /// # Panics
    ///
    /// Panics if the mix has no components.
    fn emit(&mut self, builder: &mut TraceBuilder, rng: &mut StdRng, loads: usize) {
        assert!(!self.components.is_empty(), "mix has no components");
        let mut load_count = 0usize;
        while load_count < loads {
            let idx = self.pick(rng);
            let before = builder.len();
            self.components[idx]
                .workload
                .emit(builder, rng, self.block_loads.min(loads - load_count));
            load_count += builder.loads_since(before);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random::{RandomConfig, RandomWorkload};
    use crate::gen::SeatAllocator;
    use cap_rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    fn random_component(seats: &mut SeatAllocator, r: &mut StdRng) -> Box<dyn Workload> {
        Box::new(RandomWorkload::new(
            RandomConfig::default(),
            seats.next_seat(),
            r,
        ))
    }

    #[test]
    fn mix_meets_budget() {
        let mut seats = SeatAllocator::new();
        let mut r = rng();
        let mut mix = MixWorkload::new(50);
        mix.add(random_component(&mut seats, &mut r), 1);
        mix.add(random_component(&mut seats, &mut r), 1);
        let mut b = TraceBuilder::new();
        mix.emit(&mut b, &mut r, 777);
        assert!(b.finish().load_count() >= 777);
    }

    #[test]
    fn weights_bias_scheduling() {
        let mut seats = SeatAllocator::new();
        let mut r = rng();
        let heavy = RandomWorkload::new(RandomConfig::default(), seats.next_seat(), &mut r);
        let light = RandomWorkload::new(RandomConfig::default(), seats.next_seat(), &mut r);
        // Record the heavy component's IP range to attribute loads.
        let mut heavy_probe = TraceBuilder::new();
        let mut heavy_copy = heavy;
        heavy_copy.emit(&mut heavy_probe, &mut r, 1);
        let heavy_ip = heavy_probe.finish().loads().next().unwrap().ip;
        let heavy_region = heavy_ip & !0xFFFFF;

        let mut seats2 = SeatAllocator::new();
        let mut r2 = rng();
        let heavy2 = RandomWorkload::new(RandomConfig::default(), seats2.next_seat(), &mut r2);
        let light2 = light;
        let mut mix = MixWorkload::new(10);
        mix.add(Box::new(heavy2), 9);
        mix.add(Box::new(light2), 1);
        let mut b = TraceBuilder::new();
        mix.emit(&mut b, &mut r2, 5000);
        let t = b.finish();
        let heavy_loads = t.loads().filter(|l| l.ip & !0xFFFFF == heavy_region).count();
        assert!(
            heavy_loads * 10 > t.load_count() * 7,
            "9:1 weighting should yield >70% heavy loads, got {heavy_loads}/{}",
            t.load_count()
        );
    }

    #[test]
    #[should_panic(expected = "no components")]
    fn empty_mix_panics_on_emit() {
        let mut mix = MixWorkload::new(10);
        let mut b = TraceBuilder::new();
        mix.emit(&mut b, &mut rng(), 10);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        let mut seats = SeatAllocator::new();
        let mut r = rng();
        let mut mix = MixWorkload::new(10);
        mix.add(random_component(&mut seats, &mut r), 0);
    }
}
