//! Streaming trace reading with a checkpointable cursor.
//!
//! [`crate::io::read_trace`] materialises a whole trace in memory; the
//! resumable harness instead consumes events one at a time and records,
//! at every checkpoint, *where in the file* it stands. [`CursorPos`]
//! captures that position (byte offset, line number, events consumed) and
//! [`TraceCursor::open_at`] seeks straight back to it, so resuming an
//! interrupted run re-reads none of the already-processed prefix.

use crate::io::{parse_event_line, ParseTraceError};
use crate::record::TraceEvent;
use cap_snapshot::{Restorable, SectionReader, SectionWriter, Snapshot, SnapshotError};
use std::fs::File;
use std::io::{self, BufRead, BufReader, Seek, SeekFrom};
use std::path::Path;

/// A position in a trace stream, exact to the byte.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CursorPos {
    /// Bytes consumed from the stream.
    pub byte_offset: u64,
    /// 1-based number of the last line consumed (0 before the first).
    pub line: u64,
    /// Events yielded so far (comments and blank lines don't count).
    pub events: u64,
}

impl Snapshot for CursorPos {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_u64(self.byte_offset);
        w.put_u64(self.line);
        w.put_u64(self.events);
    }
}

impl Restorable for CursorPos {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            byte_offset: r.take_u64("cursor byte offset")?,
            line: r.take_u64("cursor line")?,
            events: r.take_u64("cursor events")?,
        })
    }
}

/// A pull-based trace reader that tracks its own [`CursorPos`].
#[derive(Debug)]
pub struct TraceCursor<R> {
    reader: R,
    pos: CursorPos,
    raw: Vec<u8>,
}

impl<R: BufRead> TraceCursor<R> {
    /// Wraps a reader positioned at the start of a trace stream.
    pub fn new(reader: R) -> Self {
        Self::with_position(reader, CursorPos::default())
    }

    /// Wraps a reader that is *already positioned* at `pos.byte_offset`
    /// (e.g. after an explicit seek). The cursor trusts the caller: it
    /// resumes line and event numbering from `pos` without re-reading.
    pub fn with_position(reader: R, pos: CursorPos) -> Self {
        Self {
            reader,
            pos,
            raw: Vec::new(),
        }
    }

    /// The current position — safe to persist and later feed to
    /// [`TraceCursor::open_at`].
    #[must_use]
    pub fn position(&self) -> CursorPos {
        self.pos
    }

    /// Pulls the next event, skipping comments and blank lines. Returns
    /// `Ok(None)` at end of stream.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on I/O failure or a malformed line
    /// (including invalid UTF-8); like the batch readers, this never
    /// panics whatever the input bytes.
    pub fn next_event(&mut self) -> Result<Option<TraceEvent>, ParseTraceError> {
        loop {
            self.raw.clear();
            if self.reader.read_until(b'\n', &mut self.raw)? == 0 {
                return Ok(None);
            }
            self.pos.byte_offset += self.raw.len() as u64;
            self.pos.line += 1;
            let line_no = self.pos.line as usize;
            let Ok(line) = std::str::from_utf8(&self.raw) else {
                return Err(ParseTraceError::Malformed {
                    line: line_no,
                    reason: "invalid UTF-8".to_owned(),
                });
            };
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let event = parse_event_line(trimmed, line_no)?;
            self.pos.events += 1;
            return Ok(Some(event));
        }
    }
}

impl TraceCursor<BufReader<File>> {
    /// Opens a trace file for streaming from the beginning.
    ///
    /// # Errors
    ///
    /// Propagates the `File::open` failure.
    pub fn open(path: &Path) -> io::Result<Self> {
        Ok(Self::new(BufReader::new(File::open(path)?)))
    }

    /// Opens a trace file and seeks directly to a previously recorded
    /// position — the resume path of the checkpointed harness.
    ///
    /// # Errors
    ///
    /// Propagates open/seek failures.
    pub fn open_at(path: &Path, pos: CursorPos) -> io::Result<Self> {
        let mut f = File::open(path)?;
        f.seek(SeekFrom::Start(pos.byte_offset))?;
        Ok(Self::with_position(BufReader::new(f), pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{read_trace, write_trace};
    use crate::suites::catalog;

    fn trace_bytes() -> Vec<u8> {
        let trace = catalog()[0].generate(1_000);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("write to Vec cannot fail");
        buf
    }

    #[test]
    fn cursor_yields_exactly_the_batch_reader_events() {
        let bytes = trace_bytes();
        let batch = read_trace(bytes.as_slice()).expect("parses");
        let mut cursor = TraceCursor::new(bytes.as_slice());
        let mut streamed = Vec::new();
        while let Some(e) = cursor.next_event().expect("clean input") {
            streamed.push(e);
        }
        assert_eq!(streamed.len(), batch.len());
        assert!(streamed.iter().eq(batch.iter()));
        assert_eq!(cursor.position().events, batch.len() as u64);
        assert_eq!(cursor.position().byte_offset, bytes.len() as u64);
    }

    #[test]
    fn resuming_from_a_mid_stream_position_continues_exactly() {
        let bytes = trace_bytes();
        let mut full = TraceCursor::new(bytes.as_slice());
        let mut all = Vec::new();
        while let Some(e) = full.next_event().expect("clean input") {
            all.push(e);
        }

        let mut first = TraceCursor::new(bytes.as_slice());
        for _ in 0..300 {
            first.next_event().expect("clean input").expect("has events");
        }
        let pos = first.position();
        assert_eq!(pos.events, 300);

        // Simulate open_at: slice from the byte offset.
        let mut resumed =
            TraceCursor::with_position(&bytes[pos.byte_offset as usize..], pos);
        let mut tail = Vec::new();
        while let Some(e) = resumed.next_event().expect("clean input") {
            tail.push(e);
        }
        assert_eq!(tail.as_slice(), &all[300..]);
        assert_eq!(resumed.position().byte_offset, bytes.len() as u64);
    }

    #[test]
    fn malformed_line_reports_resumed_line_number() {
        let text = "L 400 1008 8 4 0 - -\nX broken\n";
        let mut cursor = TraceCursor::new(text.as_bytes());
        cursor.next_event().expect("first parses");
        let err = cursor.next_event().expect_err("second must fail");
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn position_roundtrips_through_snapshot() {
        let pos = CursorPos {
            byte_offset: 12345,
            line: 678,
            events: 432,
        };
        let restored = CursorPos::from_payload(&pos.to_payload(), "cursor").unwrap();
        assert_eq!(restored, pos);
    }

    #[test]
    fn open_at_seeks_files() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cap-cursor-test-{}.trace", std::process::id()));
        std::fs::write(&path, trace_bytes()).expect("write temp trace");

        let mut head = TraceCursor::open(&path).expect("opens");
        for _ in 0..100 {
            head.next_event().expect("clean").expect("has events");
        }
        let pos = head.position();
        let next_direct = head.next_event().expect("clean").expect("has events");

        let mut resumed = TraceCursor::open_at(&path, pos).expect("reopens");
        let next_resumed = resumed.next_event().expect("clean").expect("has events");
        assert_eq!(next_resumed, next_direct);

        std::fs::remove_file(&path).ok();
    }
}
