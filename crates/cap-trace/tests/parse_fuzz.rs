//! Seeded fuzz tests for the trace parser: serialize every event variant,
//! mutate bytes, and require the parser to either succeed or return a
//! structured [`ParseTraceError`] attributed to the right line — never
//! panic, never blame a different line.

use cap_rand::check;
use cap_rand::Rng;
use cap_trace::io::{read_trace, read_trace_lenient, write_trace, ParseTraceError};
use cap_trace::{OpLatency, RegId, Trace, TraceEvent};
use cap_trace::builder::TraceBuilder;

/// A trace exercising every `TraceEvent` variant and every optional-field
/// shape the writer can emit.
fn full_coverage_trace(rng: &mut cap_rand::rngs::StdRng) -> Trace {
    let mut b = TraceBuilder::new();
    for i in 0..rng.gen_range(4..20u64) {
        let ip = 0x400 + i * 4;
        match rng.gen_range(0..7u32) {
            0 => b.load(ip, 0x1000 + i * 8, rng.gen_range(-128..128i32)),
            1 => {
                b.load_val(
                    ip,
                    rng.gen::<u32>() as u64,
                    8,
                    rng.gen::<u32>() as u64,
                    Some(RegId::new(rng.gen_range(0..64u32) as u8)),
                    None,
                );
            }
            2 => b.store_dep(ip, 0x3000 + i * 4, Some(RegId::new(5)), None),
            3 => b.cond_branch(ip, rng.gen_bool(0.5)),
            4 => b.call(ip, 0x800 + i * 16),
            5 => b.ret(ip, ip + 4),
            _ => b.op(
                ip,
                [
                    OpLatency::Alu,
                    OpLatency::Mul,
                    OpLatency::Div,
                    OpLatency::FpAdd,
                    OpLatency::FpMul,
                ][rng.gen_range(0..5usize)],
                Some(RegId::new(6)),
                [Some(RegId::new(7)), None],
            ),
        }
    }
    b.finish()
}

fn assert_variant_coverage(trace: &Trace) -> [bool; 4] {
    let mut seen = [false; 4];
    for e in trace.iter() {
        match e {
            TraceEvent::Load(_) => seen[0] = true,
            TraceEvent::Store(_) => seen[1] = true,
            TraceEvent::Branch(_) => seen[2] = true,
            TraceEvent::Op(_) => seen[3] = true,
        }
    }
    seen
}

/// 1-based line number containing byte `pos` of `bytes`.
fn line_of_byte(bytes: &[u8], pos: usize) -> usize {
    1 + bytes[..pos].iter().filter(|&&b| b == b'\n').count()
}

#[test]
fn every_event_variant_appears_across_cases() {
    // The per-case generator is random; across the check cases all four
    // variants must show up, or the fuzz below would under-cover.
    let mut coverage = [false; 4];
    check::run("fuzz_variant_coverage", |rng| {
        let seen = assert_variant_coverage(&full_coverage_trace(rng));
        for (c, s) in coverage.iter_mut().zip(seen) {
            *c |= s;
        }
    });
    assert_eq!(coverage, [true; 4], "all TraceEvent variants exercised");
}

#[test]
fn single_byte_mutation_never_panics_and_blames_the_right_line() {
    check::run("fuzz_single_byte_mutation", |rng| {
        let trace = full_coverage_trace(rng);
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &trace).expect("write to Vec cannot fail");
        assert!(!bytes.is_empty());

        let pos = rng.gen_range(0..bytes.len());
        let old = bytes[pos];
        let flip = 1u8 << rng.gen_range(0..8u32);
        let new = old ^ flip;
        bytes[pos] = new;

        // Attribution is only well-defined when the mutation cannot move
        // line boundaries or break UTF-8.
        let structure_preserved = old != b'\n' && new != b'\n' && new.is_ascii();
        let expected_line = line_of_byte(&bytes, pos);

        match read_trace(bytes.as_slice()) {
            Ok(_) => {}
            Err(ParseTraceError::Malformed { line, .. }) => {
                if structure_preserved {
                    assert_eq!(
                        line, expected_line,
                        "error attributed to line {line}, mutated byte {pos} is on line {expected_line}"
                    );
                }
            }
            Err(ParseTraceError::Io(_)) => {
                assert!(
                    !new.is_ascii(),
                    "Io error is only acceptable for non-UTF-8 mutations"
                );
            }
        }
    });
}

#[test]
fn multi_byte_mutation_never_panics_and_lenient_recovers() {
    check::run("fuzz_multi_byte_mutation", |rng| {
        let trace = full_coverage_trace(rng);
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &trace).expect("write to Vec cannot fail");
        let total_lines = 1 + bytes.iter().filter(|&&b| b == b'\n').count();

        for _ in 0..rng.gen_range(1..16usize) {
            let pos = rng.gen_range(0..bytes.len());
            bytes[pos] ^= 1u8 << rng.gen_range(0..8u32);
        }

        // Strict parse: success or a structured error with an in-range
        // line. Reaching this point at all proves no panic.
        match read_trace(bytes.as_slice()) {
            Ok(_) | Err(ParseTraceError::Io(_)) => {}
            Err(ParseTraceError::Malformed { line, .. }) => {
                assert!(
                    (1..=total_lines).contains(&line),
                    "line {line} out of range 1..={total_lines}"
                );
            }
        }

        // Lenient parse on an in-memory buffer can never fail, and cannot
        // invent events beyond one per original line.
        let parsed = read_trace_lenient(bytes.as_slice()).expect("in-memory read");
        assert!(parsed.trace.len() <= trace.len() + total_lines);
        assert!(parsed.skipped <= total_lines);
        assert_eq!(parsed.is_clean(), parsed.first_error.is_none());
    });
}

#[test]
fn kinds_of_corruption_generator_all_yield_structured_errors() {
    use cap_trace::corrupt::{corrupt_as, CorruptionKind};
    check::run("fuzz_corruption_kinds", |rng| {
        let trace = full_coverage_trace(rng);
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &trace).expect("write to Vec cannot fail");
        for kind in CorruptionKind::ALL {
            let mutated = corrupt_as(&bytes, kind, rng);
            // Must not panic; errors must be structured.
            let _ = read_trace(mutated.as_slice());
            let parsed = read_trace_lenient(mutated.as_slice()).expect("in-memory read");
            if kind == CorruptionKind::JunkLines {
                // Junk never destroys existing events.
                assert_eq!(parsed.trace.len(), trace.len());
            }
        }
    });
}
