//! Property-based tests for the trace substrate.

use cap_trace::alloc::{HeapModel, LayoutPolicy};
use cap_trace::gen::array::{ArrayConfig, ArraySpec, ArrayWorkload};
use cap_trace::gen::linked_list::{LinkedListConfig, LinkedListWorkload};
use cap_trace::gen::{SeatAllocator, Workload};
use cap_trace::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    /// Heap allocations are aligned, disjoint, and monotone for any batch.
    #[test]
    fn heap_allocations_disjoint_and_aligned(
        base in 0u64..1 << 40,
        align_pow in 2u32..8,
        sizes in proptest::collection::vec(0u64..512, 1..64),
    ) {
        let align = 1u64 << align_pow;
        let mut heap = HeapModel::new(base, align);
        let mut prev_end = 0u64;
        for size in sizes {
            let addr = heap.alloc(size);
            prop_assert_eq!(addr % align, 0);
            prop_assert!(addr >= prev_end, "allocations must not overlap");
            prev_end = addr + size.max(1);
        }
    }

    /// `alloc_nodes` returns the requested count under every policy, and
    /// the address *sets* agree across policies given the same RNG state
    /// structure (shuffled is a permutation of bump).
    #[test]
    fn alloc_nodes_counts(
        count in 1usize..64,
        size in 1u64..128,
        policy in prop_oneof![
            Just(LayoutPolicy::Bump),
            Just(LayoutPolicy::Fragmented),
            Just(LayoutPolicy::Shuffled),
        ],
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut heap = HeapModel::new(0x1000, 16);
        let nodes = heap.alloc_nodes(count, size, policy, &mut rng);
        prop_assert_eq!(nodes.len(), count);
        let unique: std::collections::BTreeSet<u64> = nodes.iter().copied().collect();
        prop_assert_eq!(unique.len(), count, "node addresses must be distinct");
    }

    /// Every generated trace meets its load budget and is deterministic.
    #[test]
    fn catalog_budget_and_determinism(idx in 0usize..45, loads in 200usize..1_500) {
        let spec = &catalog()[idx];
        let a = spec.generate(loads);
        prop_assert!(a.load_count() >= loads);
        let b = spec.generate(loads);
        prop_assert_eq!(a, b);
    }

    /// Linked-list traversals repeat exactly when unmutated, for any
    /// geometry.
    #[test]
    fn list_traversals_repeat(
        nodes in 2usize..24,
        fields in proptest::collection::vec(0i32..200, 1..4),
    ) {
        let mut seats = SeatAllocator::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let cfg = LinkedListConfig {
            lists: 1,
            nodes_per_list: nodes,
            field_offsets: fields.clone(),
            node_size: 256,
            layout: LayoutPolicy::Fragmented,
            mutate_every_inverse: 0,
        };
        let mut wl = LinkedListWorkload::new(cfg, seats.next_seat(), &mut rng);
        let per_traversal = nodes * fields.len();
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut rng, per_traversal * 3);
        let trace = b.finish();
        let addrs: Vec<u64> = trace.loads().map(|l| l.addr).collect();
        prop_assert_eq!(&addrs[0..per_traversal], &addrs[per_traversal..2 * per_traversal]);
    }

    /// Array sweeps wrap exactly at the configured interval.
    #[test]
    fn array_wraps_at_interval(len in 2usize..64, elem in 1u64..64) {
        let mut seats = SeatAllocator::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let cfg = ArrayConfig {
            arrays: vec![ArraySpec { len, elem_size: elem, field_offsets: vec![0] }],
            skip_percent: 0,
        };
        let mut wl = ArrayWorkload::new(cfg, seats.next_seat(), &mut rng);
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut rng, 2 * len + 1);
        let trace = b.finish();
        let addrs: Vec<u64> = trace.loads().map(|l| l.addr).collect();
        prop_assert_eq!(addrs[0], addrs[len], "wrap must return to the base");
        for w in addrs[..len].windows(2) {
            prop_assert_eq!(w[1] - w[0], elem);
        }
    }

    /// Trace statistics are internally consistent for any catalog trace.
    #[test]
    fn stats_consistency(idx in 0usize..45) {
        let trace = catalog()[idx].generate(2_000);
        let stats = TraceStats::compute(&trace);
        prop_assert_eq!(stats.loads, trace.load_count());
        prop_assert!(stats.loads + stats.stores + stats.branches <= stats.instructions);
        prop_assert!(stats.static_loads <= stats.loads);
        prop_assert!(stats.unique_addresses <= stats.loads);
        prop_assert!((0.0..=1.0).contains(&stats.constant_fraction));
        prop_assert!((0.0..=1.0).contains(&stats.stride_fraction));
    }

    /// Serialization roundtrips every catalog trace bit-exactly.
    #[test]
    fn io_roundtrip(idx in 0usize..45, loads in 100usize..800) {
        use cap_trace::io::{read_trace, write_trace};
        let trace = catalog()[idx].generate(loads);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("write to Vec cannot fail");
        let back = read_trace(buf.as_slice()).expect("roundtrip must parse");
        prop_assert_eq!(trace, back);
    }

    /// Base addresses always reconstruct: `base + offset == addr`.
    #[test]
    fn base_address_roundtrip(idx in 0usize..45) {
        let trace = catalog()[idx].generate(1_000);
        for l in trace.loads() {
            prop_assert_eq!(
                l.base_addr().wrapping_add(l.offset as i64 as u64),
                l.addr
            );
        }
    }
}
