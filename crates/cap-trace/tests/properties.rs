//! Property-based tests for the trace substrate, driven by the in-repo
//! `cap_check` harness (seeded cases, no shrinking — failures print the
//! case seed to replay via `CAP_CHECK_SEED`).

use cap_rand::check;
use cap_rand::rngs::StdRng;
use cap_rand::{Rng, SeedableRng};
use cap_trace::alloc::{HeapModel, LayoutPolicy};
use cap_trace::gen::array::{ArrayConfig, ArraySpec, ArrayWorkload};
use cap_trace::gen::linked_list::{LinkedListConfig, LinkedListWorkload};
use cap_trace::gen::{SeatAllocator, Workload};
use cap_trace::prelude::*;

/// Heap allocations are aligned, disjoint, and monotone for any batch.
#[test]
fn heap_allocations_disjoint_and_aligned() {
    check::run("heap_allocations_disjoint_and_aligned", |rng| {
        let base = rng.gen_range(0u64..1 << 40);
        let align = 1u64 << rng.gen_range(2u32..8);
        let sizes = check::vec_of(rng, 1..64, |r| r.gen_range(0u64..512));
        let mut heap = HeapModel::new(base, align);
        let mut prev_end = 0u64;
        for size in sizes {
            let addr = heap.alloc(size);
            assert_eq!(addr % align, 0);
            assert!(addr >= prev_end, "allocations must not overlap");
            prev_end = addr + size.max(1);
        }
    });
}

/// `alloc_nodes` returns the requested count of distinct addresses under
/// every layout policy.
#[test]
fn alloc_nodes_counts() {
    check::run("alloc_nodes_counts", |rng| {
        let count = rng.gen_range(1usize..64);
        let size = rng.gen_range(1u64..128);
        let policy = check::one_of(
            rng,
            &[
                LayoutPolicy::Bump,
                LayoutPolicy::Fragmented,
                LayoutPolicy::Shuffled,
            ],
        );
        let mut inner = StdRng::seed_from_u64(7);
        let mut heap = HeapModel::new(0x1000, 16);
        let nodes = heap.alloc_nodes(count, size, policy, &mut inner);
        assert_eq!(nodes.len(), count);
        let unique: std::collections::BTreeSet<u64> = nodes.iter().copied().collect();
        assert_eq!(unique.len(), count, "node addresses must be distinct");
    });
}

/// Every generated trace meets its load budget and is deterministic.
#[test]
fn catalog_budget_and_determinism() {
    check::run("catalog_budget_and_determinism", |rng| {
        let spec = &catalog()[rng.gen_range(0usize..45)];
        let loads = rng.gen_range(200usize..1_500);
        let a = spec.generate(loads);
        assert!(a.load_count() >= loads);
        let b = spec.generate(loads);
        assert_eq!(a, b);
    });
}

/// Linked-list traversals repeat exactly when unmutated, for any
/// geometry.
#[test]
fn list_traversals_repeat() {
    check::run("list_traversals_repeat", |rng| {
        let nodes = rng.gen_range(2usize..24);
        let fields = check::vec_of(rng, 1..4, |r| r.gen_range(0i32..200));
        let mut seats = SeatAllocator::new();
        let mut inner = StdRng::seed_from_u64(3);
        let cfg = LinkedListConfig {
            lists: 1,
            nodes_per_list: nodes,
            field_offsets: fields.clone(),
            node_size: 256,
            layout: LayoutPolicy::Fragmented,
            mutate_every_inverse: 0,
        };
        let mut wl = LinkedListWorkload::new(cfg, seats.next_seat(), &mut inner);
        let per_traversal = nodes * fields.len();
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut inner, per_traversal * 3);
        let trace = b.finish();
        let addrs: Vec<u64> = trace.loads().map(|l| l.addr).collect();
        assert_eq!(
            &addrs[0..per_traversal],
            &addrs[per_traversal..2 * per_traversal]
        );
    });
}

/// Array sweeps wrap exactly at the configured interval.
#[test]
fn array_wraps_at_interval() {
    check::run("array_wraps_at_interval", |rng| {
        let len = rng.gen_range(2usize..64);
        let elem = rng.gen_range(1u64..64);
        let mut seats = SeatAllocator::new();
        let mut inner = StdRng::seed_from_u64(5);
        let cfg = ArrayConfig {
            arrays: vec![ArraySpec {
                len,
                elem_size: elem,
                field_offsets: vec![0],
            }],
            skip_percent: 0,
        };
        let mut wl = ArrayWorkload::new(cfg, seats.next_seat(), &mut inner);
        let mut b = TraceBuilder::new();
        wl.emit(&mut b, &mut inner, 2 * len + 1);
        let trace = b.finish();
        let addrs: Vec<u64> = trace.loads().map(|l| l.addr).collect();
        assert_eq!(addrs[0], addrs[len], "wrap must return to the base");
        for w in addrs[..len].windows(2) {
            assert_eq!(w[1] - w[0], elem);
        }
    });
}

/// Trace statistics are internally consistent for any catalog trace.
#[test]
fn stats_consistency() {
    check::run_n("stats_consistency", 45, |rng| {
        let trace = catalog()[rng.gen_range(0usize..45)].generate(2_000);
        let stats = TraceStats::compute(&trace);
        assert_eq!(stats.loads, trace.load_count());
        assert!(stats.loads + stats.stores + stats.branches <= stats.instructions);
        assert!(stats.static_loads <= stats.loads);
        assert!(stats.unique_addresses <= stats.loads);
        assert!((0.0..=1.0).contains(&stats.constant_fraction));
        assert!((0.0..=1.0).contains(&stats.stride_fraction));
    });
}

/// Serialization roundtrips every catalog trace bit-exactly.
#[test]
fn io_roundtrip() {
    check::run_n("io_roundtrip", 45, |rng| {
        use cap_trace::io::{read_trace, write_trace};
        let trace = catalog()[rng.gen_range(0usize..45)].generate(rng.gen_range(100usize..800));
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("write to Vec cannot fail");
        let back = read_trace(buf.as_slice()).expect("roundtrip must parse");
        assert_eq!(trace, back);
    });
}

/// Base addresses always reconstruct: `base + offset == addr`.
#[test]
fn base_address_roundtrip() {
    check::run_n("base_address_roundtrip", 45, |rng| {
        let trace = catalog()[rng.gen_range(0usize..45)].generate(1_000);
        for l in trace.loads() {
            assert_eq!(l.base_addr().wrapping_add(l.offset as i64 as u64), l.addr);
        }
    });
}
