//! Seed-determinism contract, one test per generator family.
//!
//! Every workload generator must be a pure function of its `u64` seed:
//! the same seed reproduces the identical load-address stream
//! bit-for-bit (the property downstream comparisons of predictors on
//! "the same trace" rest on), and different seeds must actually produce
//! different streams (the generator really consumes its entropy instead
//! of ignoring the RNG).

use cap_rand::rngs::StdRng;
use cap_rand::SeedableRng;
use cap_trace::alloc::LayoutPolicy;
use cap_trace::builder::TraceBuilder;
use cap_trace::gen::array::{ArrayConfig, ArrayWorkload};
use cap_trace::gen::call_site::{CallSiteConfig, CallSiteWorkload};
use cap_trace::gen::globals::{GlobalsConfig, GlobalsWorkload};
use cap_trace::gen::hash::{HashConfig, HashWorkload};
use cap_trace::gen::linked_list::{
    DoublyLinkedListConfig, DoublyLinkedListWorkload, LinkedListConfig, LinkedListWorkload,
};
use cap_trace::gen::matrix::{MatrixConfig, MatrixWorkload};
use cap_trace::gen::mix::MixWorkload;
use cap_trace::gen::random::{RandomConfig, RandomWorkload};
use cap_trace::gen::stack::{StackConfig, StackWorkload};
use cap_trace::gen::tree::{BinaryTreeConfig, BinaryTreeWorkload};
use cap_trace::gen::{SeatAllocator, Workload};

const LOADS: usize = 2_000;

/// Builds a workload from `seed` and returns its first `LOADS` load
/// addresses.
fn stream<W, F>(build: F, seed: u64) -> Vec<u64>
where
    W: Workload,
    F: Fn(cap_trace::gen::Seat, &mut StdRng) -> W,
{
    let mut seats = SeatAllocator::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut wl = build(seats.next_seat(), &mut rng);
    let mut b = TraceBuilder::new();
    wl.emit(&mut b, &mut rng, LOADS);
    b.finish().loads().map(|l| l.addr).collect()
}

/// Asserts the two halves of the contract for one generator family.
fn assert_seed_contract<W, F>(family: &str, build: F)
where
    W: Workload,
    F: Fn(cap_trace::gen::Seat, &mut StdRng) -> W,
{
    let a = stream(&build, 0xC0FFEE);
    let b = stream(&build, 0xC0FFEE);
    assert_eq!(a, b, "{family}: same seed must replay the identical stream");
    let c = stream(&build, 0xDECAF);
    assert_ne!(a, c, "{family}: different seeds must produce different streams");
}

#[test]
fn linked_list_is_seed_deterministic() {
    assert_seed_contract("linked_list", |seat, rng| {
        let cfg = LinkedListConfig {
            // A mutating list keeps consuming entropy during emission, so
            // the divergence check exercises emit-time randomness too.
            mutate_every_inverse: 50,
            layout: LayoutPolicy::Fragmented,
            ..LinkedListConfig::default()
        };
        LinkedListWorkload::new(cfg, seat, rng)
    });
}

#[test]
fn doubly_linked_list_is_seed_deterministic() {
    assert_seed_contract("doubly_linked_list", |seat, rng| {
        DoublyLinkedListWorkload::new(DoublyLinkedListConfig::default(), seat, rng)
    });
}

#[test]
fn binary_tree_is_seed_deterministic() {
    assert_seed_contract("tree", |seat, rng| {
        BinaryTreeWorkload::new(BinaryTreeConfig::default(), seat, rng)
    });
}

#[test]
fn call_site_is_seed_deterministic() {
    assert_seed_contract("call_site", |seat, rng| {
        let cfg = CallSiteConfig {
            // The noiseless pattern is structurally deterministic (call
            // sequence fixed by `pattern`); noise makes emission consume
            // entropy so the divergence half of the contract is real.
            noise_percent: 20,
            ..CallSiteConfig::default()
        };
        CallSiteWorkload::new(cfg, seat, rng)
    });
}

#[test]
fn noiseless_call_site_is_structurally_deterministic() {
    // Like matrix: with no noise the site pattern fixes the stream, so it
    // must be identical even across different seeds.
    let build = |seat: cap_trace::gen::Seat, rng: &mut StdRng| {
        CallSiteWorkload::new(CallSiteConfig::default(), seat, rng)
    };
    let a = stream(build, 1);
    let b = stream(build, 2);
    assert_eq!(a, b, "noiseless call-site stream is fixed by its pattern");
}

#[test]
fn globals_is_seed_deterministic() {
    assert_seed_contract("globals", |seat, rng| {
        GlobalsWorkload::new(GlobalsConfig::default(), seat, rng)
    });
}

#[test]
fn hash_is_seed_deterministic() {
    assert_seed_contract("hash", |seat, rng| {
        HashWorkload::new(HashConfig::default(), seat, rng)
    });
}

#[test]
fn stack_is_seed_deterministic() {
    assert_seed_contract("stack", |seat, rng| {
        StackWorkload::new(StackConfig::default(), seat, rng)
    });
}

#[test]
fn random_is_seed_deterministic() {
    assert_seed_contract("random", |seat, rng| {
        RandomWorkload::new(RandomConfig::default(), seat, rng)
    });
}

/// Array and matrix sweeps are structurally deterministic (their address
/// sequence is fixed by geometry), so seed divergence must come from the
/// randomized parts: skip/noise percentages and heap placement. Exercise
/// them with those knobs on, inside a mix so scheduling also draws from
/// the stream.
#[test]
fn array_with_skips_is_seed_deterministic() {
    assert_seed_contract("array", |seat, rng| {
        let cfg = ArrayConfig {
            skip_percent: 25,
            ..ArrayConfig::default()
        };
        ArrayWorkload::new(cfg, seat, rng)
    });
}

#[test]
fn matrix_is_structurally_deterministic() {
    // Matrix sweeps take nothing from the RNG by design (long fixed
    // strides): same seed must replay, and different seeds must replay
    // *too* — pin that stronger guarantee rather than a vacuous
    // divergence check.
    let build = |seat: cap_trace::gen::Seat, rng: &mut StdRng| {
        MatrixWorkload::new(MatrixConfig::default(), seat, rng)
    };
    let a = stream(build, 1);
    let b = stream(build, 2);
    assert_eq!(
        a, b,
        "matrix: address stream is fixed by geometry, independent of seed"
    );
}

#[test]
fn mix_is_seed_deterministic() {
    assert_seed_contract("mix", |seat, rng| {
        let mut seats = SeatAllocator::new();
        let _ = seats.next_seat(); // keep seat 0 distinct from the caller's
        let mut mix = MixWorkload::new(64);
        mix.add(
            Box::new(LinkedListWorkload::new(
                LinkedListConfig::default(),
                seat,
                rng,
            )),
            3,
        );
        mix.add(
            Box::new(HashWorkload::new(
                HashConfig::default(),
                seats.next_seat(),
                rng,
            )),
            2,
        );
        mix
    });
}

/// The catalog endpoints ride on the same contract: a spec's seed fully
/// determines its trace, and sibling specs differ.
#[test]
fn catalog_specs_obey_the_seed_contract() {
    let specs = cap_trace::suites::catalog();
    let a = specs[0].generate(LOADS);
    let b = specs[0].generate(LOADS);
    assert_eq!(a, b);
    let sibling = specs[1].generate(LOADS);
    assert_ne!(a, sibling, "sibling catalog traces must not be clones");
}
