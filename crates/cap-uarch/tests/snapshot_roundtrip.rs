//! Snapshot round-trip fidelity for the timing core.
//!
//! The core is snapshotted between two trace segments; the restored core
//! (and its restored address predictor) must replay the second segment to
//! bit-identical timing statistics, and re-encoding the restored state
//! must reproduce the original bytes.

use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
use cap_snapshot::{Restorable, Snapshot, SnapshotArchive, SnapshotBuilder};
use cap_uarch::core::{CoreConfig, CoreStats, OooCore};
use cap_trace::Trace;

fn traces() -> (Trace, Trace) {
    let catalog = cap_trace::suites::catalog();
    (catalog[0].generate(8_000), catalog[2].generate(8_000))
}

fn assert_stats_eq(a: &CoreStats, b: &CoreStats) {
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.loads, b.loads);
    assert_eq!(a.branch_mispredicts, b.branch_mispredicts);
    assert_eq!(a.prefetches, b.prefetches);
    assert_eq!(a.l1_hit_rate.to_bits(), b.l1_hit_rate.to_bits());
    assert_eq!(a.pred, b.pred);
}

#[test]
fn core_resume_is_bit_identical() {
    let (first, second) = traces();

    // Uninterrupted: both segments through one core and predictor.
    let mut core = OooCore::new(CoreConfig::paper_default());
    let mut pred = HybridPredictor::new(HybridConfig::paper_default());
    core.run(&first, Some(&mut pred), 0);
    let reference = core.run(&second, Some(&mut pred), 0);

    // Interrupted: snapshot after the first segment, restore into fresh
    // objects, replay the second segment there.
    let mut core2 = OooCore::new(CoreConfig::paper_default());
    let mut pred2 = HybridPredictor::new(HybridConfig::paper_default());
    core2.run(&first, Some(&mut pred2), 0);

    let mut b = SnapshotBuilder::new();
    b.add("core", &core2);
    b.add("predictor", &pred2);
    let bytes = b.finish();
    let archive = SnapshotArchive::parse(&bytes).expect("own snapshot parses");
    let mut restored_core: OooCore = archive.restore("core").expect("core restores");
    let mut restored_pred: HybridPredictor =
        archive.restore("predictor").expect("predictor restores");

    let resumed = restored_core.run(&second, Some(&mut restored_pred), 0);
    assert_stats_eq(&resumed, &reference);
}

#[test]
fn core_reencode_is_identical() {
    let (first, _) = traces();
    let mut core = OooCore::new(CoreConfig::paper_default());
    core.run(&first, None, 0);
    let payload = core.to_payload();
    let restored = OooCore::from_payload(&payload, "core").expect("core payload restores");
    assert_eq!(restored.to_payload(), payload);
}

#[test]
fn hostile_core_payload_never_panics() {
    // Truncations at every prefix of a real core payload must yield a
    // structured error, not a panic.
    let (first, _) = traces();
    let mut core = OooCore::new(CoreConfig::paper_default());
    core.run(&first, None, 0);
    let payload = core.to_payload();
    let step = (payload.len() / 257).max(1);
    for cut in (0..payload.len()).step_by(step) {
        let err = OooCore::from_payload(&payload[..cut], "core");
        assert!(err.is_err(), "truncated payload at {cut} must not decode");
    }
}
