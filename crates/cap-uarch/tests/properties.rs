//! Property-based tests for the timing substrate, driven by the in-repo
//! `cap_check` harness.

use cap_rand::check;
use cap_rand::rngs::StdRng;
use cap_rand::{Rng, SeedableRng};
use cap_trace::builder::TraceBuilder;
use cap_trace::record::OpLatency;
use cap_uarch::capacity::SlotTracker;
use cap_uarch::core::{run_trace, CoreConfig};
use cap_uarch::prelude::*;
use std::collections::HashMap;

/// SlotTracker never books more than `width` events into one cycle and
/// never books before the requested cycle.
#[test]
fn slot_tracker_respects_width() {
    check::run("slot_tracker_respects_width", |rng| {
        let width = rng.gen_range(1u32..8);
        let requests = check::vec_of(rng, 1..200, |r| r.gen_range(0u64..64));
        let mut t = SlotTracker::new(width);
        let mut booked: HashMap<u64, u32> = HashMap::new();
        for at in requests {
            let got = t.alloc(at);
            assert!(got >= at);
            let c = booked.entry(got).or_insert(0);
            *c += 1;
            assert!(*c <= width);
        }
    });
}

/// Cache hit/miss counts always sum to accesses; hit rate in [0,1].
#[test]
fn cache_accounting() {
    check::run("cache_accounting", |rng| {
        let addrs = check::vec_of(rng, 1..500, |r| r.gen::<u32>());
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1024,
            line_bytes: 32,
            assoc: 2,
        });
        for (i, a) in addrs.iter().enumerate() {
            c.access(u64::from(*a));
            assert_eq!(c.hits() + c.misses(), (i + 1) as u64);
        }
        assert!((0.0..=1.0).contains(&c.hit_rate()));
    });
}

/// Repeating the same address after the first access always hits.
#[test]
fn cache_temporal_locality() {
    check::run("cache_temporal_locality", |rng| {
        let addr = rng.gen::<u32>();
        let repeats = rng.gen_range(1usize..20);
        let mut c = Cache::new(CacheConfig::paper_l1());
        c.access(u64::from(addr));
        for _ in 0..repeats {
            assert!(c.access(u64::from(addr)));
        }
    });
}

/// Branch predictors converge on any strongly biased branch.
#[test]
fn branch_predictor_learns_bias() {
    check::run("branch_predictor_learns_bias", |rng| {
        let taken = rng.gen::<bool>();
        let ip = rng.gen::<u32>();
        let mut p = HybridBranchPredictor::paper_default();
        for _ in 0..8 {
            p.update(u64::from(ip), 0, taken);
        }
        assert_eq!(p.predict(u64::from(ip), 0), taken);
    });
}

/// The core is deterministic and conserves instructions for any trace
/// shape; cycles are bounded below by instructions / width.
#[test]
fn core_conservation_laws() {
    check::run("core_conservation_laws", |rng| {
        let events = check::vec_of(rng, 1..300, |r| (r.gen_range(0u8..4), r.gen::<u32>()));
        let mut b = TraceBuilder::new();
        for (i, (kind, payload)) in events.iter().enumerate() {
            let ip = 0x400 + (i as u64 % 64) * 4;
            match kind {
                0 => b.load(ip, u64::from(*payload) & !3, 0),
                1 => b.store(ip, u64::from(*payload) & !3),
                2 => b.cond_branch(ip, payload % 2 == 0),
                _ => b.op(ip, OpLatency::Alu, None, [None, None]),
            }
        }
        let trace = b.finish();
        let cfg = CoreConfig::paper_default();
        let s1 = run_trace(&trace, &cfg, None, 0);
        let s2 = run_trace(&trace, &cfg, None, 0);
        assert_eq!(s1.cycles, s2.cycles, "timing must be deterministic");
        assert_eq!(s1.instructions as usize, trace.len());
        assert_eq!(s1.loads as usize, trace.load_count());
        // Can't commit more than `width` per cycle.
        assert!(
            s1.cycles >= (trace.len() as u64) / u64::from(cfg.width),
            "cycles {} below width bound",
            s1.cycles
        );
        assert!(s1.ipc() <= f64::from(cfg.width) + 1e-9);
    });
}

/// Address prediction never slows the core down by more than the
/// bounded replay overhead on random (unpredictable) streams.
#[test]
fn prediction_is_nearly_free_when_useless() {
    check::run_n("prediction_is_nearly_free_when_useless", 16, |rng| {
        let seed = rng.gen::<u64>();
        let mut inner = StdRng::seed_from_u64(seed);
        let mut b = TraceBuilder::new();
        for _ in 0..500 {
            b.load(0x40, (inner.gen::<u32>() as u64) & !3, 0);
        }
        let trace = b.finish();
        let cfg = CoreConfig::paper_default();
        let base = run_trace(&trace, &cfg, None, 0);
        let mut p = cap_predictor::hybrid::HybridPredictor::new(
            cap_predictor::hybrid::HybridConfig::paper_default(),
        );
        let with = run_trace(&trace, &cfg, Some(&mut p), 0);
        assert!(
            with.cycles as f64 <= base.cycles as f64 * 1.10,
            "{} vs {}",
            with.cycles,
            base.cycles
        );
    });
}
