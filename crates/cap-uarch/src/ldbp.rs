//! The `ldbp` backend: load-driven early branch resolution fused with
//! the CAP hybrid address predictor.
//!
//! Sridhar et al.'s Load-Driven Branch Predictor (LDBP) observes that
//! many hard-to-predict branches just compare a recently loaded value,
//! so a confident load-address prediction lets the branch be computed
//! ahead of fetch instead of guessed. This backend models that fusion
//! on the CAP substrate: addresses come from the paper's full hybrid
//! (CAP + stride + selector), and a (PC ⊕ GHR)-indexed confidence
//! table — the GHR rides along in every [`LoadContext`] — tracks how
//! often a confident address prediction for this branch context turned
//! out correct. When the table is confident and the hybrid speculates,
//! the dependent branch is claimed *early-resolved*; the claim is then
//! scored against the committed address, exporting
//! `backend.ldbp.early_resolved` vs `backend.ldbp.early_mispredict`.

use crate::names;
use cap_obs::Obs;
use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
use cap_predictor::load_buffer::LoadBuffer;
use cap_predictor::types::{AddressPredictor, LoadContext, Prediction};
use cap_snapshot::{Restorable, SectionReader, SectionWriter, Snapshot, SnapshotError};

const CONF_MAX: u8 = 3;

/// Configuration of the LDBP backend.
#[derive(Debug, Clone, Copy)]
pub struct LdbpConfig {
    /// The inner hybrid address predictor.
    pub hybrid: HybridConfig,
    /// Entries in the (PC ⊕ GHR)-indexed branch-confidence table
    /// (power of two).
    pub table_entries: usize,
    /// Confidence (0–3) required before a branch is claimed early.
    pub conf_threshold: u8,
}

impl LdbpConfig {
    /// Paper-default hybrid plus a 2K-entry branch-confidence table
    /// that claims a branch after two confirming contexts.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            hybrid: HybridConfig::paper_default(),
            table_entries: 2048,
            conf_threshold: 2,
        }
    }
}

/// Hybrid address prediction + GHR-correlated early branch resolution.
#[derive(Debug)]
pub struct LdbpPredictor {
    hybrid: HybridPredictor,
    /// 2-bit confidence per (PC ⊕ GHR) branch context.
    conf: Vec<u8>,
    threshold: u8,
    early_resolved: u64,
    early_mispredicted: u64,
    obs: Obs,
}

impl LdbpPredictor {
    /// Builds the backend.
    ///
    /// # Panics
    ///
    /// Panics if `table_entries` is not a non-zero power of two or the
    /// threshold exceeds the 2-bit counter range.
    #[must_use]
    pub fn new(config: LdbpConfig) -> Self {
        assert!(
            config.table_entries.is_power_of_two(),
            "branch table entries must be a power of two"
        );
        assert!(
            (1..=CONF_MAX).contains(&config.conf_threshold),
            "confidence threshold must be in 1..=3"
        );
        Self {
            hybrid: HybridPredictor::new(config.hybrid),
            conf: vec![0; config.table_entries],
            threshold: config.conf_threshold,
            early_resolved: 0,
            early_mispredicted: 0,
            obs: Obs::off(),
        }
    }

    fn index(&self, ctx: &LoadContext) -> usize {
        let ghr = ctx.ghr;
        ((ctx.ip >> 2) ^ ghr ^ (ghr << 5)) as usize & (self.conf.len() - 1)
    }

    /// Whether this context would claim its dependent branch early.
    fn claims(&self, ctx: &LoadContext, pred: &Prediction) -> bool {
        pred.speculate && self.conf[self.index(ctx)] >= self.threshold
    }

    /// Branches resolved early and confirmed correct.
    #[must_use]
    pub fn branches_resolved_early(&self) -> u64 {
        self.early_resolved
    }

    /// Branches claimed early on a wrong address (pipeline flush).
    #[must_use]
    pub fn branches_early_mispredicted(&self) -> u64 {
        self.early_mispredicted
    }

    /// The branch-confidence table (2-bit entries).
    #[must_use]
    pub fn branch_table(&self) -> &[u8] {
        &self.conf
    }

    /// The inner hybrid predictor.
    #[must_use]
    pub fn hybrid(&self) -> &HybridPredictor {
        &self.hybrid
    }

    /// The inner hybrid predictor, mutably (fault-injection surface).
    pub fn hybrid_mut(&mut self) -> &mut HybridPredictor {
        &mut self.hybrid
    }

    /// Inner load buffer (fault-injection surface).
    #[must_use]
    pub fn load_buffer(&self) -> &LoadBuffer {
        self.hybrid.load_buffer()
    }

    /// Mutable inner load buffer (fault-injection surface).
    pub fn load_buffer_mut(&mut self) -> &mut LoadBuffer {
        self.hybrid.load_buffer_mut()
    }
}

impl AddressPredictor for LdbpPredictor {
    fn predict(&mut self, ctx: &LoadContext) -> Prediction {
        self.hybrid.predict(ctx)
    }

    fn update(&mut self, ctx: &LoadContext, actual: u64, pred: &Prediction) {
        // Score the claim with the table as it stood at predict time:
        // update is the only mutator, so the entry is unchanged since.
        let claimed = self.claims(ctx, pred);
        let correct = pred.is_correct(actual);
        if claimed {
            if correct {
                self.early_resolved += 1;
                self.obs.incr(names::LDBP_EARLY_RESOLVED);
            } else {
                self.early_mispredicted += 1;
                self.obs.incr(names::LDBP_EARLY_MISPREDICT);
            }
        }
        let idx = self.index(ctx);
        self.conf[idx] = if correct {
            self.conf[idx].saturating_add(1).min(CONF_MAX)
        } else {
            self.conf[idx].saturating_sub(1)
        };
        self.hybrid.update(ctx, actual, pred);
    }

    fn name(&self) -> &'static str {
        "ldbp"
    }

    fn set_obs(&mut self, obs: Obs) {
        self.hybrid.set_obs(obs.clone());
        self.obs = obs;
    }
}

impl Snapshot for LdbpPredictor {
    fn write_state(&self, w: &mut SectionWriter) {
        self.hybrid.write_state(w);
        w.put_len(self.conf.len());
        w.put_raw(&self.conf);
        w.put_u8(self.threshold);
        w.put_u64(self.early_resolved);
        w.put_u64(self.early_mispredicted);
    }
}

impl Restorable for LdbpPredictor {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let hybrid = HybridPredictor::read_state(r)?;
        let n = r.take_len(1, "branch table entries")?;
        if n == 0 || !n.is_power_of_two() {
            return Err(r.bad_value(format!("branch table entries {n} not a power of two")));
        }
        let conf = r.take_raw(n, "branch table")?.to_vec();
        if let Some((i, &e)) = conf.iter().enumerate().find(|&(_, &e)| e > CONF_MAX) {
            return Err(r.bad_value(format!("branch confidence {i} out of range: {e}")));
        }
        let threshold = r.take_u8("branch confidence threshold")?;
        if !(1..=CONF_MAX).contains(&threshold) {
            return Err(r.bad_value(format!("branch threshold {threshold} out of range")));
        }
        Ok(Self {
            hybrid,
            conf,
            threshold,
            early_resolved: r.take_u64("branches early resolved")?,
            early_mispredicted: r.take_u64("branches early mispredicted")?,
            obs: Obs::off(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut LdbpPredictor, ip: u64, ghr: u64, addrs: impl IntoIterator<Item = u64>) {
        for a in addrs {
            let ctx = LoadContext::new(ip, 8, ghr);
            let pred = p.predict(&ctx);
            p.update(&ctx, a, &pred);
        }
    }

    #[test]
    fn steady_stride_claims_and_resolves_branches_early() {
        let mut p = LdbpPredictor::new(LdbpConfig::paper_default());
        drive(&mut p, 0x400, 0b1011, (0..64).map(|i| 0x9000 + i * 8));
        assert!(
            p.branches_resolved_early() > 0,
            "a steady stream in one branch context must resolve early"
        );
        assert_eq!(p.branches_early_mispredicted(), 0);
    }

    #[test]
    fn broken_stream_demotes_confidence() {
        let mut p = LdbpPredictor::new(LdbpConfig::paper_default());
        drive(&mut p, 0x400, 0b1011, (0..64).map(|i| 0x9000 + i * 8));
        // Tear the pattern apart in the same context: claims made while
        // confidence drains score as early mispredicts.
        drive(&mut p, 0x400, 0b1011, (0..8).map(|i| 0xdead_0000 + i * 0x777));
        assert!(p.branches_early_mispredicted() > 0);
    }

    #[test]
    fn contexts_are_ghr_correlated() {
        let mut p = LdbpPredictor::new(LdbpConfig::paper_default());
        drive(&mut p, 0x400, 0b0001, (0..64).map(|i| 0x9000 + i * 8));
        let trained = p.conf[p.index(&LoadContext::new(0x400, 8, 0b0001))];
        let other = p.conf[p.index(&LoadContext::new(0x400, 8, 0b1110))];
        assert_eq!(trained, CONF_MAX);
        assert_eq!(other, 0, "a different GHR maps to a different context");
    }

    #[test]
    fn snapshot_roundtrip_preserves_counts_and_behavior() {
        let mut p = LdbpPredictor::new(LdbpConfig::paper_default());
        drive(&mut p, 0x400, 0b1011, (0..64).map(|i| 0x9000 + i * 8));
        let mut w = SectionWriter::new();
        p.write_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = SectionReader::new(&bytes, "ldbp");
        let mut back = LdbpPredictor::read_state(&mut r).expect("restore");
        r.finish().expect("no trailing bytes");
        assert_eq!(back.branches_resolved_early(), p.branches_resolved_early());
        let ctx = LoadContext::new(0x400, 8, 0b1011);
        assert_eq!(back.predict(&ctx).addr, p.predict(&ctx).addr);
    }
}
