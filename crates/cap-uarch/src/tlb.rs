//! A modeled data TLB with a pre-warm port for the PCAX backend.
//!
//! Murthy & Sohi's PC-indexed translation assist needs a translation
//! structure the predicted address stream can touch *before* the load
//! executes. This is a small set-associative, LRU page-translation
//! cache in the style of [`crate::cache::Cache`], extended with a
//! [`Tlb::prewarm`] port that installs a translation speculatively and
//! remembers it was pre-warmed so the first demand access can be
//! attributed to the assist (`uarch.tlb.prewarm_hit`).

use crate::names;
use cap_obs::Obs;
use cap_snapshot::{Restorable, SectionReader, SectionWriter, Snapshot, SnapshotError};

/// Geometry of the modeled TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entry count (must be divisible by `assoc` into a
    /// power-of-two set count).
    pub entries: usize,
    /// Associativity.
    pub assoc: usize,
    /// Page size as a shift (12 → 4 KB pages).
    pub page_bits: u32,
}

impl TlbConfig {
    /// A 64-entry, 4-way, 4 KB-page DTLB — representative of the
    /// paper's era (Pentium-class parts shipped 64-entry DTLBs).
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            entries: 64,
            assoc: 4,
            page_bits: 12,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.entries / self.assoc
    }

    fn validate(&self) {
        assert!(self.assoc >= 1, "TLB associativity must be at least 1");
        assert!(
            self.entries.is_multiple_of(self.assoc),
            "TLB entries must be divisible by associativity"
        );
        assert!(self.sets().is_power_of_two(), "TLB set count must be a power of two");
        assert!(self.page_bits >= 1 && self.page_bits <= 30, "page bits out of range");
    }
}

#[derive(Debug, Clone, Copy)]
struct TlbSlot {
    vpn: u64,
    lru: u64,
    valid: bool,
    /// Set when the translation was installed by [`Tlb::prewarm`] and a
    /// demand access has not consumed it yet.
    prewarmed: bool,
}

const EMPTY_SLOT: TlbSlot = TlbSlot {
    vpn: 0,
    lru: 0,
    valid: false,
    prewarmed: false,
};

/// A set-associative, LRU TLB with a speculative pre-warm port.
///
/// # Examples
///
/// ```
/// use cap_uarch::tlb::{Tlb, TlbConfig};
/// let mut tlb = Tlb::new(TlbConfig::paper_default());
/// assert!(tlb.prewarm(0x8000));   // installed speculatively
/// assert!(tlb.access(0x8010));    // demand access hits the warm entry
/// assert_eq!(tlb.prewarm_hits(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    slots: Vec<TlbSlot>,
    tick: u64,
    hits: u64,
    misses: u64,
    prewarms: u64,
    prewarm_hits: u64,
    obs: Obs,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    #[must_use]
    pub fn new(config: TlbConfig) -> Self {
        config.validate();
        Self {
            slots: vec![EMPTY_SLOT; config.entries],
            config,
            tick: 0,
            hits: 0,
            misses: 0,
            prewarms: 0,
            prewarm_hits: 0,
            obs: Obs::off(),
        }
    }

    /// The TLB's configuration.
    #[must_use]
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Attaches a telemetry sink for the `uarch.tlb.*` counters (not
    /// snapshotted — re-attach after a restore).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    fn set_range(&self, vpn: u64) -> (usize, usize, u64) {
        let sets = self.config.sets() as u64;
        let set = (vpn & (sets - 1)) as usize;
        let start = set * self.config.assoc;
        (start, start + self.config.assoc, vpn)
    }

    /// Performs one demand translation and returns whether it hit.
    ///
    /// A hit on a pre-warmed slot is additionally counted as an assist
    /// hit and clears the pre-warm mark (the assist is credited once).
    pub fn access(&mut self, vaddr: u64) -> bool {
        self.tick += 1;
        let (start, end, vpn) = self.set_range(vaddr >> self.config.page_bits);
        if let Some(slot) = self.slots[start..end]
            .iter_mut()
            .find(|s| s.valid && s.vpn == vpn)
        {
            slot.lru = self.tick;
            if slot.prewarmed {
                slot.prewarmed = false;
                self.prewarm_hits += 1;
                self.obs.incr(names::TLB_PREWARM_HIT);
            }
            self.hits += 1;
            self.obs.incr(names::TLB_HIT);
            return true;
        }
        self.fill(start, end, vpn, false);
        self.misses += 1;
        self.obs.incr(names::TLB_MISS);
        false
    }

    /// Speculatively installs the translation for `vaddr`. Returns
    /// `true` when a new entry was installed, `false` when it was
    /// already resident (already warm — nothing to do).
    pub fn prewarm(&mut self, vaddr: u64) -> bool {
        self.tick += 1;
        let (start, end, vpn) = self.set_range(vaddr >> self.config.page_bits);
        if self.slots[start..end].iter().any(|s| s.valid && s.vpn == vpn) {
            return false;
        }
        self.fill(start, end, vpn, true);
        self.prewarms += 1;
        self.obs.incr(names::TLB_PREWARM);
        true
    }

    fn fill(&mut self, start: usize, end: usize, vpn: u64, prewarmed: bool) {
        let victim = self.slots[start..end]
            .iter_mut()
            .min_by_key(|s| if s.valid { s.lru } else { 0 })
            .expect("associativity >= 1");
        *victim = TlbSlot {
            vpn,
            lru: self.tick,
            valid: true,
            prewarmed,
        };
    }

    /// Valid entries.
    #[must_use]
    pub fn occupancy(&self) -> u64 {
        self.slots.iter().filter(|s| s.valid).count() as u64
    }

    /// Demand hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Speculative installs issued by the assist.
    #[must_use]
    pub fn prewarms(&self) -> u64 {
        self.prewarms
    }

    /// Demand hits served by a still-warm speculative install.
    #[must_use]
    pub fn prewarm_hits(&self) -> u64 {
        self.prewarm_hits
    }

    /// Demand hit rate so far.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl Snapshot for TlbConfig {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_len(self.entries);
        w.put_len(self.assoc);
        w.put_u32(self.page_bits);
    }
}

impl Restorable for TlbConfig {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let entries = r.take_u64("tlb entries")?;
        let assoc = r.take_u64("tlb associativity")?;
        let page_bits = r.take_u32("tlb page bits")?;
        // Mirror TlbConfig::validate without panics, with an allocation
        // ceiling on the entry count.
        if assoc == 0 {
            return Err(r.bad_value("tlb associativity is zero".to_string()));
        }
        let sets = match entries.checked_rem(assoc) {
            Some(0) => entries / assoc,
            _ => {
                return Err(r.bad_value(format!(
                    "tlb entries {entries} not divisible by associativity {assoc}"
                )))
            }
        };
        if sets == 0 || !sets.is_power_of_two() {
            return Err(r.bad_value(format!("tlb set count {sets} not a power of two")));
        }
        if !(1..=30).contains(&page_bits) {
            return Err(r.bad_value(format!("tlb page bits {page_bits} out of range")));
        }
        if entries > 1 << 20 {
            return Err(SnapshotError::WidthOverflow {
                section: r.section().to_string(),
                what: "tlb entry count",
                value: entries,
                limit: 1 << 20,
            });
        }
        Ok(Self {
            entries: entries as usize,
            assoc: assoc as usize,
            page_bits,
        })
    }
}

impl Snapshot for Tlb {
    fn write_state(&self, w: &mut SectionWriter) {
        self.config.write_state(w);
        w.put_u64(self.tick);
        w.put_u64(self.hits);
        w.put_u64(self.misses);
        w.put_u64(self.prewarms);
        w.put_u64(self.prewarm_hits);
        for slot in &self.slots {
            w.put_u64(slot.vpn);
            w.put_u64(slot.lru);
            w.put_bool(slot.valid);
            w.put_bool(slot.prewarmed);
        }
    }
}

impl Restorable for Tlb {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let config = TlbConfig::read_state(r)?;
        let tick = r.take_u64("tlb tick")?;
        let hits = r.take_u64("tlb hits")?;
        let misses = r.take_u64("tlb misses")?;
        let prewarms = r.take_u64("tlb prewarms")?;
        let prewarm_hits = r.take_u64("tlb prewarm hits")?;
        let mut slots = Vec::with_capacity(config.entries);
        for _ in 0..config.entries {
            slots.push(TlbSlot {
                vpn: r.take_u64("tlb slot vpn")?,
                lru: r.take_u64("tlb slot lru")?,
                valid: r.take_bool("tlb slot valid")?,
                prewarmed: r.take_bool("tlb slot prewarmed")?,
            });
        }
        Ok(Self {
            config,
            slots,
            tick,
            hits,
            misses,
            prewarms,
            prewarm_hits,
            obs: Obs::off(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_snapshot::{SectionReader, SectionWriter};

    fn tiny() -> Tlb {
        // 4 sets x 2 ways
        Tlb::new(TlbConfig {
            entries: 8,
            assoc: 2,
            page_bits: 12,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut t = tiny();
        assert!(!t.access(0x1000));
        assert!(t.access(0x1FFF), "same page");
        assert!(!t.access(0x2000), "next page misses");
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn prewarm_credits_first_demand_access_once() {
        let mut t = tiny();
        assert!(t.prewarm(0x8000));
        assert!(!t.prewarm(0x8000), "already resident");
        assert!(t.access(0x8004));
        assert!(t.access(0x8008));
        assert_eq!(t.prewarms(), 1);
        assert_eq!(t.prewarm_hits(), 1, "assist credited exactly once");
    }

    #[test]
    fn lru_eviction_in_set() {
        let mut t = tiny();
        // Pages 0, 4, 8 all map to set 0 (4 sets).
        t.access(0x0000);
        t.access(0x4000);
        t.access(0x0000); // refresh page 0
        t.access(0x8000); // evicts page 4
        assert!(t.access(0x0800), "page 0 survived");
        assert!(!t.access(0x4000), "page 4 was the LRU victim");
    }

    #[test]
    fn snapshot_roundtrip_preserves_contents() {
        let mut t = tiny();
        t.prewarm(0x8000);
        for i in 0..6u64 {
            t.access(i << 12);
        }
        let mut w = SectionWriter::new();
        t.write_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = SectionReader::new(&bytes, "tlb");
        let mut back = Tlb::read_state(&mut r).expect("restore");
        r.finish().expect("no trailing bytes");
        assert_eq!(back.occupancy(), t.occupancy());
        assert_eq!(back.hits(), t.hits());
        assert_eq!(back.prewarms(), t.prewarms());
        // Behavioral check: the restored TLB serves exactly the same
        // pages as the original from here on.
        for page in [0x5000u64, 0x8000, 0x0000, 0x9000] {
            assert_eq!(back.access(page), t.access(page), "page {page:#x}");
        }
    }

    #[test]
    fn bad_geometry_is_rejected() {
        // entries 8 with associativity 3 does not divide evenly.
        let mut w = SectionWriter::new();
        w.put_len(8);
        w.put_len(3);
        w.put_u32(12);
        let bytes = w.into_bytes();
        let mut r = SectionReader::new(&bytes, "tlb");
        assert!(TlbConfig::read_state(&mut r).is_err());
    }
}
