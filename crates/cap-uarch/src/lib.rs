//! # cap-uarch — microarchitecture timing substrate for the CAP reproduction
//!
//! The ISCA 1999 paper evaluates its load-address predictors on Intel's
//! detailed performance simulator: an 8-wide, 128-deep out-of-order
//! processor with 10 functional units, 4 data-cache ports, a 32 KB L1 /
//! 1 MB L2 hierarchy, and a hybrid branch predictor (§4.1). This crate
//! rebuilds that substrate:
//!
//! * [`cache`] / [`hierarchy`] — set-associative LRU caches with the
//!   paper's geometry and era-appropriate latencies;
//! * [`branch`] — bimodal, gshare, and the hybrid direction predictor;
//! * [`capacity`] — per-cycle structural resource booking;
//! * [`core`] — the timestamp-dataflow out-of-order core with
//!   address-prediction integration and selective recovery.
//!
//! ## Quick start
//!
//! ```
//! use cap_uarch::core::{run_trace, CoreConfig};
//! use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
//! use cap_trace::suites::Suite;
//!
//! let trace = Suite::Int.traces()[0].generate(5_000);
//! let base = run_trace(&trace, &CoreConfig::paper_default(), None, 0);
//! let mut pred = HybridPredictor::new(HybridConfig::paper_default());
//! let with = run_trace(&trace, &CoreConfig::paper_default(), Some(&mut pred), 0);
//! println!("speedup: {:.3}", with.speedup_over(&base));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod branch;
pub mod cache;
pub mod capacity;
pub mod core;
pub mod hierarchy;

pub use crate::core::{run_trace, CoreConfig, CoreStats, OooCore};

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::branch::{BranchPredictor, HybridBranchPredictor};
    pub use crate::cache::{Cache, CacheConfig};
    pub use crate::core::{run_trace, CoreConfig, CoreStats, OooCore};
    pub use crate::hierarchy::{LatencyConfig, MemoryHierarchy};
}
