//! # cap-uarch — microarchitecture timing substrate for the CAP reproduction
//!
//! The ISCA 1999 paper evaluates its load-address predictors on Intel's
//! detailed performance simulator: an 8-wide, 128-deep out-of-order
//! processor with 10 functional units, 4 data-cache ports, a 32 KB L1 /
//! 1 MB L2 hierarchy, and a hybrid branch predictor (§4.1). This crate
//! rebuilds that substrate:
//!
//! * [`cache`] / [`hierarchy`] — set-associative LRU caches with the
//!   paper's geometry and era-appropriate latencies;
//! * [`branch`] — bimodal, gshare, and the hybrid direction predictor;
//! * [`capacity`] — per-cycle structural resource booking;
//! * [`core`] — the timestamp-dataflow out-of-order core with
//!   address-prediction integration and selective recovery;
//! * [`tlb`] — a modeled DTLB with a speculative pre-warm port;
//! * [`cache_level`] / [`ldbp`] / [`pcax`] — related-work predictor
//!   backends that couple the paper's address predictors to this
//!   timing substrate (cache-level prediction, load-driven early
//!   branch resolution, and PC-indexed translation assist).
//!
//! ## Quick start
//!
//! ```
//! use cap_uarch::core::{run_trace, CoreConfig};
//! use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
//! use cap_trace::suites::Suite;
//!
//! let trace = Suite::Int.traces()[0].generate(5_000);
//! let base = run_trace(&trace, &CoreConfig::paper_default(), None, 0);
//! let mut pred = HybridPredictor::new(HybridConfig::paper_default());
//! let with = run_trace(&trace, &CoreConfig::paper_default(), Some(&mut pred), 0);
//! println!("speedup: {:.3}", with.speedup_over(&base));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod branch;
pub mod cache;
pub mod cache_level;
pub mod capacity;
pub mod core;
pub mod hierarchy;
pub mod ldbp;
pub mod pcax;
pub mod tlb;

pub use crate::core::{run_trace, CoreConfig, CoreStats, OooCore};

/// Registry metric names recorded by the timing substrate when an
/// [`cap_obs::Obs`] is attached ([`OooCore::set_obs`] /
/// [`hierarchy::MemoryHierarchy::set_obs`]).
pub mod names {
    /// L1 data-cache hits.
    pub const L1_HIT: &str = "uarch.l1.hit";
    /// L1 data-cache misses.
    pub const L1_MISS: &str = "uarch.l1.miss";
    /// L2 hits (of L1 misses).
    pub const L2_HIT: &str = "uarch.l2.hit";
    /// L2 misses (accesses that went to memory).
    pub const L2_MISS: &str = "uarch.l2.miss";
    /// Live L1 lines (gauge).
    pub const L1_LIVE_LINES: &str = "uarch.l1.live_lines";
    /// Live L2 lines (gauge).
    pub const L2_LIVE_LINES: &str = "uarch.l2.live_lines";
    /// Reorder-buffer occupancy at the last publish point (gauge).
    pub const ROB_OCCUPANCY: &str = "uarch.rob.occupancy";
    /// Outstanding store-forwarding words at the last publish point
    /// (gauge).
    pub const STORE_SET_SIZE: &str = "uarch.store_set.size";
    /// Modeled-TLB demand hits.
    pub const TLB_HIT: &str = "uarch.tlb.hit";
    /// Modeled-TLB demand misses.
    pub const TLB_MISS: &str = "uarch.tlb.miss";
    /// Speculative TLB installs issued by the PCAX assist.
    pub const TLB_PREWARM: &str = "uarch.tlb.prewarm";
    /// Demand TLB hits served by a still-warm speculative install.
    pub const TLB_PREWARM_HIT: &str = "uarch.tlb.prewarm_hit";
    /// `cache-level` backend: correct per-PC level predictions.
    pub const CLP_LEVEL_HIT: &str = "backend.cache_level.level_hit";
    /// `cache-level` backend: wrong per-PC level predictions.
    pub const CLP_LEVEL_MISS: &str = "backend.cache_level.level_miss";
    /// `ldbp` backend: branches resolved early and confirmed correct.
    pub const LDBP_EARLY_RESOLVED: &str = "backend.ldbp.early_resolved";
    /// `ldbp` backend: branches claimed early on a wrong address.
    pub const LDBP_EARLY_MISPREDICT: &str = "backend.ldbp.early_mispredict";
    /// `pcax` backend: speculative TLB installs issued off predictions.
    pub const PCAX_ASSIST: &str = "backend.pcax.assist";
}

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::branch::{BranchPredictor, HybridBranchPredictor};
    pub use crate::cache::{Cache, CacheConfig};
    pub use crate::cache_level::{CacheLevelConfig, CacheLevelPredictor};
    pub use crate::core::{run_trace, CoreConfig, CoreStats, OooCore};
    pub use crate::hierarchy::{LatencyConfig, MemoryHierarchy};
    pub use crate::ldbp::{LdbpConfig, LdbpPredictor};
    pub use crate::pcax::{PcaxConfig, PcaxPredictor};
    pub use crate::tlb::{Tlb, TlbConfig};
}
